"""Perf harness: schema, determinism assertion, CLI smoke."""

import json

from repro.bench import (
    BENCH_SCHEMA,
    BENCH_STRATEGIES,
    format_report,
    run_bench,
    run_case,
)
from repro.cli import main

CASE_KEYS = {
    "id", "benchmark", "machine", "strategy", "threads", "scale",
    "wall_s", "wall_s_median", "sim_cycles", "retired", "pmu_samples",
    "cycles_per_sec", "retired_per_sec", "samples_per_sec",
    "digest", "events", "fastpath",
}


class TestRunCase:
    def test_schema_and_metrics(self):
        case = run_case("daxpy", "smp4", "none", samples=1)
        assert set(case) == CASE_KEYS
        assert case["id"] == "smp4/daxpy/none"
        assert case["sim_cycles"] > 0 and case["retired"] > 0
        assert case["cycles_per_sec"] > 0
        assert len(case["digest"]) == 64
        assert case["events"]["loads"] > 0
        assert case["pmu_samples"] == 0  # raw simulator, no profiler

    def test_cobra_strategy_reports_pmu_samples(self):
        case = run_case("daxpy", "smp4", "adaptive", samples=1)
        assert case["pmu_samples"] > 0
        assert case["samples_per_sec"] > 0

    def test_samples_are_deterministic(self):
        # two timed samples of the same case must agree on digest and
        # counters (run_case raises otherwise)
        case = run_case("cg", "smp4", "excl", samples=2)
        assert len(case["wall_s"]) == 2


class TestRunBench:
    def test_quick_matrix(self):
        report = run_bench(
            benchmarks=("daxpy",), machines=("smp4",),
            strategies=("none", "adaptive"), samples=1, quick=True,
        )
        assert report["schema"] == BENCH_SCHEMA
        assert [c["strategy"] for c in report["cases"]] == ["none", "adaptive"]
        assert report["totals"]["sim_cycles"] > 0
        # the same workload bytes regardless of strategy
        digests = {c["digest"] for c in report["cases"]}
        assert len(digests) == 1
        table = format_report(report)
        assert "smp4/daxpy/none" in table and "smp4/daxpy/adaptive" in table

    def test_default_strategy_matrix(self):
        report = run_bench(
            benchmarks=("daxpy",), machines=("smp4",), samples=1, quick=True
        )
        assert tuple(c["strategy"] for c in report["cases"]) == BENCH_STRATEGIES


class TestBenchCli:
    def test_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        rc = main([
            "bench", "--quick", "--samples", "1", "--out", str(out),
            "--benchmarks", "daxpy", "--strategies", "none",
        ])
        stdout = capsys.readouterr().out
        assert rc == 0
        assert f"wrote {out}" in stdout
        doc = json.loads(out.read_text())
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["quick"] is True
        assert len(doc["cases"]) == 1


class TestRunFleetCase:
    def test_warm_half_skips_the_ramp(self):
        from repro.bench import run_fleet_case

        case = run_fleet_case(instances=4, jobs=2)
        assert case["ok"] and case["digests_match"]
        assert case["id"].startswith("fleet4/")
        assert case["published"] >= 1
        assert case["warm_seeded"]
        assert case["cold_ramp_retired"] > 0
        assert case["warm_ramp_retired"] == 0
        assert case["ramp_reduction_pct"] == 100.0
