"""Unit tests of the rewrite passes."""

from repro.isa.instructions import Instruction, Op
from repro.core.opts import make_excl_rewrite, make_noprefetch_rewrite


def _lfetch(reg=34, excl=False):
    return Instruction(Op.LFETCH, qp=16, r2=reg, hint="nt1", excl=excl, unit="M")


class TestNoprefetchRewrite:
    def test_lfetch_becomes_unit_compatible_nop(self):
        rewrite = make_noprefetch_rewrite()
        out = rewrite(_lfetch())
        assert out is not None and out.op is Op.NOP and out.unit == "M"

    def test_other_instructions_untouched(self):
        rewrite = make_noprefetch_rewrite()
        for instr in (
            Instruction(Op.LDFD, r1=32, r2=2, imm=8, unit="M"),
            Instruction(Op.STFD, r2=17, r3=61, imm=8, unit="M"),
            Instruction(Op.BR_CTOP, imm=0x1000, unit="B"),
        ):
            assert rewrite(instr) is None


class TestExclRewrite:
    def test_adds_excl_preserving_everything_else(self):
        rewrite = make_excl_rewrite()
        out = rewrite(_lfetch())
        assert out.excl and out.hint == "nt1" and out.qp == 16 and out.r2 == 34

    def test_already_excl_untouched(self):
        rewrite = make_excl_rewrite()
        assert rewrite(_lfetch(excl=True)) is None

    def test_register_selection(self):
        rewrite = make_excl_rewrite(address_regs={2, 3})
        assert rewrite(_lfetch(reg=2)) is not None
        assert rewrite(_lfetch(reg=5)) is None

    def test_empty_selection_rewrites_nothing(self):
        rewrite = make_excl_rewrite(address_regs=set())
        assert rewrite(_lfetch(reg=2)) is None
