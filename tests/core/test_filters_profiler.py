"""Two-level filtering and system-wide profile aggregation."""

from repro.config import CobraConfig
from repro.core.filters import MissProfile
from repro.core.profiler import SystemProfiler
from repro.hpm.sample import Sample


def _sample(
    thread=0,
    pc=0x100,
    counters=(0, 0, 0, 0),
    btb=(),
    miss=None,
    index=0,
):
    miss_pc, miss_lat, miss_addr = miss if miss else (None, None, None)
    return Sample(
        index=index,
        pc=pc,
        pid=0,
        thread_id=thread,
        cpu_id=thread,
        counters=counters,
        btb=tuple(btb),
        miss_pc=miss_pc,
        miss_latency=miss_lat,
        miss_addr=miss_addr,
        cycles=0,
    )


class TestMissProfile:
    def test_level_two_classification(self):
        profile = MissProfile(CobraConfig())
        profile.add_sample(_sample(miss=(0x100, 140, 0x8000_0000)))  # memory band
        profile.add_sample(_sample(miss=(0x100, 195, 0x8000_0080)))  # coherent band
        stats = profile.by_pc[0x100]
        assert stats.samples == 2 and stats.coherent == 1
        assert stats.coherent_share == 0.5
        assert stats.mean_latency == (140 + 195) / 2
        assert len(stats.lines) == 2

    def test_level_one_floor(self):
        profile = MissProfile(CobraConfig())
        profile.add_sample(_sample(miss=(0x100, 12, 0x8000_0000)))  # L3-hit band
        assert not profile.by_pc

    def test_samples_without_miss_ignored(self):
        profile = MissProfile(CobraConfig())
        profile.add_sample(_sample())
        assert profile.total_events == 0

    def test_hot_pcs_ordered_by_stall(self):
        profile = MissProfile(CobraConfig())
        for _ in range(3):
            profile.add_sample(_sample(miss=(0x200, 140, 0x8000_0000)))
        profile.add_sample(_sample(miss=(0x300, 500, 0x8000_0000)))
        hot = profile.hot_pcs()
        assert hot[0].pc == 0x300  # bigger total latency

    def test_decay_ages_and_prunes(self):
        profile = MissProfile(CobraConfig())
        profile.add_sample(_sample(miss=(0x100, 195, 0x8000_0000)))
        profile.decay(0.5)
        assert 0x100 not in profile.by_pc  # 1 * 0.5 -> 0 -> pruned
        assert profile.total_events == 0


class TestSystemProfiler:
    def _monitor_stub(self, samples):
        class Stub:
            def __init__(self, s):
                self._s = list(s)

            def drain(self):
                out, self._s = self._s, []
                return out

        return Stub(samples)

    def test_coherent_ratio_from_counter_deltas(self):
        profiler = SystemProfiler(CobraConfig())
        monitor = self._monitor_stub(
            [
                _sample(thread=0, counters=(100, 10, 10, 10), index=0),
                _sample(thread=0, counters=(200, 20, 30, 30), index=1),
            ]
        )
        assert profiler.ingest([monitor]) == 2
        # deltas: bus=100, coherent=(10+20+20)=50
        assert abs(profiler.coherent_ratio() - 0.5) < 1e-9

    def test_per_thread_counter_bases(self):
        profiler = SystemProfiler(CobraConfig())
        monitor = self._monitor_stub(
            [
                _sample(thread=0, counters=(100, 0, 0, 0), index=0),
                _sample(thread=1, counters=(500, 0, 0, 0), index=0),
                _sample(thread=0, counters=(150, 25, 0, 0), index=1),
            ]
        )
        profiler.ingest([monitor])
        assert abs(profiler.coherent_ratio() - 0.5) < 1e-9  # only thread-0 delta

    def test_backward_branches_sorted(self):
        profiler = SystemProfiler(CobraConfig())
        monitor = self._monitor_stub(
            [
                _sample(btb=[(0x200, 0x100), (0x300, 0x400)], index=0),
                _sample(btb=[(0x200, 0x100)], index=1),
            ]
        )
        profiler.ingest([monitor])
        loops = profiler.backward_branches()
        assert loops[0] == ((0x200, 0x100), 2)
        assert all(t <= b for (b, t), _ in loops)

    def test_new_window_decays_everything(self):
        profiler = SystemProfiler(CobraConfig())
        monitor = self._monitor_stub([_sample(btb=[(0x200, 0x100)])])
        profiler.ingest([monitor])
        profiler.new_window(0.0)
        assert profiler.backward_branches() == []
