"""Profiler determinism and restore validation (profile-DB satellites).

``backward_branches()`` feeds loop selection, which feeds deployments,
which feed the cross-run profile database — so its order must be a pure
function of the aggregate counts, never of sample arrival order.  And
``restore_state()`` is the single door through which persisted profiles
(checkpoints *and* database entries) re-enter a live optimizer, so it
must be validate-then-commit: a structurally damaged profile raises
:class:`~repro.errors.ProfileStateError` and leaves the profiler
exactly as it was.
"""

from __future__ import annotations

import copy

import pytest

from repro.config import CobraConfig
from repro.core.profiler import SystemProfiler
from repro.errors import PersistError, ProfileStateError


def _profiler() -> SystemProfiler:
    return SystemProfiler(CobraConfig())


class TestBackwardBranchOrder:
    def test_ties_break_on_pair_not_insertion_order(self):
        a = _profiler()
        a.btb_pairs = {(0x200, 0x100): 5, (0x180, 0x80): 5, (0x300, 0x2F0): 5}
        b = _profiler()
        b.btb_pairs = {(0x300, 0x2F0): 5, (0x180, 0x80): 5, (0x200, 0x100): 5}
        want = [
            ((0x180, 0x80), 5),
            ((0x200, 0x100), 5),
            ((0x300, 0x2F0), 5),
        ]
        assert a.backward_branches() == want
        assert b.backward_branches() == want

    def test_frequency_still_dominates(self):
        p = _profiler()
        p.btb_pairs = {(0x100, 0x80): 2, (0x400, 0x300): 9, (0x200, 0x100): 2}
        assert p.backward_branches() == [
            ((0x400, 0x300), 9),
            ((0x100, 0x80), 2),
            ((0x200, 0x100), 2),
        ]

    def test_forward_branches_excluded(self):
        p = _profiler()
        p.btb_pairs = {(0x100, 0x200): 9, (0x200, 0x100): 1}
        assert p.backward_branches() == [((0x200, 0x100), 1)]


def _valid_state() -> dict:
    return {
        "misses": {
            "by_pc": {
                "4096": {
                    "samples": 4,
                    "coherent": 2,
                    "total_latency": 800,
                    "lines": [1, 2],
                    "threads": [0],
                }
            },
            "total_events": 4,
            "total_coherent": 2,
        },
        "btb": [[4160, 4096, 7]],
        "samples_seen": 4,
        "quarantined": {},
        "quarantined_total": 0,
        "bus_delta": 10,
        "coherent_delta": 3,
    }


def _snapshot(p: SystemProfiler) -> tuple:
    return (
        copy.deepcopy(p.misses.by_pc),
        p.misses.total_events,
        p.misses.total_coherent,
        dict(p.btb_pairs),
        p.samples_seen,
        dict(p.quarantined),
        p.quarantined_total,
        p._bus_delta,
        p._coherent_delta,
    )


class TestRestoreState:
    def test_round_trip_through_export(self):
        p = _profiler()
        p.restore_state(_valid_state())
        assert p.samples_seen == 4
        assert p.btb_pairs == {(4160, 4096): 7}
        assert p.misses.by_pc[4096].coherent == 2
        q = _profiler()
        q.restore_state(p.export_state())
        assert q.export_state() == p.export_state()

    def test_error_is_a_persist_error(self):
        assert issubclass(ProfileStateError, PersistError)

    @pytest.mark.parametrize(
        "mutate,path_fragment",
        [
            (lambda s: s.pop("misses"), "misses"),
            (lambda s: s["misses"].pop("by_pc"), "by_pc"),
            (lambda s: s.pop("btb"), "btb"),
            (lambda s: s.pop("samples_seen"), "samples_seen"),
            (lambda s: s.pop("bus_delta"), "bus_delta"),
            (
                lambda s: s["misses"]["by_pc"].update({"not-a-pc": s["misses"]["by_pc"]["4096"]}),
                "not-a-pc",
            ),
            (
                lambda s: s["misses"]["by_pc"]["4096"].pop("samples"),
                "samples",
            ),
            (
                lambda s: s["misses"]["by_pc"]["4096"].update(samples="4"),
                "samples",
            ),
            (
                lambda s: s["misses"]["by_pc"]["4096"].update(samples=True),
                "samples",
            ),
            (
                lambda s: s["misses"]["by_pc"]["4096"].update(lines="12"),
                "lines",
            ),
            (lambda s: s.update(btb=[[1, 2]]), "btb"),
            (lambda s: s.update(btb=[[1, 2, "3"]]), "btb"),
            (lambda s: s.update(samples_seen=1.5), "samples_seen"),
            (lambda s: s.update(quarantined=[]), "quarantined"),
        ],
    )
    def test_structural_damage_raises_with_path(self, mutate, path_fragment):
        state = _valid_state()
        mutate(state)
        with pytest.raises(ProfileStateError) as err:
            _profiler().restore_state(state)
        assert path_fragment in str(err.value)

    def test_non_dict_state_raises(self):
        with pytest.raises(ProfileStateError):
            _profiler().restore_state([1, 2, 3])

    def test_failed_restore_leaves_profiler_untouched(self):
        p = _profiler()
        p.restore_state(_valid_state())
        before = _snapshot(p)
        bad = _valid_state()
        bad["misses"]["by_pc"]["4096"]["coherent"] = "2"  # mistyped deep field
        with pytest.raises(ProfileStateError):
            p.restore_state(bad)
        assert _snapshot(p) == before

    def test_float_deltas_accepted(self):
        # new_window() decays the deltas by a float factor, so an
        # exported mid-run profile legitimately carries floats here
        state = _valid_state()
        state["bus_delta"] = 2.5
        state["coherent_delta"] = 1.25
        p = _profiler()
        p.restore_state(state)
        assert p.coherent_ratio() == 0.5
