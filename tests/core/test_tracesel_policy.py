"""Trace selection (BTB loop discovery) and the optimization policy."""

import numpy as np
import pytest

from repro.compiler import StreamLoop, Term
from repro.config import CobraConfig, itanium2_smp
from repro.core.filters import MissStats
from repro.core.policy import decide
from repro.core.profiler import SystemProfiler
from repro.core.tracesel import LoopTrace, select_loop_traces
from repro.cpu import Machine
from repro.hpm.sample import Sample
from repro.isa import Op
from repro.runtime import ParallelProgram


def _program(machine):
    prog = ParallelProgram(machine, "ts")
    prog.array("x", 256, np.arange(256.0))
    prog.array("y", 256, 1.0)
    fn = prog.kernel(StreamLoop("k", dest="y", terms=(Term("y", 1.0, 0), Term("x", 2.0, 0))))
    prog.parallel_for(fn, 256, 1)
    prog.build(outer_reps=2)
    return prog, fn


def _feed(profiler, btb_pairs, misses=(), n=10):
    class Stub:
        def __init__(self):
            self.done = False

        def drain(self):
            if self.done:
                return []
            self.done = True
            out = []
            for i in range(n):
                miss = misses[i % len(misses)] if misses else (None, None, None)
                out.append(
                    Sample(
                        index=i, pc=0, pid=0, thread_id=0, cpu_id=0,
                        counters=(0, 0, 0, 0), btb=tuple(btb_pairs),
                        miss_pc=miss[0], miss_latency=miss[1], miss_addr=miss[2],
                        cycles=0,
                    )
                )
            return out

    profiler.ingest([Stub()])


class TestSelection:
    def test_discovers_loop_and_lfetch_sites(self, smp2):
        prog, fn = _program(smp2)
        head = prog.image.labels[".k_loop"]
        back = prog.image.find_ops(Op.BR_CTOP, fn.region)[0]
        profiler = SystemProfiler(CobraConfig())
        _feed(profiler, [(back[0] + back[1], head)])
        traces = select_loop_traces(profiler, prog.image)
        assert len(traces) == 1
        trace = traces[0]
        assert trace.head == head
        assert trace.lfetch_sites, "the loop's lfetch must be found by scanning"

    def test_call_pairs_excluded(self, smp2):
        prog, fn = _program(smp2)
        # the driver's br.call to the kernel looks like a backward branch
        call_site = prog.image.find_ops(Op.BR_CALL, None)[0]
        profiler = SystemProfiler(CobraConfig())
        _feed(profiler, [(call_site[0] + call_site[1], fn.entry)])
        assert select_loop_traces(profiler, prog.image) == []

    def test_gather_style_miss_pcs_excluded(self, smp2):
        """Misses at non-post-increment loads must not qualify a loop."""
        prog, fn = _program(smp2)
        head = prog.image.labels[".k_loop"]
        back = prog.image.find_ops(Op.BR_CTOP, fn.region)[0]
        back_pc = back[0] + back[1]
        # fabricate a non-streaming load inside the loop: find the ldfd
        # (post-inc) -> that one QUALIFIES; the br slot (non-load) is skipped
        ld_site = next(
            (a, s)
            for a, s in prog.image.find_ops(Op.LDFD, (head, back[0] + 16))
        )
        profiler = SystemProfiler(CobraConfig())
        _feed(
            profiler,
            [(back_pc, head)],
            misses=[(ld_site[0] + ld_site[1], 200, 0x8000_0000)],
        )
        traces = select_loop_traces(profiler, prog.image)
        assert traces and traces[0].sample_count() > 0  # streaming load counts

    def test_miss_attributed_to_innermost_then_expanded(self, smp2):
        prog, fn = _program(smp2)
        profiler = SystemProfiler(CobraConfig())
        head = prog.image.labels[".k_loop"]
        back = prog.image.find_ops(Op.BR_CTOP, fn.region)[0]
        back_pc = back[0] + back[1]
        ld = prog.image.find_ops(Op.LDFD, (head, back[0] + 16))[0]
        # an "outer" candidate enclosing the same loop (e.g. driver rep loop
        # would be excluded; simulate an enclosing counted loop candidate)
        _feed(
            profiler,
            [(back_pc, head)],
            misses=[(ld[0] + ld[1], 200, 0x8000_0000)],
        )
        traces = select_loop_traces(profiler, prog.image)
        assert traces[0].coherent_count() > 0


class TestPolicy:
    def _trace(self, lfetch=1, samples=10, coherent=8):
        trace = LoopTrace(head=0x1000, back_branch=0x1022, hotness=5)
        trace.lfetch_sites = [(0x1000, 0)] * lfetch
        if samples:
            trace.misses = [
                MissStats(
                    pc=0x1001, samples=samples, coherent=coherent,
                    total_latency=samples * 150,
                )
            ]
        return trace

    def test_fixed_strategies(self):
        cfg = CobraConfig()
        assert decide(self._trace(), "noprefetch", cfg, 0.5).optimization == "noprefetch"
        assert decide(self._trace(), "excl", cfg, 0.5).optimization == "excl"

    def test_adaptive_splits_on_coherent_share(self):
        cfg = CobraConfig()
        noisy = decide(self._trace(coherent=9), "adaptive", cfg, 0.5)
        assert noisy.optimization == "noprefetch"
        mixed = decide(self._trace(coherent=2), "adaptive", cfg, 0.5)
        assert mixed.optimization == "excl"

    def test_gates(self):
        cfg = CobraConfig()
        assert decide(self._trace(lfetch=0), "noprefetch", cfg, 0.5).optimization is None
        assert decide(self._trace(), "noprefetch", cfg, 0.01).optimization is None
        assert decide(self._trace(samples=1), "noprefetch", cfg, 0.5).optimization is None
        assert decide(self._trace(coherent=0), "noprefetch", cfg, 0.5).optimization is None

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            decide(self._trace(), "yolo", CobraConfig(), 0.5)
