"""Multi-version loop dispatch in the trace cache.

A rolled-back trace stays resident; redeploying the same optimization
reuses the copy (no new bundles, no rebuild) as long as the program
range still matches the source it was built from.  Every live-version
transition after the initial deployment counts as a flip — including
the rollback to the untouched original — and the whole history is
exposed through ``version_report()``.
"""

from __future__ import annotations

import numpy as np

from repro.compiler import StreamLoop, Term
from repro.core.filters import MissStats
from repro.core.opts import make_excl_rewrite, make_noprefetch_rewrite
from repro.core.tracecache import UNTOUCHED, TraceCache
from repro.core.tracesel import LoopTrace
from repro.isa import Op
from repro.runtime import ParallelProgram


def _program(machine, n=256):
    prog = ParallelProgram(machine, "mv")
    prog.array("x", n, np.arange(n, dtype=float))
    prog.array("y", n, 1.0)
    fn = prog.kernel(
        StreamLoop("k", dest="y", terms=(Term("y", 1.0, 0), Term("x", 2.0, 0)))
    )
    prog.parallel_for(fn, n, 1)
    prog.build(outer_reps=3)
    return prog, fn


def _loop_of(prog, fn):
    image = prog.image
    head = image.labels[".k_loop"]
    back = None
    for addr, slot in image.find_ops(Op.BR_CTOP, fn.region):
        back = addr + slot
    trace = LoopTrace(head=head, back_branch=back, hotness=10)
    trace.lfetch_sites = image.find_ops(Op.LFETCH, (head, addr))
    trace.misses = [MissStats(pc=head, samples=10, coherent=10, total_latency=2000)]
    return trace


class TestResidentReuse:
    def test_redeploy_reuses_resident_copy(self, smp2):
        prog, fn = _program(smp2)
        cache = TraceCache()
        loop = _loop_of(prog, fn)
        d1 = cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "noprefetch")
        used_after_first = cache.used_bundles
        cache.rollback(prog.image, d1)
        d2 = cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "noprefetch")
        # same copy, same entry, zero new bundles
        assert d2.entry == d1.entry
        assert cache.used_bundles == used_after_first
        vs = cache.version_sets[loop.head]
        assert vs.reuses == 1
        # noprefetch -> untouched (rollback) -> noprefetch (redeploy)
        assert vs.flips == 2
        assert vs.active == "noprefetch"

    def test_two_versions_stay_resident(self, smp2):
        prog, fn = _program(smp2)
        cache = TraceCache()
        loop = _loop_of(prog, fn)
        d1 = cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "noprefetch")
        cache.rollback(prog.image, d1)
        cache.deploy(prog.image, loop, make_excl_rewrite(), "excl")
        vs = cache.version_sets[loop.head]
        assert sorted(vs.versions) == ["excl", "noprefetch"]
        assert vs.active == "excl"
        assert cache.active_optimization(loop.head) == "excl"

    def test_version_report_shape(self, smp2):
        prog, fn = _program(smp2)
        cache = TraceCache()
        loop = _loop_of(prog, fn)
        d1 = cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "noprefetch")
        cache.rollback(prog.image, d1)
        cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "noprefetch")
        assert cache.version_report() == [
            {
                "head": loop.head,
                "versions": ["noprefetch"],
                "active": "noprefetch",
                "flips": 2,
                "reuses": 1,
            }
        ]

    def test_rollback_flips_to_untouched(self, smp2):
        prog, fn = _program(smp2)
        cache = TraceCache()
        loop = _loop_of(prog, fn)
        d1 = cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "noprefetch")
        vs = cache.version_sets[loop.head]
        assert vs.flips == 0  # initial deployment is not a flip
        cache.rollback(prog.image, d1)
        assert vs.active == UNTOUCHED
        assert vs.flips == 1
        # idempotent rollback does not double-count
        cache.rollback(prog.image, d1)
        assert vs.flips == 1

    def test_stale_resident_is_rebuilt_not_reused(self, smp2):
        prog, fn = _program(smp2)
        cache = TraceCache()
        loop = _loop_of(prog, fn)
        d1 = cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "noprefetch")
        cache.rollback(prog.image, d1)
        vs = cache.version_sets[loop.head]
        # simulate the program range drifting from the stored source
        vs.versions["noprefetch"].source = ()
        used_before = cache.used_bundles
        d2 = cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "noprefetch")
        assert cache.used_bundles > used_before  # fresh build, not reuse
        assert vs.reuses == 0
        assert d2.entry != d1.entry
        assert any("stale" in line for line in cache.recovery_log)

    def test_semantics_preserved_across_reuse(self, smp2):
        prog, fn = _program(smp2)
        cache = TraceCache()
        smp2.load_image(cache.image)
        loop = _loop_of(prog, fn)
        d1 = cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "noprefetch")
        cache.rollback(prog.image, d1)
        cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "noprefetch")
        prog.run(max_bundles=5_000_000)
        assert np.allclose(prog.f64("y")[:256], 1.0 + 6.0 * np.arange(256))
