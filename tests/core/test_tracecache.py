"""Trace cache: copy semantics, redirection, rollback, capacity."""

import numpy as np
import pytest

from repro.compiler import StreamLoop, Term
from repro.config import itanium2_smp
from repro.core.filters import MissStats
from repro.core.opts import make_excl_rewrite, make_noprefetch_rewrite
from repro.core.tracecache import TraceCache
from repro.core.tracesel import LoopTrace
from repro.cpu import Machine
from repro.errors import TraceCacheError
from repro.isa import Op
from repro.runtime import ParallelProgram


def _program(machine, n=256):
    prog = ParallelProgram(machine, "tc")
    prog.array("x", n, np.arange(n, dtype=float))
    prog.array("y", n, 1.0)
    fn = prog.kernel(StreamLoop("k", dest="y", terms=(Term("y", 1.0, 0), Term("x", 2.0, 0))))
    prog.parallel_for(fn, n, 1)
    prog.build(outer_reps=3)
    return prog, fn


def _loop_of(prog, fn):
    image = prog.image
    head = image.labels[".k_loop"]
    # find the loop-closing br.ctop
    back = None
    for addr, slot in image.find_ops(Op.BR_CTOP, fn.region):
        back = addr + slot
    trace = LoopTrace(head=head, back_branch=back, hotness=10)
    trace.lfetch_sites = image.find_ops(Op.LFETCH, (head, addr))
    trace.misses = [MissStats(pc=head, samples=10, coherent=10, total_latency=2000)]
    return trace


class TestDeployment:
    def test_semantics_preserved_under_noprefetch(self, smp2):
        prog, fn = _program(smp2)
        cache = TraceCache()
        smp2.load_image(cache.image)
        deployment = cache.deploy(
            prog.image, _loop_of(prog, fn), make_noprefetch_rewrite(), "noprefetch"
        )
        assert deployment.n_rewrites >= 1
        prog.run(max_bundles=5_000_000)
        assert np.allclose(prog.f64("y")[:256], 1.0 + 6.0 * np.arange(256))

    def test_semantics_preserved_under_excl(self, smp2):
        prog, fn = _program(smp2)
        cache = TraceCache()
        smp2.load_image(cache.image)
        cache.deploy(prog.image, _loop_of(prog, fn), make_excl_rewrite(), "excl")
        prog.run(max_bundles=5_000_000)
        assert np.allclose(prog.f64("y")[:256], 1.0 + 6.0 * np.arange(256))

    def test_redirect_bundle_and_internal_branch_remap(self, smp2):
        prog, fn = _program(smp2)
        cache = TraceCache()
        loop = _loop_of(prog, fn)
        deployment = cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "np")
        # loop head now branches to the trace entry
        head_bundle = prog.image.fetch_bundle(loop.head)
        assert head_bundle.slots[2].op is Op.BR
        assert head_bundle.slots[2].imm == deployment.entry
        # the trace's back branch targets the trace-local head
        trace_back = cache.image.fetch_bundle(
            deployment.entry + (loop.end_bundle - loop.head)
        )
        assert trace_back.slots[2].imm == deployment.entry
        # the exit branch returns to the bundle after the original loop
        exit_bundle = cache.image.fetch_bundle(
            deployment.entry + (loop.n_bundles) * 16
        )
        assert exit_bundle.slots[2].imm == loop.end_bundle + 16

    def test_rewrites_replace_lfetch_with_nop(self, smp2):
        prog, fn = _program(smp2)
        cache = TraceCache()
        loop = _loop_of(prog, fn)
        deployment = cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "np")
        trace_lfetch = cache.image.count_ops(
            Op.LFETCH, (deployment.entry, deployment.entry + loop.n_bundles * 16)
        )
        assert trace_lfetch == 0
        # bundle shape preserved: same slot count, unit-compatible nop
        assert deployment.n_rewrites == len(loop.lfetch_sites)

    def test_rollback_restores_original(self, smp2):
        prog, fn = _program(smp2)
        cache = TraceCache()
        loop = _loop_of(prog, fn)
        original = prog.image.fetch_bundle(loop.head)
        deployment = cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "np")
        assert cache.rollback(prog.image, deployment) is True
        assert prog.image.fetch_bundle(loop.head) == original
        assert not deployment.active
        # idempotent: a second rollback is a recorded no-op, not an error
        assert cache.rollback(prog.image, deployment) is False
        assert prog.image.fetch_bundle(loop.head) == original
        assert any("rollback-noop" in line for line in cache.recovery_log)
        # correctness after rollback
        prog.run(max_bundles=5_000_000)
        assert np.allclose(prog.f64("y")[:256], 1.0 + 6.0 * np.arange(256))

    def test_overlap_rejected(self, smp2):
        prog, fn = _program(smp2)
        cache = TraceCache()
        loop = _loop_of(prog, fn)
        cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "np")
        with pytest.raises(TraceCacheError):
            cache.deploy(prog.image, loop, make_excl_rewrite(), "excl")
        assert cache.is_deployed(loop.head)
        assert cache.overlaps_active(loop.head, loop.end_bundle)

    def test_capacity_enforced(self, smp2):
        prog, fn = _program(smp2)
        cache = TraceCache(capacity_bundles=1)
        with pytest.raises(TraceCacheError):
            cache.deploy(prog.image, _loop_of(prog, fn), make_noprefetch_rewrite(), "np")

    def test_redeploy_after_rollback_allowed(self, smp2):
        prog, fn = _program(smp2)
        cache = TraceCache()
        loop = _loop_of(prog, fn)
        d1 = cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "np")
        cache.rollback(prog.image, d1)
        d2 = cache.deploy(prog.image, loop, make_excl_rewrite(), "excl")
        assert d2.active
