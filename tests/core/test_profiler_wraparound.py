"""PMU counter wraparound and window-decay behaviour of SystemProfiler."""

from repro.config import CobraConfig
from repro.core.profiler import SystemProfiler
from repro.hpm.counters import COUNTER_MASK, COUNTER_WIDTH
from repro.hpm.sample import Sample


def _sample(thread=0, counters=(0, 0, 0, 0), index=0):
    return Sample(
        index=index,
        pc=0x100,
        pid=0,
        thread_id=thread,
        cpu_id=thread,
        counters=counters,
        btb=(),
        miss_pc=None,
        miss_latency=None,
        miss_addr=None,
        cycles=0,
    )


def _ingest(profiler, snapshots, thread=0, start=0):
    for i, counters in enumerate(snapshots, start=start):
        profiler._ingest_sample(_sample(thread=thread, counters=counters, index=i))


class TestCounterWraparound:
    def test_width_is_positive_and_mask_matches(self):
        assert COUNTER_WIDTH > 0
        assert COUNTER_MASK == (1 << COUNTER_WIDTH) - 1

    def test_wrapped_stream_matches_unwrapped(self):
        """A stream whose counters cross the wrap point must yield the
        same ratio as the same deltas without a wrap."""
        near = COUNTER_MASK - 40
        wrapped = SystemProfiler(CobraConfig())
        _ingest(wrapped, [
            (near, near, near, near),
            ((near + 100) & COUNTER_MASK,
             (near + 50) & COUNTER_MASK,
             (near + 60) & COUNTER_MASK,
             (near + 70) & COUNTER_MASK),
        ])
        plain = SystemProfiler(CobraConfig())
        _ingest(plain, [(0, 0, 0, 0), (100, 50, 60, 70)])
        assert wrapped._bus_delta == plain._bus_delta == 100
        assert wrapped._coherent_delta == plain._coherent_delta == 180
        assert wrapped.coherent_ratio() == plain.coherent_ratio()

    def test_one_wrapped_counter_keeps_the_other_deltas(self):
        """The old guard dropped the whole sample when any counter read
        below its predecessor; a wrap in one counter must not discard
        the other three deltas."""
        near = COUNTER_MASK - 3
        profiler = SystemProfiler(CobraConfig())
        _ingest(profiler, [
            (0, near, 0, 0),
            (200, (near + 10) & COUNTER_MASK, 4, 6),
        ])
        assert profiler._bus_delta == 200
        assert profiler._coherent_delta == 10 + 4 + 6
        assert profiler.coherent_ratio() == 20 / 200

    def test_per_thread_last_snapshots(self):
        profiler = SystemProfiler(CobraConfig())
        _ingest(profiler, [(0, 0, 0, 0), (10, 1, 0, 0)], thread=0)
        _ingest(profiler, [(5, 0, 0, 0), (25, 0, 2, 0)], thread=1)
        assert profiler._bus_delta == 10 + 20
        assert profiler._coherent_delta == 1 + 2


class TestWindowDecay:
    def test_decay_preserves_ratio(self):
        """Aging both totals by the same factor must not move the ratio
        (the old int() truncation rounded them differently)."""
        profiler = SystemProfiler(CobraConfig())
        _ingest(profiler, [(0, 0, 0, 0), (7, 1, 1, 1)])
        before = profiler.coherent_ratio()
        assert before == 3 / 7
        profiler.new_window()
        assert abs(profiler.coherent_ratio() - before) < 1e-12
        profiler.new_window(decay=0.3)
        assert abs(profiler.coherent_ratio() - before) < 1e-12

    def test_decay_ages_totals(self):
        profiler = SystemProfiler(CobraConfig())
        _ingest(profiler, [(0, 0, 0, 0), (100, 10, 0, 0)])
        profiler.new_window()
        assert profiler._bus_delta == 50
        assert profiler._coherent_delta == 5

    def test_old_residue_is_dominated_by_new_deltas(self):
        """After many windows the phase-1 residue must be negligible, so
        the ratio reflects current behaviour."""
        profiler = SystemProfiler(CobraConfig())
        _ingest(profiler, [(0, 0, 0, 0), (1000, 300, 0, 0)])  # ratio 0.3 phase
        for _ in range(12):
            profiler.new_window()
        _ingest(profiler, [(1000, 300, 0, 0), (2000, 320, 0, 0)], start=2)  # ratio 0.02
        assert abs(profiler.coherent_ratio() - 0.02) < 0.005
