"""Golden tests for ``CobraReport.summary()``.

The summary is the operator-facing surface of the whole runtime: CI
logs, chaos sweeps, and the README all quote it.  These tests pin the
exact rendering of every optional line so a wording drift is a
conscious decision, not an accident.
"""

from __future__ import annotations

from repro.core.framework import CobraReport
from repro.core.optimizer import OptEvent
from repro.faults.injector import FaultEvent, FaultLedger
from repro.persist import PersistStats


def _ledger(**kw):
    base = dict(seed=7, injected=3, detected=2, tolerated=1,
                by_kind={"drop_sample": 1, "torn_patch": 2}, events=())
    base.update(kw)
    return FaultLedger(**base)


class TestSummaryGolden:
    def test_minimal(self):
        report = CobraReport(strategy="adaptive", samples=12,
                             deployments=[], events=[])
        assert report.summary() == (
            "COBRA strategy=adaptive: 12 samples, 0 active deployment(s)"
        )

    def test_rollbacks_line(self):
        events = [
            OptEvent(retired=100, kind="deploy", loop_head=0x40,
                     optimization="noprefetch", reason="hot"),
            OptEvent(retired=200, kind="rollback", loop_head=0x40,
                     optimization="noprefetch", reason="regressed"),
        ]
        report = CobraReport(strategy="adaptive", samples=5,
                             deployments=[], events=events)
        assert report.summary() == (
            "COBRA strategy=adaptive: 5 samples, 0 active deployment(s)\n"
            "  1 rollback(s)"
        )

    def test_degraded_mode_line(self):
        report = CobraReport(strategy="excl", samples=3, deployments=[],
                             events=[], mode="monitor-only")
        assert report.summary() == (
            "COBRA strategy=excl: 3 samples, 0 active deployment(s)\n"
            "  degraded mode: monitor-only"
        )

    def test_quarantine_line_sorts_reasons(self):
        report = CobraReport(
            strategy="adaptive", samples=9, deployments=[], events=[],
            quarantined={"stale-index": 2, "counter-range": 1},
        )
        assert report.summary() == (
            "COBRA strategy=adaptive: 9 samples, 0 active deployment(s)\n"
            "  quarantined 3 sample(s): counter-range=1, stale-index=2"
        )

    def test_recovery_log_and_reclaimed_lines(self):
        report = CobraReport(
            strategy="adaptive", samples=4, deployments=[], events=[],
            recovery_log=["torn: redirect at 0x40 reverted from journal",
                          "rollback-noop: loop 0x40 already inactive"],
            reclaimed_bundles=6,
        )
        assert report.summary() == (
            "COBRA strategy=adaptive: 4 samples, 0 active deployment(s)\n"
            "  2 transactional recovery event(s)\n"
            "  reclaimed 6 trace-cache bundle(s)"
        )

    def test_validate_line(self):
        report = CobraReport(strategy="adaptive", samples=2, deployments=[],
                             events=[], validate_checks=128, violations=[])
        assert report.summary() == (
            "COBRA strategy=adaptive: 2 samples, 0 active deployment(s)\n"
            "  validated 128 accesses, 0 invariant violation(s)"
        )

    def test_persistence_line_cold_run(self):
        stats = PersistStats(records_written=14, records_replayed=0,
                             records_discarded=0, snapshots_written=3,
                             snapshots_discarded=0, tmp_cleaned=0,
                             journal_repaired_bytes=0, resumed=False)
        report = CobraReport(strategy="noprefetch", samples=143,
                             deployments=[], events=[], persist=stats)
        assert report.summary() == (
            "COBRA strategy=noprefetch: 143 samples, 0 active deployment(s)\n"
            "  persistence: 14 record(s) written, 3 snapshot(s), "
            "0 discarded-corrupt"
        )

    def test_persistence_lines_warm_restart(self):
        stats = PersistStats(records_written=5, records_replayed=6,
                             records_discarded=1, snapshots_written=2,
                             snapshots_discarded=1, tmp_cleaned=0,
                             journal_repaired_bytes=33, resumed=True)
        report = CobraReport(strategy="noprefetch", samples=287,
                             deployments=[], events=[], persist=stats,
                             resumed=True)
        assert report.summary() == (
            "COBRA strategy=noprefetch: 287 samples, 0 active deployment(s)\n"
            "  warm restart: resumed from checkpoint (6 record(s) replayed)\n"
            "  persistence: 5 record(s) written, 2 snapshot(s), "
            "2 discarded-corrupt"
        )

    def test_fault_ledger_line(self):
        report = CobraReport(strategy="adaptive", samples=7, deployments=[],
                             events=[], faults=_ledger())
        assert report.summary() == (
            "COBRA strategy=adaptive: 7 samples, 0 active deployment(s)\n"
            "  faults[seed=7]: 3 injected = 2 detected + 1 tolerated "
            "(drop_sample=1, torn_patch=2)"
        )

    def test_fault_ledger_flags_unaccounted(self):
        ledger = _ledger(injected=4, events=(
            FaultEvent(0, "stale_image", "patch", "injected"),
        ))
        report = CobraReport(strategy="adaptive", samples=7, deployments=[],
                             events=[], faults=ledger)
        assert "(1 UNACCOUNTED)" in report.summary()

    def test_version_lines(self):
        versions = [
            {"head": 0x40, "versions": ["excl", "noprefetch"],
             "active": "noprefetch", "flips": 3, "reuses": 2},
            {"head": 0x80, "versions": [], "active": "untouched",
             "flips": 1, "reuses": 0},
        ]
        report = CobraReport(strategy="adaptive", samples=9, deployments=[],
                             events=[], versions=versions)
        assert report.summary() == (
            "COBRA strategy=adaptive: 9 samples, 0 active deployment(s)\n"
            "  loop 0x40 versions [excl, noprefetch] active=noprefetch "
            "3 flip(s)\n"
            "  loop 0x80 versions [-] active=untouched 1 flip(s)"
        )

    def test_profile_db_line_warm_hit(self):
        db = {"key": "k", "source": "hit", "entries": 2, "seeded_loops": 1,
              "runs_recorded": 1, "saved": True}
        report = CobraReport(strategy="adaptive", samples=6, deployments=[],
                             events=[], profile_db=db, ramp_retired=0)
        assert report.summary() == (
            "COBRA strategy=adaptive: 6 samples, 0 active deployment(s)\n"
            "  profile-db: hit, 2 entries, seeded 1 loop(s), warm at 0 retired"
        )

    def test_profile_db_line_never_warm(self):
        db = {"key": "k", "source": "corrupt", "entries": 0,
              "seeded_loops": 0, "runs_recorded": 1, "saved": True}
        report = CobraReport(strategy="excl", samples=1, deployments=[],
                             events=[], profile_db=db, ramp_retired=None)
        assert report.summary() == (
            "COBRA strategy=excl: 1 samples, 0 active deployment(s)\n"
            "  profile-db: corrupt, 0 entries, seeded 0 loop(s), warm at n/a"
        )

    def test_fleet_line(self):
        fleet = {"instance": "i03", "instances": 8, "quorum": 2,
                 "published": 1, "seeded": 1, "batches": 4,
                 "quarantined": 0, "degraded": False}
        report = CobraReport(strategy="adaptive", samples=6, deployments=[],
                             events=[], fleet=fleet)
        assert report.summary() == (
            "COBRA strategy=adaptive: 6 samples, 0 active deployment(s)\n"
            "  fleet[i03]: 8 instance(s), quorum=2, 1 published decision(s), "
            "seeded 1 decision(s), 4 batch(es) queued, "
            "0 quarantined stream(s)"
        )

    def test_fleet_degraded_line(self):
        fleet = {"instance": "i05", "instances": 8, "quorum": 2,
                 "published": 0, "seeded": 0, "batches": 4,
                 "quarantined": 0, "degraded": True,
                 "degraded_interval": (0, 147_456)}
        report = CobraReport(strategy="adaptive", samples=6, deployments=[],
                             events=[], fleet=fleet)
        assert report.summary().splitlines()[2] == (
            "  fleet[i05]: degraded local-only [0, 147456] retired "
            "(daemon unreachable; reconciled at rejoin)"
        )

    def test_fleet_transport_faults_line_sorts_kinds(self):
        fleet = {"instance": "i00", "instances": 2, "quorum": 1,
                 "published": 0, "seeded": 0, "batches": 3,
                 "quarantined": 0, "degraded": False,
                 "faults": {"drop_frame": 2, "corrupt_frame": 1}}
        report = CobraReport(strategy="adaptive", samples=6, deployments=[],
                             events=[], fleet=fleet)
        assert report.summary().splitlines()[2] == (
            "  fleet[i00]: transport faults: corrupt_frame=1, drop_frame=2"
        )

    def test_governor_line(self):
        gov = {"rung": "monitor-only", "trace_budget": 96,
               "deploys_refused": 2, "evictions": 3, "evicted_bundles": 9,
               "shed_samples": 40, "shed_batches": 0, "db_compacted": 0,
               "wakes": 12, "last_pressure_wake": 9, "injected": 5,
               "transitions": [
                   {"wake": 4, "from": "full", "to": "no-new-compiles",
                    "pressure": 1.0, "streak": 0},
                   {"wake": 7, "from": "no-new-compiles", "to": "monitor-only",
                    "pressure": 0.9, "streak": 0},
               ]}
        report = CobraReport(strategy="adaptive", samples=15, deployments=[],
                             events=[], governor=gov)
        assert report.summary() == (
            "COBRA strategy=adaptive: 15 samples, 0 active deployment(s)\n"
            "  governor[monitor-only]: 2 deploy(s) refused, 3 eviction(s), "
            "40 shed sample(s), 2 transition(s)"
        )

    def test_governor_line_quiet_run(self):
        gov = {"rung": "full", "trace_budget": 512, "deploys_refused": 0,
               "evictions": 0, "evicted_bundles": 0, "shed_samples": 0,
               "shed_batches": 0, "db_compacted": 0, "wakes": 3,
               "last_pressure_wake": -1, "injected": 0, "transitions": []}
        report = CobraReport(strategy="adaptive", samples=15, deployments=[],
                             events=[], governor=gov)
        assert report.summary().splitlines()[1] == (
            "  governor[full]: 0 deploy(s) refused, 0 eviction(s), "
            "0 shed sample(s), 0 transition(s)"
        )

    def test_everything_at_once_orders_lines(self):
        stats = PersistStats(records_written=2, records_replayed=3,
                             records_discarded=0, snapshots_written=1,
                             snapshots_discarded=0, tmp_cleaned=1,
                             journal_repaired_bytes=0, resumed=True)
        fleet = {"instance": "i01", "instances": 4, "quorum": 2,
                 "published": 1, "seeded": 1, "batches": 2,
                 "quarantined": 0, "degraded": False,
                 "faults": {"dup_frame": 1}}
        gov = {"rung": "no-new-compiles", "trace_budget": 128,
               "deploys_refused": 1, "evictions": 1, "evicted_bundles": 4,
               "shed_samples": 8, "shed_batches": 1, "db_compacted": 0,
               "wakes": 9, "last_pressure_wake": 8, "injected": 2,
               "transitions": [
                   {"wake": 8, "from": "full", "to": "no-new-compiles",
                    "pressure": 1.0, "streak": 0},
               ]}
        report = CobraReport(
            strategy="adaptive", samples=50, deployments=[], events=[],
            mode="monitor-only", quarantined={"time-travel": 1},
            recovery_log=["x"], reclaimed_bundles=2, persist=stats,
            resumed=True, faults=_ledger(), fleet=fleet, governor=gov,
        )
        assert report.summary().splitlines() == [
            "COBRA strategy=adaptive: 50 samples, 0 active deployment(s)",
            "  degraded mode: monitor-only",
            "  quarantined 1 sample(s): time-travel=1",
            "  1 transactional recovery event(s)",
            "  reclaimed 2 trace-cache bundle(s)",
            "  warm restart: resumed from checkpoint (3 record(s) replayed)",
            "  persistence: 2 record(s) written, 1 snapshot(s), "
            "0 discarded-corrupt",
            "  fleet[i01]: 4 instance(s), quorum=2, 1 published decision(s), "
            "seeded 1 decision(s), 2 batch(es) queued, "
            "0 quarantined stream(s)",
            "  fleet[i01]: transport faults: dup_frame=1",
            "  governor[no-new-compiles]: 1 deploy(s) refused, "
            "1 eviction(s), 8 shed sample(s), 1 transition(s)",
            "  faults[seed=7]: 3 injected = 2 detected + 1 tolerated "
            "(drop_sample=1, torn_patch=2)",
        ]
