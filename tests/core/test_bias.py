"""The ld8.bias rewrite on a shared-counter read-modify-write loop."""

import numpy as np

from repro.config import itanium2_smp
from repro.compiler.kernels import HistogramLoop
from repro.core.opts.bias import find_rmw_load_regs, make_bias_rewrite
from repro.core.tracecache import TraceCache
from repro.core.tracesel import LoopTrace
from repro.cpu import Machine
from repro.isa import Op
from repro.runtime import ParallelProgram, static_chunks

N_KEYS = 2048
N_BINS = 32  # a handful of lines, shared by both threads


def _shared_histogram(machine, n_threads=2, reps=4):
    """IS-like counting, but into ONE shared (racy) count array.

    The determinism caveat does not matter here: we only compare event
    counts and totals between two identically-scheduled runs.
    """
    rng = np.random.default_rng(3)
    prog = ParallelProgram(machine, "shared_hist")
    prog.int_array("keys", N_KEYS, rng.integers(0, N_BINS, N_KEYS))
    prog.int_array("cnt", N_BINS)
    fn = prog.kernel(HistogramLoop("count", key="keys", cnt="cnt"))
    prog.region(
        [
            prog.make_call(fn, start, count) if count else None
            for start, count in static_chunks(N_KEYS, n_threads)
        ]
    )
    prog.build(outer_reps=reps)
    return prog, fn


class TestAssociation:
    def test_finds_the_rmw_register(self, smp2):
        prog, fn = _shared_histogram(smp2)
        head = prog.image.labels[".count_loop"]
        back = prog.image.find_ops(Op.BR_CLOOP, fn.region)[0]
        loop = LoopTrace(head=head, back_branch=back[0] + back[1], hotness=1)
        regs = find_rmw_load_regs(prog.image, loop)
        assert len(regs) == 1, "exactly the cnt[key] RMW register qualifies"

    def test_streaming_loads_not_selected(self, smp2):
        prog, fn = _shared_histogram(smp2)
        head = prog.image.labels[".count_loop"]
        back = prog.image.find_ops(Op.BR_CLOOP, fn.region)[0]
        loop = LoopTrace(head=head, back_branch=back[0] + back[1], hotness=1)
        regs = find_rmw_load_regs(prog.image, loop)
        # the key-stream load (post-increment) must not be in the set
        key_loads = [
            instr
            for a in range(head, back[0] + 16, 16)
            for instr in prog.image.fetch_bundle(a).slots
            if instr.op is Op.LD8 and instr.imm
        ]
        assert key_loads and all(i.r2 not in regs for i in key_loads)


class TestEffect:
    def _run(self, bias: bool):
        machine = Machine(itanium2_smp(2))
        prog, fn = _shared_histogram(machine)
        if bias:
            head = prog.image.labels[".count_loop"]
            back = prog.image.find_ops(Op.BR_CLOOP, fn.region)[0]
            loop = LoopTrace(head=head, back_branch=back[0] + back[1], hotness=1)
            cache = TraceCache()
            machine.load_image(cache.image)
            regs = find_rmw_load_regs(prog.image, loop)
            deployment = cache.deploy(
                prog.image, loop, make_bias_rewrite(regs), "bias"
            )
            assert deployment.n_rewrites == 1
        result = prog.run(max_bundles=100_000_000)
        total = int(prog.i64("cnt")[:N_BINS].sum())
        return result, total

    def test_bias_removes_upgrades(self):
        base, base_total = self._run(bias=False)
        biased, biased_total = self._run(bias=True)
        # the shared histogram is intentionally racy (like the naive
        # OpenMP code it models): totals are bounded, not exact
        assert 0 < base_total <= N_KEYS * 4
        assert 0 < biased_total <= N_KEYS * 4
        # the biased load acquires ownership up front: the separate
        # upgrade transactions (and the HITM downgrades they follow)
        # all but disappear
        assert biased.events.upgrades < base.events.upgrades * 0.1
        assert biased.events.bus_rd_hitm < base.events.bus_rd_hitm * 0.1
        # ...and yet it is NOT faster on contended lines — each biased
        # load steals the whole line, so reads can no longer be shared.
        # This is the paper's own conclusion: "the use of .bias hint is
        # very limited" (§4), which is why COBRA's strategies don't use
        # it by default.
        assert biased.cycles <= base.cycles * 1.4
