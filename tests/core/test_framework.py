"""End-to-end COBRA: monitoring, deployment, adaptation, correctness."""

import dataclasses

import pytest

from repro.config import itanium2_smp
from repro.core import Cobra, run_with_cobra
from repro.core.opts.excl import associate_stored_streams
from repro.cpu import Machine, Scheduler
from repro.errors import CobraError
from repro.workloads import build_daxpy, verify_daxpy, working_set_elems


def _daxpy(machine, reps=30):
    n = working_set_elems("128K", 4)
    return build_daxpy(machine, n, 4, outer_reps=reps)


class TestEndToEnd:
    def test_noprefetch_speeds_up_and_preserves_numerics(self):
        machine = Machine(itanium2_smp(4, scale=4))
        baseline = _daxpy(machine).run()

        machine2 = Machine(itanium2_smp(4, scale=4))
        prog = _daxpy(machine2)
        result, report = run_with_cobra(prog, "noprefetch")
        assert verify_daxpy(prog, 30)
        assert report.deployments, "COBRA must find and patch the hot loop"
        assert result.cycles < baseline.cycles, "the rewrite must pay off here"
        assert report.samples > 50

    def test_adaptive_chooses_noprefetch_here(self):
        machine = Machine(itanium2_smp(4, scale=4))
        prog = _daxpy(machine)
        _, report = run_with_cobra(prog, "adaptive")
        assert [d.optimization for d in report.deployments] == ["noprefetch"]
        deploys = [e for e in report.events if e.kind == "deploy"]
        assert "coherent share" in deploys[0].reason

    def test_monitoring_only_overhead_is_small(self):
        machine = Machine(itanium2_smp(4, scale=4))
        baseline = _daxpy(machine).run()
        machine2 = Machine(itanium2_smp(4, scale=4))
        prog = _daxpy(machine2)
        config = dataclasses.replace(machine2.config.cobra, min_loop_samples=10**9)
        result, report = run_with_cobra(prog, "noprefetch", config=config)
        assert not report.deployments
        assert result.cycles < baseline.cycles * 1.08, "monitoring overhead must stay low"

    def test_unknown_strategy_rejected(self):
        machine = Machine(itanium2_smp(4))
        prog = _daxpy(machine)
        with pytest.raises(CobraError):
            Cobra(machine, prog.image, strategy="turbo")

    def test_double_install_rejected(self):
        machine = Machine(itanium2_smp(4, scale=4))
        prog = _daxpy(machine)
        cobra = Cobra(machine, prog.image, "noprefetch")
        sched = Scheduler([t.core for t in prog.threads])
        cobra.install(sched)
        with pytest.raises(CobraError):
            cobra.install(sched)
        cobra.stop()

    def test_report_summary_renders(self):
        machine = Machine(itanium2_smp(4, scale=4))
        prog = _daxpy(machine)
        _, report = run_with_cobra(prog, "noprefetch")
        text = report.summary()
        assert "COBRA strategy=noprefetch" in text
        assert "noprefetch" in text


class TestExclAssociation:
    def test_daxpy_queue_is_store_associated(self):
        machine = Machine(itanium2_smp(4, scale=4))
        prog = _daxpy(machine)
        result, report = run_with_cobra(prog, "excl")
        assert verify_daxpy(prog, 30)
        # the RMW rotating queue covers the stored stream -> rewritten whole
        assert report.deployments
        assert all(d.optimization == "excl" for d in report.deployments)
        assert all(d.n_rewrites >= 1 for d in report.deployments)

    def test_association_selects_store_streams(self, smp2):
        import numpy as np

        from repro.compiler import StreamLoop, Term
        from repro.core.tracesel import LoopTrace
        from repro.isa import Op
        from repro.runtime import ParallelProgram

        prog = ParallelProgram(smp2, "assoc")
        prog.array("a", 128, 1.0)
        prog.array("b", 128, 1.0)
        prog.array("d", 128, 0.0)
        fn = prog.kernel(
            StreamLoop("k", dest="d", terms=(Term("a", 1.0, 0), Term("b", 1.0, 0)))
        )
        prog.parallel_for(fn, 128, 1)
        prog.build()
        head = prog.image.labels[".k_loop"]
        back = prog.image.find_ops(Op.BR_CTOP, fn.region)[0]
        trace = LoopTrace(head=head, back_branch=back[0] + back[1], hotness=1)
        selected = associate_stored_streams(prog.image, trace)
        assert selected is not None and len(selected) == 1, (
            "exactly the dest stream's prefetch register is selected"
        )
