"""Runtime hardening under fault injection.

Covers the pieces the chaos harness exercises end-to-end, but at unit
granularity: sanitizer quarantine counters, transactional deployment
(torn/stale/exhaustion all-or-nothing), the optimizer watchdog with its
monitor-only degraded mode, and the fault ledger on the COBRA report.
"""

import numpy as np
import pytest

from repro.compiler import StreamLoop, Term
from repro.config import CobraConfig, FaultConfig, itanium2_smp
from repro.core.filters import MissStats
from repro.core.framework import run_with_cobra
from repro.core.opts import make_noprefetch_rewrite
from repro.core.profiler import SystemProfiler
from repro.core.tracecache import TraceCache
from repro.core.tracesel import LoopTrace
from repro.cpu import Machine
from repro.errors import TraceCacheError
from repro.faults import FaultInjector
from repro.hpm.counters import COUNTER_MASK
from repro.hpm.sample import Sample
from repro.isa import Op
from repro.runtime import ParallelProgram
from repro.workloads import BENCHMARKS


def _sample(index=0, thread=0, counters=(1, 1, 1, 1), cycles=10, pc=0x100):
    return Sample(
        index=index,
        pc=pc,
        pid=0,
        thread_id=thread,
        cpu_id=thread,
        counters=counters,
        btb=(),
        miss_pc=None,
        miss_latency=None,
        miss_addr=None,
        cycles=cycles,
    )


def _program(machine, n=256):
    prog = ParallelProgram(machine, "fr")
    prog.array("x", n, np.arange(n, dtype=float))
    prog.array("y", n, 1.0)
    fn = prog.kernel(StreamLoop("k", dest="y", terms=(Term("y", 1.0, 0), Term("x", 2.0, 0))))
    prog.parallel_for(fn, n, 1)
    prog.build(outer_reps=3)
    return prog, fn


def _loop_of(prog, fn):
    image = prog.image
    head = image.labels[".k_loop"]
    back = None
    for addr, slot in image.find_ops(Op.BR_CTOP, fn.region):
        back = addr + slot
    trace = LoopTrace(head=head, back_branch=back, hotness=10)
    trace.lfetch_sites = image.find_ops(Op.LFETCH, (head, addr))
    trace.misses = [MissStats(pc=head, samples=10, coherent=10, total_latency=2000)]
    return trace


def _patch_injector(kind):
    return FaultInjector(FaultConfig(patch_rate=1.0, kinds=(kind,)))


class TestSanitizer:
    def test_out_of_range_counters_quarantined(self):
        profiler = SystemProfiler(CobraConfig())
        profiler._ingest_sample(_sample(index=0, counters=(COUNTER_MASK + 7, 0, 0, 0)))
        assert profiler.quarantined == {"counter-range": 1}
        assert profiler.samples_seen == 0

    def test_reasons_counted_separately(self):
        profiler = SystemProfiler(CobraConfig())
        profiler._ingest_sample(_sample(index=0))
        profiler._ingest_sample(_sample(index=0))                    # duplicate
        profiler._ingest_sample(_sample(index=1, cycles=3))          # goes backwards
        profiler._ingest_sample(_sample(index=2, pc=-5))
        profiler._ingest_sample(_sample(index=2, counters=(-1, 0, 0, 0)))
        assert profiler.quarantined == {
            "stale-index": 1,
            "time-travel": 1,
            "pc-range": 1,
            "counter-range": 1,
        }
        assert profiler.quarantined_total == 4
        assert profiler.samples_seen == 1

    def test_quarantined_sample_never_touches_profiles(self):
        profiler = SystemProfiler(CobraConfig())
        profiler._ingest_sample(_sample(index=0, counters=(10, 0, 0, 0)))
        profiler._ingest_sample(_sample(index=1, counters=(20, 5, 0, 0)))
        ratio = profiler.coherent_ratio()
        profiler._ingest_sample(
            _sample(index=2, counters=(COUNTER_MASK + 99, 99, 99, 99))
        )
        assert profiler.coherent_ratio() == ratio

    def test_corruption_claim_reaches_the_injector(self):
        injector = FaultInjector(
            FaultConfig(sample_rate=1.0, kinds=("corrupt_sample",))
        )
        event = injector.sample_fault()
        damaged = injector.corrupt_sample(event, _sample(index=0))
        profiler = SystemProfiler(CobraConfig(), faults=injector)
        profiler._ingest_sample(damaged)
        assert event.status == "detected"
        assert injector.ledger().accounted


class TestTransactionalDeploy:
    def test_torn_patch_reverted_all_or_nothing(self, smp2):
        prog, fn = _program(smp2)
        loop = _loop_of(prog, fn)
        original = prog.image.fetch_bundle(loop.head)
        cache = TraceCache(faults=_patch_injector("torn_patch"))
        with pytest.raises(TraceCacheError, match="torn"):
            cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "np")
        assert prog.image.fetch_bundle(loop.head) == original
        assert cache.used_bundles == 0            # trace reclaimed
        assert cache.deployments == []
        assert any("torn" in line for line in cache.recovery_log)
        assert cache.faults.ledger().accounted

    def test_stale_image_discarded_before_redirect(self, smp2):
        prog, fn = _program(smp2)
        loop = _loop_of(prog, fn)
        original = prog.image.fetch_bundle(loop.head)
        cache = TraceCache(faults=_patch_injector("stale_image"))
        with pytest.raises(TraceCacheError, match="stale"):
            cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "np")
        assert prog.image.fetch_bundle(loop.head) == original
        assert cache.used_bundles == 0
        assert cache.faults.ledger().accounted

    def test_injected_exhaustion_refuses_cleanly(self, smp2):
        prog, fn = _program(smp2)
        loop = _loop_of(prog, fn)
        cache = TraceCache(faults=_patch_injector("cache_exhaustion"))
        with pytest.raises(TraceCacheError, match="full"):
            cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "np")
        assert cache.used_bundles == 0
        assert cache.faults.ledger().accounted

    def test_deploy_succeeds_after_faults_exhaust(self, smp2):
        # one injected failure must not poison the next attempt
        prog, fn = _program(smp2)
        loop = _loop_of(prog, fn)
        injector = FaultInjector(
            FaultConfig(patch_rate=0.0)  # no further draws fire
        )
        cache = TraceCache(faults=injector)
        smp2.load_image(cache.image)
        deployment = cache.deploy(prog.image, loop, make_noprefetch_rewrite(), "np")
        assert deployment.active
        prog.run(max_bundles=5_000_000)
        assert np.allclose(prog.f64("y")[:256], 1.0 + 6.0 * np.arange(256))


def _run_cg(seed=0, strategy="adaptive", threshold=8, **rates):
    machine = Machine(itanium2_smp(4, scale=16))
    prog = BENCHMARKS["cg"].build(machine, 4, reps=4)
    config = CobraConfig(
        faults=FaultConfig(seed=seed, **rates),
        fault_escalation_threshold=threshold,
    )
    result, report = run_with_cobra(prog, strategy, config=config)
    return prog, result, report


class TestWatchdogAndDegradedMode:
    def test_dead_monitor_restarted_and_claimed(self):
        _, _, report = _run_cg(loop_rate=1.0, kinds=("monitor_death",))
        recovers = [e for e in report.events if e.kind == "recover"]
        assert recovers, "watchdog never restarted a killed monitor"
        assert report.faults.accounted
        assert report.faults.by_kind.get("monitor_death", 0) >= 1

    def test_repeated_deploy_faults_degrade_to_monitor_only(self):
        _, _, report = _run_cg(
            patch_rate=1.0, kinds=("torn_patch",), threshold=2
        )
        assert report.mode == "monitor-only"
        degrades = [e for e in report.events if e.kind == "degrade"]
        assert len(degrades) == 1
        # degraded mode reverts every deployment: only originals run
        assert report.deployments == []
        assert report.faults.accounted

    def test_degraded_run_keeps_outputs_correct(self):
        prog, _, report = _run_cg(
            patch_rate=1.0, kinds=("torn_patch",), threshold=1
        )
        assert report.mode == "monitor-only"
        assert BENCHMARKS["cg"].verify(prog, 4)

    def test_missed_wakeup_only_delays_adaptation(self):
        prog, _, report = _run_cg(loop_rate=0.5, kinds=("missed_wakeup",))
        assert report.mode == "normal"
        assert report.faults.accounted
        assert BENCHMARKS["cg"].verify(prog, 4)


class TestReportLedger:
    def test_summary_carries_fault_ledger(self):
        _, _, report = _run_cg(sample_rate=0.3, loop_rate=0.5)
        assert report.faults is not None
        text = report.summary()
        assert "faults[seed=0]" in text
        assert f"{report.faults.injected} injected" in text

    def test_summary_reports_quarantine_and_mode(self):
        _, _, report = _run_cg(
            sample_rate=0.6, patch_rate=1.0, loop_rate=0.5, threshold=1
        )
        text = report.summary()
        if report.quarantined:
            assert "quarantined" in text
        if report.mode != "normal":
            assert "degraded mode: monitor-only" in text

    def test_faultless_report_has_no_ledger(self, smp4):
        prog = BENCHMARKS["cg"].build(smp4, 4, reps=2)
        _, report = run_with_cobra(prog, "adaptive")
        assert report.faults is None
        assert "faults[" not in report.summary()
