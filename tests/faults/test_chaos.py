"""ChaosHarness: fault sweeps preserve outputs and account every fault."""

from repro.config import FaultConfig, itanium2_smp
from repro.cpu import Machine
from repro.faults import CHAOS_STRATEGIES, ChaosHarness
from repro.validate.differential import daxpy_spec

RATES = FaultConfig(sample_rate=0.2, patch_rate=0.8, loop_rate=0.4)


def _harness(seeds=(0, 1), strategies=("adaptive",), fault_config=RATES):
    return ChaosHarness(
        daxpy_spec(n_threads=2, reps=4),
        machines={"smp2": lambda: Machine(itanium2_smp(2, scale=16))},
        strategies=strategies,
        seeds=seeds,
        fault_config=fault_config,
    )


class TestChaosHarness:
    def test_sweep_is_clean_and_injects(self):
        report = _harness(seeds=(0, 1, 2)).run()
        assert report.ok, report.summary()
        assert report.total_injected() > 0
        assert len(report.records) == 3
        for record in report.records:
            assert record.digest == report.baseline_digests["smp2"]
            assert record.ledger.accounted

    def test_same_seed_replays_identically(self):
        first = _harness(seeds=(5,)).run()
        second = _harness(seeds=(5,)).run()
        a, b = first.records[0], second.records[0]
        assert a.cycles == b.cycles
        assert a.ledger.injected == b.ledger.injected
        assert a.ledger.by_kind == b.ledger.by_kind
        assert [e.kind for e in a.ledger.events] == [e.kind for e in b.ledger.events]

    def test_zero_injection_sweep_fails(self):
        report = _harness(
            fault_config=FaultConfig(sample_rate=0.0, patch_rate=0.0, loop_rate=0.0)
        ).run()
        assert not report.ok
        assert any("injected nothing" in failure for failure in report.failures)

    def test_summary_lists_every_record(self):
        report = _harness().run()
        text = report.summary()
        assert "chaos[" in text
        for record in report.records:
            assert record.label in text

    def test_default_strategy_matrix_excludes_baseline(self):
        assert "none" not in CHAOS_STRATEGIES
        assert set(CHAOS_STRATEGIES) == {"noprefetch", "excl", "adaptive"}
