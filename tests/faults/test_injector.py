"""FaultInjector: deterministic schedules and exact ledger accounting."""

import pytest

from repro.config import FaultConfig
from repro.errors import FaultError
from repro.faults import (
    ALL_FAULTS,
    LOOP_FAULTS,
    PATCH_FAULTS,
    PERSIST_FAULTS,
    SAMPLE_FAULTS,
    TOLERATED_AT_INJECTION,
    FaultInjector,
)
from repro.hpm.counters import COUNTER_MASK
from repro.hpm.sample import Sample


def _sample(index=0, thread=0, counters=(1, 2, 3, 4), miss_latency=150):
    return Sample(
        index=index,
        pc=0x100,
        pid=0,
        thread_id=thread,
        cpu_id=thread,
        counters=counters,
        btb=(),
        miss_pc=0x100 if miss_latency is not None else None,
        miss_latency=miss_latency,
        miss_addr=0x8000_0000 if miss_latency is not None else None,
        cycles=10,
    )


def _schedule(injector, n=300):
    out = []
    for _ in range(n):
        for draw in (injector.sample_fault, injector.patch_fault, injector.loop_fault):
            event = draw()
            out.append(None if event is None else (event.kind, event.surface))
    return out


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        cfg = FaultConfig(seed=42, sample_rate=0.3, patch_rate=0.3, loop_rate=0.3)
        assert _schedule(FaultInjector(cfg)) == _schedule(FaultInjector(cfg))

    def test_different_seed_different_schedule(self):
        a = FaultInjector(FaultConfig(seed=1, sample_rate=0.5))
        b = FaultInjector(FaultConfig(seed=2, sample_rate=0.5))
        assert _schedule(a) != _schedule(b)

    def test_surfaces_route_their_own_kinds(self):
        inj = FaultInjector(FaultConfig(sample_rate=1.0, patch_rate=1.0, loop_rate=1.0))
        for _ in range(50):
            assert inj.sample_fault().kind in SAMPLE_FAULTS
            assert inj.patch_fault().kind in PATCH_FAULTS
            assert inj.loop_fault().kind in LOOP_FAULTS

    def test_zero_rate_never_fires(self):
        inj = FaultInjector(FaultConfig(sample_rate=0.0, patch_rate=0.0, loop_rate=0.0))
        assert all(entry is None for entry in _schedule(inj))
        assert inj.injected_count() == 0

    def test_kinds_filter_restricts_draws(self):
        inj = FaultInjector(
            FaultConfig(sample_rate=1.0, patch_rate=1.0, kinds=("torn_patch",))
        )
        for _ in range(20):
            assert inj.sample_fault() is None  # no sample kind allowed
            assert inj.patch_fault().kind == "torn_patch"

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultInjector(FaultConfig(kinds=("bit_rot",)))


class TestLedger:
    def test_tolerated_at_injection_preclassified(self):
        inj = FaultInjector(FaultConfig(sample_rate=1.0, loop_rate=1.0))
        for _ in range(200):
            inj.sample_fault()
            inj.loop_fault()
        ledger = inj.ledger()
        # every tolerated-class kind starts settled; the rest start open
        assert ledger.tolerated == sum(
            count for kind, count in ledger.by_kind.items()
            if kind in TOLERATED_AT_INJECTION
        )
        assert ledger.outstanding == sum(
            count for kind, count in ledger.by_kind.items()
            if kind not in TOLERATED_AT_INJECTION
        )

    def test_detected_settles_and_double_classify_raises(self):
        inj = FaultInjector(FaultConfig(patch_rate=1.0, kinds=("torn_patch",)))
        event = inj.patch_fault()
        inj.detected(event, "reverted")
        assert inj.ledger().detected == 1
        assert inj.ledger().accounted
        with pytest.raises(FaultError):
            inj.detected(event)
        with pytest.raises(FaultError):
            inj.tolerated(event)

    def test_claim_is_fifo_per_surface(self):
        inj = FaultInjector(FaultConfig(loop_rate=1.0, kinds=("monitor_death",)))
        first = inj.loop_fault()
        second = inj.loop_fault()
        assert inj.claim("loop", "watchdog") is first
        assert inj.claim("loop", "watchdog") is second
        assert inj.claim("loop") is None
        assert inj.ledger().accounted

    def test_summary_flags_unaccounted(self):
        inj = FaultInjector(FaultConfig(patch_rate=1.0, kinds=("stale_image",)))
        inj.patch_fault()
        ledger = inj.ledger()
        assert not ledger.accounted
        assert "UNACCOUNTED" in ledger.summary()

    def test_all_fault_kinds_partition_by_surface(self):
        assert set(ALL_FAULTS) == (
            set(SAMPLE_FAULTS) | set(PATCH_FAULTS) | set(LOOP_FAULTS)
            | set(PERSIST_FAULTS)
        )
        assert len(ALL_FAULTS) == len(set(ALL_FAULTS))

    def test_persist_faults_are_never_drawn_randomly(self):
        # the crash gate and recovery-time observation are the only
        # sources: max-rate schedules must never produce a persist kind
        inj = FaultInjector(
            FaultConfig(seed=3, sample_rate=1.0, patch_rate=1.0, loop_rate=1.0)
        )
        drawn = {entry[0] for entry in _schedule(inj, n=200) if entry}
        assert drawn and not (drawn & set(PERSIST_FAULTS))


class TestCorruption:
    def _corrupt(self, seed, sample):
        inj = FaultInjector(
            FaultConfig(seed=seed, sample_rate=1.0, kinds=("corrupt_sample",))
        )
        event = inj.sample_fault()
        return inj, event, inj.corrupt_sample(event, sample)

    def test_corruption_is_always_detectable(self):
        # whatever field the PRNG damages, the anomaly check must fire:
        # in-range corruption would be indistinguishable from noise
        for seed in range(40):
            _, _, damaged = self._corrupt(seed, _sample())
            assert damaged.anomaly(COUNTER_MASK) is not None

    def test_claim_sample_settles_exact_event(self):
        inj, event, damaged = self._corrupt(0, _sample())
        assert inj.claim_sample(damaged, "quarantined") is event
        assert event.status == "detected"
        assert inj.ledger().accounted

    def test_claim_sample_ignores_unwatched(self):
        inj = FaultInjector(FaultConfig())
        assert inj.claim_sample(_sample()) is None

    def test_samples_lost_tolerates_destroyed_corruption(self):
        inj, event, damaged = self._corrupt(0, _sample())
        inj.samples_lost([_sample(index=5), damaged])
        assert event.status == "tolerated"
        assert inj.ledger().accounted
        # the watch entry is consumed: a later claim finds nothing
        assert inj.claim_sample(damaged) is None


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(sample_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(patch_rate=-0.1)

    def test_frozen(self):
        cfg = FaultConfig()
        with pytest.raises(AttributeError):
            cfg.seed = 3

    def test_seed_must_be_non_negative(self):
        with pytest.raises(ValueError, match="seed"):
            FaultConfig(seed=-1)

    def test_crash_fields_validated(self):
        with pytest.raises(ValueError, match="crash_write"):
            FaultConfig(crash_write=0)
        with pytest.raises(ValueError, match="crash_torn_bytes"):
            FaultConfig(crash_torn_bytes=-1)
        cfg = FaultConfig(crash_write=3, crash_torn_bytes=0)
        assert cfg.crash_write == 3 and cfg.crash_torn_bytes == 0


class TestCrashGate:
    def test_fires_exactly_once_at_the_nth_write(self):
        inj = FaultInjector(FaultConfig(crash_write=3, crash_torn_bytes=7))
        results = [inj.crash_gate() for _ in range(5)]
        assert results == [
            (False, None), (False, None), (True, 7), (False, None), (False, None)
        ]
        assert inj.durable_writes == 5

    def test_boundary_kill_has_no_torn_bytes(self):
        inj = FaultInjector(FaultConfig(crash_write=1))
        assert inj.crash_gate() == (True, None)

    def test_disarmed_gate_never_fires(self):
        inj = FaultInjector(FaultConfig())
        assert all(inj.crash_gate() == (False, None) for _ in range(10))

    def test_gate_consumes_no_randomness(self):
        # the crashed run's schedule must stay a prefix of the
        # uninterrupted run's: the gate may not advance the PRNG
        cfg = FaultConfig(seed=11, sample_rate=0.5)
        plain = FaultInjector(cfg)
        gated = FaultInjector(FaultConfig(seed=11, sample_rate=0.5, crash_write=99))
        for _ in range(50):
            gated.crash_gate()
        for _ in range(100):
            a, b = plain.sample_fault(), gated.sample_fault()
            assert (a is None) == (b is None)
            if a is not None:
                assert a.kind == b.kind


class TestObserve:
    def test_observed_wreckage_is_born_detected(self):
        inj = FaultInjector(FaultConfig())
        event = inj.observe("torn_journal_record", "persist", "crc mismatch at 42")
        assert event.status == "detected"
        assert event.surface == "persist"
        ledger = inj.ledger()
        assert ledger.injected == 1 and ledger.detected == 1
        assert ledger.accounted

    def test_observed_events_join_the_ledger_in_order(self):
        inj = FaultInjector(FaultConfig())
        inj.observe("corrupt_snapshot", "persist", "snap-00000001.ckpt")
        inj.observe("stray_snapshot_tmp", "persist", "snap-00000002.ckpt.tmp")
        kinds = [e.kind for e in inj.ledger().events]
        assert kinds == ["corrupt_snapshot", "stray_snapshot_tmp"]
