"""Shrinker unit tests with injected divergence predicates (no
simulation — these validate the search, not the differ)."""

import dataclasses

from repro.fuzz.generator import generate_params
from repro.fuzz.shrinker import shrink


def _big_params():
    base = generate_params(67)  # stream, 7 terms, reps=4
    return dataclasses.replace(base, chunk=32, reps=4, n_terms=7)


class TestShrink:
    def test_always_diverging_predicate_reaches_minimum(self):
        outcome = shrink(_big_params(), diverges=lambda p: True)
        p = outcome.params
        assert p.reps == 1 and p.chunk == 2 and p.n_terms == 1
        assert p.n_threads == 2 and p.machine_kind == "smp"
        assert outcome.reductions > 0

    def test_never_diverging_predicate_keeps_original(self):
        params = _big_params()
        outcome = shrink(params, diverges=lambda p: False)
        assert outcome.params == params
        assert outcome.reductions == 0

    def test_respects_predicate_constraints(self):
        # divergence requires >= 4 terms: n_terms must not shrink below
        outcome = shrink(_big_params(), diverges=lambda p: p.n_terms >= 4)
        assert outcome.params.n_terms == 4
        assert outcome.params.reps == 1  # everything else still minimized

    def test_budget_caps_attempts(self):
        calls = []

        def check(p):
            calls.append(p)
            return True

        outcome = shrink(_big_params(), diverges=check, budget=3)
        assert outcome.attempts <= 3
        assert len(calls) <= 3

    def test_never_emits_invalid_params(self):
        seen = []

        def check(p):
            seen.append(p)
            return True

        shrink(generate_params(89), diverges=check)  # altix scenario
        for p in seen:
            assert p.n_threads >= 2 and p.chunk >= 1 and p.reps >= 1
            assert p.n_terms >= 1 and p.nest_depth >= 1
            if p.machine_kind == "altix":
                assert p.n_threads % 2 == 0

    def test_summary_mentions_reduction_count(self):
        outcome = shrink(_big_params(), diverges=lambda p: True)
        assert f"{outcome.reductions} reduction(s)" in outcome.summary()
