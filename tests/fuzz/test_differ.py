"""Differential axis sweep: clean scenarios pass, planted bugs are
caught, reported with a replayable (generator_seed, fault_seed) pair,
and shrink to a minimal kernel."""

import pytest

from repro.fuzz import DifferentialFuzzer, generate_params, run_scenario, shrink
from repro.fuzz.report import repro_command
from repro.isa.instructions import Instruction, Op

AXES = (
    "none", "adaptive", "jit-off", "osr-off", "faulted", "ckpt", "resume",
    "db-cold", "db-warm", "db-corrupt", "overloaded", "fleet-faulted",
)


class TestCleanSweep:
    def test_first_seeds_pass_all_axes(self):
        for seed in range(3):
            result = run_scenario(generate_params(seed))
            assert result.ok, result.divergences
            assert tuple(axis for axis, _ in result.digests) == AXES

    def test_ground_truth_digest_agrees_across_axes(self):
        result = run_scenario(generate_params(1))
        digests = dict(result.digests)
        assert (
            digests["none"] == digests["adaptive"]
            == digests["jit-off"] == digests["osr-off"]
        )

    def test_adaptive_axis_observes_sampling_and_jit(self):
        # at least one early seed must exercise both the HPM sampling
        # path and the trace JIT, or the sweep proves nothing
        results = [run_scenario(generate_params(s)) for s in range(4)]
        assert any(r.samples > 0 for r in results)
        assert any(r.compiles > 0 for r in results)


class TestParallelMerge:
    def test_reports_byte_identical_at_any_job_count(self):
        seeds = range(4)
        seq = DifferentialFuzzer(seeds=seeds).run(jobs=1)
        par = DifferentialFuzzer(seeds=seeds).run(jobs=2)
        assert seq.summary() == par.summary()
        assert seq.to_json() == par.to_json()


def _corrupting_rewrite(sites=None):
    """A broken ``noprefetch`` rewrite: instead of nopping the lfetch it
    stores zero through the prefetch pointer — silent data corruption
    that only the digest comparison can catch."""
    del sites

    def rewrite(instr):
        if instr.op is Op.LFETCH:
            return Instruction(Op.ST8, r2=instr.r2, r3=0, imm=instr.imm, unit="M")
        return None

    return rewrite


@pytest.fixture
def planted_bug(monkeypatch):
    import repro.core.optimizer as optimizer

    monkeypatch.setattr(optimizer, "make_noprefetch_rewrite", _corrupting_rewrite)


class TestPlantedDivergence:
    SEED = 12

    def test_divergence_detected_and_replayable(self, planted_bug):
        params = generate_params(self.SEED)
        result = run_scenario(params)
        assert not result.ok
        digest_axes = {
            d.axis for d in result.divergences if d.observable == "digest"
        }
        assert "adaptive vs none" in digest_axes

        # every divergence names the exact (generator_seed, fault_seed)
        # pair and a replay command that reconstructs it
        for d in result.divergences:
            assert (d.seed, d.fault_seed) == (params.seed, params.fault_seed)
            cmd = repro_command(d.seed, d.fault_seed)
            assert f"--replay {params.seed}" in cmd
            assert f"--fault-seed {params.fault_seed}" in cmd

        # replay from the printed pair ALONE: rebuild params from the two
        # integers and reproduce the same divergence set
        replayed = generate_params(params.seed, fault_seed=params.fault_seed)
        assert replayed == params
        again = run_scenario(replayed)
        assert again.divergences == result.divergences

    def test_shrinks_to_smaller_still_failing_kernel(self, planted_bug):
        params = generate_params(self.SEED)
        outcome = shrink(params, budget=24)
        assert outcome.reductions > 0
        shrunk = outcome.params
        assert shrunk.reps <= params.reps
        assert shrunk.chunk <= params.chunk
        assert not run_scenario(shrunk).ok

    def test_clean_run_after_fixture_teardown(self):
        # the monkeypatch must not leak: the same seed is clean again
        assert run_scenario(generate_params(self.SEED)).ok
