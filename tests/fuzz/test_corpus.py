"""The committed fuzz corpus: parses, covers the template space, and
replays divergence-free."""

import json
import os

import pytest

from repro.fuzz import DifferentialFuzzer
from repro.fuzz.generator import LOOP_CLASSES, generate_params

CORPUS = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "fuzz", "corpus.json"
)

#: loop classes whose generated shapes always chain compiled exits —
#: the tree-free regime does not exist for them (see make_corpus.py)
ALWAYS_LINKED = ("gather", "histogram")


@pytest.fixture(scope="module")
def corpus():
    with open(CORPUS, encoding="utf-8") as fh:
        return json.load(fh)


class TestCorpusShape:
    def test_fifty_entries(self, corpus):
        assert len(corpus["entries"]) == 50

    def test_covers_every_loop_class_in_both_tree_regimes(self, corpus):
        cells = {
            (e["loop_class"], e["tree_linked"]) for e in corpus["entries"]
        }
        for cls in LOOP_CLASSES:
            assert (cls, True) in cells, f"{cls}: no tree-linked entry"
            if cls not in ALWAYS_LINKED:
                assert (cls, False) in cells, f"{cls}: no tree-free entry"

    def test_everything_is_jit_eligible_under_osr(self, corpus):
        # with OSR entry the hot threshold is 3 back-edges — every
        # generated scenario compiles at least one trace
        assert all(e["jit_eligible"] for e in corpus["entries"])

    def test_entries_consistent_with_generator(self, corpus):
        # the corpus records what the generator will actually produce —
        # if the generator changes, the corpus must be regenerated
        for e in corpus["entries"]:
            params = generate_params(e["seed"])
            assert params.fault_seed == e["fault_seed"]
            assert params.loop_class == e["loop_class"]

    def test_entries_unique(self, corpus):
        seeds = [e["seed"] for e in corpus["entries"]]
        assert len(set(seeds)) == len(seeds)


class TestCorpusReplay:
    def test_corpus_compiles_and_stays_divergence_free(self, corpus):
        pairs = [(e["seed"], e["fault_seed"]) for e in corpus["entries"]]
        report = DifferentialFuzzer(pairs=pairs).run(jobs=2)
        assert report.ok, report.summary(verbose=False)
        # all twelve digest axes executed for every entry (the crash run
        # records no digest): compile + run succeeded everywhere
        assert all(len(r.digests) == 12 for r in report.results)
        # and the recorded JIT/tree eligibility still holds
        by_seed = {r.params.seed: r for r in report.results}
        for e in corpus["entries"]:
            assert (by_seed[e["seed"]].compiles > 0) == e["jit_eligible"]
            assert (by_seed[e["seed"]].tree_links > 0) == e["tree_linked"]
