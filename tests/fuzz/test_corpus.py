"""The committed fuzz corpus: parses, covers the template space, and
replays divergence-free."""

import json
import os

import pytest

from repro.fuzz import DifferentialFuzzer
from repro.fuzz.generator import LOOP_CLASSES, generate_params

CORPUS = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "fuzz", "corpus.json"
)


@pytest.fixture(scope="module")
def corpus():
    with open(CORPUS, encoding="utf-8") as fh:
        return json.load(fh)


class TestCorpusShape:
    def test_fifty_entries(self, corpus):
        assert len(corpus["entries"]) == 50

    def test_covers_every_loop_class_in_both_jit_regimes(self, corpus):
        cells = {
            (e["loop_class"], e["jit_eligible"]) for e in corpus["entries"]
        }
        for cls in LOOP_CLASSES:
            assert (cls, True) in cells, f"{cls}: no JIT-eligible entry"
            assert (cls, False) in cells, f"{cls}: no JIT-ineligible entry"

    def test_entries_consistent_with_generator(self, corpus):
        # the corpus records what the generator will actually produce —
        # if the generator changes, the corpus must be regenerated
        for e in corpus["entries"]:
            params = generate_params(e["seed"])
            assert params.fault_seed == e["fault_seed"]
            assert params.loop_class == e["loop_class"]

    def test_entries_unique(self, corpus):
        seeds = [e["seed"] for e in corpus["entries"]]
        assert len(set(seeds)) == len(seeds)


class TestCorpusReplay:
    def test_corpus_compiles_and_stays_divergence_free(self, corpus):
        pairs = [(e["seed"], e["fault_seed"]) for e in corpus["entries"]]
        report = DifferentialFuzzer(pairs=pairs).run(jobs=2)
        assert report.ok, report.summary(verbose=False)
        # all eleven digest axes executed for every entry (the crash run
        # records no digest): compile + run succeeded everywhere
        assert all(len(r.digests) == 11 for r in report.results)
        # and the recorded JIT-eligibility still holds
        by_seed = {r.params.seed: r for r in report.results}
        for e in corpus["entries"]:
            assert (by_seed[e["seed"]].compiles > 0) == e["jit_eligible"]
