"""Scenario generator: determinism, coverage, and parameter contracts."""

import dataclasses

import pytest

from repro.fuzz.generator import (
    LOOP_CLASSES,
    ScenarioParams,
    describe,
    generate_params,
    with_fault_seed,
)


class TestDeterminism:
    def test_same_seed_same_params(self):
        assert generate_params(42) == generate_params(42)

    def test_different_seeds_differ_somewhere(self):
        params = [generate_params(s) for s in range(20)]
        assert len({describe(p) for p in params}) > 1

    def test_fault_seed_override_is_pure(self):
        base = generate_params(12)
        forced = generate_params(12, fault_seed=base.fault_seed)
        assert forced == base

    def test_with_fault_seed_replaces_only_fault_seed(self):
        base = generate_params(5)
        other = with_fault_seed(base, 999)
        assert other.fault_seed == 999
        assert dataclasses.replace(other, fault_seed=base.fault_seed) == base


class TestCoverage:
    def test_all_loop_classes_reachable(self):
        seen = {generate_params(s).loop_class for s in range(200)}
        assert seen == set(LOOP_CLASSES)

    def test_both_machine_kinds_reachable(self):
        seen = {generate_params(s).machine_kind for s in range(100)}
        assert seen == {"smp", "altix"}

    def test_boundary_sharing_chunks_generated(self):
        # chunk % 16 != 0 means adjacent static chunks share a cache line
        shared = [p for p in map(generate_params, range(100)) if p.share_boundary]
        assert shared
        assert all(p.chunk % 16 != 0 for p in shared)

    def test_altix_thread_counts_even(self):
        for p in map(generate_params, range(200)):
            if p.machine_kind == "altix":
                assert p.n_threads % 2 == 0

    def test_trip_counts_cover_short_and_long_regimes(self):
        # some scenarios stay in the ramp-dominated short-run regime,
        # others reach compiled steady state — both must occur
        totals = {p.reps >= 4 for p in map(generate_params, range(100))}
        assert totals == {True, False}


class TestParamsValidation:
    def test_rejects_unknown_loop_class(self):
        with pytest.raises(ValueError):
            dataclasses.replace(generate_params(0), loop_class="quantum")

    def test_rejects_unknown_machine_kind(self):
        with pytest.raises(ValueError):
            dataclasses.replace(generate_params(0), machine_kind="cray")

    def test_n_is_chunk_times_threads(self):
        p = generate_params(7)
        assert p.n == p.chunk * p.n_threads

    def test_describe_is_stable_and_one_line(self):
        for s in range(30):
            d = describe(generate_params(s))
            assert "\n" not in d
            assert d == describe(generate_params(s))

    def test_params_are_frozen(self):
        p = generate_params(0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            p.seed = 1

    def test_params_are_hashable_and_picklable(self):
        import pickle

        p = generate_params(3)
        assert hash(p) == hash(generate_params(3))
        assert pickle.loads(pickle.dumps(p)) == p
