"""perfmon sampling sessions: BTB, DEAR filtering, sample delivery."""

import pytest

from repro.config import itanium2_smp
from repro.cpu import Machine, Scheduler
from repro.errors import HpmError
from repro.hpm import (
    BranchTraceBuffer,
    DataEventAddressRegister,
    PerfmonDriver,
    PerfmonSession,
    PmuEvent,
)
from repro.isa import assemble

EVENTS = [PmuEvent.BUS_MEMORY, PmuEvent.BUS_RD_HIT, PmuEvent.BUS_RD_HITM, PmuEvent.BUS_RD_INVAL]


def _streaming_program(machine, n_lines=64, iters=2):
    a = machine.mem.alloc("data", n_lines * 128)
    image = assemble(
        f"""
        mov r9={iters - 1}
        .outer:
        mov r2={a.base}
        mov ar.lc={n_lines * 16 - 1}
        .l:
        ldfd f4=[r2],8
        br.cloop.sptk .l
        cmp.ne p6,p7=r9,0
        add r9=-1,r9
        (p6) br.cond.sptk .outer
        halt
        """
    )
    machine.load_image(image)
    return image


class TestSession:
    def test_samples_delivered_with_fields(self):
        machine = Machine(itanium2_smp(1))
        image = _streaming_program(machine)
        session = PerfmonSession(machine.cores[0], pid=42)
        got = []
        session.configure(EVENTS, interval=200, dear_min_latency=12)
        session.set_listener(got.append)
        machine.cores[0].start(image.base)
        Scheduler(machine.cores).run_until_halt(1_000_000)
        session.stop()
        assert len(got) > 5
        sample = got[-1]
        assert sample.pid == 42 and sample.cpu_id == 0
        assert len(sample.counters) == 4
        assert sample.index == len(got) - 1
        assert any(s.has_miss() for s in got), "streaming must produce DEAR events"
        miss = next(s for s in got if s.has_miss())
        assert miss.miss_latency > 12
        assert miss.miss_line == miss.miss_addr >> 7

    def test_kernel_buffer_drain(self):
        machine = Machine(itanium2_smp(1))
        image = _streaming_program(machine)
        session = PerfmonSession(machine.cores[0])
        session.configure(EVENTS, interval=500, dear_min_latency=12)
        machine.cores[0].start(image.base)
        Scheduler(machine.cores).run_until_halt(1_000_000)
        buffered = session.drain()
        assert buffered and session.drain() == []

    def test_configure_validation(self):
        machine = Machine(itanium2_smp(1))
        session = PerfmonSession(machine.cores[0])
        with pytest.raises(HpmError):
            session.configure(EVENTS, interval=0, dear_min_latency=12)
        with pytest.raises(HpmError):
            session.configure([PmuEvent.CPU_CYCLES] * 5, interval=10, dear_min_latency=0)
        session.configure(EVENTS, interval=10, dear_min_latency=12)
        with pytest.raises(HpmError):
            session.configure(EVENTS, interval=10, dear_min_latency=12)  # double
        session.stop()
        assert not session.active

    def test_driver_facade(self):
        machine = Machine(itanium2_smp(2))
        driver = PerfmonDriver(machine.cores)
        assert driver.session(1).core is machine.cores[1]
        with pytest.raises(HpmError):
            driver.session(2)
        driver.stop_all()


class TestBtbAndDear:
    def test_btb_snapshot_and_backward(self):
        machine = Machine(itanium2_smp(1))
        image = _streaming_program(machine)
        machine.cores[0].start(image.base)
        Scheduler(machine.cores).run_until_halt(1_000_000)
        btb = BranchTraceBuffer(machine.cores[0])
        assert len(btb.snapshot()) == 4
        backward = btb.last_backward()
        assert backward is not None and backward[1] <= backward[0]

    def test_dear_threshold_filters(self):
        machine = Machine(itanium2_smp(1))
        image = _streaming_program(machine)
        dear = DataEventAddressRegister(machine.cores[0])
        dear.program(10_000)  # nothing qualifies
        machine.cores[0].start(image.base)
        Scheduler(machine.cores).run_until_halt(1_000_000)
        assert dear.read() is None

    def test_dear_consume_clears(self):
        machine = Machine(itanium2_smp(1))
        image = _streaming_program(machine)
        dear = DataEventAddressRegister(machine.cores[0])
        dear.program(12)
        machine.cores[0].start(image.base)
        Scheduler(machine.cores).run_until_halt(1_000_000)
        record = dear.consume()
        assert record is not None and record.latency > 12
        assert dear.consume() is None

    def test_dear_program_validation(self):
        machine = Machine(itanium2_smp(1))
        dear = DataEventAddressRegister(machine.cores[0])
        with pytest.raises(HpmError):
            dear.program(-1)
