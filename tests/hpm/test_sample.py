"""Sample record fields (the paper §3.1 layout)."""

from repro.hpm.sample import Sample


def _sample(**kw):
    base = dict(
        index=0, pc=0x4000_0000, pid=7, thread_id=1, cpu_id=1,
        counters=(1, 2, 3, 4), btb=((0x10, 0x8),),
        miss_pc=None, miss_latency=None, miss_addr=None, cycles=100,
    )
    base.update(kw)
    return Sample(**base)


class TestSample:
    def test_paper_fields_present(self):
        sample = _sample()
        # §3.1: index, PC, pid, tid, cpu, 4 counters, BTB entries,
        # miss instruction/latency/line, timestamp
        assert sample.index == 0 and sample.pid == 7
        assert sample.thread_id == 1 and sample.cpu_id == 1
        assert len(sample.counters) == 4
        assert sample.btb and sample.cycles == 100

    def test_miss_line_derivation(self):
        sample = _sample(miss_pc=0x100, miss_latency=190, miss_addr=0x8000_0088)
        assert sample.has_miss()
        assert sample.miss_line == 0x8000_0088 >> 7

    def test_no_miss(self):
        sample = _sample()
        assert not sample.has_miss() and sample.miss_line is None

    def test_frozen(self):
        sample = _sample()
        try:
            sample.pc = 0
            raised = False
        except AttributeError:
            raised = True
        assert raised
