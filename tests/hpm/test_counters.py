"""PMU counters: programming, virtualization, resets."""

import pytest

from repro.config import itanium2_smp
from repro.cpu import Machine, Scheduler
from repro.errors import HpmError
from repro.hpm import N_COUNTERS, PerformanceCounters, PmuEvent, read_event
from repro.isa import assemble


def _run_loop(machine, iters=50):
    image = assemble(f"mov ar.lc={iters}\n.l:\nbr.cloop.sptk .l\nhalt\n")
    machine.load_image(image)
    core = machine.cores[0]
    core.start(image.base)
    Scheduler(machine.cores).run_until_halt(100_000)
    return core


class TestCounters:
    def test_programmed_counter_counts_from_zero(self):
        machine = Machine(itanium2_smp(1))
        core = machine.cores[0]
        pmu = PerformanceCounters(core)
        pmu.program(0, PmuEvent.IA64_INST_RETIRED)
        _run_loop(machine)
        assert pmu.read(0) == core.retired

    def test_reset_rebases(self):
        machine = Machine(itanium2_smp(1))
        core = machine.cores[0]
        pmu = PerformanceCounters(core)
        pmu.program(0, PmuEvent.CPU_CYCLES)
        _run_loop(machine)
        pmu.reset(0)
        assert pmu.read(0) == 0

    def test_read_all_with_unprogrammed(self):
        machine = Machine(itanium2_smp(1))
        pmu = PerformanceCounters(machine.cores[0])
        pmu.program(1, PmuEvent.BR_TAKEN)
        values = pmu.read_all()
        assert len(values) == N_COUNTERS
        assert values[0] == 0  # unprogrammed reads as 0

    def test_errors(self):
        machine = Machine(itanium2_smp(1))
        pmu = PerformanceCounters(machine.cores[0])
        with pytest.raises(HpmError):
            pmu.read(0)
        with pytest.raises(HpmError):
            pmu.program(4, PmuEvent.CPU_CYCLES)
        with pytest.raises(HpmError):
            pmu.reset(2)

    @pytest.mark.parametrize("event", list(PmuEvent))
    def test_every_event_readable(self, event):
        machine = Machine(itanium2_smp(1))
        assert read_event(machine.cores[0], event) == 0

    def test_event_of(self):
        machine = Machine(itanium2_smp(1))
        pmu = PerformanceCounters(machine.cores[0])
        pmu.program(0, PmuEvent.L3_MISSES)
        assert pmu.event_of(0) is PmuEvent.L3_MISSES
        assert pmu.event_of(1) is None
