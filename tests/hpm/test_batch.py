"""WindowBatch: wire payload round-trip and untrusted-field checks."""

from __future__ import annotations

import math

import pytest

from repro.hpm import WindowBatch

GOOD = WindowBatch(window=3, retired=40_000, samples=25, quarantined=1, cpi=1.5)


class TestPayloadRoundTrip:
    def test_round_trip_identity(self):
        assert WindowBatch.from_payload(GOOD.to_payload()) == GOOD

    def test_int_cpi_coerced_to_float(self):
        payload = dict(GOOD.to_payload(), cpi=2)
        batch = WindowBatch.from_payload(payload)
        assert batch.cpi == 2.0 and isinstance(batch.cpi, float)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="must be a dict"):
            WindowBatch.from_payload([1, 2, 3])

    @pytest.mark.parametrize("field", ["window", "retired", "samples",
                                       "quarantined", "cpi"])
    def test_missing_field_rejected(self, field):
        payload = GOOD.to_payload()
        del payload[field]
        with pytest.raises(ValueError, match=field):
            WindowBatch.from_payload(payload)

    @pytest.mark.parametrize("field,value", [
        ("window", "3"), ("retired", 1.5), ("samples", None),
        ("quarantined", True), ("cpi", "1.5"),
    ])
    def test_damaged_field_rejected(self, field, value):
        payload = dict(GOOD.to_payload(), **{field: value})
        with pytest.raises(ValueError, match=field):
            WindowBatch.from_payload(payload)


class TestAnomaly:
    def test_clean_batch_has_none(self):
        assert GOOD.anomaly() is None
        assert WindowBatch(0, 0, 0, 0, 0.0).anomaly() is None

    @pytest.mark.parametrize("kwargs,reason", [
        (dict(window=-1), "window-range"),
        (dict(retired=-1), "retired-range"),
        (dict(samples=-1), "samples-range"),
        (dict(quarantined=-3), "quarantined-range"),
        (dict(cpi=-0.1), "cpi-range"),
        (dict(cpi=math.nan), "cpi-range"),
        (dict(cpi=math.inf), "cpi-range"),
    ])
    def test_damaged_fields_named(self, kwargs, reason):
        base = dict(window=3, retired=40_000, samples=25, quarantined=1,
                    cpi=1.5)
        base.update(kwargs)
        assert WindowBatch(**base).anomaly() == reason
