"""Metrics and report rendering."""

from repro.analysis import (
    Comparison,
    ExperimentSeries,
    PAPER_TABLE1,
    format_fig3_table,
    format_series_table,
    format_table1,
)
from repro.memory.events import MemEvents
from repro.runtime.team import RunResult


def _result(cycles, l3, bus):
    events = MemEvents()
    events.l3_misses = l3
    events.bus_memory = bus
    return RunResult(
        cycles=cycles, per_cpu_cycles=[cycles], retired=1000,
        events=events, per_cpu_events=[],
    )


def _comparison(name="bt", base=(1000, 100, 200), opt=(800, 70, 150)):
    return Comparison(name, _result(*base), _result(*opt))


class TestComparison:
    def test_ratios(self):
        c = _comparison()
        assert c.speedup == 1.25
        assert c.normalized_time == 0.8
        assert abs(c.normalized_l3 - 0.7) < 1e-12
        assert c.normalized_bus == 0.75

    def test_zero_division_guards(self):
        c = Comparison("z", _result(0, 0, 0), _result(0, 0, 0))
        assert c.speedup == 0.0 and c.normalized_time == 0.0
        assert c.normalized_l3 == 0.0 and c.normalized_bus == 0.0


class TestSeries:
    def test_aggregates(self):
        series = ExperimentSeries("t")
        series.add(_comparison("a", (1000, 100, 100), (500, 50, 50)))
        series.add(_comparison("b", (1000, 100, 100), (1000, 100, 100)))
        assert series.avg_speedup() == 1.5
        assert series.max_speedup() == 2.0
        assert series.avg_normalized_l3() == 0.75
        assert ExperimentSeries("empty").avg_speedup() == 0.0


class TestRendering:
    def test_series_table(self):
        series = {"noprefetch": ExperimentSeries("np")}
        series["noprefetch"].add(_comparison("bt"))
        text = format_series_table(series, "speedup", {"bt": "1.05", "avg": "1.05"})
        assert "bt" in text and "noprefetch" in text and "paper" in text
        assert "1.250" in text

    def test_table1(self):
        text = format_table1({"bt": (10, 2, 3, 0), "zz": (1, 1, 1, 1)})
        assert "bt" in text and "140" in text  # the paper's BT lfetch count
        assert "zz" in text
        assert set(PAPER_TABLE1) == {"bt", "sp", "lu", "ft", "mg", "cg", "ep", "is"}

    def test_fig3_table(self):
        results = {
            (ws, t, s): 100 * t
            for ws in ("128K",)
            for t in (1, 2)
            for s in ("prefetch", "noprefetch")
        }
        text = format_fig3_table(results, ["128K"], [1, 2], ["prefetch", "noprefetch"])
        assert "128K" in text and "2.000" in text  # 2-thread bar normalized

    def test_series_table_without_paper_row(self):
        series = {"excl": ExperimentSeries("excl")}
        series["excl"].add(_comparison("cg"))
        text = format_series_table(series, "normalized_time", paper_row=None)
        assert "cg" in text and "excl" in text
        assert "paper" not in text
        assert "0.800" in text  # 800/1000 normalized time

    def test_series_table_fills_missing_paper_cells(self):
        series = {"np": ExperimentSeries("np")}
        series["np"].add(_comparison("zz"))  # not a paper benchmark
        text = format_series_table(series, "speedup", {"avg": "1.10"})
        row = [ln for ln in text.splitlines() if ln.startswith("paper")][0]
        assert "-" in row and "1.10" in row

    def test_fig3_table_multiple_working_sets(self):
        results = {
            (ws, t, s): base * t
            for ws, base in (("128K", 100), ("2M", 400))
            for t in (1, 2, 4)
            for s in ("prefetch", "noprefetch")
        }
        text = format_fig3_table(
            results, ["128K", "2M"], [1, 2, 4], ["prefetch", "noprefetch"]
        )
        assert "working set 128K" in text and "working set 2M" in text
        assert "4.000" in text  # 4-thread bar, both sets normalize per-set


class TestCobraReportSummary:
    def test_summary_includes_rollbacks_and_validation(self):
        from repro.core import CobraReport
        from repro.core.optimizer import OptEvent
        from repro.errors import InvariantViolation

        report = CobraReport(
            strategy="adaptive",
            samples=12,
            deployments=[],
            events=[
                OptEvent(retired=100, kind="deploy", loop_head=0x40, optimization="noprefetch", reason=""),
                OptEvent(retired=200, kind="rollback", loop_head=0x40, optimization="noprefetch", reason="regressed"),
            ],
            validate_checks=512,
            violations=[InvariantViolation("x", invariant="owner-alone")],
        )
        text = report.summary()
        assert "strategy=adaptive" in text and "12 samples" in text
        assert "1 rollback(s)" in text
        assert "validated 512 accesses" in text
        assert "1 invariant violation(s)" in text

    def test_summary_omits_validation_when_disabled(self):
        from repro.core import CobraReport

        text = CobraReport("none", 0, [], []).summary()
        assert "validated" not in text
