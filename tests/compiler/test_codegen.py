"""Code generation: every template compiles and computes correctly."""

import numpy as np
import pytest

from repro.compiler import (
    AGGRESSIVE,
    NO_PREFETCH,
    ComputeLoop,
    GatherLoop,
    HistogramLoop,
    IntSumLoop,
    PrefetchPlan,
    ReduceLoop,
    StreamLoop,
    Term,
)
from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.errors import CompilerError
from repro.isa import Op
from repro.runtime import ParallelProgram


def _machine():
    return Machine(itanium2_smp(1))


def _run_single(prog):
    prog.build()
    prog.run(max_bundles=10_000_000)


class TestStreamLoop:
    def test_multi_term_with_shifts(self):
        machine = _machine()
        prog = ParallelProgram(machine, "s")
        n, halo = 128, 16
        rng = np.random.default_rng(0)
        u = rng.uniform(1, 2, n + 2 * halo)
        prog.array("u", n + 2 * halo, u)
        prog.array("d", n + 2 * halo, 0.0)
        fn = prog.kernel(
            StreamLoop(
                "stencil",
                dest="d",
                terms=(Term("u", -2.0, 0), Term("u", 0.5, -1), Term("u", 0.5, 1)),
            )
        )
        prog.region([prog.make_call(fn, halo, n)])
        _run_single(prog)
        expect = -2.0 * u[halo : halo + n] + 0.5 * u[halo - 1 : halo - 1 + n] + 0.5 * u[halo + 1 : halo + 1 + n]
        assert np.allclose(prog.f64("d")[halo : halo + n], expect)

    def test_scale_array(self):
        machine = _machine()
        prog = ParallelProgram(machine, "s")
        n = 64
        a = np.arange(1.0, n + 1)
        w = np.linspace(0.5, 1.5, n)
        prog.array("a", n, a)
        prog.array("w", n, w)
        prog.array("d", n, 0.0)
        fn = prog.kernel(StreamLoop("sc", dest="d", terms=(Term("a", 2.0, 0),), scale="w"))
        prog.region([prog.make_call(fn, 0, n)])
        _run_single(prog)
        assert np.allclose(prog.f64("d")[:n], 2.0 * a * w)

    def test_single_term_copy(self):
        machine = _machine()
        prog = ParallelProgram(machine, "s")
        prog.array("a", 64, np.arange(64.0))
        prog.array("d", 64, 0.0)
        fn = prog.kernel(StreamLoop("cp", dest="d", terms=(Term("a", 1.0, 0),)))
        prog.region([prog.make_call(fn, 0, 64)])
        _run_single(prog)
        assert np.allclose(prog.f64("d")[:64], np.arange(64.0))

    def test_rmw_two_streams_uses_rotating_queue(self):
        machine = _machine()
        prog = ParallelProgram(machine, "s")
        prog.array("y", 64, 1.0)
        prog.array("x", 64, 2.0)
        fn = prog.kernel(StreamLoop("rmw", dest="y", terms=(Term("y", 1.0, 0), Term("x", 3.0, 0))))
        sites = prog.image.find_ops(Op.LFETCH, fn.region)
        in_loop = [s for s in sites if s[0] >= fn.loop_head]
        assert len(in_loop) == 1, "Figure-2 form: one rotating lfetch"
        addr, slot = in_loop[0]
        assert prog.image.fetch_bundle(addr).slots[slot].r2 >= 32

    def test_non_rmw_uses_per_stream_lfetches(self):
        machine = _machine()
        prog = ParallelProgram(machine, "s")
        prog.array("a", 64, 1.0)
        prog.array("b", 64, 1.0)
        prog.array("d", 64, 0.0)
        fn = prog.kernel(
            StreamLoop("ps", dest="d", terms=(Term("a", 1.0, 0), Term("b", 1.0, 0)))
        )
        in_loop = [
            s for s in prog.image.find_ops(Op.LFETCH, fn.region) if s[0] >= fn.loop_head
        ]
        assert len(in_loop) == 3  # a, b, and the dest stream

    def test_too_many_terms(self):
        with pytest.raises(CompilerError):
            StreamLoop("x", dest="d", terms=tuple(Term(f"a{i}", 1.0, 0) for i in range(9)))


class TestReduceLoop:
    def test_sum(self):
        machine = _machine()
        prog = ParallelProgram(machine, "r")
        a = np.arange(100.0)
        prog.array("a", 100, a)
        prog.array("res", 16, 0.0)
        fn = prog.kernel(ReduceLoop("sum", src_a="a"))
        prog.region([prog.make_call(fn, 0, 100, raw={"result": prog.arrays["res"].base})])
        _run_single(prog)
        assert prog.f64("res")[0] == a.sum()

    def test_dot(self):
        machine = _machine()
        prog = ParallelProgram(machine, "r")
        a = np.arange(1.0, 65.0)
        b = np.linspace(0, 1, 64)
        prog.array("a", 64, a)
        prog.array("b", 64, b)
        prog.array("res", 16, 0.0)
        fn = prog.kernel(ReduceLoop("dot", src_a="a", src_b="b"))
        prog.region([prog.make_call(fn, 0, 64, raw={"result": prog.arrays["res"].base})])
        _run_single(prog)
        assert np.isclose(prog.f64("res")[0], float(np.dot(a, b)))


class TestGatherLoop:
    def test_csr_spmv(self):
        machine = _machine()
        prog = ParallelProgram(machine, "g")
        rng = np.random.default_rng(5)
        n, nnz = 32, 3
        cols = np.array([rng.choice(n, nnz, replace=False) for _ in range(n)])
        vals = rng.uniform(0, 1, (n, nnz))
        x = rng.uniform(0, 1, n)
        prog.int_array("ptr", n + 1, np.arange(n + 1) * nnz)
        prog.int_array("col", n * nnz, cols.reshape(-1))
        prog.array("val", n * nnz, vals.reshape(-1))
        prog.array("x", n, x)
        prog.array("y", n, 0.0)
        fn = prog.kernel(GatherLoop("spmv", ptr="ptr", col="col", val="val", x="x", y="y"))
        prog.region([prog.make_call(fn, 0, n)])
        _run_single(prog)
        expect = np.array([np.dot(vals[i], x[cols[i]]) for i in range(n)])
        assert np.allclose(prog.f64("y")[:n], expect)

    def test_empty_rows_handled(self):
        machine = _machine()
        prog = ParallelProgram(machine, "g")
        ptr = np.array([0, 2, 2, 3, 3])  # rows 1 and 3 empty
        prog.int_array("ptr", 5, ptr)
        prog.int_array("col", 3, np.array([0, 1, 2]))
        prog.array("val", 3, np.array([1.0, 2.0, 3.0]))
        prog.array("x", 4, np.array([1.0, 1.0, 1.0, 1.0]))
        prog.array("y", 4, 0.0)
        fn = prog.kernel(GatherLoop("sp2", ptr="ptr", col="col", val="val", x="x", y="y"))
        prog.region([prog.make_call(fn, 0, 4)])
        _run_single(prog)
        assert np.allclose(prog.f64("y")[:4], [3.0, 0.0, 3.0, 0.0])


class TestHistogramAndIntSum:
    def test_histogram(self):
        machine = _machine()
        prog = ParallelProgram(machine, "h")
        keys = np.array([0, 1, 1, 2, 2, 2, 7, 7], dtype=np.int64)
        prog.int_array("k", len(keys), keys)
        prog.int_array("c", 8, 0)
        fn = prog.kernel(HistogramLoop("hist", key="k", cnt="c"))
        prog.region([prog.make_call(fn, 0, len(keys))])
        _run_single(prog)
        assert list(prog.i64("c")[:8]) == [1, 2, 3, 0, 0, 0, 0, 2]

    def test_intsum_with_shifts(self):
        machine = _machine()
        prog = ParallelProgram(machine, "i")
        data = np.arange(24, dtype=np.int64)
        prog.int_array("src", 24, data)
        prog.int_array("dst", 8, 0)
        fn = prog.kernel(
            IntSumLoop("merge", dest="dst", sources=(("src", 0), ("src", 8), ("src", 16)))
        )
        prog.region([prog.make_call(fn, 0, 8)])
        _run_single(prog)
        expect = data[0:8] + data[8:16] + data[16:24]
        assert np.array_equal(prog.i64("dst")[:8], expect)

    def test_compute_loop_runs(self):
        machine = _machine()
        prog = ParallelProgram(machine, "c")
        fn = prog.kernel(ComputeLoop("flops", flops_per_iter=4))
        prog.region([prog.make_call(fn, 0, 500)])
        _run_single(prog)
        assert machine.cores[0].retired > 500  # the fma chain executed


class TestPrefetchPlans:
    def test_no_prefetch_emits_no_lfetch(self):
        machine = _machine()
        prog = ParallelProgram(machine, "p")
        prog.array("a", 64, 1.0)
        prog.array("d", 64, 0.0)
        fn = prog.kernel(StreamLoop("k", dest="d", terms=(Term("a", 1.0, 0),)), NO_PREFETCH)
        assert prog.image.count_ops(Op.LFETCH, fn.region) == 0

    def test_plan_distance_and_hint(self):
        machine = _machine()
        prog = ParallelProgram(machine, "p")
        prog.array("a", 64, 1.0)
        prog.array("d", 64, 0.0)
        plan = PrefetchPlan(distance_lines=5, hint="nta", prologue_per_stream=2)
        fn = prog.kernel(StreamLoop("k", dest="d", terms=(Term("a", 1.0, 0),)), plan)
        lfetches = [
            prog.image.fetch_bundle(a).slots[s]
            for a, s in prog.image.find_ops(Op.LFETCH, fn.region)
        ]
        assert all(lf.hint == "nta" for lf in lfetches)

    def test_static_excl_plan(self):
        machine = _machine()
        prog = ParallelProgram(machine, "p")
        prog.array("a", 64, 1.0)
        prog.array("d", 64, 0.0)
        fn = prog.kernel(
            StreamLoop("k", dest="d", terms=(Term("a", 1.0, 0),)), PrefetchPlan(excl=True)
        )
        lfetches = [
            prog.image.fetch_bundle(a).slots[s]
            for a, s in prog.image.find_ops(Op.LFETCH, fn.region)
        ]
        assert lfetches and all(lf.excl for lf in lfetches)

    def test_plan_validation(self):
        with pytest.raises(CompilerError):
            PrefetchPlan(distance_lines=0)
        with pytest.raises(CompilerError):
            PrefetchPlan(hint="bogus")
        with pytest.raises(CompilerError):
            PrefetchPlan(prologue_per_stream=-1)
        assert PrefetchPlan().prologue_count == 9  # covers the distance
        assert PrefetchPlan(prologue_per_stream=3).prologue_count == 3


class TestEmitterPacking:
    def test_max_two_memory_ops_per_bundle(self):
        machine = _machine()
        prog = ParallelProgram(machine, "e")
        prog.array("a", 64, 1.0)
        prog.array("b", 64, 1.0)
        prog.array("c", 64, 1.0)
        prog.array("d", 64, 0.0)
        fn = prog.kernel(
            StreamLoop(
                "k",
                dest="d",
                terms=(Term("a", 1.0, 0), Term("b", 1.0, 0), Term("c", 1.0, 0)),
            )
        )
        for addr, bundle in prog.image.iter_bundles():
            mems = sum(1 for i in bundle.slots if i.is_memory)
            assert mems <= 2, f"bundle at {addr:#x} has {mems} memory ops"

    def test_branches_terminate_bundles(self):
        machine = _machine()
        prog = ParallelProgram(machine, "e")
        prog.array("a", 64, 1.0)
        fn = prog.kernel(ReduceLoop("r", src_a="a"))
        for addr, bundle in prog.image.iter_bundles():
            for slot, instr in enumerate(bundle.slots):
                if instr.is_branch:
                    assert slot == 2, f"branch not in last slot at {addr:#x}"

    def test_duplicate_kernel_name_rejected(self):
        machine = _machine()
        prog = ParallelProgram(machine, "e")
        prog.array("a", 64, 1.0)
        prog.array("d", 64, 0.0)
        template = StreamLoop("dup", dest="d", terms=(Term("a", 1.0, 0),))
        prog.kernel(template)
        with pytest.raises(CompilerError):
            prog.kernel(template)
