"""Property tests: random in-contract templates compile and their
emitted code round-trips through the disassembler without error;
out-of-contract templates fail with a structured ``CompilerError`` at
construction — never an unhandled exception deeper in codegen."""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler import (
    ComputeLoop,
    GatherLoop,
    HistogramLoop,
    IntSumLoop,
    PrefetchPlan,
    ReduceLoop,
    StreamLoop,
    Term,
)
from repro.compiler.kernels import MAX_SHIFT
from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.errors import CompilerError
from repro.isa.disassembler import disassemble
from repro.runtime import ParallelProgram

COMMON = dict(
    deadline=None, max_examples=40, suppress_health_check=[HealthCheck.too_slow]
)

_names = st.sampled_from(["a", "b", "c", "u", "v", "w"])
_coefs = st.sampled_from([1.0, -1.0, 0.5, -0.25, 2.0, 0.125])
_shifts = st.integers(min_value=-8, max_value=8)
_plans = st.builds(
    PrefetchPlan,
    distance_lines=st.integers(min_value=1, max_value=8),
    prologue_per_stream=st.sampled_from([None, 0, 2]),
    conditional=st.booleans(),
)

_HALO = 16


def _compile_and_disasm(template, plan, arrays, int_arrays=(), result=False):
    """Compile one kernel and round-trip its region through the
    disassembler; returns the disassembly text."""
    prog = ParallelProgram(Machine(itanium2_smp(1)), "prop")
    for name in dict.fromkeys(arrays):
        prog.array(name, 64 + 2 * _HALO)
    for name in dict.fromkeys(int_arrays):
        prog.int_array(name, 64 + 2 * _HALO)
    raw = None
    if result:
        res = prog.array("__res", _HALO)
        raw = {"result": res.base}
    fn = prog.kernel(template, plan=plan)
    prog.region([prog.make_call(fn, _HALO, 32, raw=raw)])
    prog.build()
    start, end = fn.region
    text = disassemble(prog.image, start, end)
    assert text.strip()
    return text


class TestInContract:
    @settings(**COMMON)
    @given(
        terms=st.lists(
            st.tuples(_names, _coefs, _shifts), min_size=1, max_size=8
        ),
        scale=st.one_of(st.none(), st.just("sc")),
        plan=_plans,
    )
    def test_stream_loop_round_trips(self, terms, scale, plan):
        template = StreamLoop(
            "s",
            dest="d",
            terms=tuple(Term(n, c, s) for n, c, s in terms),
            scale=scale,
        )
        arrays = ["d", *(n for n, _, _ in terms)] + ([scale] if scale else [])
        text = _compile_and_disasm(template, plan, arrays)
        assert "br.ctop" in text

    @settings(**COMMON)
    @given(
        src_b=st.one_of(st.none(), st.just("b")),
        plan=_plans,
    )
    def test_reduce_loop_round_trips(self, src_b, plan):
        template = ReduceLoop("r", src_a="a", src_b=src_b)
        _compile_and_disasm(
            template, plan, ["a"] + (["b"] if src_b else []), result=True
        )

    @settings(**COMMON)
    @given(
        sources=st.lists(
            st.tuples(_names, st.sampled_from([0, 8, -8, 16])),
            min_size=1, max_size=10,
        ),
        plan=_plans,
    )
    def test_intsum_loop_round_trips(self, sources, plan):
        template = IntSumLoop("m", dest="di", sources=tuple(sources))
        _compile_and_disasm(
            template, plan, [], int_arrays=["di", *(n for n, _ in sources)]
        )

    @settings(**COMMON)
    @given(flops=st.integers(min_value=1, max_value=16), plan=_plans)
    def test_compute_loop_round_trips(self, flops, plan):
        _compile_and_disasm(ComputeLoop("c", flops_per_iter=flops), plan, [])

    @settings(**COMMON)
    @given(plan=_plans)
    def test_gather_loop_round_trips(self, plan):
        template = GatherLoop("g")
        _compile_and_disasm(
            template, plan, ["a", "x", "y"], int_arrays=["ptr", "col"]
        )

    @settings(**COMMON)
    @given(plan=_plans)
    def test_histogram_loop_round_trips(self, plan):
        text = _compile_and_disasm(
            HistogramLoop("h"), plan, [], int_arrays=["key", "cnt"]
        )
        assert text.strip()


class TestOutOfContract:
    """Invalid templates die at construction with CompilerError."""

    @settings(**COMMON)
    @given(name=st.sampled_from(["", " ", "a b", "x\t", "\n"]))
    def test_bad_names_rejected(self, name):
        with pytest.raises(CompilerError):
            StreamLoop(name, dest="d", terms=(Term("a", 1.0, 0),))
        with pytest.raises(CompilerError):
            StreamLoop("s", dest=name, terms=(Term("a", 1.0, 0),))
        with pytest.raises(CompilerError):
            Term(name, 1.0, 0)

    @settings(**COMMON)
    @given(n=st.integers(min_value=9, max_value=20))
    def test_too_many_stream_terms_rejected(self, n):
        with pytest.raises(CompilerError):
            StreamLoop(
                "s", dest="d", terms=tuple(Term(f"a{i}"[:1] + str(i), 1.0, 0) for i in range(n))
            )

    @settings(**COMMON)
    @given(shift=st.sampled_from([MAX_SHIFT + 1, -(MAX_SHIFT + 1), 1 << 40]))
    def test_huge_shifts_rejected(self, shift):
        with pytest.raises(CompilerError):
            Term("a", 1.0, shift)
        with pytest.raises(CompilerError):
            IntSumLoop("m", dest="d", sources=(("a", shift),))

    @settings(**COMMON)
    @given(coef=st.sampled_from([float("nan"), float("inf"), float("-inf")]))
    def test_non_finite_coefs_rejected(self, coef):
        with pytest.raises(CompilerError):
            Term("a", coef, 0)

    @settings(**COMMON)
    @given(flops=st.sampled_from([-4, 0, 17, 100]))
    def test_compute_flops_out_of_range_rejected(self, flops):
        with pytest.raises(CompilerError):
            ComputeLoop("c", flops_per_iter=flops)

    def test_gather_duplicate_roles_rejected(self):
        with pytest.raises(CompilerError):
            GatherLoop("g", ptr="p", col="p", val="v", x="x", y="y")

    def test_histogram_key_cnt_alias_rejected(self):
        with pytest.raises(CompilerError):
            HistogramLoop("h", key="k", cnt="k")

    def test_bool_shift_rejected(self):
        with pytest.raises(CompilerError):
            Term("a", 1.0, True)
