"""The §2 static alternatives: conditional prefetch and multi-version code."""

import numpy as np

from repro.compiler import PrefetchPlan, StreamLoop, Term
from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.isa import Op
from repro.runtime import ParallelProgram
from repro.workloads import build_daxpy, verify_daxpy


def _stream_prog(machine, plan, n=256, threads=1, reps=1):
    prog = ParallelProgram(machine, "alt")
    prog.array("x", n, np.arange(n, dtype=float))
    prog.array("y", n, 1.0)
    fn = prog.kernel(
        StreamLoop("k", dest="y", terms=(Term("y", 1.0, 0), Term("x", 2.0, 0))), plan
    )
    prog.parallel_for(fn, n, threads)
    prog.build(outer_reps=reps)
    return prog, fn


class TestConditionalPrefetch:
    def test_emits_compare_guarded_lfetch(self):
        machine = Machine(itanium2_smp(1))
        prog, fn = _stream_prog(machine, PrefetchPlan(conditional=True))
        in_loop = [
            prog.image.fetch_bundle(a).slots[s]
            for a, s in prog.image.find_ops(Op.LFETCH, fn.region)
            if a >= fn.loop_head
        ]
        assert in_loop and all(lf.qp == 6 for lf in in_loop), (
            "in-loop lfetches must be guarded by the range-check predicate"
        )
        cmps = prog.image.count_ops(Op.CMP_LT, (fn.loop_head, fn.region[1]))
        assert cmps == len(in_loop), "one more compare per stream (paper §2)"

    def test_numerics_unchanged(self):
        machine = Machine(itanium2_smp(4, scale=4))
        prog = build_daxpy(machine, 2048, 4, outer_reps=5, plan=PrefetchPlan(conditional=True))
        prog.run(max_bundles=100_000_000)
        assert verify_daxpy(prog, 5)

    def test_nullifies_out_of_range_prefetches(self):
        """Conditional prefetch must not touch the neighbour's chunk."""

        def boundary_invalidations(plan):
            machine = Machine(itanium2_smp(4, scale=4))
            prog = build_daxpy(machine, 2048, 4, outer_reps=8, plan=plan)
            result = prog.run(max_bundles=100_000_000)
            return result.events.invalidations_received

        aggressive = boundary_invalidations(PrefetchPlan())
        conditional = boundary_invalidations(PrefetchPlan(conditional=True))
        assert conditional < aggressive * 0.7, (
            "range-checked prefetching removes most prefetch-induced sharing"
        )


class TestMultiVersion:
    def test_small_chunks_take_the_noprefetch_version(self):
        machine = Machine(itanium2_smp(1))
        plan = PrefetchPlan(multiversion=True, multiversion_threshold=1000)
        prog, fn = _stream_prog(machine, plan, n=256)  # 256 < 1000 -> small path
        result = prog.run(max_bundles=10_000_000)
        assert result.events.prefetches == 0, "small chunks must skip prefetching"
        assert np.allclose(prog.f64("y")[:256], 1.0 + 2.0 * np.arange(256))

    def test_large_chunks_take_the_prefetch_version(self):
        machine = Machine(itanium2_smp(1))
        plan = PrefetchPlan(multiversion=True, multiversion_threshold=100)
        prog, fn = _stream_prog(machine, plan, n=256)
        result = prog.run(max_bundles=10_000_000)
        assert result.events.prefetches > 0
        assert np.allclose(prog.f64("y")[:256], 1.0 + 2.0 * np.arange(256))

    def test_both_versions_present_in_binary(self):
        machine = Machine(itanium2_smp(1))
        prog, fn = _stream_prog(machine, PrefetchPlan(multiversion=True))
        assert f".k_loop" in prog.image.labels
        assert f".k_small_loop" in prog.image.labels
        assert f".k_small" in prog.image.labels

    def test_default_cutoff_covers_prefetch_distance(self):
        plan = PrefetchPlan(multiversion=True)
        assert plan.multiversion_cutoff == 2 * 9 * 16  # twice the distance
