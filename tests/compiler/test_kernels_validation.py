"""Kernel template validation rules."""

import pytest

from repro.compiler import (
    ComputeLoop,
    GatherLoop,
    IntSumLoop,
    ReduceLoop,
    StreamLoop,
    Term,
)
from repro.errors import CompilerError


class TestStreamLoop:
    def test_needs_terms(self):
        with pytest.raises(CompilerError):
            StreamLoop("x", dest="d", terms=())

    def test_streams_dedup_and_order(self):
        loop = StreamLoop(
            "x",
            dest="d",
            terms=(Term("a", 1.0, 0), Term("b", 1.0, 0), Term("a", 2.0, 1)),
            scale="w",
        )
        assert loop.load_arrays == ("a", "b", "w")
        assert loop.streams == ("a", "b", "w", "d")

    def test_dest_aliasing_source_not_duplicated(self):
        loop = StreamLoop("x", dest="a", terms=(Term("a", 1.0, 0),))
        assert loop.streams == ("a",)


class TestOthers:
    def test_reduce_streams(self):
        assert ReduceLoop("r", src_a="a").streams == ("a",)
        assert ReduceLoop("r", src_a="a", src_b="b").streams == ("a", "b")
        assert ReduceLoop("r", src_a="a", src_b="a").streams == ("a",)

    def test_intsum_validation(self):
        with pytest.raises(CompilerError):
            IntSumLoop("m", dest="d", sources=())
        with pytest.raises(CompilerError):
            IntSumLoop("m", dest="d", sources=tuple(("s", i) for i in range(11)))
        loop = IntSumLoop("m", dest="d", sources=(("a", 0), ("a", 8)))
        assert loop.streams == ("a", "d")

    def test_compute_validation(self):
        with pytest.raises(CompilerError):
            ComputeLoop("c", flops_per_iter=0)
        with pytest.raises(CompilerError):
            ComputeLoop("c", flops_per_iter=17)

    def test_gather_defaults(self):
        loop = GatherLoop("g")
        assert (loop.ptr, loop.col, loop.val, loop.x, loop.y) == (
            "ptr", "col", "a", "x", "y",
        )
