"""GridBenchmark safety rails and the NumPy mirror machinery."""

import numpy as np
import pytest

from repro.compiler.kernels import StreamLoop, Term
from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.errors import WorkloadError
from repro.workloads.npb.common import StencilSpec, apply_gather, apply_stream
from repro.workloads.npb.grid import GridBenchmark


class TestValidation:
    def test_in_place_shifted_stencil_rejected(self):
        """u[i] = u[i-1] would race across chunk boundaries."""
        with pytest.raises(WorkloadError):
            GridBenchmark(
                "bad", 16,
                [StencilSpec("s", dest="u", terms=(Term("u", 1.0, -1),))],
            )

    def test_in_place_pointwise_allowed(self):
        GridBenchmark(
            "ok", 16, [StencilSpec("s", dest="u", terms=(Term("u", 0.5, 0),))]
        )

    def test_shift_beyond_halo_rejected(self):
        with pytest.raises(WorkloadError):
            GridBenchmark(
                "far", 16,
                [StencilSpec("s", dest="d", terms=(Term("u", 1.0, 10_000),))],
            )


class TestMirrors:
    def test_apply_stream_matches_manual(self):
        arrays = {"a": np.arange(40.0), "d": np.zeros(40)}
        template = StreamLoop(
            "t", dest="d", terms=(Term("a", 2.0, 0), Term("a", 1.0, 1))
        )
        apply_stream(arrays, template, start=4, n=16)
        expect = 2.0 * np.arange(4, 20) + np.arange(5, 21)
        assert np.allclose(arrays["d"][4:20], expect)
        assert np.all(arrays["d"][:4] == 0) and np.all(arrays["d"][20:] == 0)

    def test_apply_stream_with_scale(self):
        arrays = {"a": np.full(16, 3.0), "w": np.arange(16.0), "d": np.zeros(16)}
        template = StreamLoop("t", dest="d", terms=(Term("a", 1.0, 0),), scale="w")
        apply_stream(arrays, template, start=0, n=16)
        assert np.allclose(arrays["d"], 3.0 * np.arange(16))

    def test_apply_gather_accumulates(self):
        arrays = {"x": np.array([1.0, 2.0, 3.0]), "y": np.array([10.0, 0.0])}
        ptr = np.array([0, 2, 3])
        col = np.array([0, 2, 1])
        val = np.array([1.0, 1.0, 5.0])
        apply_gather(arrays, ptr, col, val, "x", "y", rows=2)
        assert np.allclose(arrays["y"], [14.0, 10.0])


class TestCustomGrid:
    def test_small_custom_benchmark_end_to_end(self):
        bench = GridBenchmark(
            "mini", 8,
            [
                StencilSpec(
                    "mini_sweep",
                    dest="v",
                    terms=(Term("u", 0.5, 0), Term("u", 0.25, -8), Term("u", 0.25, 8)),
                ),
                StencilSpec("mini_back", dest="u", terms=(Term("v", 1.0, 0),)),
            ],
            default_reps=2,
        )
        machine = Machine(itanium2_smp(2))
        prog = bench.build(machine, 2)
        prog.run(max_bundles=50_000_000)
        assert bench.verify(prog)
