"""NPB-like suite: every benchmark verifies against its NumPy mirror."""

import pytest

from repro.config import itanium2_smp, sgi_altix
from repro.cpu import Machine
from repro.isa import Op
from repro.workloads import BENCHMARKS, REPORTED

ALL = sorted(BENCHMARKS)


class TestRegistry:
    def test_eight_benchmarks_registered(self):
        assert set(BENCHMARKS) == {"bt", "sp", "lu", "ft", "mg", "cg", "ep", "is"}

    def test_reported_excludes_ep_is(self):
        assert set(REPORTED) == set(BENCHMARKS) - {"ep", "is"}


class TestCorrectness:
    @pytest.mark.parametrize("name", ALL)
    def test_verifies_on_smp_4_threads(self, name):
        bench = BENCHMARKS[name]
        machine = Machine(itanium2_smp(4))
        prog = bench.build(machine, 4, reps=2)
        prog.run(max_bundles=100_000_000)
        assert bench.verify(prog, 2), f"{name} diverged from its NumPy mirror"

    @pytest.mark.parametrize("name", ["bt", "cg", "is"])
    def test_verifies_on_numa_and_single_thread(self, name):
        bench = BENCHMARKS[name]
        machine = Machine(sgi_altix(4))
        prog = bench.build(machine, 4, reps=2)
        prog.run(max_bundles=100_000_000)
        assert bench.verify(prog, 2)
        machine = Machine(itanium2_smp(1))
        prog = bench.build(machine, 1, reps=2)
        prog.run(max_bundles=100_000_000)
        assert bench.verify(prog, 2)

    @pytest.mark.parametrize("name", ["sp", "mg"])
    def test_thread_count_does_not_change_results(self, name):
        bench = BENCHMARKS[name]
        outputs = []
        for threads in (1, 4):
            machine = Machine(itanium2_smp(4))
            prog = bench.build(machine, threads, reps=2)
            prog.run(max_bundles=100_000_000)
            assert bench.verify(prog, 2)
            outputs.append(True)
        assert all(outputs)


class TestStructure:
    def test_coherent_ratio_band_for_reported(self):
        """Class S is coherence-dominated (paper: 60-70 %)."""
        for name in REPORTED:
            machine = Machine(itanium2_smp(4))
            prog = BENCHMARKS[name].build(machine, 4)
            result = prog.run(max_bundles=200_000_000)
            ratio = result.events.coherent_ratio()
            assert ratio > 0.4, f"{name}: coherent ratio {ratio:.2f} too low"

    def test_ep_and_is_have_few_coherent_events(self):
        reported_hitm = []
        for name in ("bt", "cg"):
            machine = Machine(itanium2_smp(4))
            prog = BENCHMARKS[name].build(machine, 4)
            reported_hitm.append(prog.run(max_bundles=200_000_000).events.bus_rd_hitm)
        for name in ("ep", "is"):
            machine = Machine(itanium2_smp(4))
            prog = BENCHMARKS[name].build(machine, 4)
            hitm = prog.run(max_bundles=200_000_000).events.bus_rd_hitm
            assert hitm < min(reported_hitm) / 2, (
                f"{name} must show far fewer coherent misses (paper excludes it)"
            )

    def test_wtop_only_in_gather_benchmarks(self):
        for name, expect_wtop in (("bt", False), ("ft", True), ("cg", True)):
            machine = Machine(itanium2_smp(2))
            prog = BENCHMARKS[name].build(machine, 2, reps=1)
            count = prog.image.count_ops(Op.BR_WTOP)
            assert (count > 0) == expect_wtop, name
