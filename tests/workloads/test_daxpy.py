"""DAXPY workload builder: verification, sizes, plans."""

import pytest

from repro.compiler import NO_PREFETCH
from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.errors import WorkloadError
from repro.workloads import build_daxpy, verify_daxpy, working_set_elems
from repro.workloads.daxpy import DAXPY_CLASSES


class TestWorkingSets:
    def test_classes_scale(self):
        # 128K class, scale 4: 128K/4/2 arrays/8B = 2048 elements
        assert working_set_elems("128K", 4) == 2048
        assert working_set_elems("2M", 16) == 8192
        assert set(DAXPY_CLASSES) == {"128K", "512K", "2M"}

    def test_unknown_class(self):
        with pytest.raises(WorkloadError):
            working_set_elems("4M", 4)


class TestBuildRun:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_numerics_per_thread_count(self, threads):
        machine = Machine(itanium2_smp(4, scale=4))
        prog = build_daxpy(machine, 512, threads, outer_reps=3, a=1.5)
        prog.run(max_bundles=20_000_000)
        assert verify_daxpy(prog, 3, a=1.5)

    def test_noprefetch_plan_still_correct(self):
        machine = Machine(itanium2_smp(4, scale=4))
        prog = build_daxpy(machine, 512, 4, outer_reps=4, plan=NO_PREFETCH)
        prog.run(max_bundles=20_000_000)
        assert verify_daxpy(prog, 4)

    def test_too_small_working_set_rejected(self):
        machine = Machine(itanium2_smp(4))
        with pytest.raises(WorkloadError):
            build_daxpy(machine, 32, 4, outer_reps=1)
