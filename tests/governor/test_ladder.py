"""The degradation ladder: one rung at a time, with hysteresis.

The ladder is a pure function of its pressure observations, so
Hypothesis can drive arbitrary schedules and check the walk invariants
directly: adjacency, threshold gating, streak-earned recoveries, and —
the headline property — no oscillation under pressure held at a rung
boundary.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.governor import RUNGS, DegradationLadder


def _ladder() -> DegradationLadder:
    return DegradationLadder(escalate=0.85, recover=0.60, recovery_windows=3)


class TestLadderUnit:
    def test_starts_full(self):
        assert _ladder().rung == "full"

    def test_escalates_one_rung_per_hot_observation(self):
        ladder = _ladder()
        walked = []
        for _ in range(len(RUNGS) + 2):   # two extra: bounded at "off"
            transition = ladder.observe(1.0)
            if transition is not None:
                walked.append(transition)
        assert [t[1] for t in walked] == list(RUNGS[1:])
        assert ladder.rung == "off"
        assert ladder.observe(1.0) is None   # stays at the bottom

    def test_recovery_needs_full_calm_streak(self):
        ladder = _ladder()
        ladder.observe(0.9)
        assert ladder.rung == "no-new-compiles"
        assert ladder.observe(0.0) is None
        assert ladder.observe(0.0) is None
        assert ladder.observe(0.0) == ("no-new-compiles", "full", 3)
        assert ladder.rung == "full"

    def test_band_observation_resets_the_streak(self):
        ladder = _ladder()
        ladder.observe(0.9)
        ladder.observe(0.0)
        ladder.observe(0.0)
        ladder.observe(0.7)          # in the band: hold + restart clock
        assert ladder.observe(0.0) is None
        assert ladder.observe(0.0) is None
        assert ladder.observe(0.0) is not None

    def test_full_never_recovers_past_itself(self):
        ladder = _ladder()
        for _ in range(10):
            assert ladder.observe(0.0) is None
        assert ladder.rung == "full"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(escalate=0.5, recover=0.5),      # empty band
            dict(escalate=0.4, recover=0.6),      # inverted
            dict(escalate=1.2, recover=0.6),      # escalate > 1
            dict(escalate=0.8, recover=0.0),      # recover <= 0
            dict(recovery_windows=0),
        ],
    )
    def test_constructor_rejects_degenerate_thresholds(self, kwargs):
        with pytest.raises(ValueError):
            DegradationLadder(**kwargs)


PRESSURES = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    max_size=60,
)


class TestLadderProperties:
    @given(pressures=PRESSURES)
    def test_walk_invariants(self, pressures):
        ladder = _ladder()
        rung = "full"
        for pressure in pressures:
            transition = ladder.observe(pressure)
            if transition is None:
                continue
            frm, to, streak = transition
            assert frm == rung
            assert abs(RUNGS.index(to) - RUNGS.index(frm)) == 1
            if RUNGS.index(to) > RUNGS.index(frm):
                assert pressure >= ladder.escalate
                assert streak == 0
            else:
                assert pressure <= ladder.recover
                assert streak >= ladder.recovery_windows
            rung = to
        assert ladder.rung == rung

    @given(
        prefix=PRESSURES,
        band=st.lists(
            # strictly inside the (recover, escalate) hysteresis band
            st.floats(min_value=0.601, max_value=0.849, allow_nan=False),
            max_size=40,
        ),
    )
    def test_pressure_held_in_the_band_never_moves_the_rung(self, prefix, band):
        ladder = _ladder()
        for pressure in prefix:
            ladder.observe(pressure)
        rung = ladder.rung
        for pressure in band:
            assert ladder.observe(pressure) is None
            assert ladder.rung == rung

    @given(prefix=PRESSURES)
    def test_sustained_calm_always_converges_to_full(self, prefix):
        ladder = _ladder()
        for pressure in prefix:
            ladder.observe(pressure)
        for _ in range((len(RUNGS) - 1) * ladder.recovery_windows):
            ladder.observe(0.0)
        assert ladder.rung == "full"

    @given(prefix=PRESSURES)
    def test_sustained_pressure_descends_monotonically_to_off(self, prefix):
        ladder = _ladder()
        for pressure in prefix:
            ladder.observe(pressure)
        index = ladder.rung_index
        for _ in range(len(RUNGS)):
            ladder.observe(1.0)
            assert ladder.rung_index >= index
            index = ladder.rung_index
        assert ladder.rung == "off"
