"""OverloadHarness integration: schedules inject, invariants hold, and
the report is byte-identical at any worker count."""

from __future__ import annotations

import pytest

from repro.governor import OVERLOAD_SCHEDULES, OverloadHarness
from repro.validate.differential import daxpy_spec, default_machines


@pytest.fixture(scope="module")
def sweep():
    machines = {
        name: factory
        for name, factory in default_machines(2).items()
        if name.startswith("smp")
    }
    harness = OverloadHarness(
        daxpy_spec(n_threads=2, reps=6),
        machines=machines,
        schedules={
            "shrink": OVERLOAD_SCHEDULES["shrink"],
            "everything": OVERLOAD_SCHEDULES["everything"],
        },
        seeds=(0, 1),
    )
    return harness, harness.run(jobs=1)


class TestOverloadSweep:
    def test_sweep_passes_and_actually_injects(self, sweep):
        _harness, report = sweep
        assert report.ok, report.summary()
        assert report.total_injected() > 0
        assert len(report.records) == 4   # 1 machine x 2 schedules x 2 seeds

    def test_digests_bit_identical_to_clean_run(self, sweep):
        _harness, report = sweep
        for record in report.records:
            assert record.digest == report.baseline_digests[record.machine]

    def test_every_record_carries_an_accounted_ledger(self, sweep):
        _harness, report = sweep
        for record in report.records:
            if record.governor.get("injected", 0):
                assert record.ledger is not None
                assert record.ledger.accounted

    def test_report_byte_identical_at_any_jobs(self, sweep):
        harness, report = sweep
        assert harness.run(jobs=2).summary() == report.summary()
