"""ResourceGovernor: budgets, deterministic eviction, ledger accounting.

The eviction property here is the ISSUE contract verbatim: victim order
is a pure function of cache state — the same pressure schedule evicts
the same victims in the same order, regardless of how the resident
copies were interleaved into the cache.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from hypothesis import given, strategies as st

from repro.config import FaultConfig, GovernorConfig, OverloadConfig
from repro.core.tracecache import UNTOUCHED, TraceCache, TraceVersion, VersionSet
from repro.core.tracesel import LoopTrace
from repro.faults import FaultInjector
from repro.governor import ResourceGovernor, max_recovery_wakes
from repro.isa.bundle import Bundle
from repro.isa.instructions import nop


def _governor(faults=None, **kwargs) -> ResourceGovernor:
    return ResourceGovernor(GovernorConfig(**kwargs), capacity=100, faults=faults)


def _empty_cache() -> TraceCache:
    return TraceCache()


def _populate(cache: TraceCache, spec, order) -> None:
    """Install synthetic resident versions per ``spec``, activated in
    ``order`` (which assigns the last-used clock)."""
    versions = {}
    for head, opts, active, sizes in spec:
        vs = VersionSet(loop=LoopTrace(head=head, back_branch=head, hotness=1))
        vs.active = active
        for opt in opts:
            entry = cache.image.here()
            for _ in range(sizes[opt]):
                cache.image.append(Bundle([nop("M"), nop("I"), nop("I")]))
            version = TraceVersion(opt, entry, 0, sizes[opt], ())
            vs.versions[opt] = version
            versions[(head, opt)] = version
        cache.version_sets[head] = vs
    for tick, key in enumerate(order, start=1):
        versions[key].last_used = tick


@st.composite
def _cache_plans(draw):
    n_loops = draw(st.integers(min_value=1, max_value=4))
    spec = []
    for i in range(n_loops):
        head = 0x4000_0000 + i * 64
        opts = draw(
            st.lists(
                st.sampled_from(["noprefetch", "excl", "ld"]),
                min_size=1, max_size=3, unique=True,
            )
        )
        active = draw(st.sampled_from(list(opts) + [UNTOUCHED]))
        sizes = {opt: draw(st.integers(min_value=1, max_value=3)) for opt in opts}
        spec.append((head, tuple(opts), active, sizes))
    keys = [(head, opt) for head, opts, _, _ in spec for opt in opts]
    order = draw(st.permutations(keys))
    target = draw(st.integers(min_value=0, max_value=12))
    return spec, order, target


class TestEvictionDeterminism:
    @given(plan=_cache_plans())
    def test_victim_order_is_a_pure_function_of_cache_state(self, plan):
        spec, order, target = plan
        last_used = {key: tick for tick, key in enumerate(order, start=1)}
        sizes = {
            (head, opt): s[opt] for head, opts, _, s in spec for opt in opts
        }
        active = {head: act for head, _, act, _ in spec}

        caches = []
        for _ in range(2):
            cache = _empty_cache()
            _populate(cache, spec, order)
            caches.append(cache)
        victims = [cache.evict_cold(target) for cache in caches]

        # byte-identical victim order (and log) across identical builds
        assert victims[0] == victims[1]
        assert caches[0].recovery_log == caches[1].recovery_log

        # matches the specified semantics exactly: coldest-first over
        # the inactive versions, stopping once under the target
        used = sum(sizes.values())
        expected = []
        candidates = sorted(
            (last_used[(head, opt)], head, opt)
            for head, opts, act, _ in spec
            for opt in opts
            if opt != act
        )
        for _, head, opt in candidates:
            if used <= target:
                break
            expected.append((head, opt, sizes[(head, opt)]))
            used -= sizes[(head, opt)]
        assert victims[0] == expected

        # the live copy is never a victim, and every victim left the set
        for head, opt, _ in victims[0]:
            assert opt != active[head]
            assert opt not in caches[0].version_sets[head].versions


class TestAdmission:
    def test_admit_keeps_live_footprint_under_recovery_headroom(self):
        gov = _governor(trace_cache_budget=100, recover_pressure=0.6)
        assert gov.admit_deploy(0, 60)
        assert not gov.admit_deploy(0, 61)
        assert gov.admit_deploy(50, 10)
        assert not gov.admit_deploy(50, 11)

    def test_budget_clamped_to_capacity(self):
        gov = ResourceGovernor(
            GovernorConfig(trace_cache_budget=10_000), capacity=100
        )
        assert gov.trace_budget == 100


class TestLedgerAccounting:
    def test_refusals_count_every_time_but_log_once_per_budget(self):
        gov = _governor()
        gov.note_refused(0x4000_0000, 8)
        gov.note_refused(0x4000_0000, 8)
        assert gov.deploys_refused == 2
        refused = [e for e in gov.faults.events if e.kind == "deploy_refused"]
        assert len(refused) == 1

    def test_refusal_relogs_after_a_budget_change(self):
        gov = _governor()
        gov.note_refused(0x4000_0000, 8)
        gov.trace_budget -= 1
        gov.note_refused(0x4000_0000, 8)
        refused = [e for e in gov.faults.events if e.kind == "deploy_refused"]
        assert len(refused) == 2

    def test_private_ledger_stays_accounted(self):
        gov = _governor()
        assert gov.private_ledger
        gov.note_evicted([(0x4000_0000, "noprefetch", 4)])
        gov.note_shed_samples(3, cpu_id=1)
        gov.note_compacted(2)
        assert gov.faults.ledger().accounted
        assert gov.evictions == 1 and gov.evicted_bundles == 4
        assert gov.shed_samples == 3 and gov.db_compacted == 2

    def test_shared_ledger_is_reused_not_replaced(self):
        injector = FaultInjector(
            FaultConfig(seed=1, sample_rate=0.0, patch_rate=0.0, loop_rate=0.0)
        )
        gov = _governor(faults=injector)
        assert not gov.private_ledger
        gov.note_shed_samples(1, cpu_id=0)
        assert injector.events[-1].kind == "samples_shed"


class TestGovernedWake:
    def test_budget_shrink_clamps_to_floor_and_is_detected(self):
        gov = _governor(
            budget_floor=64,
            overload=OverloadConfig(seed=0, shrink_rate=1.0),
        )
        cache = _empty_cache()
        for _ in range(6):
            gov.on_wake(0, cache)
        assert gov.trace_budget == 64
        shrinks = [e for e in gov.faults.events if e.kind == "budget_shrink"]
        assert shrinks and all(e.status == "detected" for e in shrinks)
        assert gov.faults.ledger().accounted

    def test_sustained_flood_walks_the_ladder_down(self):
        gov = _governor(
            recovery_windows=2,
            overload=OverloadConfig(seed=0, flood_rate=1.0, flood_windows=2),
        )
        cache = _empty_cache()
        for _ in range(8):
            gov.on_wake(0, cache)
        assert gov.rung == "off"
        walk = [(t["from"], t["to"]) for t in gov.transitions]
        assert walk == [
            ("full", "no-new-compiles"),
            ("no-new-compiles", "monitor-only"),
            ("monitor-only", "frozen"),
            ("frozen", "off"),
        ]

    def test_calm_wakes_recover_to_full_within_the_guaranteed_horizon(self):
        config = GovernorConfig(
            recovery_windows=2,
            overload=OverloadConfig(
                seed=0, flood_rate=1.0, flood_windows=1, max_events=4
            ),
        )
        gov = ResourceGovernor(config, capacity=100)
        cache = _empty_cache()
        for _ in range(4):
            gov.on_wake(0, cache)      # schedule exhausts (max_events)
        for _ in range(max_recovery_wakes(config) + 1):
            gov.on_wake(0, cache)
        assert gov.rung == "full"
        assert gov.overload.injected == 4

    def test_outbox_batches_shed_oldest_with_accounting(self):
        gov = _governor(outbox_batches=2)
        outbox = SimpleNamespace(windows=["b0", "b1", "b2", "b3"])
        gov.on_wake(0, _empty_cache(), outbox=outbox)
        assert outbox.windows == ["b2", "b3"]
        assert gov.shed_batches == 2
        assert any(e.kind == "batches_shed" for e in gov.faults.events)

    def test_slow_disk_is_tolerated_and_decays(self):
        gov = _governor(
            overload=OverloadConfig(seed=0, disk_rate=1.0, max_events=1),
        )
        cache = _empty_cache()
        gov.on_wake(0, cache)
        assert gov.last_pressure == 1.0
        slow = [e for e in gov.faults.events if e.kind == "slow_disk"]
        assert len(slow) == 1 and slow[0].status == "tolerated"
        gov.on_wake(0, cache)
        assert gov.last_pressure == 0.5   # gauge halves per wake
        assert gov.faults.ledger().accounted

    def test_identical_seeds_produce_identical_reports(self):
        def run():
            gov = _governor(
                recovery_windows=2,
                overload=OverloadConfig(
                    seed=9, shrink_rate=0.3, flood_rate=0.3,
                    disk_rate=0.3, storm_rate=0.3, max_events=10,
                ),
            )
            cache = _empty_cache()
            for retired in range(0, 300, 10):
                gov.on_wake(retired, cache)
            return gov.report()

        assert run() == run()


def _jit_node(head: int, n_bundles: int, stamp: int):
    from repro.cpu.tracejit import CompiledTrace

    node = CompiledTrace(
        fn=lambda *args: None, head=head, sor=0, addrs=(head,), keys=(None,),
        n_bundles=n_bundles, source="", kind="loop", body=[], bpc=2,
    )
    node.last_used = stamp
    return node


class TestJitFootprintBudget:
    def _core_with_nodes(self, sizes):
        from repro.cpu.tracejit import TraceJit

        tjit = TraceJit()
        for i, n in enumerate(sizes):
            node = _jit_node(0x4000_0000 + 64 * i, n, stamp=i)
            tjit.traces[node.head] = node
        return SimpleNamespace(cpu_id=1, trace_jit=tjit)

    def test_cold_tree_nodes_evicted_to_budget_with_ledger(self):
        gov = _governor(jit_node_budget=4)
        core = self._core_with_nodes((3, 2, 2))
        gov.on_wake(0, _empty_cache(), cores=[core])
        tjit = core.trace_jit
        assert tjit.compiled_footprint() <= 4
        # coldest-entered first: the stamp-0 node (3 bundles) goes
        assert 0x4000_0000 not in tjit.traces
        assert gov.jit_evictions == 1
        assert gov.jit_evicted_bundles == 3
        report = gov.report()
        assert report["jit_evictions"] == 1
        assert report["jit_evicted_bundles"] == 3
        # evicted heads must re-prove hotness from zero (the compile
        # trigger is exact-equality on the threshold)
        assert tjit.hot[0x4000_0000] == 0
        assert tjit.generation >= 1

    def test_within_budget_is_a_noop(self):
        gov = _governor(jit_node_budget=16)
        core = self._core_with_nodes((3, 2))
        gov.on_wake(0, _empty_cache(), cores=[core])
        assert len(core.trace_jit.traces) == 2
        assert gov.jit_evictions == 0

    def test_unbounded_when_budget_is_none(self):
        gov = _governor(jit_node_budget=None)
        core = self._core_with_nodes((50, 50, 50))
        gov.on_wake(0, _empty_cache(), cores=[core])
        assert len(core.trace_jit.traces) == 3
        assert gov.jit_evictions == 0

    def test_budget_validated(self):
        with pytest.raises(ValueError, match="jit_node_budget"):
            GovernorConfig(jit_node_budget=0)


class TestRecoveryHorizon:
    def test_max_recovery_wakes_covers_the_whole_ladder(self):
        config = GovernorConfig(recovery_windows=3)
        assert max_recovery_wakes(config) == 12   # 4 rungs x 3 windows
