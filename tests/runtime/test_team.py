"""Parallel program builder: chunking, regions, barriers, results."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.compiler import ReduceLoop, StreamLoop, Term
from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.errors import RuntimeError_
from repro.runtime import ParallelProgram, static_chunks


class TestStaticChunks:
    @given(st.integers(0, 10_000), st.integers(1, 16))
    def test_partition_covers_range_exactly(self, n, t):
        chunks = static_chunks(n, t)
        assert len(chunks) == t
        covered = []
        for start, count in chunks:
            assert count >= 0
            covered.extend(range(start, start + count))
        assert covered == list(range(n))

    @given(st.integers(1, 10_000), st.integers(1, 16))
    def test_chunks_are_balanced(self, n, t):
        counts = [c for _, c in static_chunks(n, t) if c]
        assert max(counts) - min(counts) <= -(-n // t)

    def test_bad_args(self):
        with pytest.raises(RuntimeError_):
            static_chunks(-1, 2)
        with pytest.raises(RuntimeError_):
            static_chunks(4, 0)


def _daxpy_prog(machine, n=256, threads=2, reps=3):
    prog = ParallelProgram(machine, "t")
    prog.array("x", n, np.arange(n, dtype=float))
    prog.array("y", n, 1.0)
    fn = prog.kernel(StreamLoop("k", dest="y", terms=(Term("y", 1.0, 0), Term("x", 2.0, 0))))
    prog.parallel_for(fn, n, threads)
    prog.build(outer_reps=reps)
    return prog


class TestBuildAndRun:
    def test_parallel_for_correctness(self, smp4):
        prog = _daxpy_prog(smp4, threads=4, reps=5)
        result = prog.run()
        assert np.allclose(prog.f64("y")[:256], 1.0 + 10.0 * np.arange(256))
        assert result.cycles > 0 and result.retired > 0
        assert len(result.per_cpu_cycles) == 4

    def test_single_thread_no_barrier(self, smp4):
        prog = _daxpy_prog(smp4, threads=1, reps=2)
        assert "__barrier_t" not in prog.image.labels
        prog.run()
        assert np.allclose(prog.f64("y")[:256], 1.0 + 4.0 * np.arange(256))

    def test_barrier_synchronizes_regions(self, smp4):
        """Region 2 reads what region 1 wrote across chunk boundaries."""
        n = 256
        prog = ParallelProgram(smp4, "b")
        prog.array("a", n + 64, 1.0)
        prog.array("b", n + 64, 0.0)
        prog.array("c", n + 64, 0.0)
        f1 = prog.kernel(StreamLoop("w", dest="b", terms=(Term("a", 3.0, 0),)))
        # shifted read crosses chunk boundaries: needs the barrier
        f2 = prog.kernel(StreamLoop("r", dest="c", terms=(Term("b", 1.0, 16),)))
        from repro.runtime.team import static_chunks as chunks

        for fn in (f1, f2):
            prog.region(
                [prog.make_call(fn, s, c) if c else None for s, c in chunks(n, 4)]
            )
        prog.build(outer_reps=2)
        prog.run()
        assert np.allclose(prog.f64("c")[: n - 16], 3.0)

    def test_run_result_is_delta(self, smp4):
        prog = _daxpy_prog(smp4, threads=2, reps=1)
        first = prog.run()
        # a second identical build on the same machine measures only itself
        prog2 = ParallelProgram(smp4, "t2")
        prog2.array("x2", 64, 1.0)
        fn = prog2.kernel(StreamLoop("k2", dest="x2", terms=(Term("x2", 1.0, 0),)))
        prog2.parallel_for(fn, 64, 2)
        prog2.build()
        second = prog2.run()
        assert second.cycles < first.cycles

    def test_region_thread_count_must_match(self, smp4):
        prog = ParallelProgram(smp4, "m")
        prog.array("x", 64, 1.0)
        fn = prog.kernel(StreamLoop("k", dest="x", terms=(Term("x", 1.0, 0),)))
        prog.parallel_for(fn, 64, 2)
        with pytest.raises(RuntimeError_):
            prog.parallel_for(fn, 64, 3)

    def test_build_validation(self, smp4):
        prog = ParallelProgram(smp4, "v")
        with pytest.raises(RuntimeError_):
            prog.build()  # no regions
        prog2 = _daxpy_prog(smp4)
        with pytest.raises(RuntimeError_):
            prog2.build()  # already built
        with pytest.raises(RuntimeError_):
            ParallelProgram(smp4, "w").build(outer_reps=0)

    def test_run_requires_build(self, smp4):
        prog = ParallelProgram(smp4, "u")
        with pytest.raises(RuntimeError_):
            prog.run()

    def test_make_call_raw_required(self, smp4):
        prog = ParallelProgram(smp4, "raw")
        prog.array("a", 64, 1.0)
        fn = prog.kernel(ReduceLoop("red", src_a="a"))
        with pytest.raises(RuntimeError_):
            prog.make_call(fn, 0, 64)  # missing the result address
        call = prog.make_call(fn, 0, 64, raw={"result": prog.arrays["a"].addr(0)})
        assert len(call.args) == len(fn.params)

    def test_call_arity_checked(self, smp4):
        from repro.runtime.team import Call

        prog = ParallelProgram(smp4, "ar")
        prog.array("a", 64, 1.0)
        fn = prog.kernel(StreamLoop("k", dest="a", terms=(Term("a", 1.0, 0),)))
        with pytest.raises(RuntimeError_):
            Call(fn, (1, 2))
