"""SimThread bookkeeping."""

from repro.config import itanium2_smp
from repro.cpu import Machine, Scheduler
from repro.isa import assemble
from repro.runtime.thread import SimThread


class TestSimThread:
    def test_start_and_done(self):
        machine = Machine(itanium2_smp(2))
        image = assemble("halt\n")
        machine.load_image(image)
        thread = SimThread(tid=0, core=machine.cores[1], entry=image.base)
        assert thread.done  # core starts halted
        thread.start()
        assert not thread.done
        assert thread.cpu_id == 1
        Scheduler(machine.cores).run_until_halt(100)
        assert thread.done
