"""Thread binding policies and the fetchadd8 barrier."""

import pytest

from repro.config import itanium2_smp, sgi_altix
from repro.cpu import Machine, Scheduler
from repro.errors import RuntimeError_
from repro.isa import assemble
from repro.isa.binary import BinaryImage
from repro.isa.instructions import Instruction, Op
from repro.compiler.codegen import Emitter
from repro.runtime import bind_threads
from repro.runtime.barrier import emit_barrier


class TestAffinity:
    def test_compact(self):
        assert bind_threads(sgi_altix(8), 4, "compact") == [0, 1, 2, 3]

    def test_scatter_round_robins_nodes(self):
        cpus = bind_threads(sgi_altix(8), 4, "scatter")
        assert cpus == [0, 2, 4, 6]

    def test_validation(self):
        with pytest.raises(RuntimeError_):
            bind_threads(itanium2_smp(4), 5)
        with pytest.raises(RuntimeError_):
            bind_threads(itanium2_smp(4), 0)
        with pytest.raises(RuntimeError_):
            bind_threads(itanium2_smp(4), 2, "random")


class TestBarrier:
    def _build(self, machine, n_threads, rounds):
        image = BinaryImage()
        em = Emitter(image)
        emit_barrier(em, machine.mem, n_threads, "__bar")
        counter = machine.mem.alloc("progress", 128 * n_threads)
        for tid in range(n_threads):
            em.label(f"__t{tid}")
            em.emit(Instruction(Op.MOVI, r1=10, imm=rounds))
            em.label(f".outer{tid}")  # label() flushes pending instructions
            # record the round number then wait for everyone
            em.emit(Instruction(Op.MOVI, r1=11, imm=counter.addr(16 * tid)))
            em.emit(Instruction(Op.LD8, r1=12, r2=11, unit="M"))
            em.emit(Instruction(Op.ADDI, r1=12, r2=12, imm=1))
            em.emit(Instruction(Op.ST8, r2=11, r3=12, unit="M"))
            em.emit(Instruction(Op.BR_CALL, label="__bar", unit="B"))
            em.emit(Instruction(Op.ADDI, r1=10, r2=10, imm=-1))
            em.emit(Instruction(Op.CMPI_NE, r1=6, r2=7, r3=10, imm=0))
            em.emit(Instruction(Op.BR_COND, qp=6, label=f".outer{tid}", unit="B"))
            em.emit(Instruction(Op.HALT, unit="B"))
            em.flush()
        image.link()
        machine.load_image(image)
        return image, counter

    def test_all_threads_complete_all_rounds(self):
        machine = Machine(itanium2_smp(4))
        image, counter = self._build(machine, 4, rounds=7)
        for tid in range(4):
            machine.cores[tid].start(image.labels[f"__t{tid}"])
        Scheduler(machine.cores).run_until_halt(3_000_000)
        for tid in range(4):
            assert machine.mem.read_i64(counter.addr(16 * tid)) == 7

    def test_barrier_state_resets_between_rounds(self):
        machine = Machine(itanium2_smp(2))
        image, _ = self._build(machine, 2, rounds=20)
        for tid in range(2):
            machine.cores[tid].start(image.labels[f"__t{tid}"])
        Scheduler(machine.cores).run_until_halt(3_000_000)
        count_addr = machine.mem.allocations["__bar_state"].base
        assert machine.mem.read_i64(count_addr) == 0
        assert machine.mem.read_i64(count_addr + 128) == 20  # generation
