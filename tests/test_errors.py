"""Exception hierarchy contracts."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is errors.ReproError:
                    continue
                assert issubclass(obj, errors.ReproError), name

    def test_assembly_error_carries_line(self):
        err = errors.AssemblyError("bad", line=42)
        assert err.line == 42 and "line 42" in str(err)
        assert errors.AssemblyError("bad").line is None

    def test_simulation_fault_formats_context(self):
        err = errors.SimulationFault("boom", pc=0x40000000, cpu=2)
        text = str(err)
        assert "cpu 2" in text and "0x40000000" in text and "boom" in text

    def test_isa_errors_are_isa(self):
        for cls in (
            errors.AssemblyError,
            errors.RegisterError,
            errors.BundleError,
            errors.BinaryError,
        ):
            assert issubclass(cls, errors.IsaError)

    def test_cobra_errors(self):
        assert issubclass(errors.TraceCacheError, errors.CobraError)

    def test_catchable_at_the_api_boundary(self):
        from repro.config import CacheConfig

        with pytest.raises(ValueError):
            # config validation is plain ValueError (stdlib dataclasses)
            CacheConfig(size_bytes=7)
        with pytest.raises(errors.ReproError):
            raise errors.WorkloadError("x")


class TestValidationErrors:
    def test_validation_hierarchy(self):
        assert issubclass(errors.ValidationError, errors.ReproError)
        assert issubclass(errors.InvariantViolation, errors.ValidationError)
        with pytest.raises(errors.ReproError):
            raise errors.InvariantViolation("broken")

    def test_invariant_violation_payload(self):
        from repro.validate import AccessEvent

        event = AccessEvent(cpu=1, line=0x100_0000, kind=1)
        err = errors.InvariantViolation(
            "two owners",
            invariant="exclusive-owner",
            line=0x100_0000,
            states={0: "M", 1: "M"},
            event=event,
        )
        assert err.invariant == "exclusive-owner"
        assert err.line == 0x100_0000
        assert err.states == {0: "M", 1: "M"}
        assert err.event is event
        text = str(err)
        assert "[exclusive-owner]" in text
        assert "two owners" in text
        assert "line 0x1000000" in text
        assert "states {cpu0=M,cpu1=M}" in text
        assert "on cpu1 store" in text

    def test_invariant_violation_minimal_form(self):
        err = errors.InvariantViolation("just a message")
        assert err.invariant == "" and err.line is None
        assert err.states == {} and err.event is None
        assert str(err) == "just a message"

    def test_invariant_violation_copies_states(self):
        states = {0: "S"}
        err = errors.InvariantViolation("x", states=states)
        states[1] = "M"
        assert err.states == {0: "S"}
