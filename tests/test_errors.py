"""Exception hierarchy contracts."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is errors.ReproError:
                    continue
                assert issubclass(obj, errors.ReproError), name

    def test_assembly_error_carries_line(self):
        err = errors.AssemblyError("bad", line=42)
        assert err.line == 42 and "line 42" in str(err)
        assert errors.AssemblyError("bad").line is None

    def test_simulation_fault_formats_context(self):
        err = errors.SimulationFault("boom", pc=0x40000000, cpu=2)
        text = str(err)
        assert "cpu 2" in text and "0x40000000" in text and "boom" in text

    def test_isa_errors_are_isa(self):
        for cls in (
            errors.AssemblyError,
            errors.RegisterError,
            errors.BundleError,
            errors.BinaryError,
        ):
            assert issubclass(cls, errors.IsaError)

    def test_cobra_errors(self):
        assert issubclass(errors.TraceCacheError, errors.CobraError)

    def test_catchable_at_the_api_boundary(self):
        from repro.config import CacheConfig

        with pytest.raises(ValueError):
            # config validation is plain ValueError (stdlib dataclasses)
            CacheConfig(size_bytes=7)
        with pytest.raises(errors.ReproError):
            raise errors.WorkloadError("x")
