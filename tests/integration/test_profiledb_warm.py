"""Cross-run profile database: warm starts, determinism, damage cells.

End-to-end over the coherence-dominated DAXPY recipe the warm-restart
tests use:

* a cold run records its miss profile and proven decisions into the
  database;
* a second run of the same binary on the same machine config seeds
  from it — proven optimizations re-deploy *before the first
  instruction* (``ramp_retired == 0``) and outputs stay bit-identical;
* a different strategy, machine config, or binary never hits a foreign
  entry;
* with the database absent, freshly created, or corrupted, the run is
  bit-identical to a run with no database at all.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.compiler import StreamLoop, Term
from repro.config import ProfileDBConfig, itanium2_smp
from repro.core import run_with_cobra
from repro.cpu import Machine
from repro.persist import PROFILEDB_NAME, MemoryDisk
from repro.runtime import ParallelProgram
from repro.validate.differential import _digest, _snapshot_arrays

N = 2048
REPS = 14
THREADS = 4


def _build(machine: Machine) -> ParallelProgram:
    prog = ParallelProgram(machine, "dbwarm")
    prog.array("x", N, np.arange(N, dtype=float))
    prog.array("y", N, 1.0)
    fn = prog.kernel(
        StreamLoop("daxpy", dest="y", terms=(Term("y", 1.0, 0), Term("x", 2.0, 0)))
    )
    prog.parallel_for(fn, N, THREADS)
    prog.build(outer_reps=REPS)
    return prog


def _run(disk=None, strategy="noprefetch", scale=4):
    machine = Machine(itanium2_smp(THREADS, scale=scale))
    prog = _build(machine)
    config = dataclasses.replace(machine.config.cobra, optimize_interval=30_000)
    if disk is not None:
        config = dataclasses.replace(
            config, profile_db=ProfileDBConfig(disk=disk)
        )
    result, report = run_with_cobra(prog, strategy, config=config)
    return prog, result, report


def _seeded_deploys(report):
    return [
        e for e in report.events
        if e.kind == "deploy" and e.reason.startswith("profile-db")
    ]


class TestWarmStart:
    @pytest.fixture(scope="class")
    def cold_and_warm(self):
        disk = MemoryDisk()
        cold = _run(disk)
        warm = _run(disk)
        return disk, cold, warm

    def test_cold_run_records_an_entry(self, cold_and_warm):
        disk, (_prog, _result, report), _ = cold_and_warm
        db = report.profile_db
        assert db["source"] == "miss"
        assert db["runs_recorded"] == 1
        assert db["saved"]
        assert disk.exists(PROFILEDB_NAME)

    def test_warm_run_seeds_before_any_execution(self, cold_and_warm):
        _, _, (_prog, _result, report) = cold_and_warm
        assert report.profile_db["source"] == "hit"
        assert report.profile_db["seeded_loops"] >= 1
        assert report.ramp_retired == 0
        seeded = _seeded_deploys(report)
        assert seeded and all(e.retired == 0 for e in seeded)

    def test_outputs_bit_identical_across_runs(self, cold_and_warm):
        _, (prog_cold, _, _), (prog_warm, _, _) = cold_and_warm
        assert _digest(_snapshot_arrays(prog_warm)) == _digest(
            _snapshot_arrays(prog_cold)
        )

    def test_warm_run_skips_most_of_the_profiling_ramp(self, cold_and_warm):
        _, (_, _, cold_report), (_, _, warm_report) = cold_and_warm
        cold_ramp = cold_report.ramp_retired
        assert cold_ramp and cold_ramp > 0
        # the acceptance bar: >= 90% less profiling time on the warm run
        assert warm_report.ramp_retired <= cold_ramp * 0.1

    def test_trace_tree_shapes_persist_and_seed_warm_jit(self, cold_and_warm):
        disk, _cold, (_prog, _result, warm_report) = cold_and_warm
        from repro.persist import ProfileDB

        db = ProfileDB(disk)
        db.load()
        (entry,) = db.entries.values()
        shapes = entry.get("jit_trees")
        # the cold run's hot loops left resident compiled traces whose
        # shapes were persisted with the entry...
        assert shapes
        assert all(
            len(s) == 4 and s[2] in ("loop", "linear") for s in shapes
        )
        assert shapes == sorted(shapes)
        # ...and the warm run recompiled them before the first
        # instruction, so compiled dispatch is live at retired 0
        assert any(
            e.kind == "deploy" and "trace-tree node" in e.reason
            for e in warm_report.events
        )

    def test_database_accumulates_runs(self, cold_and_warm):
        disk, _, _ = cold_and_warm
        _prog, _result, report = _run(disk)
        from repro.persist import ProfileDB

        db = ProfileDB(disk)
        db.load()
        (entry,) = db.entries.values()
        assert entry["runs"] == 3

    def test_report_carries_the_profile_db_line(self, cold_and_warm):
        _, _, (_prog, _result, report) = cold_and_warm
        text = report.summary()
        assert "profile-db: hit" in text
        assert "warm at 0 retired" in text
        assert "versions [" in text


class TestKeyIsolation:
    def test_different_strategy_misses(self):
        disk = MemoryDisk()
        _run(disk, strategy="noprefetch")
        _prog, _result, report = _run(disk, strategy="excl")
        assert report.profile_db["source"] == "miss"
        assert report.profile_db["entries"] == 2  # both recorded

    def test_different_machine_config_misses(self):
        disk = MemoryDisk()
        _run(disk, scale=4)
        _prog, _result, report = _run(disk, scale=8)
        assert report.profile_db["source"] == "miss"


class TestDeterminism:
    def test_cold_database_run_matches_no_database_run(self):
        prog_off, result_off, report_off = _run(disk=None)
        prog_on, result_on, report_on = _run(disk=MemoryDisk())
        assert report_off.profile_db is None
        assert _digest(_snapshot_arrays(prog_on)) == _digest(
            _snapshot_arrays(prog_off)
        )
        assert result_on.cycles == result_off.cycles
        assert result_on.retired == result_off.retired

    def test_corrupt_database_run_matches_no_database_run(self):
        disk = MemoryDisk()
        _run(disk)  # produce a real database, then damage it
        blob = disk.files[PROFILEDB_NAME]
        blob[len(blob) // 2] ^= 0xFF
        prog_off, result_off, _ = _run(disk=None)
        prog_bad, result_bad, report_bad = _run(disk=disk)
        assert report_bad.profile_db["source"] == "corrupt"
        assert report_bad.profile_db["seeded_loops"] == 0
        assert _digest(_snapshot_arrays(prog_bad)) == _digest(
            _snapshot_arrays(prog_off)
        )
        assert result_bad.cycles == result_off.cycles

    def test_corrupt_database_is_rewritten_clean(self):
        disk = MemoryDisk()
        _run(disk)
        blob = disk.files[PROFILEDB_NAME]
        blob[len(blob) // 2] ^= 0xFF
        _run(disk)  # loads empty, records, saves
        _prog, _result, report = _run(disk)
        assert report.profile_db["source"] == "hit"
