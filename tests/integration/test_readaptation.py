"""Continuous re-adaptation across a phase change (the C and R in COBRA).

Phase 1 runs DAXPY over a cache-resident slice where aggressive
prefetching causes coherent misses — COBRA deploys noprefetch.  Phase 2
switches the same loop to a streaming working set where prefetching is
essential — the deployed trace now hurts, the windowed CPI degrades,
and COBRA rolls the deployment back, restoring the original bundles.
"""

import dataclasses

import numpy as np

from repro.compiler import StreamLoop, Term
from repro.config import itanium2_smp
from repro.core import run_with_cobra
from repro.cpu import Machine
from repro.runtime import ParallelProgram

SMALL = 2048      # fits the scale-4 L2s: coherence-dominated
LARGE = 32768     # streams through L3: prefetch-dependent
P1_REPS = 16
P2_REPS = 6


def _phase_program(machine):
    prog = ParallelProgram(machine, "phases")
    prog.array("x", LARGE, np.arange(LARGE, dtype=float))
    prog.array("y", LARGE, 1.0)
    fn = prog.kernel(
        StreamLoop("daxpy", dest="y", terms=(Term("y", 1.0, 0), Term("x", 2.0, 0)))
    )
    prog.parallel_for(fn, SMALL, 4)   # phase 1: small slice
    prog.phase_break()
    prog.parallel_for(fn, LARGE, 4)   # phase 2: the whole array
    prog.build(outer_reps=[P1_REPS, P2_REPS])
    return prog


def _verify(prog):
    y = prog.f64("y")[:LARGE]
    x = np.arange(LARGE, dtype=float)
    expect = 1.0 + 2.0 * x * (P1_REPS + P2_REPS)
    expect[SMALL:] = 1.0 + 2.0 * x[SMALL:] * P2_REPS
    return np.allclose(y, expect)


def test_phase_change_triggers_deploy_then_rollback():
    machine = Machine(itanium2_smp(4, scale=4))
    prog = _phase_program(machine)
    config = dataclasses.replace(machine.config.cobra, optimize_interval=30_000)
    result, report = run_with_cobra(prog, "noprefetch", config=config)
    assert _verify(prog), "numerics must survive deploy AND rollback"

    kinds = [e.kind for e in report.events]
    assert "deploy" in kinds, "phase 1 must trigger the noprefetch deployment"
    assert "rollback" in kinds, "phase 2 must trigger the re-adaptation rollback"
    first_deploy = kinds.index("deploy")
    assert "rollback" in kinds[first_deploy:], "rollback follows the deployment"
    # the phase-change rollback cites the evaporated justification
    reasons = [e.reason for e in report.events if e.kind == "rollback"]
    assert any("coherent ratio" in r or "CPI" in r for r in reasons)
    # once phase 2's behaviour is established, the gate holds: by the end
    # of the run no trace is deployed on the streaming loop
    assert not report.deployments, "phase 2 must end with the original binary"
    # and most phase-2 wakes are gate-skips, not churn
    gate_skips = [e for e in report.events if "below threshold" in e.reason]
    assert len(gate_skips) >= 3


def test_phased_program_numerics_without_cobra():
    machine = Machine(itanium2_smp(4, scale=4))
    prog = _phase_program(machine)
    prog.run(max_bundles=400_000_000)
    assert _verify(prog)
