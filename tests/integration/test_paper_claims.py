"""Fast integration checks of the paper's central claims.

Each test is a scaled-down version of a benchmark-harness experiment —
small enough for the unit suite, strong enough to catch regressions in
the end-to-end behaviour the paper reports.
"""

import numpy as np

from repro.config import itanium2_smp, sgi_altix
from repro.core import run_with_cobra
from repro.cpu import Machine
from repro.isa import Op
from repro.isa.instructions import nop
from repro.workloads import BENCHMARKS, build_daxpy, verify_daxpy, working_set_elems


def _daxpy_cycles(threads, patch_nop=False, reps=24, scale=4, steady=False):
    def once(r):
        machine = Machine(itanium2_smp(4, scale=scale))
        n = working_set_elems("128K", scale)
        prog = build_daxpy(machine, n, threads, outer_reps=r)
        if patch_nop:
            for addr, slot in prog.image.find_ops(Op.LFETCH):
                prog.image.patch_slot(addr, slot, nop("M"), "static noprefetch")
        result = prog.run(max_bundles=100_000_000)
        assert verify_daxpy(prog, r)
        return result.cycles

    if steady:  # warm-up subtracted, as the paper's long runs amortize it
        return once(2 * reps) - once(reps)
    return once(reps)


class TestMotivation:
    """§2: aggressive prefetching hurts multithreaded cache-resident runs."""

    def test_noprefetch_equal_at_one_thread(self):
        base = _daxpy_cycles(1, steady=True)
        nopf = _daxpy_cycles(1, patch_nop=True, steady=True)
        assert abs(base / nopf - 1.0) < 0.06

    def test_noprefetch_wins_at_four_threads(self):
        base = _daxpy_cycles(4, steady=True)
        nopf = _daxpy_cycles(4, patch_nop=True, steady=True)
        assert base / nopf > 1.2, "prefetch-induced sharing must dominate"


class TestCobraHeadline:
    """§5: COBRA's runtime rewrite recovers most of the static win."""

    def test_cobra_captures_most_of_the_static_benefit(self):
        base = _daxpy_cycles(4)
        static = _daxpy_cycles(4, patch_nop=True)
        machine = Machine(itanium2_smp(4, scale=4))
        prog = build_daxpy(machine, working_set_elems("128K", 4), 4, outer_reps=24)
        result, report = run_with_cobra(prog, "noprefetch")
        assert verify_daxpy(prog, 24)
        assert report.deployments
        static_gain = base - static
        cobra_gain = base - result.cycles
        assert cobra_gain > 0.5 * static_gain

    def test_l3_and_bus_reductions_correlate_on_npb(self):
        bench = BENCHMARKS["lu"]
        machine = Machine(itanium2_smp(4))
        prog = bench.build(machine, 4, reps=bench.default_reps * 2)
        baseline = prog.run(max_bundles=200_000_000)
        machine = Machine(itanium2_smp(4))
        prog = bench.build(machine, 4, reps=bench.default_reps * 2)
        optimized, report = run_with_cobra(prog, "noprefetch")
        assert bench.verify(prog, bench.default_reps * 2)
        l3 = optimized.events.l3_misses / baseline.events.l3_misses
        bus = optimized.events.bus_memory / baseline.events.bus_memory
        assert l3 < 1.0 and bus < 1.0
        assert abs(l3 - bus) < 0.15, "Figures 6 and 7 are correlated (§5.2.3)"


class TestNumaPenalty:
    """§5.2.1: coherent misses cost more on cc-NUMA than on the SMP."""

    def test_remote_coherent_miss_band(self):
        smp = Machine(itanium2_smp(4))
        numa = Machine(sgi_altix(8))
        addr = 0x8000_0000
        smp.caches[0].access(0, addr, 1)     # STORE
        smp_stall = smp.caches[1].access(0, addr, 0)  # LOAD -> HITM
        numa.caches[0].access(0, addr, 1)
        numa_stall = numa.caches[7].access(0, addr, 0)  # remote node
        assert numa_stall > smp_stall * 1.5


class TestBinaryPatchingSafety:
    """Deployment must never change program results (DESIGN.md §4.5)."""

    def test_npb_results_identical_under_cobra(self):
        for name in ("sp", "ft"):
            bench = BENCHMARKS[name]
            machine = Machine(itanium2_smp(4))
            prog = bench.build(machine, 4, reps=2)
            run_with_cobra(prog, "adaptive", max_bundles=200_000_000)
            assert bench.verify(prog, 2), f"{name} corrupted by patching"
