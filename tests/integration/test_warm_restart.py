"""Warm restart: checkpointed runs resume, re-deploy, and stay correct.

End-to-end over the coherence-dominated DAXPY recipe from the
re-adaptation tests (small machine so the deployment threshold is
actually crossed):

* a cold run journals windows, transactions and decisions, and
  snapshots them;
* a warm restart from that store re-deploys the proven optimization
  *before the first instruction runs* (no cold profiling ramp) and
  produces bit-identical outputs;
* a crash mid-run recovers on the same disk with the ledger accounting
  every discarded artifact;
* with persistence off, nothing about the run changes (the fault-free
  digest is the contract PR 3 already pinned).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.compiler import StreamLoop, Term
from repro.config import FaultConfig, PersistConfig, itanium2_smp
from repro.core import run_with_cobra
from repro.cpu import Machine
from repro.errors import SimulatedCrash
from repro.persist import JOURNAL_NAME, MemoryDisk, scan_journal
from repro.runtime import ParallelProgram
from repro.validate.differential import _digest, _snapshot_arrays

N = 2048
REPS = 14
THREADS = 4


def _build(machine: Machine) -> ParallelProgram:
    prog = ParallelProgram(machine, "warm")
    prog.array("x", N, np.arange(N, dtype=float))
    prog.array("y", N, 1.0)
    fn = prog.kernel(
        StreamLoop("daxpy", dest="y", terms=(Term("y", 1.0, 0), Term("x", 2.0, 0)))
    )
    prog.parallel_for(fn, N, THREADS)
    prog.build(outer_reps=REPS)
    return prog


def _run(disk=None, crash_write=None, torn=None):
    machine = Machine(itanium2_smp(THREADS, scale=4))
    prog = _build(machine)
    config = dataclasses.replace(machine.config.cobra, optimize_interval=30_000)
    if disk is not None:
        faults = FaultConfig(
            seed=0, sample_rate=0.0, patch_rate=0.0, loop_rate=0.0,
            crash_write=crash_write, crash_torn_bytes=torn,
        )
        config = dataclasses.replace(
            config, persist=PersistConfig(disk=disk), faults=faults
        )
    result, report = run_with_cobra(prog, "noprefetch", config=config)
    return prog, result, report


def _warm_deploys(report):
    return [
        e for e in report.events
        if e.kind == "deploy" and e.reason.startswith("warm restart")
    ]


class TestWarmRestart:
    @pytest.fixture(scope="class")
    def cold_and_warm(self):
        disk = MemoryDisk()
        cold = _run(disk)
        warm = _run(disk)
        return disk, cold, warm

    def test_cold_run_journals_and_deploys(self, cold_and_warm):
        disk, (prog, _result, report), _ = cold_and_warm
        assert any(d.active for d in report.deployments)
        assert report.persist.records_written > 0
        assert report.persist.snapshots_written > 0
        records, _len, discarded = scan_journal(disk.read(JOURNAL_NAME))
        assert discarded == []
        kinds = {r["t"] for r in records}
        assert {"window", "txn", "decision"} <= kinds

    def test_outputs_bit_identical_across_restart(self, cold_and_warm):
        _, (prog_cold, _, _), (prog_warm, _, _) = cold_and_warm
        assert _digest(_snapshot_arrays(prog_warm)) == _digest(
            _snapshot_arrays(prog_cold)
        )

    def test_warm_run_redeploys_before_any_execution(self, cold_and_warm):
        _, _, (_prog, _result, report) = cold_and_warm
        assert report.resumed
        warm = _warm_deploys(report)
        assert len(warm) == 1
        # retired == 0: the trace went live before the first instruction
        assert warm[0].retired == 0
        assert any(d.active for d in report.deployments)

    def test_warm_restart_skips_the_profiling_ramp(self, cold_and_warm):
        _, (_, _, cold_report), (_, _, warm_report) = cold_and_warm
        cold_first = min(
            e.retired for e in cold_report.events if e.kind == "deploy"
        )
        warm_first = min(
            e.retired for e in _warm_deploys(warm_report)
        )
        # the cold run profiled for tens of thousands of retired
        # instructions before deploying; the warm one did not
        assert cold_first > 0
        assert warm_first == 0

    def test_lifetime_sample_accounting_accumulates(self, cold_and_warm):
        _, (_, _, cold_report), (_, _, warm_report) = cold_and_warm
        assert warm_report.samples > cold_report.samples

    def test_report_carries_warm_restart_lines(self, cold_and_warm):
        _, _, (_prog, _result, report) = cold_and_warm
        text = report.summary()
        assert "warm restart: resumed from checkpoint" in text
        assert "persistence:" in text


class TestCrashRecovery:
    def test_crash_then_resume_is_equivalent(self):
        ref_disk = MemoryDisk()
        prog_ref, _, _ = _run(ref_disk)
        ref_digest = _digest(_snapshot_arrays(prog_ref))
        crash_at = max(2, ref_disk.durable_ops // 2)

        disk = MemoryDisk()
        with pytest.raises(SimulatedCrash):
            _run(disk, crash_write=crash_at, torn=7)
        assert disk.dead

        prog, _result, report = _run(disk)
        assert _digest(_snapshot_arrays(prog)) == ref_digest
        assert report.resumed
        stats = report.persist
        # the torn 7-byte tail was discarded, repaired, and accounted
        assert stats.records_discarded == 1
        assert stats.journal_repaired_bytes > 0
        assert report.faults.accounted
        persist_events = [
            e for e in report.faults.events if e.surface == "persist"
        ]
        assert len(persist_events) == 1
        assert persist_events[0].kind == "torn_journal_record"

    def test_boundary_crash_discards_nothing(self):
        disk = MemoryDisk()
        with pytest.raises(SimulatedCrash):
            _run(disk, crash_write=3, torn=None)
        _prog, _result, report = _run(disk)
        stats = report.persist
        assert stats.records_discarded == 0
        assert stats.snapshots_discarded == 0
        assert not [e for e in report.faults.events if e.surface == "persist"]

    def test_clean_resume_replays_zero_records(self):
        # stop() writes a final window + snapshot, so a completed run's
        # store recovers entirely from the snapshot
        disk = MemoryDisk()
        _run(disk)
        _prog, _result, report = _run(disk)
        assert report.resumed
        assert report.persist.records_replayed == 0


class TestPersistenceOff:
    def test_digest_matches_the_no_persistence_run(self):
        prog_off, result_off, report_off = _run(disk=None)
        prog_on, result_on, _ = _run(disk=MemoryDisk())
        assert report_off.persist is None
        assert _digest(_snapshot_arrays(prog_on)) == _digest(
            _snapshot_arrays(prog_off)
        )
        assert result_on.cycles == result_off.cycles
