"""First-touch page placement effects on the Altix (paper §3.2)."""

from repro.config import sgi_altix
from repro.cpu import Machine
from repro.workloads import build_daxpy, verify_daxpy, working_set_elems


def _run(pin_to_node0: bool) -> int:
    machine = Machine(sgi_altix(8, scale=4))
    n = working_set_elems("2M", 4)
    program = build_daxpy(machine, n, 8, outer_reps=6)
    if pin_to_node0:
        for name in ("x", "y"):
            machine.mem.place_pages(program.arrays[name], node=0)
    result = program.run(max_bundles=400_000_000)
    assert verify_daxpy(program, 6)
    return result.cycles


def test_serial_init_misplacement_costs_remote_latency():
    first_touch = _run(pin_to_node0=False)
    node0_only = _run(pin_to_node0=True)
    assert node0_only > first_touch * 1.2, (
        "pages homed on one node must pay remote-memory latency"
    )
