"""MemEvents bookkeeping."""

from hypothesis import given, strategies as st

from repro.memory.events import MemEvents


class TestMemEvents:
    def test_starts_at_zero(self):
        events = MemEvents()
        assert all(v == 0 for v in events.snapshot().values())
        assert events.coherent_ratio() == 0.0

    def test_coherent_ratio(self):
        events = MemEvents()
        events.bus_memory = 100
        events.bus_rd_hit = 10
        events.bus_rd_hitm = 20
        events.bus_rd_inval = 30
        assert events.coherent_bus_events() == 60
        assert abs(events.coherent_ratio() - 0.6) < 1e-12

    def test_add_accumulates_all_fields(self):
        a, b = MemEvents(), MemEvents()
        a.loads, b.loads = 3, 4
        a.writebacks, b.writebacks = 1, 2
        a.add(b)
        assert a.loads == 7 and a.writebacks == 3
        assert b.loads == 4  # source untouched

    def test_delta(self):
        events = MemEvents()
        events.l3_misses = 5
        snap = events.snapshot()
        events.l3_misses = 12
        events.stores = 3
        delta = events.delta(snap)
        assert delta["l3_misses"] == 7 and delta["stores"] == 3
        assert delta["loads"] == 0

    @given(st.lists(st.sampled_from(list(MemEvents.__slots__)), max_size=50))
    def test_snapshot_covers_every_counter(self, bumps):
        events = MemEvents()
        for name in bumps:
            setattr(events, name, getattr(events, name) + 1)
        snap = events.snapshot()
        assert set(snap) == set(MemEvents.__slots__)
        assert sum(snap.values()) == len(bumps)
