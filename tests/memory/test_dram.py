"""Memory system: allocation, data access, first-touch placement."""

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.memory.dram import DATA_BASE, MemorySystem


class TestAllocation:
    def test_alloc_is_line_aligned_and_disjoint(self):
        mem = MemorySystem(1 << 20)
        a = mem.alloc("a", 100)
        b = mem.alloc("b", 300)
        assert a.base % 128 == 0 and b.base % 128 == 0
        assert b.base >= a.end

    def test_duplicate_name(self):
        mem = MemorySystem(1 << 20)
        mem.alloc("x", 8)
        with pytest.raises(MemoryError_):
            mem.alloc("x", 8)

    def test_exhaustion(self):
        mem = MemorySystem(1024)
        with pytest.raises(MemoryError_):
            mem.alloc("big", 4096)

    def test_bad_size(self):
        mem = MemorySystem(1 << 20)
        with pytest.raises(MemoryError_):
            mem.alloc("zero", 0)

    def test_addr_helper(self):
        mem = MemorySystem(1 << 20)
        a = mem.alloc("a", 64)
        assert a.addr(3) == a.base + 24
        assert a.n_words == a.nbytes // 8


class TestAccess:
    def test_float_round_trip(self):
        mem = MemorySystem(1 << 20)
        a = mem.alloc("a", 64)
        mem.write_f64(a.base, 3.25)
        assert mem.read_f64(a.base) == 3.25

    def test_int_round_trip_and_wrap(self):
        mem = MemorySystem(1 << 20)
        a = mem.alloc("a", 64)
        mem.write_i64(a.base, -7)
        assert mem.read_i64(a.base) == -7
        mem.write_i64(a.base, 1 << 63)
        assert mem.read_i64(a.base) == -(1 << 63)

    def test_float_int_views_share_bits(self):
        mem = MemorySystem(1 << 20)
        a = mem.alloc("a", 64)
        mem.write_f64(a.base, 1.0)
        assert mem.read_i64(a.base) == 0x3FF0000000000000

    def test_views(self):
        mem = MemorySystem(1 << 20)
        a = mem.alloc("a", 64)
        view = mem.view_f64(a)  # padded to the 128-byte line: 16 words
        view[:8] = np.arange(8.0)
        assert mem.read_f64(a.addr(5)) == 5.0

    def test_bounds_and_alignment(self):
        mem = MemorySystem(1024)
        with pytest.raises(MemoryError_):
            mem.read_f64(DATA_BASE - 8)
        with pytest.raises(MemoryError_):
            mem.read_f64(DATA_BASE + 2048)
        with pytest.raises(MemoryError_):
            mem.read_f64(DATA_BASE + 4)  # unaligned


class TestFirstTouch:
    def test_first_touch_pins_page(self):
        mem = MemorySystem(1 << 20)
        a = mem.alloc("a", 4096)
        assert mem.home_node(a.base, toucher_node=1) == 1
        assert mem.home_node(a.base, toucher_node=0) == 1  # already pinned
        assert mem.home_node(a.base + 1024, toucher_node=0) == 0  # next page

    def test_place_pages(self):
        mem = MemorySystem(1 << 20)
        a = mem.alloc("a", 4096)
        mem.place_pages(a, node=2)
        assert mem.home_node(a.base, toucher_node=0) == 2
        assert mem.home_node(a.end - 8, toucher_node=0) == 2
