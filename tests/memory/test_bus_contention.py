"""Bus arbitration: occupancy, queueing, and transaction accounting."""

from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.memory import LOAD, PREFETCH

BASE = 0x8000_0000


class TestArbitration:
    def test_back_to_back_requests_queue(self):
        machine = Machine(itanium2_smp(2))
        c0, c1 = machine.caches
        occ = machine.config.bus.occupancy_data
        # both CPUs miss different lines at the same instant
        first = c0.access(0, BASE, LOAD)
        second = c1.access(0, BASE + 128, LOAD)
        assert second == first + occ, "the second request waits one occupancy"
        assert machine.fabric.total_queue_cycles == occ

    def test_idle_bus_has_no_wait(self):
        machine = Machine(itanium2_smp(2))
        c0, _ = machine.caches
        occ = machine.config.bus.occupancy_data
        c0.access(0, BASE, LOAD)
        stall = c0.access(1_000_000, BASE + 128, LOAD)
        assert stall == machine.config.latency.memory

    def test_prefetch_charged_issue_bandwidth(self):
        machine = Machine(itanium2_smp(1))
        cache = machine.caches[0]
        occ = machine.config.bus.occupancy_data
        stall = cache.access(0, BASE, PREFETCH)
        assert stall == occ, "non-blocking, but bandwidth-limited"

    def test_transactions_counted(self):
        machine = Machine(itanium2_smp(2))
        c0, c1 = machine.caches
        c0.access(0, BASE, LOAD)
        c1.access(0, BASE, LOAD)
        assert machine.fabric.total_transactions == 2
        assert c0.events.bus_memory == 1 and c1.events.bus_memory == 1
