"""cc-NUMA directory fabric: locality-dependent latencies and events."""

from repro.config import sgi_altix
from repro.cpu import Machine
from repro.memory import EXCLUSIVE, LOAD, MODIFIED, SHARED, STORE

BASE = 0x8000_0000


def _numa():
    machine = Machine(sgi_altix(4))  # nodes: {0,1}, {2,3}
    return machine, machine.caches


class TestLatencies:
    def test_local_vs_remote_memory(self):
        machine, caches = _numa()
        lat = machine.config.latency
        # cpu0 touches first -> page homed on node 0
        local = caches[0].access(0, BASE, LOAD)
        assert local >= lat.memory
        remote = caches[2].access(0, BASE + 4096, LOAD)  # untouched page? no:
        # first touch by cpu2 homes it on node 1 -> local for cpu2
        assert remote < lat.remote_memory
        # cpu0 now reads cpu2's page: remote
        stall = caches[0].access(0, BASE + 4096 + 128, LOAD)
        assert stall >= lat.remote_memory

    def test_local_vs_remote_hitm(self):
        machine, caches = _numa()
        lat = machine.config.latency
        caches[0].access(0, BASE, STORE)
        local_hitm = caches[1].access(0, BASE, LOAD)   # same node as cpu0
        assert lat.cache_to_cache <= local_hitm < lat.remote_cache_to_cache
        caches[0].access(0, BASE + 128, STORE)
        remote_hitm = caches[2].access(0, BASE + 128, LOAD)
        assert remote_hitm >= lat.remote_cache_to_cache
        assert remote_hitm > local_hitm, "NUMA coherent misses cost more (§5.2.1)"

    def test_remote_upgrade_costs_a_hop(self):
        machine, caches = _numa()
        lat = machine.config.latency
        caches[0].access(0, BASE, LOAD)
        caches[2].access(0, BASE, LOAD)  # remote sharer
        stall = caches[0].access(0, BASE, STORE)
        assert stall >= lat.interconnect_hop


class TestProtocolParity:
    """The directory implements the same MESI state machine as the bus."""

    def test_states_match_snooping_semantics(self):
        _, caches = _numa()
        line = BASE >> 7
        caches[0].access(0, BASE, LOAD)
        assert caches[0].state_of(line) == EXCLUSIVE
        caches[2].access(0, BASE, LOAD)
        assert caches[0].state_of(line) == SHARED
        assert caches[2].state_of(line) == SHARED
        caches[3].access(0, BASE, STORE)
        assert caches[3].state_of(line) == MODIFIED
        assert caches[0].state_of(line) is None
        assert caches[2].state_of(line) is None

    def test_events_counted(self):
        _, caches = _numa()
        caches[0].access(0, BASE, STORE)
        caches[2].access(0, BASE, LOAD)
        assert caches[2].events.bus_rd_hitm == 1
        assert caches[0].events.writebacks == 1
        assert caches[2].events.coherent_misses == 1
