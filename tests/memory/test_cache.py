"""Set-associative tag array: LRU, eviction, capacity invariants."""

from hypothesis import given, strategies as st

from repro.config import CacheConfig
from repro.memory.cache import CacheArray


def _small(assoc=2, sets=4):
    return CacheArray(CacheConfig(size_bytes=128 * assoc * sets, associativity=assoc))


class TestBasics:
    def test_insert_and_contains(self):
        cache = _small()
        assert cache.insert(0) is None
        assert 0 in cache and 1 not in cache
        assert len(cache) == 1

    def test_lru_eviction_within_set(self):
        cache = _small(assoc=2, sets=4)
        # lines 0, 4, 8 map to set 0 (line % 4)
        cache.insert(0)
        cache.insert(4)
        victim = cache.insert(8)
        assert victim == 0  # least recently used
        assert 0 not in cache and 4 in cache and 8 in cache

    def test_touch_promotes(self):
        cache = _small(assoc=2, sets=4)
        cache.insert(0)
        cache.insert(4)
        assert cache.touch(0)
        victim = cache.insert(8)
        assert victim == 4  # 0 was promoted

    def test_touch_miss(self):
        cache = _small()
        assert not cache.touch(7)

    def test_reinsert_promotes_without_eviction(self):
        cache = _small(assoc=2, sets=4)
        cache.insert(0)
        cache.insert(4)
        assert cache.insert(0) is None
        assert cache.insert(8) == 4

    def test_remove(self):
        cache = _small()
        cache.insert(3)
        assert cache.remove(3)
        assert not cache.remove(3)
        assert 3 not in cache

    def test_different_sets_do_not_interfere(self):
        cache = _small(assoc=2, sets=4)
        for line in range(8):  # two lines per set
            assert cache.insert(line) is None
        assert len(cache) == 8

    def test_clear(self):
        cache = _small()
        cache.insert(1)
        cache.clear()
        assert len(cache) == 0 and 1 not in cache


class TestProperties:
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    def test_capacity_never_exceeded(self, lines):
        cache = _small(assoc=2, sets=4)
        for line in lines:
            cache.insert(line)
            assert len(cache) <= 8
        # per-set occupancy bounded by associativity
        per_set = {}
        for line in cache.lines():
            per_set.setdefault(line % 4, []).append(line)
        assert all(len(v) <= 2 for v in per_set.values())

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    def test_matches_reference_lru_model(self, lines):
        """The array behaves exactly like a per-set LRU list model."""
        cache = _small(assoc=2, sets=4)
        model: dict[int, list[int]] = {s: [] for s in range(4)}
        for line in lines:
            s = line % 4
            victim = cache.insert(line)
            if line in model[s]:
                model[s].remove(line)
                model[s].append(line)
                expected_victim = None
            else:
                expected_victim = None
                if len(model[s]) == 2:
                    expected_victim = model[s].pop(0)
                model[s].append(line)
            assert victim == expected_victim
        assert cache.lines() == {x for v in model.values() for x in v}

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=120))
    def test_most_recent_line_always_present(self, lines):
        cache = _small(assoc=2, sets=4)
        for line in lines:
            cache.insert(line)
            assert line in cache
