"""Cache hierarchy internals: inclusion, drains, cast-outs, DEAR capture."""

from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.memory import (
    EXCLUSIVE,
    LOAD,
    MODIFIED,
    PREFETCH,
    PREFETCH_EXCL,
    SHARED,
    STORE,
)

BASE = 0x8000_0000


def _one_cpu():
    machine = Machine(itanium2_smp(1))
    return machine.caches[0]


def _lines_to_fill_l2(cache):
    return cache.l2.n_sets * cache.l2.associativity


class TestLevels:
    def test_l3_hit_after_l2_eviction(self):
        cache = _one_cpu()
        n_l2 = _lines_to_fill_l2(cache)
        for i in range(n_l2 + 1):  # overflow L2 by one line
            cache.access(0, BASE + 128 * i, LOAD)
        # line 0 was evicted from L2 (same set as line n_l2) but stays in L3
        stall = cache.access(0, BASE, LOAD)
        assert stall == cache.lat.l3_hit
        assert cache.events.l2_misses > cache.events.l3_misses

    def test_l2_subset_of_l3_always(self):
        cache = _one_cpu()
        for i in range(3 * _lines_to_fill_l2(cache)):
            cache.access(0, BASE + 128 * i, STORE if i % 3 else LOAD)
        cache.check_inclusion()

    def test_l3_eviction_of_dirty_line_writes_back(self):
        cache = _one_cpu()
        n_l3 = cache.l3.n_sets * cache.l3.associativity
        cache.access(0, BASE, STORE)
        for i in range(1, n_l3 + cache.l3.n_sets):
            cache.access(0, BASE + 128 * i, LOAD)
        assert cache.events.writebacks >= 1
        assert cache.state_of(BASE >> 7) is None or True  # may or may not survive
        cache.check_inclusion()

    def test_dirty_l2_eviction_counts_drain(self):
        cache = _one_cpu()
        cache.access(0, BASE, STORE)  # dirty in L2
        n_l2 = _lines_to_fill_l2(cache)
        for i in range(1, n_l2 + 1):
            cache.access(0, BASE + 128 * i, LOAD)
        assert cache.events.l2_writebacks >= 1


class TestExclCastOut:
    def test_excl_prefetched_line_casts_out_on_l3_eviction(self):
        cache = _one_cpu()
        cache.access(0, BASE, PREFETCH_EXCL)
        assert cache.state_of(BASE >> 7) == EXCLUSIVE
        assert (BASE >> 7) in cache.excl_alloc
        n_l3 = cache.l3.n_sets * cache.l3.associativity
        for i in range(1, n_l3 + cache.l3.n_sets):
            cache.access(0, BASE + 128 * i, LOAD)
        # the exclusive-prefetched (never stored!) line wrote back
        assert cache.events.writebacks >= 1

    def test_plain_prefetched_line_evicts_clean(self):
        cache = _one_cpu()
        cache.access(0, BASE, PREFETCH)
        n_l3 = cache.l3.n_sets * cache.l3.associativity
        for i in range(1, n_l3 + cache.l3.n_sets):
            cache.access(0, BASE + 128 * i, LOAD)
        assert cache.events.writebacks == 0


class TestDearCapture:
    def test_memory_miss_above_threshold_recorded(self):
        cache = _one_cpu()
        cache.dear_threshold = 12
        cache.access(0, BASE, LOAD)
        assert cache.dear_pending == cache.lat.memory

    def test_l3_hits_never_recorded(self):
        cache = _one_cpu()
        cache.dear_threshold = 12
        cache.access(0, BASE, LOAD)
        cache.dear_pending = None
        n_l2 = _lines_to_fill_l2(cache)
        for i in range(1, n_l2 + 1):
            cache.access(0, BASE + 128 * i, LOAD)
        cache.dear_pending = None
        cache.access(0, BASE, LOAD)  # L3 hit
        assert cache.dear_pending is None

    def test_upgrade_latency_recorded_on_store(self):
        machine = Machine(itanium2_smp(2))
        c0, c1 = machine.caches
        c0.dear_threshold = 180
        c0.access(0, BASE, LOAD)
        c1.access(0, BASE, LOAD)  # both share
        c0.access(0, BASE, STORE)  # upgrade with a sharer
        assert c0.dear_pending == c0.lat.upgrade
        assert c0.lat.upgrade > 180  # classified coherent by the filter

    def test_prefetch_never_records_dear(self):
        cache = _one_cpu()
        cache.dear_threshold = 0
        cache.access(0, BASE, PREFETCH)
        assert cache.dear_pending is None
