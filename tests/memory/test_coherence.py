"""MESI protocol over the snooping bus: transitions, events, invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.memory import (
    ATOMIC,
    EXCLUSIVE,
    LOAD,
    MODIFIED,
    PREFETCH,
    PREFETCH_EXCL,
    SHARED,
    STORE,
    state_name,
)

LINE = 0x8000_0000


def _caches(n=2):
    machine = Machine(itanium2_smp(n))
    return machine, machine.caches


class TestTransitions:
    def test_cold_load_installs_exclusive(self):
        _, (c0, c1) = _caches()
        c0.access(0, LINE, LOAD)
        assert c0.state_of(LINE >> 7) == EXCLUSIVE
        assert c1.state_of(LINE >> 7) is None

    def test_second_reader_shares(self):
        _, (c0, c1) = _caches()
        c0.access(0, LINE, LOAD)
        c1.access(0, LINE, LOAD)
        assert c0.state_of(LINE >> 7) == SHARED
        assert c1.state_of(LINE >> 7) == SHARED
        assert c1.events.bus_rd_hit == 1

    def test_store_miss_takes_modified_and_invalidates(self):
        _, (c0, c1) = _caches()
        c0.access(0, LINE, LOAD)
        c1.access(0, LINE, STORE)
        assert c1.state_of(LINE >> 7) == MODIFIED
        assert c0.state_of(LINE >> 7) is None
        assert c0.events.invalidations_received == 1
        assert c1.events.bus_rd_inval == 1

    def test_store_on_exclusive_is_silent(self):
        _, (c0, c1) = _caches()
        c0.access(0, LINE, LOAD)
        bus_before = c0.events.bus_memory
        c0.access(0, LINE, STORE)
        assert c0.state_of(LINE >> 7) == MODIFIED
        assert c0.events.bus_memory == bus_before  # E -> M without the bus

    def test_store_on_shared_upgrades(self):
        _, (c0, c1) = _caches()
        c0.access(0, LINE, LOAD)
        c1.access(0, LINE, LOAD)
        c0.access(0, LINE, STORE)
        assert c0.state_of(LINE >> 7) == MODIFIED
        assert c1.state_of(LINE >> 7) is None
        assert c0.events.upgrades == 1

    def test_read_of_modified_is_hitm_with_writeback(self):
        _, (c0, c1) = _caches()
        c0.access(0, LINE, STORE)
        stall = c1.access(0, LINE, LOAD)
        assert c1.events.bus_rd_hitm == 1
        assert c0.events.writebacks == 1  # owner flushed
        assert c0.state_of(LINE >> 7) == SHARED
        assert c1.state_of(LINE >> 7) == SHARED
        assert stall >= c1.lat.cache_to_cache  # the coherent-miss band

    def test_plain_prefetch_installs_shared(self):
        _, (c0, _) = _caches()
        c0.access(0, LINE, PREFETCH)
        assert c0.state_of(LINE >> 7) == SHARED  # "the usual shared state"

    def test_prefetch_excl_installs_exclusive_and_invalidates(self):
        _, (c0, c1) = _caches()
        c1.access(0, LINE, LOAD)
        c0.access(0, LINE, PREFETCH_EXCL)
        assert c0.state_of(LINE >> 7) == EXCLUSIVE
        assert c1.state_of(LINE >> 7) is None

    def test_prefetch_excl_covers_later_store(self):
        _, (c0, c1) = _caches()
        c1.access(0, LINE, LOAD)
        c0.access(0, LINE, PREFETCH_EXCL)
        bus_before = c0.events.bus_memory
        stall = c0.access(0, LINE, STORE)
        assert c0.events.bus_memory == bus_before, "store must not transact"
        assert stall == c0.lat.l2_hit

    def test_atomic_is_store_like(self):
        _, (c0, c1) = _caches()
        c1.access(0, LINE, LOAD)
        c0.access(0, LINE, ATOMIC)
        assert c0.state_of(LINE >> 7) == MODIFIED
        assert c1.state_of(LINE >> 7) is None

    def test_coherent_ratio_tracks_events(self):
        _, (c0, c1) = _caches()
        for i in range(8):
            addr = LINE + 128 * i
            c0.access(0, addr, STORE)
            c1.access(0, addr, LOAD)
        assert c1.events.coherent_ratio() > 0.5


class TestStateNames:
    @pytest.mark.parametrize(
        "state,name", [(None, "I"), (SHARED, "S"), (EXCLUSIVE, "E"), (MODIFIED, "M")]
    )
    def test_names(self, state, name):
        assert state_name(state) == name


KINDS = [LOAD, STORE, PREFETCH, PREFETCH_EXCL, ATOMIC]


class TestProtocolInvariants:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 11), st.sampled_from(KINDS)),
            min_size=1,
            max_size=250,
        )
    )
    def test_single_writer_invariant(self, ops):
        """At most one cache holds a line in M or E; M/E excludes others."""
        machine, caches = _caches(4)
        lines = set()
        for cpu, line_idx, kind in ops:
            addr = LINE + 128 * line_idx
            caches[cpu].access(0, addr, kind)
            lines.add(addr >> 7)
            for line in lines:
                states = [c.state_of(line) for c in caches]
                owners = [s for s in states if s in (EXCLUSIVE, MODIFIED)]
                holders = [s for s in states if s is not None]
                assert len(owners) <= 1, f"line {line:#x}: {states}"
                if owners:
                    assert len(holders) == 1, f"M/E must be exclusive: {states}"

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 400), st.sampled_from(KINDS)),
            min_size=1,
            max_size=200,
        )
    )
    def test_structural_invariants_under_pressure(self, ops):
        """Inclusion and bookkeeping hold even with capacity evictions."""
        machine, caches = _caches(4)
        for cpu, line_idx, kind in ops:
            caches[cpu].access(0, LINE + 128 * line_idx, kind)
        for cache in caches:
            cache.check_inclusion()
