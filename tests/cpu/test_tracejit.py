"""Trace-compilation fast path: equivalence, patch-under-trace, invalidation.

The compiled fast path is an *optimization*, never a semantics change:
every test here runs the same program with the JIT enabled and disabled
and demands bit-identical architectural state — registers, predicates,
loop counters, cycle/retirement counters, branch history.  The
patch-under-trace tests drive the contract COBRA's live rewriting
relies on: a patch landing inside a compiled loop must deoptimize it
via the decode journal before the stale trace can run again, and a
byte-identical rollback must restore the original behaviour exactly.
"""

from __future__ import annotations

from repro.config import itanium2_smp
from repro.cpu import Machine, Scheduler
from repro.cpu.tracejit import DEOPT_REASONS, HOT_THRESHOLD, MAX_TRACE_BUNDLES
from repro.isa import assemble
from repro.isa.instructions import Instruction, Op
from repro.workloads import build_daxpy


def _arch_state(core):
    """Everything the generic interpreter and the fast path must agree on."""
    regs = core.regs
    return (
        tuple(regs.read_gr(r) for r in range(64)),
        tuple(regs.read_fr(f) for f in range(64)),
        tuple(regs.read_pr(p) for p in range(64)),
        regs.lc, regs.ec, regs.rrb_gr, regs.rrb_fr, regs.rrb_pr,
        core.pc, core.cycles, core.retired, core.bundles_executed,
        core.taken_branches, tuple(core.btb),
    )


def _run(src: str, jit: bool, osr: bool = True, interval: int = 0):
    machine = Machine(itanium2_smp(1))
    image = assemble(src)
    machine.load_image(image)
    core = machine.cores[0]
    core.jit_enabled = jit
    core.osr_enabled = jit and osr
    if interval:
        core.enable_sampling(interval, lambda c: None)
    core.start(image.base)
    Scheduler(machine.cores).run_until_halt(1_000_000)
    return core, machine


def _assert_equivalent(
    src: str, expect_compile: bool = True, expect_iters: bool = True
):
    ref, ref_machine = _run(src, jit=False)
    fast, fast_machine = _run(src, jit=True)
    assert _arch_state(ref) == _arch_state(fast)
    assert (
        ref_machine.aggregate_events().snapshot()
        == fast_machine.aggregate_events().snapshot()
    )
    assert ref.trace_jit.compiles == 0
    if expect_compile:
        stats = fast.trace_jit.stats()
        assert stats["compiles"] >= 1
        if expect_iters:  # linear-only coverage runs one-pass regions
            assert stats["iterations"] > 0
        assert stats["compiled_bundles"] > 0
    return fast


CTOP_SRC = """
clrrrb
alloc rot=8
mov pr.rot=0x10000
mov ar.lc=199
mov ar.ec=3
mov r1=0
mov r2=0
.loop:
(p16) add r1=1,r1
(p16) add r32=2,r1
(p18) add r2=1,r2
br.ctop.sptk .loop
halt
"""

CLOOP_SRC = """
mov ar.lc=299
mov r1=0
.loop:
add r1=2,r1
br.cloop.sptk .loop
halt
"""

WTOP_SRC = """
mov r1=0
mov r2=0
mov ar.ec=1
.loop:
cmp.lt p6,p7=r1,150
(p6) add r1=1,r1
(p6) add r2=3,r2
(p6) br.wtop.sptk .loop
halt
"""


class TestEquivalence:
    def test_ctop_pipeline_with_epilog(self):
        fast = _assert_equivalent(CTOP_SRC)
        assert fast.regs.read_gr(1) == 200

    def test_cloop(self):
        fast = _assert_equivalent(CLOOP_SRC)
        assert fast.regs.read_gr(1) == 600

    def test_wtop(self):
        fast = _assert_equivalent(WTOP_SRC)
        assert fast.regs.read_gr(1) == 150

    def test_cold_loop_never_compiles(self):
        # fewer back-edges than the hot threshold: the generic
        # interpreter handles everything and nothing is compiled
        src = CLOOP_SRC.replace("ar.lc=299", f"ar.lc={HOT_THRESHOLD - 2}")
        fast = _assert_equivalent(src, expect_compile=False)
        assert fast.trace_jit.compiles == 0

    OVERLONG_SRC_TEMPLATE = (
        "mov ar.lc=99\nmov r1=0\n.loop:\n"
        "{filler}\nadd r1=1,r1\nbr.cloop.sptk .loop\nhalt\n"
    )

    def _overlong_src(self) -> str:
        filler = "\n".join(
            f"add r{2 + (i % 6)}=1,r{2 + (i % 6)}"
            for i in range(3 * (MAX_TRACE_BUNDLES + 2))
        )
        return self.OVERLONG_SRC_TEMPLATE.format(filler=filler)

    def test_overlong_loop_covered_by_linear_chain(self):
        # the body exceeds MAX_TRACE_BUNDLES, so no single loop trace
        # fits — with trace trees the prefix compiles as a linear node
        # and hot exit sites chain further linear nodes down the body
        fast = _assert_equivalent(self._overlong_src(), expect_iters=False)
        stats = fast.trace_jit.stats()
        assert stats["compiles"] >= 2
        assert stats["tree_links"] >= 1
        assert any(
            tr.kind == "linear" for tr in fast.trace_jit.traces.values()
        )

    def test_overlong_loop_osr_off_blacklisted_not_miscompiled(self):
        # without OSR/trees the pre-tree contract holds: the loop is
        # blacklisted and everything runs through the interpreter
        src = self._overlong_src()
        ref, ref_machine = _run(src, jit=False)
        fast, fast_machine = _run(src, jit=True, osr=False)
        assert _arch_state(ref) == _arch_state(fast)
        assert (
            ref_machine.aggregate_events().snapshot()
            == fast_machine.aggregate_events().snapshot()
        )
        assert fast.trace_jit.compiles == 0
        assert fast.trace_jit.blacklist

    def test_daxpy_memory_loop(self):
        # ld/st/float path through a real workload, end to end
        def run(jit):
            machine = Machine(itanium2_smp(2, scale=4))
            for core in machine.cores:
                core.jit_enabled = jit
            prog = build_daxpy(machine, 1024, 2, outer_reps=4)
            result = prog.run()
            return result, machine

        ref, _ = run(False)
        fast, machine = run(True)
        assert ref.cycles == fast.cycles
        assert ref.retired == fast.retired
        assert ref.events.snapshot() == fast.events.snapshot()
        assert sum(c.trace_jit.compiles for c in machine.cores) >= 1
        assert sum(c.trace_jit.iters for c in machine.cores) > 0


class _SplitRun:
    """Drive the same program through identical run-slice boundaries so a
    mid-run patch lands at the exact same bundle count with and without
    the JIT — the only way 'bit-identical' is even well-defined."""

    def __init__(self, src: str, jit: bool, osr: bool = True):
        self.machine = Machine(itanium2_smp(1))
        self.image = assemble(src)
        self.machine.load_image(self.image)
        self.core = self.machine.cores[0]
        self.core.jit_enabled = jit
        # pin OSR explicitly so the suite is REPRO_TRACE_JIT-independent
        self.core.osr_enabled = jit and osr
        self.core.start(self.image.base)

    def run(self, bundles: int):
        self.core.run(bundles)
        return self

    def finish(self):
        while not self.core.halted:
            self.core.run(65536)
        return self.core


def _patched_add(imm: int) -> Instruction:
    return Instruction(Op.ADDI, r1=1, r2=1, imm=imm)


class TestPatchUnderTrace:
    SRC = CLOOP_SRC  # body bundle: slot 0 `add r1=2,r1`, slot 1 back-edge

    def _loop_head(self, image) -> int:
        return image.labels[".loop"]

    def test_trace_resident_before_patch(self):
        run = _SplitRun(self.SRC, jit=True).run(120)
        head = self._loop_head(run.image)
        assert head in run.core.trace_jit.traces
        assert run.core.trace_jit.entries >= 1

    def test_patch_while_resident_deoptimizes_bit_identical(self):
        def scenario(jit):
            run = _SplitRun(self.SRC, jit=jit).run(120)
            run.image.patch_slot(
                self._loop_head(run.image), 0, _patched_add(5), reason="test"
            )
            return run, run.finish()

        run_fast, fast = scenario(True)
        _, ref = scenario(False)
        assert fast.trace_jit.invalidations >= 1
        assert _arch_state(ref) == _arch_state(fast)
        # prefix ran at +2/iter, the patched remainder at +5/iter
        assert fast.regs.read_gr(1) == ref.regs.read_gr(1)
        assert fast.regs.read_gr(1) > 0
        # after re-proving hot, the *patched* body compiles again
        assert fast.trace_jit.compiles >= 2

    def test_patch_plus_rollback_bit_identical(self):
        def scenario(jit):
            run = _SplitRun(self.SRC, jit=jit).run(120)
            head = self._loop_head(run.image)
            run.image.patch_slot(head, 0, _patched_add(9), reason="test")
            run.run(90)  # execute some patched iterations
            run.image.revert_patch(run.image.patches[-1])
            return run.finish()

        fast = scenario(True)
        ref = scenario(False)
        assert _arch_state(ref) == _arch_state(fast)
        # patch invalidated the original trace; the rollback invalidated
        # the recompiled patched trace in turn
        assert fast.trace_jit.invalidations >= 1

    def test_immediate_rollback_keeps_trace(self):
        # patch + byte-identical revert before any further execution:
        # the journal epoch bumps, but the content keys still match, so
        # the resident trace survives (no deopt, no recompile)
        run = _SplitRun(self.SRC, jit=True).run(120)
        head = self._loop_head(run.image)
        before = run.core.trace_jit.compiles
        run.image.patch_slot(head, 0, _patched_add(9), reason="test")
        run.image.revert_patch(run.image.patches[-1])
        core = run.finish()
        assert core.trace_jit.invalidations == 0
        assert core.trace_jit.compiles == before
        assert core.regs.read_gr(1) == 600  # identical to the unpatched run


class TestMultiVersionPatchCycle:
    """COBRA's multi-version dispatch patches the same loop head
    repeatedly: deploy (redirect on), rollback (redirect off), redeploy
    reusing the resident trace (the identical redirect re-applied).
    Every transition must deoptimize any compiled trace of the head via
    the decode journal and remain bit-identical to the interpreter."""

    SRC = CLOOP_SRC

    def _cycle(self, jit: bool):
        run = _SplitRun(self.SRC, jit=jit).run(120)
        head = run.image.labels[".loop"]
        run.image.patch_slot(head, 0, _patched_add(5), reason="deploy")
        run.run(90)                                  # patched body executes
        run.image.revert_patch(run.image.patches[-1])  # rollback
        run.run(90)                                  # untouched body again
        run.image.patch_slot(head, 0, _patched_add(5), reason="redeploy")
        return run.finish()

    def test_deploy_rollback_redeploy_bit_identical(self):
        fast = self._cycle(jit=True)
        ref = self._cycle(jit=False)
        assert _arch_state(ref) == _arch_state(fast)
        # the first patch invalidated the original compiled trace; the
        # rollback invalidated the patched one in turn
        assert fast.trace_jit.invalidations >= 1
        assert ref.trace_jit.invalidations == 0

    def test_final_patch_state_recompiles_hot(self):
        core = self._cycle(jit=True)
        assert core.halted
        # the re-patched body re-proved hot and compiled again after
        # the rollback invalidated it
        assert core.trace_jit.compiles >= 2


NESTED_SRC = """
mov r1=0
mov r2=0
mov r3=0
.outer:
mov ar.lc=24
.inner:
add r1=1,r1
br.cloop.sptk .inner
add r2=7,r2
add r2=1,r2
add r3=1,r3
cmp.lt p6,p7=r3,120
(p6) br.cond.sptk .outer
halt
"""


class TestTraceTrees:
    """Side-exit chaining: nested loops and epilogue regions become
    secondary trace nodes rooted at the first hot trace, and tree-wide
    invalidation treats the union of covered bundles as one validity
    domain."""

    def _grown_tree(self, bundles: int = 2000) -> _SplitRun:
        # ~30 bundles per outer iteration x 120 iterations: at 2000 the
        # tree (inner loop + epilogue + outer loop) is warm and the
        # program is still mid-flight, so patches land under live traces
        run = _SplitRun(NESTED_SRC, jit=True).run(bundles)
        assert not run.core.halted
        return run

    def test_nested_loop_grows_tree_bit_identical(self):
        fast = _assert_equivalent(NESTED_SRC)
        stats = fast.trace_jit.stats()
        # inner loop compiles from back-edge hotness; the drain
        # epilogue and the outer loop join via exit-site promotion
        assert stats["promotions"] >= 1
        assert stats["tree_links"] >= 1
        assert len(fast.trace_jit.traces) >= 2
        roots = {tr.root for tr in fast.trace_jit.traces.values()}
        assert len(roots) == 1  # one tree, rooted at the inner head
        assert stats["exit_sites"]  # per-site counters exposed

    def test_osr_off_still_compiles_inner_only(self):
        ref, _ = _run(NESTED_SRC, jit=False)
        fast, _ = _run(NESTED_SRC, jit=True, osr=False)
        assert _arch_state(ref) == _arch_state(fast)
        stats = fast.trace_jit.stats()
        assert stats["promotions"] == 0
        assert stats["osr_entries"] == 0
        assert all(
            tr.kind == "loop" for tr in fast.trace_jit.traces.values()
        )

    def test_patch_under_tree_deoptimizes_whole_tree(self):
        def scenario(jit):
            run = _SplitRun(NESTED_SRC, jit=jit).run(2000)
            # patch the *epilogue* adds — a bundle covered by promoted
            # nodes but not by the inner loop's own trace
            epi = run.image.labels[".inner"] + 16
            run.image.patch_slot(epi, 0, _patched_add(3), reason="test")
            return run, run.finish()

        run_fast, fast = scenario(True)
        _, ref = scenario(False)
        tjit = run_fast.core.trace_jit
        n_nodes = 3  # inner loop + epilogue + outer loop at minimum
        assert tjit.invalidations >= n_nodes
        # the inner loop's own bundles were untouched, yet its node died
        # with the tree (shared root => shared validity domain)
        assert _arch_state(ref) == _arch_state(fast)
        assert fast.regs.read_gr(1) == ref.regs.read_gr(1)

    def test_rollback_keeps_tree_resident(self):
        run = self._grown_tree()
        tjit = run.core.trace_jit
        resident = set(tjit.traces)
        assert len(resident) >= 2
        compiles = tjit.compiles
        epi = run.image.labels[".inner"] + 16
        run.image.patch_slot(epi, 0, _patched_add(3), reason="test")
        run.image.revert_patch(run.image.patches[-1])
        run.finish()
        # byte-identical rollback: epoch bumped, content keys match —
        # every node of the tree survives untouched
        assert tjit.invalidations == 0
        assert set(tjit.traces) >= resident
        assert tjit.compiles >= compiles


class TestOsrEntry:
    def test_sample_exit_reenters_mid_trace(self):
        # a sampling interrupt leaves the trace mid-body; with OSR the
        # next dispatch enters at that bundle instead of interpreting
        # back to the loop head
        ref, _ = _run(CTOP_SRC, jit=False, interval=37)
        fast, _ = _run(CTOP_SRC, jit=True, interval=37)
        assert _arch_state(ref) == _arch_state(fast)
        assert fast.trace_jit.osr_entries > 0

    def test_osr_off_never_enters_mid_trace(self):
        ref, _ = _run(CTOP_SRC, jit=False, interval=37)
        fast, _ = _run(CTOP_SRC, jit=True, osr=False, interval=37)
        assert _arch_state(ref) == _arch_state(fast)
        assert fast.trace_jit.osr_entries == 0

    def test_budget_exit_resumes_without_reprobe(self):
        def scenario(jit):
            run = _SplitRun(CLOOP_SRC, jit=jit)
            for _ in range(60):
                run.run(7)  # tiny slices force EXIT_BUDGET boundaries
            return run.core, run.finish()

        core, fast = scenario(True)
        _, ref = scenario(False)
        assert _arch_state(ref) == _arch_state(fast)
        stats = core.trace_jit.stats()
        assert stats["resume_hits"] > 0
        assert stats["deopts"]["budget"] >= stats["resume_hits"]


class TestObservability:
    def test_stats_shape_and_deopt_reasons(self):
        fast, _ = _run(CLOOP_SRC, jit=True)
        stats = fast.trace_jit.stats()
        assert set(stats) == {
            "compiles", "invalidations", "entries", "iterations",
            "compiled_bundles", "osr_entries", "tree_links",
            "resume_hits", "promotions", "evicted", "exit_sites",
            "deopts",
        }
        assert set(stats["deopts"]) == set(DEOPT_REASONS)
        # the loop eventually exits through the back-edge falling through
        assert stats["deopts"]["loop-exit"] >= 1
        assert stats["iterations"] >= stats["entries"] > 0

    def test_exit_site_counters(self):
        fast, _ = _run(NESTED_SRC, jit=True)
        sites = fast.trace_jit.stats()["exit_sites"]
        assert sites
        assert all(
            isinstance(k, str) and "->" in k and v > 0
            for k, v in sites.items()
        )
