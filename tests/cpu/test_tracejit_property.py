"""Property tests: compiled traces match the generic interpreter exactly.

Random straight-line kernels (ALU ops, compares, random qualifying
predicates over both static and rotating registers) inside ``br.ctop``
and ``br.wtop`` loops with random LC/EC are run twice — JIT disabled
and JIT enabled with a lowered hot threshold so even short loops
compile — and the full architectural state must come out bit-identical:
registers, predicates, rotation bases, loop counters, cycles, retirement
and branch-history counters.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import itanium2_smp
from repro.cpu import Machine, Scheduler
from repro.isa import assemble

COMMON = dict(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)

# static scratch pool + two rotating names (alloc rot=8 below)
_REGS = tuple(range(1, 9)) + (32, 33)
#: (pt, pf) pairs: static, rotating, and mixed — always distinct
_PRED_PAIRS = ((6, 7), (16, 17), (7, 17))
_QPS = (None, 6, 7, 16, 17)

reg = st.sampled_from(_REGS)
qp = st.sampled_from(_QPS)
pred_pair = st.sampled_from(_PRED_PAIRS)


def _guard(q, text):
    return f"(p{q}) {text}" if q is not None else text


KERNEL_OP = st.one_of(
    st.builds(
        lambda q, op, d, a, b: _guard(q, f"{op} r{d}=r{a},r{b}"),
        qp, st.sampled_from(("add", "sub", "and", "or", "xor")), reg, reg, reg,
    ),
    st.builds(
        lambda q, d, i, a: _guard(q, f"add r{d}={i},r{a}"),
        qp, reg, st.integers(-512, 512), reg,
    ),
    st.builds(
        lambda q, op, d, a, n: _guard(q, f"{op} r{d}=r{a},{n}"),
        qp, st.sampled_from(("shl", "shr")), reg, reg, st.integers(0, 63),
    ),
    st.builds(
        lambda q, op, p, a, b: _guard(q, f"{op} p{p[0]},p{p[1]}=r{a},r{b}"),
        qp, st.sampled_from(("cmp.lt", "cmp.le", "cmp.eq", "cmp.ne")),
        pred_pair, reg, reg,
    ),
    st.builds(
        lambda q, d, i: _guard(q, f"mov r{d}={i}"),
        qp, reg, st.integers(0, 4096),
    ),
)

KERNEL = st.lists(KERNEL_OP, max_size=9)


def _arch_state(core):
    regs = core.regs
    return (
        tuple(regs.read_gr(r) for r in range(64)),
        tuple(regs.read_pr(p) for p in range(64)),
        regs.lc, regs.ec, regs.rrb_gr, regs.rrb_fr, regs.rrb_pr,
        core.pc, core.cycles, core.retired, core.bundles_executed,
        core.taken_branches, tuple(core.btb),
    )


def _execute(src: str, jit: bool):
    machine = Machine(itanium2_smp(1))
    image = assemble(src)
    machine.load_image(image)
    core = machine.cores[0]
    core.jit_enabled = jit
    if jit:
        # compile after two hot back-edges so short random loops still
        # exercise the fast path; the threshold is a policy knob and
        # must never affect semantics
        core.trace_jit.threshold = 2
    core.start(image.base)
    Scheduler(machine.cores).run_until_halt(1_000_000)
    return core


def _assert_equivalent(src: str):
    ref = _execute(src, jit=False)
    fast = _execute(src, jit=True)
    assert _arch_state(ref) == _arch_state(fast), src
    return fast


@given(kernel=KERNEL, lc=st.integers(0, 40), ec=st.integers(1, 4))
@settings(**COMMON)
def test_ctop_compiled_matches_generic(kernel, lc, ec):
    body = "\n".join(kernel)
    src = (
        "clrrrb\nalloc rot=8\nmov pr.rot=0x10000\n"
        f"mov ar.lc={lc}\nmov ar.ec={ec}\n"
        "mov r1=3\nmov r2=5\nmov r3=7\nmov r4=9\n"
        f".loop:\n{body}\nbr.ctop.sptk .loop\nhalt\n"
    )
    fast = _assert_equivalent(src)
    if lc + ec >= 4:  # enough back-edges to cross the lowered threshold
        assert fast.trace_jit.compiles + len(fast.trace_jit.blacklist) >= 1


@given(
    kernel=st.lists(
        # wtop termination rides on r9/p6, so kernels here stay off both:
        # predicates are restricted to the rotating pair
        st.one_of(
            st.builds(
                lambda q, op, d, a, b: _guard(q, f"{op} r{d}=r{a},r{b}"),
                st.sampled_from((None, 16, 17)),
                st.sampled_from(("add", "sub", "xor")), reg, reg, reg,
            ),
            st.builds(
                lambda q, op, a, b: _guard(q, f"{op} p16,p17=r{a},r{b}"),
                st.sampled_from((None, 16, 17)),
                st.sampled_from(("cmp.lt", "cmp.ne")), reg, reg,
            ),
        ),
        max_size=6,
    ),
    trip=st.integers(0, 30),
)
@settings(**COMMON)
def test_wtop_compiled_matches_generic(kernel, trip):
    body = "\n".join(kernel)
    src = (
        "clrrrb\nalloc rot=8\nmov ar.ec=1\n"
        "mov r9=0\nmov r1=3\nmov r2=5\nmov r3=7\n"
        f".loop:\n{body}\n"
        f"cmp.lt p6,p7=r9,{trip}\n"
        "(p6) add r9=1,r9\n"
        "(p6) br.wtop.sptk .loop\nhalt\n"
    )
    ref = _execute(src, jit=False)
    fast = _execute(src, jit=True)
    assert _arch_state(ref) == _arch_state(fast), src
    assert fast.regs.read_gr(9) == trip


@given(
    kernel=KERNEL,
    lc=st.integers(8, 40),
    ec=st.integers(1, 4),
    interval=st.integers(3, 23),
    slice_bundles=st.integers(5, 64),
)
@settings(**COMMON)
def test_osr_entry_matches_generic_from_mid_loop_state(
    kernel, lc, ec, interval, slice_bundles
):
    """OSR-entered execution is bit-identical from arbitrary mid-loop state.

    Random sampling intervals interrupt the compiled trace at arbitrary
    bundles (capturing rotation bases, predicates, LC/EC and the
    countdown mid-iteration) and random slice sizes force budget exits
    at arbitrary boundaries; with OSR on, every re-dispatch after either
    kind of interruption may enter the trace mid-body through a suffix
    closure.  All three policies must agree on the full architectural
    state.
    """
    body = "\n".join(kernel)
    src = (
        "clrrrb\nalloc rot=8\nmov pr.rot=0x10000\n"
        f"mov ar.lc={lc}\nmov ar.ec={ec}\n"
        "mov r1=3\nmov r2=5\nmov r3=7\nmov r4=9\n"
        f".loop:\n{body}\nbr.ctop.sptk .loop\nhalt\n"
    )

    def execute(jit, osr):
        machine = Machine(itanium2_smp(1))
        image = assemble(src)
        machine.load_image(image)
        core = machine.cores[0]
        core.jit_enabled = jit
        core.osr_enabled = jit and osr
        if jit:
            core.trace_jit.threshold = 2
        core.enable_sampling(interval, lambda c: None)
        core.start(image.base)
        for _ in range(100_000):
            if core.halted:
                break
            core.run(slice_bundles)
        assert core.halted
        return core

    ref = execute(jit=False, osr=False)
    base = execute(jit=True, osr=False)
    osr = execute(jit=True, osr=True)
    assert _arch_state(ref) == _arch_state(base), src
    assert _arch_state(ref) == _arch_state(osr), src


@given(lc=st.integers(0, 60), step=st.integers(-64, 64))
@settings(**COMMON)
def test_cloop_counter_sweep(lc, step):
    src = (
        f"mov ar.lc={lc}\nmov r1=0\n"
        f".loop:\nadd r1={step},r1\nbr.cloop.sptk .loop\nhalt\n"
    )
    fast = _assert_equivalent(src)
    assert fast.regs.read_gr(1) & ((1 << 64) - 1) == (
        step * (lc + 1)
    ) & ((1 << 64) - 1)
