"""Machine assembly: platform builders, image loading, aggregates."""

import pytest

from repro.config import itanium2_smp, sgi_altix
from repro.cpu import Machine
from repro.errors import MachineError
from repro.isa import assemble
from repro.memory.bus import SnoopBus
from repro.memory.directory import DirectoryFabric


class TestBuilders:
    def test_smp_uses_snoop_bus(self):
        machine = Machine(itanium2_smp(4))
        assert isinstance(machine.fabric, SnoopBus)
        assert machine.n_cpus == 4
        assert all(c.node_id == 0 for c in machine.caches)

    def test_altix_uses_directory(self):
        machine = Machine(sgi_altix(8))
        assert isinstance(machine.fabric, DirectoryFabric)
        assert machine.config.n_nodes == 4
        assert machine.node_of(0) == 0 and machine.node_of(7) == 3

    def test_scaled_cache_geometry(self):
        cfg = itanium2_smp(4, scale=16)
        assert cfg.l2.size_bytes == 16 * 1024
        assert cfg.l3.size_bytes == 192 * 1024
        assert cfg.l2.line_size == 128  # never scaled

    def test_config_validation(self):
        with pytest.raises(ValueError):
            itanium2_smp(0)
        with pytest.raises(ValueError):
            sgi_altix(5)  # not a multiple of 2 cpus/node

    def test_with_cobra_override(self):
        cfg = itanium2_smp(4).with_cobra(sampling_interval=123)
        assert cfg.cobra.sampling_interval == 123
        assert itanium2_smp(4).cobra.sampling_interval != 123


class TestAggregates:
    def test_load_image_reaches_all_cores(self):
        machine = Machine(itanium2_smp(2))
        image = assemble("halt\n")
        machine.load_image(image)
        assert all(image in core.images for core in machine.cores)
        machine.load_image(image)  # idempotent
        assert all(core.images.count(image) == 1 for core in machine.cores)

    def test_events_of_bounds(self):
        machine = Machine(itanium2_smp(2))
        machine.events_of(1)
        with pytest.raises(MachineError):
            machine.events_of(2)

    def test_aggregate_events_sum(self):
        machine = Machine(itanium2_smp(2))
        machine.caches[0].events.loads = 3
        machine.caches[1].events.loads = 4
        assert machine.aggregate_events().loads == 7
