"""Time-ordered scheduler: clock synchronization, hooks, budgets."""

import pytest

from repro.config import itanium2_smp
from repro.cpu import Machine, Scheduler
from repro.errors import MachineError
from repro.isa import assemble


def _spin_image(label: str, iters: int):
    return assemble(
        f"""
        __{label}:
        mov ar.lc={iters}
        .{label}_loop:
        br.cloop.sptk .{label}_loop
        halt
        """
    )


class TestScheduling:
    def test_all_cores_run_to_halt(self):
        machine = Machine(itanium2_smp(4))
        image = _spin_image("t", 100)
        machine.load_image(image)
        for core in machine.cores:
            core.start(image.labels["__t"])
        total = Scheduler(machine.cores).run_until_halt(100_000)
        assert total > 0
        assert all(core.halted for core in machine.cores)

    def test_clocks_stay_synchronized(self):
        """No core races far ahead of the others (time-ordered execution)."""
        machine = Machine(itanium2_smp(4))
        image = _spin_image("t", 5000)
        machine.load_image(image)
        for core in machine.cores:
            core.start(image.labels["__t"])
        sched = Scheduler(machine.cores)
        max_skew = 0
        while sched.step():
            clocks = [c.cycles for c in machine.cores if not c.halted]
            if len(clocks) > 1:
                max_skew = max(max_skew, max(clocks) - min(clocks))
        assert max_skew < 2000, f"cores drifted apart by {max_skew} cycles"

    def test_budget_guard(self):
        machine = Machine(itanium2_smp(1))
        image = assemble("fwd:\nbr fwd\n")  # infinite loop
        machine.load_image(image)
        machine.cores[0].start(image.base)
        with pytest.raises(MachineError):
            Scheduler(machine.cores).run_until_halt(max_bundles=1000)

    def test_tick_hooks_run(self):
        machine = Machine(itanium2_smp(2))
        image = _spin_image("t", 200)
        machine.load_image(image)
        for core in machine.cores:
            core.start(image.labels["__t"])
        ticks = []
        sched = Scheduler(machine.cores)
        sched.add_tick_hook(lambda: ticks.append(1))
        sched.run_until_halt(100_000)
        assert ticks

    def test_empty_scheduler_rejected(self):
        with pytest.raises(MachineError):
            Scheduler([])

    def test_step_false_when_done(self):
        machine = Machine(itanium2_smp(1))
        sched = Scheduler(machine.cores)  # core is halted by default
        assert sched.step() is False
