"""Interpreter semantics: every opcode class, predication, loop branches."""

import pytest

from repro.config import itanium2_smp
from repro.cpu import Machine, Scheduler
from repro.errors import SimulationFault
from repro.isa import assemble


def _run(src: str, n_cpus: int = 1, init=None):
    machine = Machine(itanium2_smp(n_cpus))
    image = assemble(src)
    machine.load_image(image)
    core = machine.cores[0]
    if init:
        init(machine, core)
    core.start(image.base)
    Scheduler(machine.cores).run_until_halt(1_000_000)
    return machine, core


class TestAlu:
    def test_arithmetic_chain(self):
        _, core = _run(
            """
            mov r1=10
            mov r2=3
            add r3=r1,r2
            sub r4=r1,r2
            add r5=100,r1
            shl r6=r1,2
            shr r7=r1,1
            shladd r8=r2,3,r1
            halt
            """
        )
        regs = core.regs
        assert regs.read_gr(3) == 13
        assert regs.read_gr(4) == 7
        assert regs.read_gr(5) == 110
        assert regs.read_gr(6) == 40
        assert regs.read_gr(7) == 5
        assert regs.read_gr(8) == 34

    def test_logicals(self):
        _, core = _run(
            """
            mov r1=12
            mov r2=10
            and r3=r1,r2
            or r4=r1,r2
            xor r5=r1,r2
            halt
            """
        )
        assert core.regs.read_gr(3) == 8
        assert core.regs.read_gr(4) == 14
        assert core.regs.read_gr(5) == 6

    def test_compares_set_both_predicates(self):
        _, core = _run(
            """
            mov r1=5
            mov r2=9
            cmp.lt p6,p7=r1,r2
            cmp.eq p8,p9=r1,r2
            cmp.ne p10,p11=r1,5
            cmp.le p12,p13=r1,5
            halt
            """
        )
        regs = core.regs
        assert regs.read_pr(6) and not regs.read_pr(7)
        assert not regs.read_pr(8) and regs.read_pr(9)
        assert not regs.read_pr(10) and regs.read_pr(11)
        assert regs.read_pr(12)


class TestPredication:
    def test_predicated_off_instruction_skipped(self):
        _, core = _run(
            """
            mov r1=1
            cmp.eq p6,p7=r1,0
            (p6) mov r2=111
            (p7) mov r3=222
            halt
            """
        )
        assert core.regs.read_gr(2) == 0
        assert core.regs.read_gr(3) == 222

    def test_conditional_branch(self):
        _, core = _run(
            """
            mov r1=0
            mov r2=5
            cmp.ne p6,p7=r2,0
            (p6) br.cond.sptk .skip
            mov r1=99
            .skip:
            halt
            """
        )
        assert core.regs.read_gr(1) == 0


class TestLoops:
    def test_cloop_iterates_lc_plus_one_times(self):
        _, core = _run(
            """
            mov ar.lc=4
            mov r1=0
            .loop:
            add r1=1,r1
            br.cloop.sptk .loop
            halt
            """
        )
        assert core.regs.read_gr(1) == 5

    def test_ctop_rotation_pipeline(self):
        """Values written to r32 appear one name later each iteration."""
        _, core = _run(
            """
            clrrrb
            alloc rot=8
            mov pr.rot=0x10000
            mov ar.lc=3
            mov ar.ec=1
            mov r1=0
            .loop:
            (p16) add r1=1,r1
            (p16) add r32=1,r1
            br.ctop.sptk .loop
            halt
            """
        )
        assert core.regs.read_gr(1) == 4

    def test_ctop_epilog_drains_with_ec(self):
        _, core = _run(
            """
            clrrrb
            alloc rot=8
            mov pr.rot=0x10000
            mov ar.lc=2
            mov ar.ec=3
            mov r1=0
            mov r2=0
            .loop:
            (p16) add r1=1,r1
            (p18) add r2=1,r2
            br.ctop.sptk .loop
            halt
            """
        )
        # kernel runs 3 times (LC=2); stage p18 sees each, two stages later
        assert core.regs.read_gr(1) == 3
        assert core.regs.read_gr(2) == 3

    def test_wtop_runs_while_predicate_true(self):
        _, core = _run(
            """
            mov r1=0
            mov ar.ec=1
            .loop:
            cmp.lt p6,p7=r1,7
            (p6) add r1=1,r1
            (p6) br.wtop.sptk .loop
            halt
            """
        )
        assert core.regs.read_gr(1) == 7

    def test_btb_records_last_four_taken(self):
        _, core = _run(
            """
            mov ar.lc=9
            .loop:
            br.cloop.sptk .loop
            halt
            """
        )
        assert len(core.btb) == 4
        assert all(target <= branch for branch, target in core.btb)


class TestMemoryOps:
    def test_load_store_roundtrip(self, smp2):
        machine = smp2
        a = machine.mem.alloc("a", 128)
        image = assemble(
            f"""
            mov r2={a.base}
            mov r3=77
            st8 [r2]=r3
            ld8 r4=[r2]
            halt
            """
        )
        machine.load_image(image)
        core = machine.cores[0]
        core.start(image.base)
        Scheduler(machine.cores).run_until_halt(10_000)
        assert core.regs.read_gr(4) == 77

    def test_post_increment(self, smp2):
        machine = smp2
        a = machine.mem.alloc("a", 128)
        machine.mem.write_f64(a.base, 1.5)
        machine.mem.write_f64(a.base + 8, 2.5)
        image = assemble(
            f"""
            mov r2={a.base}
            ldfd f4=[r2],8
            ldfd f5=[r2]
            halt
            """
        )
        machine.load_image(image)
        core = machine.cores[0]
        core.start(image.base)
        Scheduler(machine.cores).run_until_halt(10_000)
        assert core.regs.read_fr(4) == 1.5
        assert core.regs.read_fr(5) == 2.5
        assert core.regs.read_gr(2) == a.base + 8

    def test_fetchadd_returns_old_value(self, smp2):
        machine = smp2
        a = machine.mem.alloc("a", 128)
        machine.mem.write_i64(a.base, 41)
        image = assemble(
            f"""
            mov r2={a.base}
            fetchadd8 r3=[r2],1
            ld8 r4=[r2]
            halt
            """
        )
        machine.load_image(image)
        core = machine.cores[0]
        core.start(image.base)
        Scheduler(machine.cores).run_until_halt(10_000)
        assert core.regs.read_gr(3) == 41
        assert core.regs.read_gr(4) == 42

    def test_float_ops(self, smp2):
        machine = smp2
        a = machine.mem.alloc("a", 128)
        machine.mem.write_f64(a.base, 2.0)
        image = assemble(
            f"""
            mov r2={a.base}
            ldfd f4=[r2]
            fma.d f5=f4,f4,f1
            fadd.d f6=f4,f1
            fsub.d f7=f4,f1
            fmul.d f8=f4,f4
            fabs f9=f7
            fmax.d f10=f4,f1
            setf.d f11=r2
            getf.d r3=f8
            halt
            """
        )
        machine.load_image(image)
        core = machine.cores[0]
        core.start(image.base)
        Scheduler(machine.cores).run_until_halt(10_000)
        regs = core.regs
        assert regs.read_fr(5) == 5.0
        assert regs.read_fr(6) == 3.0
        assert regs.read_fr(7) == 1.0
        assert regs.read_fr(8) == 4.0
        assert regs.read_fr(9) == 1.0
        assert regs.read_fr(10) == 2.0
        assert regs.read_fr(11) == float(a.base)
        assert regs.read_gr(3) == 4


class TestCalls:
    def test_call_and_return(self):
        _, core = _run(
            """
            mov r1=1
            br.call fn
            mov r3=3
            halt
            fn:
            mov r2=2
            br.ret
            """
        )
        assert core.regs.read_gr(1) == 1
        assert core.regs.read_gr(2) == 2
        assert core.regs.read_gr(3) == 3

    def test_ret_without_call_faults(self):
        with pytest.raises(SimulationFault):
            _run("br.ret\n")

    def test_bad_pc_faults(self):
        machine = Machine(itanium2_smp(1))
        image = assemble("br 0x7000000\n")
        machine.load_image(image)
        core = machine.cores[0]
        core.start(image.base)
        with pytest.raises(SimulationFault):
            Scheduler(machine.cores).run_until_halt(10_000)


class TestTiming:
    def test_two_bundles_per_cycle(self):
        _, core = _run("mov r1=1\nmov r2=2\nmov r3=3\nmov r4=4\nhalt\n")
        # 5 instructions -> 2+ bundles; cycles ~ bundles/2 (plus halt)
        assert core.cycles <= core.bundles_executed

    def test_sampling_hook_fires_and_charges_overhead(self):
        machine = Machine(itanium2_smp(1))
        image = assemble("mov ar.lc=999\n.loop:\nbr.cloop.sptk .loop\nhalt\n")
        machine.load_image(image)
        core = machine.cores[0]
        fired = []
        core.enable_sampling(100, lambda c: fired.append(c.cycles), overhead=50)
        core.start(image.base)
        Scheduler(machine.cores).run_until_halt(100_000)
        assert len(fired) >= 9
        assert core.cycles >= 50 * len(fired)
        core.disable_sampling()
        assert core.sample_interval == 0
