"""Binary images: layout, symbols, linking, patching, static analysis."""

import pytest

from repro.errors import BinaryError
from repro.isa.binary import BinaryImage, pc_bundle, pc_slot
from repro.isa.bundle import Bundle
from repro.isa.instructions import Instruction, Op, nop


def _bundle(*instrs):
    slots = list(instrs)
    while len(slots) < 3:
        slots.append(nop("I"))
    return Bundle(slots)


class TestLayout:
    def test_append_advances_by_16(self):
        image = BinaryImage(0x1000)
        a = image.append(_bundle(nop()))
        b = image.append(_bundle(nop()))
        assert (a, b) == (0x1000, 0x1010)
        assert len(image) == 2
        assert a in image and 0x1020 not in image

    def test_base_must_be_aligned(self):
        with pytest.raises(BinaryError):
            BinaryImage(0x1001)

    def test_pc_helpers(self):
        assert pc_bundle(0x1012) == 0x1010
        assert pc_slot(0x1012) == 2

    def test_fetch_errors(self):
        image = BinaryImage(0x1000)
        with pytest.raises(BinaryError):
            image.fetch_bundle(0x1000)

    def test_fetch_slot(self):
        image = BinaryImage(0x1000)
        add = Instruction(Op.ADD, r1=1, r2=2, r3=3)
        image.append(_bundle(nop(), add))
        assert image.fetch(0x1001) == add


class TestSymbolsAndLinking:
    def test_mark_and_duplicate(self):
        image = BinaryImage(0x1000)
        image.mark("entry")
        image.append(_bundle(nop()))
        with pytest.raises(BinaryError):
            image.mark("entry")

    def test_link_resolves_labels(self):
        image = BinaryImage(0x1000)
        image.mark("loop")
        image.append(_bundle(Instruction(Op.BR, label="loop", unit="B")))
        image.link()
        br = image.fetch(0x1000)
        assert br.imm == 0x1000 and br.label is None

    def test_link_undefined_label(self):
        image = BinaryImage(0x1000)
        image.append(_bundle(Instruction(Op.BR, label="nowhere", unit="B")))
        with pytest.raises(BinaryError):
            image.link()

    def test_regions(self):
        image = BinaryImage(0x1000)
        image.mark_region("k", 0x1000, 0x1020)
        assert image.regions["k"] == (0x1000, 0x1020)
        with pytest.raises(BinaryError):
            image.mark_region("k", 0, 1)


class TestPatching:
    def _image_with_lfetch(self):
        image = BinaryImage(0x1000)
        lf = Instruction(Op.LFETCH, r2=2, hint="nt1", unit="M")
        image.append(_bundle(lf, Instruction(Op.ADD, r1=1, r2=2, r3=3)))
        return image

    def test_patch_slot_journals(self):
        image = self._image_with_lfetch()
        image.patch_slot(0x1000, 0, nop("M"), reason="noprefetch")
        assert image.fetch(0x1000).op is Op.NOP
        assert image.fetch(0x1001).op is Op.ADD  # other slots untouched
        assert len(image.patches) == 1
        assert image.patches[0].reason == "noprefetch"

    def test_patch_bundle_and_revert(self):
        image = self._image_with_lfetch()
        redirect = _bundle(nop("M"), nop("I"), Instruction(Op.BR, imm=0x5000, unit="B"))
        original = image.fetch_bundle(0x1000)
        image.patch_bundle(0x1000, redirect)
        assert image.fetch_bundle(0x1000) == redirect
        image.revert_patch(image.patches[0])
        assert image.fetch_bundle(0x1000) == original
        assert len(image.patches) == 2  # the revert is journaled too

    def test_revert_detects_interleaved_change(self):
        image = self._image_with_lfetch()
        image.patch_slot(0x1000, 0, nop("M"))
        first = image.patches[0]
        image.patch_slot(0x1000, 1, nop("I"))
        with pytest.raises(BinaryError):
            image.revert_patch(first)


class TestStaticAnalysis:
    def test_count_and_find(self):
        image = BinaryImage(0x1000)
        lf = Instruction(Op.LFETCH, r2=2, unit="M")
        image.append(_bundle(lf, lf))
        image.append(_bundle(nop("M")))
        image.append(_bundle(lf))
        assert image.count_ops(Op.LFETCH) == 3
        assert image.count_ops(Op.LFETCH, (0x1000, 0x1010)) == 2
        assert image.find_ops(Op.LFETCH) == [(0x1000, 0), (0x1000, 1), (0x1020, 0)]
