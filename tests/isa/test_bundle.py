"""Bundle construction, templates, and slot replacement."""

import pytest

from repro.errors import BundleError
from repro.isa.bundle import BUNDLE_BYTES, Bundle
from repro.isa.instructions import Instruction, Op, nop


def _ld():
    return Instruction(Op.LDFD, r1=32, r2=2, imm=8, unit="M")


def _fma():
    return Instruction(Op.FMA, r1=32, r2=33, r3=34, r4=35)


def _br():
    return Instruction(Op.BR, imm=0x1000, unit="B")


class TestConstruction:
    def test_template_derived_from_units(self):
        bundle = Bundle([_ld(), _fma(), _br()])
        assert bundle.template == "mfb"

    def test_explicit_template_validated(self):
        Bundle([_ld(), nop("I"), _br()], "mib")
        with pytest.raises(BundleError):
            Bundle([_fma(), _ld(), _br()], "mib")  # fma in an M slot

    def test_wrong_slot_count(self):
        with pytest.raises(BundleError):
            Bundle([_ld(), _fma()])
        with pytest.raises(BundleError):
            Bundle([_ld()] * 4)

    def test_alu_ops_fit_m_and_i_slots(self):
        add = Instruction(Op.ADD, r1=1, r2=2, r3=3)
        Bundle([add, add, _br()], "mib")  # A-type allowed in M and I

    def test_nops_fit_anywhere(self):
        Bundle([nop("M"), nop("F"), nop("B")], "mfb")
        Bundle([nop("I"), nop("I"), nop("I")], "mmb")

    def test_bad_template(self):
        with pytest.raises(BundleError):
            Bundle([_ld(), nop(), nop()], "mi")
        with pytest.raises(BundleError):
            Bundle([_ld(), nop(), nop()], "qqq")

    def test_bundle_bytes(self):
        assert BUNDLE_BYTES == 16


class TestWithSlot:
    def test_replacement_returns_new_bundle(self):
        bundle = Bundle([_ld(), _fma(), _br()])
        lfetch = Instruction(Op.LFETCH, r2=34, hint="nt1", unit="M")
        new = bundle.with_slot(0, lfetch)
        assert new is not bundle
        assert new.slots[0].op is Op.LFETCH
        assert bundle.slots[0].op is Op.LDFD
        assert new.template == bundle.template

    def test_incompatible_replacement_rejected(self):
        bundle = Bundle([_ld(), _fma(), _br()])
        with pytest.raises(BundleError):
            bundle.with_slot(1, _ld())  # memory op into the F slot

    def test_index_bounds(self):
        bundle = Bundle([_ld(), _fma(), _br()])
        with pytest.raises(BundleError):
            bundle.with_slot(3, nop())

    def test_equality(self):
        a = Bundle([_ld(), _fma(), _br()])
        b = Bundle([_ld(), _fma(), _br()])
        assert a == b and hash(a) == hash(b)
        assert a != Bundle([nop("M"), _fma(), _br()])
