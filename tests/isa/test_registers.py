"""Register file and rotation semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RegisterError
from repro.isa.registers import (
    FR_ROT_SIZE,
    GR_ROT_START,
    PR_ROT_SIZE,
    RegisterFile,
)


class TestBasics:
    def test_r0_reads_zero_and_is_readonly(self):
        regs = RegisterFile()
        assert regs.read_gr(0) == 0
        with pytest.raises(RegisterError):
            regs.write_gr(0, 1)

    def test_f0_f1_hardwired(self):
        regs = RegisterFile()
        assert regs.read_fr(0) == 0.0
        assert regs.read_fr(1) == 1.0
        with pytest.raises(RegisterError):
            regs.write_fr(0, 2.0)
        with pytest.raises(RegisterError):
            regs.write_fr(1, 2.0)

    def test_p0_hardwired_true(self):
        regs = RegisterFile()
        assert regs.read_pr(0) is True
        with pytest.raises(RegisterError):
            regs.write_pr(0, False)

    def test_out_of_range(self):
        regs = RegisterFile()
        with pytest.raises(RegisterError):
            regs.read_gr(128)
        with pytest.raises(RegisterError):
            regs.read_fr(128)
        with pytest.raises(RegisterError):
            regs.read_pr(64)
        with pytest.raises(RegisterError):
            regs.write_gr(-1, 0)

    def test_gr_wraps_to_signed_64bit(self):
        regs = RegisterFile()
        regs.write_gr(5, (1 << 63))
        assert regs.read_gr(5) == -(1 << 63)
        regs.write_gr(5, -1)
        assert regs.read_gr(5) == -1
        regs.write_gr(5, (1 << 64) + 7)
        assert regs.read_gr(5) == 7

    def test_alloc_bounds(self):
        regs = RegisterFile()
        regs.alloc_rotating(96)
        with pytest.raises(RegisterError):
            regs.alloc_rotating(97)
        with pytest.raises(RegisterError):
            regs.alloc_rotating(-1)


class TestRotation:
    def test_gr_value_moves_up_one_name_per_rotation(self):
        regs = RegisterFile()
        regs.alloc_rotating(8)
        regs.write_gr(32, 111)
        regs.rotate()
        assert regs.read_gr(33) == 111
        regs.rotate()
        assert regs.read_gr(34) == 111

    def test_gr_outside_rotating_region_untouched(self):
        regs = RegisterFile()
        regs.alloc_rotating(8)
        regs.write_gr(20, 7)
        regs.write_gr(31, 9)
        regs.write_gr(40, 13)  # beyond r32+8
        regs.rotate()
        assert regs.read_gr(20) == 7
        assert regs.read_gr(31) == 9
        assert regs.read_gr(40) == 13

    def test_fr_always_rotates(self):
        regs = RegisterFile()
        regs.write_fr(32, 2.5)
        regs.rotate()
        assert regs.read_fr(33) == 2.5
        # static region does not rotate
        regs.write_fr(10, 1.5)
        regs.rotate()
        assert regs.read_fr(10) == 1.5

    def test_pr_rotates(self):
        regs = RegisterFile()
        regs.write_pr(16, True)
        regs.rotate()
        assert regs.read_pr(17) is True
        assert regs.read_pr(16) is False

    def test_clear_rrb(self):
        regs = RegisterFile()
        regs.alloc_rotating(8)
        regs.write_gr(32, 1)
        regs.rotate()
        regs.clear_rrb()
        assert regs.read_gr(32) == 1  # names map back to physical

    def test_gr_rotation_wraps_modulo_sor(self):
        regs = RegisterFile()
        regs.alloc_rotating(8)
        regs.write_gr(32, 42)
        for _ in range(8):
            regs.rotate()
        assert regs.read_gr(32) == 42  # full cycle

    @given(st.integers(1, 96), st.integers(0, 300))
    def test_full_fr_rotation_cycle_is_identity(self, reg_offset, extra):
        regs = RegisterFile()
        idx = 32 + (reg_offset % FR_ROT_SIZE)
        regs.write_fr(idx, 3.25)
        for _ in range(FR_ROT_SIZE):
            regs.rotate()
        assert regs.read_fr(idx) == 3.25

    @given(st.integers(0, PR_ROT_SIZE - 1), st.integers(1, PR_ROT_SIZE - 1))
    def test_pr_value_visible_at_shifted_name(self, offset, rotations):
        regs = RegisterFile()
        idx = 16 + offset
        regs.write_pr(idx, True)
        for _ in range(rotations):
            regs.rotate()
        shifted = 16 + ((offset + rotations) % PR_ROT_SIZE)
        assert regs.read_pr(shifted) is True

    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(-1000, 1000)), min_size=1, max_size=40
        )
    )
    def test_rotation_is_a_permutation(self, writes):
        """Rotation never loses or duplicates values in the region."""
        regs = RegisterFile()
        regs.alloc_rotating(8)
        for offset, value in writes:
            regs.write_gr(GR_ROT_START + offset, value)
        before = sorted(regs.gr[GR_ROT_START : GR_ROT_START + 8])
        regs.rotate()
        visible = sorted(regs.read_gr(GR_ROT_START + i) for i in range(8))
        assert visible == before
