"""Instruction objects: classification, cloning, equality."""

import pytest

from repro.isa.instructions import (
    BRANCH_OPS,
    LOOP_BRANCH_OPS,
    MEMORY_OPS,
    Instruction,
    Op,
    nop,
)


class TestClassification:
    def test_memory_ops(self):
        assert Instruction(Op.LDFD, r1=32, r2=2, unit="M").is_memory
        assert Instruction(Op.LFETCH, r2=2, unit="M").is_prefetch
        assert Instruction(Op.FETCHADD8, r1=8, r2=2, imm=1, unit="M").is_memory
        assert not Instruction(Op.FMA, r1=32, r2=33, r3=34, r4=35).is_memory

    def test_branch_ops(self):
        for op in (Op.BR, Op.BR_COND, Op.BR_CTOP, Op.BR_CLOOP, Op.BR_WTOP, Op.BR_CALL, Op.BR_RET):
            assert Instruction(op, unit="B").is_branch
        assert not Instruction(Op.ADD, r1=1, r2=2, r3=3).is_branch

    def test_loop_branch_subset(self):
        assert LOOP_BRANCH_OPS < BRANCH_OPS
        assert Op.BR_CALL not in LOOP_BRANCH_OPS
        assert Op.LFETCH in MEMORY_OPS

    def test_bad_unit_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Op.NOP, unit="Z")


class TestCloneAndEquality:
    def test_clone_changes_only_requested_fields(self):
        lf = Instruction(Op.LFETCH, qp=16, r2=34, hint="nt1", unit="M")
        excl = lf.clone(excl=True)
        assert excl.excl and not lf.excl
        assert excl.qp == 16 and excl.r2 == 34 and excl.hint == "nt1"
        assert excl.op is Op.LFETCH

    def test_clone_can_change_opcode(self):
        instr = Instruction(Op.ADD, r1=1, r2=2, r3=3)
        sub = instr.clone(op=Op.SUB)
        assert sub.op is Op.SUB and sub.r1 == 1

    def test_equality_and_hash(self):
        a = Instruction(Op.ADDI, r1=5, r2=6, imm=16)
        b = Instruction(Op.ADDI, r1=5, r2=6, imm=16)
        c = Instruction(Op.ADDI, r1=5, r2=6, imm=17)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not an instruction"

    def test_nop_units(self):
        assert nop("M").unit == "M"
        assert nop().op is Op.NOP
