"""Decoded-bundle cache: journaled invalidation must track the image.

The property test drives arbitrary patch / rollback sequences through a
binary image and checks that the cache, synced at arbitrary points,
always serves entries identical to a fresh decode of the current bytes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.binary import BinaryImage
from repro.isa.bundle import Bundle
from repro.isa.decode import DecodeCache, decode_bundle
from repro.isa.instructions import Instruction, Op, nop

BASE = 0x1000
N_BUNDLES = 6


def _bundle(*instrs):
    slots = list(instrs)
    while len(slots) < 3:
        slots.append(nop("I"))
    return Bundle(slots)


def _image():
    image = BinaryImage(BASE)
    for i in range(N_BUNDLES):
        image.append(
            _bundle(
                Instruction(Op.ADD, r1=1 + i, r2=2, r3=3),
                Instruction(Op.MOVI, r1=4, imm=i),
            )
        )
    return image


def _assert_cache_fresh(cache, image):
    assert cache.verify() == []
    for addr, bundle in image.iter_bundles():
        assert cache.map[addr] == decode_bundle(bundle)


class TestDecodeCacheBasics:
    def test_initial_sync_decodes_every_bundle(self):
        image = _image()
        cache = DecodeCache()
        cache.attach(image)
        cache.sync()
        _assert_cache_fresh(cache, image)

    def test_patch_invalidates_only_on_sync(self):
        image = _image()
        cache = DecodeCache()
        cache.attach(image)
        cache.sync()
        stale = cache.map[BASE]
        image.patch_slot(BASE, 0, nop("M"), reason="test")
        assert cache.map[BASE] is stale  # nothing moves until sync
        cache.sync()
        _assert_cache_fresh(cache, image)
        assert cache.map[BASE] != stale

    def test_rollback_restores_original_entries(self):
        image = _image()
        cache = DecodeCache()
        cache.attach(image)
        cache.sync()
        original = cache.map[BASE + 16]
        image.patch_slot(BASE + 16, 1, nop("M"), reason="deploy")
        cache.sync()
        image.revert_patch(image.patches[-1])
        cache.sync()
        assert cache.map[BASE + 16] == original
        _assert_cache_fresh(cache, image)

    def test_append_after_sync_triggers_full_rebuild(self):
        image = _image()
        cache = DecodeCache()
        cache.attach(image)
        cache.sync()
        # append bumps the version without a journal entry, so the
        # journaled shortcut cannot apply
        image.append(_bundle(Instruction(Op.ADD, r1=9, r2=9, r3=9)))
        cache.sync()
        _assert_cache_fresh(cache, image)


# operation alphabet for the property test: patch one of a few valid
# instructions into a random slot, roll back the newest live patch, or
# sync the cache mid-sequence (exercising the journal replay window)
_PATCH_INSTRS = (
    nop("M"),
    nop("I"),
    Instruction(Op.ADD, r1=5, r2=6, r3=7),
    Instruction(Op.MOVI, r1=8, imm=42),
    Instruction(Op.SUB, r1=9, r2=10, r3=11),
)

_OP = st.one_of(
    st.tuples(
        st.just("patch"),
        st.integers(0, N_BUNDLES - 1),
        st.integers(0, 2),
        st.integers(0, len(_PATCH_INSTRS) - 1),
    ),
    st.tuples(st.just("rollback")),
    st.tuples(st.just("sync")),
)


class TestDecodeCacheProperty:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_OP, max_size=40))
    def test_arbitrary_patch_rollback_sequences(self, ops):
        image = _image()
        cache = DecodeCache()
        cache.attach(image)
        cache.sync()
        live = []  # patches applied and not yet reverted, LIFO
        for op in ops:
            if op[0] == "patch":
                _, bundle_idx, slot, instr_idx = op
                addr = BASE + 16 * bundle_idx
                image.patch_slot(
                    addr, slot, _PATCH_INSTRS[instr_idx], reason="prop"
                )
                live.append(image.patches[-1])
            elif op[0] == "rollback":
                if live:
                    image.revert_patch(live.pop())
            else:
                cache.sync()
                _assert_cache_fresh(cache, image)
        cache.sync()
        _assert_cache_fresh(cache, image)
