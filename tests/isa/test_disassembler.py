"""Disassembler rendering + property-based round-trips."""

from hypothesis import given, strategies as st

from repro.isa import Bundle, Op, assemble, disassemble, format_bundle
from repro.isa.assembler import parse_instruction
from repro.isa.disassembler import format_instruction, format_predicated
from repro.isa.instructions import Instruction, nop


class TestBundleRendering:
    def test_figure2_shape(self):
        bundle = Bundle(
            [
                parse_instruction("(p16) ldfd f38=[r33]"),
                parse_instruction("(p16) lfetch.nt1 [r43]"),
                nop("B"),
            ]
        )
        text = format_bundle(bundle)
        assert text.startswith("{ .mmb")
        assert "(p16) ldfd f38=[r33]" in text
        assert "(p16) lfetch.nt1 [r43]" in text
        assert text.rstrip().endswith("}")
        assert ";;" in text  # stop bit on the last slot

    def test_disassemble_interleaves_labels(self):
        image = assemble(".entry:\nhalt\n")
        text = disassemble(image)
        assert ".entry:" in text and "halt" in text

    def test_disassemble_range(self):
        image = assemble("mov r1=1\nhalt\nmov r2=2\nhalt\n")
        text = disassemble(image, image.base, image.base + 16)
        assert "mov r1=1" in text and "mov r2=2" not in text


# -- property-based round trips ------------------------------------------------

_gr = st.integers(1, 127)
_fr = st.integers(2, 127)
_pr = st.integers(1, 63)
_imm = st.integers(-(2**20), 2**20)


def _alu():
    return st.one_of(
        st.builds(lambda d, a, b: Instruction(Op.ADD, r1=d, r2=a, r3=b), _gr, _gr, _gr),
        st.builds(lambda d, a, i: Instruction(Op.ADDI, r1=d, r2=a, imm=i), _gr, _gr, _imm),
        st.builds(lambda d, a, b: Instruction(Op.SUB, r1=d, r2=a, r3=b), _gr, _gr, _gr),
        st.builds(lambda d, a, b: Instruction(Op.AND, r1=d, r2=a, r3=b), _gr, _gr, _gr),
        st.builds(lambda d, a, i: Instruction(Op.SHL, r1=d, r2=a, imm=i % 63), _gr, _gr, _imm),
        st.builds(
            lambda d, a, i, b: Instruction(Op.SHLADD, r1=d, r2=a, imm=(i % 4) + 1, r3=b),
            _gr, _gr, _imm, _gr,
        ),
        st.builds(lambda d, i: Instruction(Op.MOVI, r1=d, imm=i), _gr, _imm),
        st.builds(lambda d, a: Instruction(Op.MOV, r1=d, r2=a), _gr, _gr),
    )


def _mem():
    inc = st.sampled_from([0, 8, 16, 128])
    return st.one_of(
        st.builds(
            lambda d, a, i: Instruction(Op.LD8, r1=d, r2=a, imm=i, unit="M"),
            _gr, _gr, inc,
        ),
        st.builds(
            lambda d, a, i: Instruction(Op.LDFD, r1=d, r2=a, imm=i, unit="M"),
            _fr, _gr, inc,
        ),
        st.builds(
            lambda a, s, i: Instruction(Op.ST8, r2=a, r3=s, imm=i, unit="M"),
            _gr, _gr, inc,
        ),
        st.builds(
            lambda a, s, i: Instruction(Op.STFD, r2=a, r3=s, imm=i, unit="M"),
            _gr, _fr, inc,
        ),
        st.builds(
            lambda a, i, h, e: Instruction(Op.LFETCH, r2=a, imm=i, hint=h, excl=e, unit="M"),
            _gr, inc, st.sampled_from([None, "nt1", "nt2", "nta"]), st.booleans(),
        ),
    )


def _fp():
    return st.one_of(
        st.builds(
            lambda d, a, b, c: Instruction(Op.FMA, r1=d, r2=a, r3=b, r4=c),
            _fr, _fr, _fr, _fr,
        ),
        st.builds(lambda d, a, b: Instruction(Op.FADD, r1=d, r2=a, r3=b), _fr, _fr, _fr),
        st.builds(lambda d, a, b: Instruction(Op.FMUL, r1=d, r2=a, r3=b), _fr, _fr, _fr),
    )


def _cmp():
    return st.builds(
        lambda pt, pf, a, b: Instruction(Op.CMP_LT, r1=pt, r2=pf, r3=a, r4=b),
        _pr, _pr, _gr, _gr,
    )


@given(st.one_of(_alu(), _mem(), _fp(), _cmp()), st.sampled_from([0, 6, 16, 63]))
def test_format_parse_round_trip(instr, qp):
    """Any renderable instruction re-parses to an equivalent one."""
    instr = instr.clone(qp=qp)
    text = format_predicated(instr)
    again = parse_instruction(text)
    # compare semantic fields (the parser normalizes the unit)
    for field in ("op", "qp", "r1", "r2", "r3", "r4", "imm", "hint", "excl"):
        assert getattr(again, field) == getattr(instr, field), (field, text)


@given(st.lists(st.one_of(_alu(), _fp()), min_size=1, max_size=12))
def test_assemble_disassemble_round_trip(instrs):
    """A whole program survives disassemble -> assemble."""
    source = "\n".join(format_instruction(i) for i in instrs) + "\nhalt\n"
    image1 = assemble(source)
    image2 = assemble(disassemble(image1))
    assert [b for _, b in image1.iter_bundles()] == [b for _, b in image2.iter_bundles()]
