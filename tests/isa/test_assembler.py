"""Assembler: parsing, packing, round-trips with the disassembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import assemble, parse_instruction
from repro.isa.disassembler import format_instruction, format_predicated
from repro.isa.instructions import Instruction, Op


class TestParseInstruction:
    CASES = [
        ("nop.i 0", Op.NOP),
        ("add r1=r2,r3", Op.ADD),
        ("add r41=16,r43", Op.ADDI),
        ("sub r1=r2,r3", Op.SUB),
        ("and r1=r2,r3", Op.AND),
        ("shl r1=r2,3", Op.SHL),
        ("shladd r9=r8,3,r18", Op.SHLADD),
        ("mov r1=r2", Op.MOV),
        ("mov r1=42", Op.MOVI),
        ("movl r1=0x80000000", Op.MOVI),
        ("cmp.lt p6,p7=r8,r9", Op.CMP_LT),
        ("cmp.eq p6,p7=r8,15", Op.CMPI_EQ),
        ("mov ar.lc=99", Op.MOV_LC_IMM),
        ("mov ar.lc=r15", Op.MOV_LC_REG),
        ("mov ar.ec=3", Op.MOV_EC_IMM),
        ("mov pr.rot=0x10000", Op.MOV_PR_ROT),
        ("alloc rot=8", Op.ALLOC),
        ("clrrrb", Op.CLRRRB),
        ("ld8 r1=[r2]", Op.LD8),
        ("ld8 r1=[r2],8", Op.LD8),
        ("ld8.bias r1=[r2]", Op.LD8),
        ("st8 [r2]=r3,8", Op.ST8),
        ("ldfd f32=[r2],8", Op.LDFD),
        ("stfd [r40]=f46", Op.STFD),
        ("lfetch.nt1 [r10]", Op.LFETCH),
        ("lfetch.excl.nt1 [r43]", Op.LFETCH),
        ("lfetch [r2],128", Op.LFETCH),
        ("fetchadd8 r8=[r25],1", Op.FETCHADD8),
        ("fma.d f44=f6,f37,f43", Op.FMA),
        ("fadd.d f10=f10,f32", Op.FADD),
        ("fabs f2=f3", Op.FABS),
        ("setf.d f2=r3", Op.SETF),
        ("getf.d r3=f2", Op.GETF),
        ("br .loop", Op.BR),
        ("br.cond.sptk .loop", Op.BR_COND),
        ("br.ctop.sptk .b1_22", Op.BR_CTOP),
        ("br.cloop.sptk .loop", Op.BR_CLOOP),
        ("br.wtop.sptk .loop", Op.BR_WTOP),
        ("br.call fn", Op.BR_CALL),
        ("br.ret", Op.BR_RET),
        ("halt", Op.HALT),
    ]

    @pytest.mark.parametrize("text,op", CASES)
    def test_mnemonics(self, text, op):
        assert parse_instruction(text).op is op

    def test_predication_prefix(self):
        instr = parse_instruction("(p16) ldfd f32=[r2],8")
        assert instr.qp == 16 and instr.op is Op.LDFD and instr.imm == 8

    def test_lfetch_flags(self):
        instr = parse_instruction("lfetch.excl.nt1 [r43]")
        assert instr.excl and instr.hint == "nt1" and instr.r2 == 43

    def test_bias_flag(self):
        assert parse_instruction("ld8.bias r1=[r2]").excl

    def test_fp_mov_pseudo(self):
        instr = parse_instruction("mov f10=0")
        assert instr.op is Op.FADD and instr.r2 == 0 and instr.r3 == 0
        instr = parse_instruction("mov f10=f5")
        assert instr.op is Op.FADD and instr.r2 == 5

    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate r1=r2",
            "add f1=r2,r3",
            "ld8 r1=[f2]",
            "cmp.zz p1,p2=r3,r4",
            "mov f10=3",
            "alloc x=3",
            "br.zork .loop",
        ],
    )
    def test_rejects_garbage(self, bad):
        with pytest.raises(AssemblyError):
            parse_instruction(bad)


class TestAssemble:
    def test_explicit_bundles_and_labels(self):
        image = assemble(
            """
            .loop:
            { .mmi
              (p16) ldfd f32=[r2],8
              (p16) lfetch.nt1 [r43]
              add r41=16,r43
            }
            br.ctop.sptk .loop
            halt
            """
        )
        assert image.labels[".loop"] == image.base
        br = image.fetch_bundle(image.base + 16).slots[2]
        assert br.op is Op.BR_CTOP and br.imm == image.base

    def test_loose_packing_max_two_memory_ops(self):
        image = assemble(
            """
            ldfd f32=[r2],8
            ldfd f33=[r3],8
            ldfd f34=[r4],8
            halt
            """
        )
        first = image.fetch_bundle(image.base)
        mems = sum(1 for s in first.slots if s.is_memory)
        assert mems <= 3  # packer keeps them in order; bundles legal

    def test_branch_lands_in_last_slot(self):
        image = assemble("br .x\n.x:\nhalt\n")
        bundle = image.fetch_bundle(image.base)
        assert bundle.slots[2].op is Op.BR

    def test_unterminated_bundle(self):
        with pytest.raises(AssemblyError):
            assemble("{ .mmi\n nop.i 0\n")

    def test_nested_bundle(self):
        with pytest.raises(AssemblyError):
            assemble("{ .mmi\n{ .mmi\n")

    def test_label_inside_bundle(self):
        with pytest.raises(AssemblyError):
            assemble("{ .mmi\n.x:\n")

    def test_comments_ignored(self):
        image = assemble("// a comment\nhalt // trailing\n")
        assert len(image) == 1


class TestRoundTrip:
    @pytest.mark.parametrize("text,_", TestParseInstruction.CASES)
    def test_format_parse_round_trip(self, text, _):
        instr = parse_instruction(text)
        if instr.label is not None:
            return  # symbolic targets need an image to resolve
        again = parse_instruction(format_instruction(instr))
        assert again == instr

    def test_predicated_round_trip(self):
        instr = parse_instruction("(p18) stfd [r17]=f61,8")
        assert parse_instruction(format_predicated(instr)) == instr
