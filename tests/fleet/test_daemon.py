"""FleetDaemon: idempotent ingestion, defensive admission, quorum
publishing, and crash recovery."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fleet.daemon import FLEET_JOURNAL, FleetDaemon, SeenSet
from repro.fleet.wire import batch_frame, encode_frame, hello_frame, profile_frame
from repro.persist.journal import MemoryDisk
from repro.persist.profiledb import empty_entry

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

KEY = "deadbeefdeadbeef/smp-4/adaptive"
DIGEST = "a" * 16


def _window(ordinal: int) -> dict:
    return {
        "window": ordinal,
        "retired": 1000 * (ordinal + 1),
        "samples": 10,
        "quarantined": 0,
        "cpi": 1.5,
    }


def _entry(decisions: dict | None = None, runs: int = 1) -> dict:
    entry = empty_entry()
    entry["runs"] = runs
    entry["cpi_total"] = 1.5
    entry["cpi_count"] = 1
    if decisions is not None:
        entry["decisions"] = decisions
    return entry


DECISIONS = {
    "64": {
        "noprefetch": {
            "proven": 1, "rolled_back": 0, "back_branch": 96, "hotness": 12,
        }
    }
}


def _stream(instance: str, n_batches: int = 3, digest: str = DIGEST,
            decisions: dict | None = DECISIONS) -> list[bytes]:
    """One agent's full clean wire traffic."""
    frames = [hello_frame(instance, KEY, digest)]
    for i in range(n_batches):
        frames.append(batch_frame(instance, len(frames), KEY, _window(i)))
    frames.append(
        profile_frame(instance, len(frames), KEY, digest, _entry(decisions))
    )
    return [encode_frame(f) for f in frames]


class TestAdmission:
    def test_clean_stream_accepted(self):
        daemon = FleetDaemon()
        for data in _stream("i0"):
            daemon.handle(data)
        assert daemon.batches_accepted == 4  # 3 batches + 1 profile
        assert daemon.crc_rejects == 0
        assert not daemon.quarantined
        assert "i0" in daemon.instances

    def test_crc_damage_rejected(self):
        daemon = FleetDaemon()
        data = bytearray(_stream("i0")[1])
        data[len(data) // 2] ^= 0xFF
        reply = daemon.handle(bytes(data))
        assert reply == {"k": "nack", "reason": "crc"}
        assert daemon.crc_rejects == 1
        assert daemon.batches_accepted == 0

    def test_malformed_payload_rejected(self):
        daemon = FleetDaemon()
        reply = daemon.handle(encode_frame({"k": "batch", "i": 3, "n": "x"}))
        assert reply == {"k": "nack", "reason": "malformed"}
        assert daemon.crc_rejects == 1

    def test_duplicates_are_noops(self):
        daemon = FleetDaemon()
        stream = _stream("i0")
        for data in stream:
            daemon.handle(data)
        state = daemon.canonical_state()
        for data in stream:
            daemon.handle(data)
        assert daemon.canonical_state() == state
        assert daemon.duplicates == len(stream) - 1  # hello has no seq slot

    def test_hello_welcome_reply(self):
        daemon = FleetDaemon()
        reply = daemon.handle(_stream("i0")[0])
        assert reply["k"] == "welcome"
        assert reply["entry"] is None  # nothing published yet
        assert reply["instances"] == 1


class TestIdempotence:
    """Sequence-number dedup makes batch application idempotent under
    arbitrary duplication and reordering (the satellite property)."""

    @given(
        order=st.permutations(list(range(5))),
        dups=st.lists(st.integers(min_value=0, max_value=4), max_size=6),
    )
    @settings(max_examples=60, **COMMON)
    def test_any_dup_reorder_interleaving_converges(self, order, dups):
        stream = _stream("i0", n_batches=3)  # hello + 3 batches + profile
        reference = FleetDaemon()
        for data in stream:
            reference.handle(data)

        daemon = FleetDaemon()
        daemon.handle(stream[0])  # hello registers the instance
        scrambled = [stream[i] for i in order] + [stream[i] for i in dups]
        for data in scrambled:
            daemon.handle(data)
        assert daemon.canonical_state() == reference.canonical_state()

    @given(
        interleave=st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 4)), max_size=20
        )
    )
    @settings(max_examples=60, **COMMON)
    def test_two_instance_interleavings_converge(self, interleave):
        streams = {0: _stream("i0"), 1: _stream("i1")}
        reference = FleetDaemon()
        for inst in (0, 1):
            for data in streams[inst]:
                reference.handle(data)

        daemon = FleetDaemon()
        delivered = [(inst, idx) for inst, idx in interleave]
        # ensure full delivery happens at least once, in some order
        delivered += [(i, n) for i in (0, 1) for n in range(5)]
        for inst, idx in delivered:
            daemon.handle(streams[inst][idx])
        assert daemon.canonical_state() == reference.canonical_state()


class TestSanitizer:
    def test_negative_samples_quarantine(self):
        daemon = FleetDaemon()
        daemon.handle(_stream("i0")[0])
        bad = dict(_window(0), samples=-1)
        reply = daemon.handle(encode_frame(batch_frame("i0", 1, KEY, bad)))
        assert reply["status"] == "quarantined"
        assert daemon.quarantined["i0"] == "samples-range"

    def test_window_conflict_quarantines(self):
        daemon = FleetDaemon()
        daemon.handle(encode_frame(batch_frame("i0", 1, KEY, _window(0))))
        rewrite = dict(_window(0), cpi=9.9)
        reply = daemon.handle(encode_frame(batch_frame("i0", 2, KEY, rewrite)))
        assert daemon.quarantined["i0"] == "window-conflict"
        assert reply["status"] == "quarantined"

    def test_time_travel_quarantines(self):
        daemon = FleetDaemon()
        daemon.handle(encode_frame(batch_frame("i0", 1, KEY, _window(1))))
        backwards = dict(_window(0), retired=99_999)  # window 0 after window 1
        daemon.handle(encode_frame(batch_frame("i0", 2, KEY, backwards)))
        assert daemon.quarantined["i0"] == "time-travel"

    def test_damaged_entry_quarantines(self):
        daemon = FleetDaemon()
        entry = _entry()
        entry["cpi_count"] = -1
        daemon.handle(encode_frame(profile_frame("i0", 0, KEY, DIGEST, entry)))
        assert daemon.quarantined["i0"] == "entry-cpi_count-range"

    def test_damaged_profiler_state_quarantines(self):
        daemon = FleetDaemon()
        entry = _entry()
        entry["profiler"] = {"not": "a profiler"}
        daemon.handle(encode_frame(profile_frame("i0", 0, KEY, DIGEST, entry)))
        assert daemon.quarantined["i0"].startswith("entry-profiler")

    def test_quarantine_is_sticky(self):
        daemon = FleetDaemon()
        daemon.handle(_stream("i0")[0])
        bad = dict(_window(0), samples=-1)
        daemon.handle(encode_frame(batch_frame("i0", 1, KEY, bad)))
        # clean frames from the quarantined stream stay refused
        reply = daemon.handle(encode_frame(batch_frame("i0", 2, KEY, _window(1))))
        assert reply["status"] == "quarantined"
        assert daemon.batches_accepted == 0


class TestConsensus:
    def test_divergent_digest_quarantined_once_quorum_backed(self):
        daemon = FleetDaemon(quorum=2)
        daemon.handle(encode_frame(hello_frame("i0", KEY, "x" * 16)))
        # one lone voice is not a consensus yet
        assert not daemon.quarantined
        daemon.handle(encode_frame(hello_frame("i1", KEY, DIGEST)))
        assert not daemon.quarantined
        daemon.handle(encode_frame(hello_frame("i2", KEY, DIGEST)))
        assert daemon.quarantined == {
            "i0": "digest-divergence vs fleet consensus"
        }

    def test_tied_digests_quarantine_nobody(self):
        daemon = FleetDaemon(quorum=1)
        daemon.handle(encode_frame(hello_frame("i0", KEY, "x" * 16)))
        daemon.handle(encode_frame(hello_frame("i1", KEY, DIGEST)))
        assert not daemon.quarantined


class TestQuorumPublishing:
    def test_below_quorum_publishes_nothing(self):
        daemon = FleetDaemon(quorum=2)
        for data in _stream("i0"):
            daemon.handle(data)
        assert daemon.published_entry(KEY) is None
        assert daemon.published_count(KEY) == 0

    def test_quorum_of_independent_instances_publishes(self):
        daemon = FleetDaemon(quorum=2)
        for inst in ("i0", "i1"):
            for data in _stream(inst):
                daemon.handle(data)
        entry = daemon.published_entry(KEY)
        assert entry is not None
        assert entry["runs"] == 2
        assert "64" in entry["decisions"]
        assert daemon.published_count(KEY) == 1

    def test_one_loud_instance_never_publishes_alone(self):
        daemon = FleetDaemon(quorum=2)
        # the same instance folds in many runs: still ONE contributor
        for data in _stream("i0", decisions=DECISIONS):
            daemon.handle(data)
        for i in range(3):
            daemon.handle(
                encode_frame(
                    profile_frame("i0", 10 + i, KEY, DIGEST, _entry(DECISIONS))
                )
            )
        assert daemon.published_entry(KEY) is None

    def test_unsupported_decisions_filtered(self):
        daemon = FleetDaemon(quorum=2)
        other = {
            "128": {
                "excl": {"proven": 1, "rolled_back": 0,
                         "back_branch": 160, "hotness": 3}
            }
        }
        for data in _stream("i0", decisions=DECISIONS):
            daemon.handle(data)
        for data in _stream("i1", decisions=other):
            daemon.handle(data)
        entry = daemon.published_entry(KEY)
        # two contributors, but no (loop, opt) pair has 2-instance support
        assert entry is not None and entry["decisions"] == {}

    def test_net_rolled_back_evidence_does_not_support(self):
        daemon = FleetDaemon(quorum=1)
        rolled = {
            "64": {
                "noprefetch": {"proven": 1, "rolled_back": 2,
                               "back_branch": 96, "hotness": 12}
            }
        }
        for data in _stream("i0", decisions=rolled):
            daemon.handle(data)
        assert daemon.published_entry(KEY)["decisions"] == {}

    def test_quarantined_instances_do_not_contribute(self):
        daemon = FleetDaemon(quorum=2)
        for inst in ("i0", "i1"):
            for data in _stream(inst):
                daemon.handle(data)
        assert daemon.published_count(KEY) == 1
        # i1 is caught lying afterwards: its evidence is withdrawn
        bad = dict(_window(7), samples=-1)
        daemon.handle(encode_frame(batch_frame("i1", 9, KEY, bad)))
        assert daemon.published_entry(KEY) is None


class TestRecovery:
    def _fill(self, daemon: FleetDaemon, instances=("i0", "i1")) -> None:
        for inst in instances:
            for data in _stream(inst):
                daemon.handle(data)

    def test_recover_equals_uncrashed(self):
        disk = MemoryDisk()
        daemon = FleetDaemon(disk, quorum=2, snapshot_interval=3)
        self._fill(daemon)
        state = daemon.canonical_state()
        recovered = FleetDaemon.recover(disk, quorum=2, snapshot_interval=3)
        assert recovered.canonical_state() == state
        assert recovered.recovered["replayed"] >= 0
        assert recovered.published_count(KEY) == 1

    def test_torn_journal_tail_truncated(self):
        disk = MemoryDisk()
        daemon = FleetDaemon(disk, quorum=2, snapshot_interval=3)
        self._fill(daemon)
        state = daemon.canonical_state()
        disk.append(FLEET_JOURNAL, b"\xba\xc0torn tail")
        recovered = FleetDaemon.recover(disk, quorum=2, snapshot_interval=3)
        assert recovered.canonical_state() == state
        assert recovered.recovered["discarded"]

    def test_resumes_mid_fleet(self):
        # crash after i0, recover, ingest i1: must equal the uncrashed
        # daemon that saw both streams
        disk = MemoryDisk()
        daemon = FleetDaemon(disk, quorum=2, snapshot_interval=2)
        self._fill(daemon, instances=("i0",))
        disk.append(FLEET_JOURNAL, b"half a record")
        recovered = FleetDaemon.recover(disk, quorum=2, snapshot_interval=2)
        self._fill(recovered, instances=("i1",))

        reference = FleetDaemon(MemoryDisk(), quorum=2, snapshot_interval=2)
        self._fill(reference)
        assert recovered.canonical_state() == reference.canonical_state()
        assert recovered.published_count(KEY) == 1

    def test_retransmits_after_recovery_dedup(self):
        disk = MemoryDisk()
        daemon = FleetDaemon(disk, quorum=1, snapshot_interval=2)
        self._fill(daemon, instances=("i0",))
        recovered = FleetDaemon.recover(disk, quorum=1, snapshot_interval=2)
        state = recovered.canonical_state()
        self._fill(recovered, instances=("i0",))  # full retransmit
        assert recovered.canonical_state() == state

    def test_quarantine_survives_recovery(self):
        disk = MemoryDisk()
        daemon = FleetDaemon(disk, quorum=1)
        daemon.handle(_stream("i0")[0])
        bad = dict(_window(0), samples=-1)
        daemon.handle(encode_frame(batch_frame("i0", 1, KEY, bad)))
        recovered = FleetDaemon.recover(disk, quorum=1)
        assert recovered.quarantined == {"i0": "samples-range"}
        reply = recovered.handle(
            encode_frame(batch_frame("i0", 2, KEY, _window(1)))
        )
        assert reply["status"] == "quarantined"


class TestValidation:
    def test_bad_quorum(self):
        with pytest.raises(ValueError, match="quorum"):
            FleetDaemon(quorum=0)

    def test_bad_snapshot_interval(self):
        with pytest.raises(ValueError, match="snapshot_interval"):
            FleetDaemon(snapshot_interval=0)

    def test_bad_window_budget(self):
        with pytest.raises(ValueError, match="window_budget"):
            FleetDaemon(window_budget=0)


class TestSeenSet:
    def test_in_order_stream_compacts_to_the_watermark(self):
        # real traffic: hello owns seq 0 (stateless), batches start at 1
        seen = SeenSet()
        for seq in range(1, 1001):
            seen.add(seq)
        assert seen.watermark == 1001
        assert seen.residue == set()
        assert 1000 in seen and 1001 not in seen

    def test_out_of_order_residue_drains_when_the_gap_fills(self):
        seen = SeenSet()
        for seq in (1, 3, 4, 6):
            seen.add(seq)
        assert seen.watermark == 2 and seen.residue == {3, 4, 6}
        seen.add(2)
        assert seen.watermark == 5 and seen.residue == {6}
        seen.add(5)
        assert seen.watermark == 7 and seen.residue == set()

    @given(
        seqs=st.lists(st.integers(min_value=1, max_value=200), max_size=120)
    )
    @settings(**COMMON)
    def test_membership_matches_a_plain_set_and_payload_is_canonical(
        self, seqs
    ):
        seen = SeenSet()
        reference: set[int] = set()
        for seq in seqs:
            seen.add(seq)
            reference.add(seq)
        assert {s for s in range(210) if s in seen} == reference
        assert len(seen) == len(reference)
        # the payload is a canonical function of the *set*: reordering
        # arrival must not change the bytes
        shuffled = SeenSet()
        for seq in sorted(seqs, reverse=True):
            shuffled.add(seq)
        assert shuffled.to_payload() == seen.to_payload()

    def test_legacy_list_payload_restores_identically(self):
        seen = SeenSet()
        for seq in (1, 2, 3, 7, 9):
            seen.add(seq)
        legacy = SeenSet.from_payload([1, 2, 3, 7, 9])
        assert legacy.to_payload() == seen.to_payload() == {"w": 4, "r": [7, 9]}

    def test_daemon_dedup_state_stays_bounded_over_a_long_run(self):
        daemon = FleetDaemon()
        daemon.handle(_stream("i0")[0])   # hello
        for i in range(500):
            daemon.handle(
                encode_frame(batch_frame("i0", i + 1, KEY, _window(i)))
            )
        seen = daemon.seen["i0"]
        # in-order traffic compacts to a pure watermark: O(1) dedup
        # state where the old plain set held one int per frame forever
        assert seen.watermark == 501
        assert seen.residue == set()
        payload = daemon._state_payload()["seen"]["i0"]
        assert payload == {"w": 501, "r": []}

    def test_compacted_seen_survives_recovery(self):
        disk = MemoryDisk()
        daemon = FleetDaemon(disk, snapshot_interval=3)
        for data in _stream("i0", n_batches=6):
            daemon.handle(data)
        recovered = FleetDaemon.recover(disk, snapshot_interval=3)
        assert recovered.canonical_state() == daemon.canonical_state()
        assert recovered.seen["i0"].to_payload() == (
            daemon.seen["i0"].to_payload()
        )


class TestWindowBudget:
    def test_oldest_windows_shed_at_the_budget(self):
        daemon = FleetDaemon(window_budget=3)
        daemon.handle(_stream("i0")[0])
        for i in range(8):
            daemon.handle(
                encode_frame(batch_frame("i0", i + 1, KEY, _window(i)))
            )
        assert sorted(daemon.windows["i0"]) == [5, 6, 7]
        # shed windows stay deduped: their sequence numbers were kept
        assert daemon.batches_accepted == 8
        reply = daemon.handle(
            encode_frame(batch_frame("i0", 1, KEY, _window(0)))
        )
        assert reply["status"] == "dup"

    def test_bounded_daemons_converge_regardless_of_arrival_order(self):
        ordinals = [0, 5, 2, 7, 1, 6, 3, 4]
        daemons = []
        for order in (ordinals, sorted(ordinals), sorted(ordinals, reverse=True)):
            daemon = FleetDaemon(window_budget=3)
            daemon.handle(_stream("i0")[0])
            for i in order:
                daemon.handle(
                    encode_frame(batch_frame("i0", i + 1, KEY, _window(i)))
                )
            daemons.append(daemon)
        states = {d.canonical_state() for d in daemons}
        assert len(states) == 1
        assert sorted(daemons[0].windows["i0"]) == [5, 6, 7]

    def test_budget_threads_through_recovery(self):
        disk = MemoryDisk()
        daemon = FleetDaemon(disk, window_budget=2, snapshot_interval=100)
        daemon.handle(_stream("i0")[0])
        for i in range(5):
            daemon.handle(
                encode_frame(batch_frame("i0", i + 1, KEY, _window(i)))
            )
        recovered = FleetDaemon.recover(disk, window_budget=2)
        assert recovered.canonical_state() == daemon.canonical_state()
        assert sorted(recovered.windows["i0"]) == [3, 4]
