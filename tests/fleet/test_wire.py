"""Fleet wire format: round-trip identity and corruption rejection."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fleet.wire import (
    batch_frame,
    decode_frame,
    encode_frame,
    hello_frame,
    profile_frame,
)

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

WINDOW = {"window": 0, "retired": 1000, "samples": 12, "quarantined": 0,
          "cpi": 1.25}
ENTRY = {"runs": 1, "profiler": None, "cpi_total": 1.5, "cpi_count": 1,
         "decisions": {}, "flips": 0}


class TestRoundTrip:
    def test_hello(self):
        frame = hello_frame("i0", "k/m/s", "d" * 16)
        assert decode_frame(encode_frame(frame)) == frame

    def test_batch(self):
        frame = batch_frame("i0", 3, "k/m/s", WINDOW)
        assert decode_frame(encode_frame(frame)) == frame

    def test_profile(self):
        frame = profile_frame("i0", 7, "k/m/s", "d" * 16, ENTRY)
        assert decode_frame(encode_frame(frame)) == frame

    def test_sequence_numbers_preserved(self):
        for seq in (0, 1, 99):
            frame = batch_frame("i1", seq, "k", WINDOW)
            assert decode_frame(encode_frame(frame))["n"] == seq


class TestRejection:
    def test_every_single_byte_flip_is_detected(self):
        data = encode_frame(batch_frame("i0", 1, "k", WINDOW))
        for pos in range(len(data)):
            damaged = bytearray(data)
            damaged[pos] ^= 0xFF
            assert decode_frame(bytes(damaged)) is None, f"flip at {pos}"

    def test_trailing_bytes_rejected(self):
        data = encode_frame(hello_frame("i0", "k", "d"))
        assert decode_frame(data + b"x") is None

    def test_concatenated_frames_rejected(self):
        one = encode_frame(hello_frame("i0", "k", "d"))
        assert decode_frame(one + one) is None

    def test_empty_and_garbage(self):
        assert decode_frame(b"") is None
        assert decode_frame(b"not a frame at all") is None

    @given(data=st.binary(max_size=64))
    @settings(max_examples=80, **COMMON)
    def test_arbitrary_bytes_never_crash(self, data):
        out = decode_frame(data)
        assert out is None or isinstance(out, dict)
