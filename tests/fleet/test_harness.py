"""End-to-end fleet runs: digest equality with solo execution, decision
sharing across instances, fault accounting, and parallel determinism."""

from __future__ import annotations

import pytest

from repro.config import FleetFaultConfig
from repro.errors import FleetError
from repro.fleet import FleetHarness

FAULTS = FleetFaultConfig(
    seed=7, frame_rate=0.2, partition_rate=0.15, daemon_crash_batch=5
)


@pytest.fixture(scope="module")
def clean_report():
    return FleetHarness(instances=6).run()


@pytest.fixture(scope="module")
def faulted_report():
    return FleetHarness(instances=6, faults=FAULTS).run()


class TestCleanFleet:
    def test_ok_and_no_failures(self, clean_report):
        assert clean_report.ok
        assert not clean_report.failures

    def test_all_digests_match_solo_reference(self, clean_report):
        assert clean_report.reference_digest
        for record in clean_report.records:
            assert record.digest == clean_report.reference_digest
            assert record.verified

    def test_decision_proven_on_one_instance_reused_by_another(
        self, clean_report
    ):
        assert clean_report.published >= 1
        cold = [r for r in clean_report.records if r.round == "cold"]
        warm = [r for r in clean_report.records if r.round == "warm"]
        assert any(r.deployed for r in cold)
        seeded = [r for r in warm if r.seeded]
        assert seeded
        # the warm instance skips the ramp the cold instances paid
        for record in seeded:
            assert record.ramp_retired == 0
        assert all(r.ramp_retired > 0 for r in cold if r.deployed)

    def test_daemon_saw_every_instance(self, clean_report):
        assert len({r.instance for r in clean_report.records}) == (
            clean_report.instances
        )
        assert clean_report.daemon["crc_rejects"] == 0
        assert not clean_report.daemon["quarantined"]

    def test_clean_run_has_no_fault_ledger(self, clean_report):
        assert clean_report.ledger is None


class TestFaultedFleet:
    def test_ok_under_fault_schedule(self, faulted_report):
        assert faulted_report.ok, faulted_report.failures

    def test_digests_still_bit_identical(self, faulted_report):
        for record in faulted_report.records:
            assert record.digest == faulted_report.reference_digest

    def test_every_fault_detected_or_tolerated(self, faulted_report):
        ledger = faulted_report.ledger
        assert ledger.injected > 0
        assert ledger.accounted
        assert all(e.status in ("detected", "tolerated")
                   for e in ledger.events)

    def test_daemon_crash_recovered(self, faulted_report):
        recovered = faulted_report.daemon["recovered"]
        assert recovered is not None
        assert recovered["crash_batch"] == FAULTS.daemon_crash_batch
        assert "daemon_crash" in faulted_report.ledger.by_kind

    def test_summary_reports_fault_story(self, faulted_report):
        text = faulted_report.summary()
        assert "faults[fleet]:" in text
        assert "recovery: crash at batch" in text
        assert "bit-identical to solo reference" in text


class TestParallelDeterminism:
    def test_reports_byte_identical_at_any_job_count(self):
        seq = FleetHarness(instances=4, faults=FAULTS).run(jobs=1)
        par = FleetHarness(instances=4, faults=FAULTS).run(jobs=2)
        assert seq.to_json() == par.to_json()
        assert seq.summary() == par.summary()


class TestValidation:
    def test_instances_floor(self):
        with pytest.raises(FleetError, match="instances"):
            FleetHarness(instances=0)

    def test_quorum_bounds(self):
        with pytest.raises(FleetError, match="quorum"):
            FleetHarness(instances=4, quorum=0)
        with pytest.raises(FleetError, match="quorum"):
            FleetHarness(instances=4, quorum=5)
