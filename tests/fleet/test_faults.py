"""Transport fault schedule and backoff properties.

The two hypothesis-hammered guarantees the rejoin/retry story rests on:
the backoff schedule is a pure function of its seed (replayable fleet
runs) and every delay is bounded by the cap (no unbounded stall).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import FleetFaultConfig
from repro.errors import FaultError
from repro.faults.injector import (
    FLEET_FRAME_FAULTS,
    FLEET_TOLERATED_AT_INJECTION,
    FaultEvent,
)
from repro.fleet.faults import (
    TransportFaults,
    backoff_delays,
    build_ledger,
    partition_draw,
)

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestBackoffProperties:
    @given(seed=st.integers(min_value=0, max_value=2**32),
           attempts=st.integers(min_value=0, max_value=12))
    @settings(max_examples=80, **COMMON)
    def test_deterministic_per_seed(self, seed, attempts):
        assert backoff_delays(seed, attempts) == backoff_delays(seed, attempts)

    @given(seed=st.integers(min_value=0, max_value=2**32),
           attempts=st.integers(min_value=1, max_value=16),
           base=st.integers(min_value=1, max_value=32),
           cap=st.integers(min_value=32, max_value=4096))
    @settings(max_examples=120, **COMMON)
    def test_bounded_by_cap_and_exponential_floor(
        self, seed, attempts, base, cap
    ):
        delays = backoff_delays(seed, attempts, base=base, cap=cap)
        assert len(delays) == attempts
        for k, delay in enumerate(delays):
            raw = min(cap, base * 2**min(k, 32))
            assert raw // 2 <= delay <= raw
            assert delay <= cap

    def test_longer_schedule_extends_shorter(self):
        # the same seed's schedule is a prefix-stable stream: asking for
        # more attempts never changes the earlier delays
        assert backoff_delays(5, 8)[:3] == backoff_delays(5, 3)

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            backoff_delays(0, -1)
        with pytest.raises(ValueError, match="base"):
            backoff_delays(0, 1, base=0)
        with pytest.raises(ValueError, match="cap"):
            backoff_delays(0, 1, base=8, cap=4)


class TestTransportFaults:
    def test_unknown_kind_rejected(self):
        config = FleetFaultConfig(kinds=("drop_frame", "melt_wire"))
        with pytest.raises(FaultError, match="melt_wire"):
            TransportFaults(config, "i0")

    def test_zero_rate_draws_nothing(self):
        faults = TransportFaults(FleetFaultConfig(frame_rate=0.0), "i0")
        assert all(faults.frame_fault() is None for _ in range(50))
        assert faults.events == []

    def test_schedule_deterministic_per_instance(self):
        config = FleetFaultConfig(seed=3, frame_rate=0.5)
        a = TransportFaults(config, "i0")
        b = TransportFaults(config, "i0")
        kinds_a = [getattr(a.frame_fault(), "kind", None) for _ in range(30)]
        kinds_b = [getattr(b.frame_fault(), "kind", None) for _ in range(30)]
        assert kinds_a == kinds_b

    def test_instances_get_independent_schedules(self):
        config = FleetFaultConfig(seed=3, frame_rate=0.5)
        a = TransportFaults(config, "i0")
        b = TransportFaults(config, "i1")
        kinds_a = [getattr(a.frame_fault(), "kind", None) for _ in range(30)]
        kinds_b = [getattr(b.frame_fault(), "kind", None) for _ in range(30)]
        assert kinds_a != kinds_b

    def test_tolerated_at_injection_classification(self):
        faults = TransportFaults(FleetFaultConfig(seed=1, frame_rate=1.0), "i0")
        for _ in range(60):
            event = faults.frame_fault()
            assert event is not None
            if event.kind in FLEET_TOLERATED_AT_INJECTION:
                assert event.status == "tolerated"
            else:
                assert event.status == "injected"
        assert {e.kind for e in faults.events} == set(FLEET_FRAME_FAULTS)


class TestPartitionDraw:
    def test_deterministic(self):
        config = FleetFaultConfig(seed=9, partition_rate=0.5)
        draws = [partition_draw(config, f"i{n}", 0) for n in range(20)]
        assert draws == [partition_draw(config, f"i{n}", 0) for n in range(20)]
        assert any(draws) and not all(draws)

    def test_zero_rate_never_partitions(self):
        config = FleetFaultConfig(seed=9, partition_rate=0.0)
        assert not any(partition_draw(config, f"i{n}", 0) for n in range(20))

    def test_round_changes_the_draw_stream(self):
        config = FleetFaultConfig(seed=9, partition_rate=0.5)
        r0 = [partition_draw(config, f"i{n}", 0) for n in range(20)]
        r1 = [partition_draw(config, f"i{n}", 1) for n in range(20)]
        assert r0 != r1


class TestBuildLedger:
    def test_renumbers_and_counts(self):
        events = [
            FaultEvent(7, "drop_frame", "fleet", "tolerated"),
            FaultEvent(7, "corrupt_frame", "fleet", "detected"),
            FaultEvent(0, "poison_batch", "fleet", "injected"),
        ]
        ledger = build_ledger(4, events)
        assert [e.seq for e in ledger.events] == [0, 1, 2]
        assert ledger.injected == 3
        assert ledger.detected == 1 and ledger.tolerated == 1
        assert ledger.by_kind == {
            "drop_frame": 1, "corrupt_frame": 1, "poison_batch": 1
        }
        assert not ledger.accounted  # the injected poison was never settled

    def test_empty_is_accounted(self):
        assert build_ledger(0, []).accounted
