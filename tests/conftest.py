"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import itanium2_smp, sgi_altix
from repro.cpu import Machine


@pytest.fixture
def smp2() -> Machine:
    """A small two-CPU SMP machine (fast for protocol tests)."""
    return Machine(itanium2_smp(2))


@pytest.fixture
def smp4() -> Machine:
    return Machine(itanium2_smp(4))


@pytest.fixture
def altix4() -> Machine:
    """A two-node cc-NUMA machine."""
    return Machine(sgi_altix(4))
