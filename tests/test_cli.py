"""Command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_daxpy_adaptive(self, capsys):
        rc = main(["--scale", "4", "daxpy", "--reps", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified:        True" in out
        assert "COBRA strategy=adaptive" in out

    def test_daxpy_baseline(self, capsys):
        rc = main(["--scale", "4", "daxpy", "--strategy", "baseline", "--reps", "4"])
        out = capsys.readouterr().out
        assert rc == 0 and "coherent ratio" in out and "COBRA" not in out

    def test_npb_run(self, capsys):
        rc = main(["npb", "ep", "--strategy", "baseline"])
        out = capsys.readouterr().out
        assert rc == 0 and "verified:        True" in out

    def test_table1(self, capsys):
        rc = main(["table1"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("bt", "sp", "lu", "ft", "mg", "cg", "ep", "is"):
            assert name in out

    def test_disasm_daxpy(self, capsys):
        rc = main(["disasm", "daxpy"])
        out = capsys.readouterr().out
        assert rc == 0 and "lfetch.nt1" in out and "br.ctop" in out

    def test_disasm_unknown(self, capsys):
        assert main(["disasm", "nope"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_validate_daxpy(self, capsys):
        rc = main(["validate", "--workloads", "daxpy", "--reps", "1", "--mode", "strict"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "differential[daxpy" in out
        assert "coherence checks" in out
        assert "isa[daxpy]: round-trip + patch/rollback" in out
        assert "validate: OK" in out

    def test_validate_unknown_workload(self, capsys):
        assert main(["validate", "--workloads", "nope"]) == 2
