"""Command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_daxpy_adaptive(self, capsys):
        rc = main(["--scale", "4", "daxpy", "--reps", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified:        True" in out
        assert "COBRA strategy=adaptive" in out

    def test_daxpy_baseline(self, capsys):
        rc = main(["--scale", "4", "daxpy", "--strategy", "baseline", "--reps", "4"])
        out = capsys.readouterr().out
        assert rc == 0 and "coherent ratio" in out and "COBRA" not in out

    def test_npb_run(self, capsys):
        rc = main(["npb", "ep", "--strategy", "baseline"])
        out = capsys.readouterr().out
        assert rc == 0 and "verified:        True" in out

    def test_table1(self, capsys):
        rc = main(["table1"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("bt", "sp", "lu", "ft", "mg", "cg", "ep", "is"):
            assert name in out

    def test_disasm_daxpy(self, capsys):
        rc = main(["disasm", "daxpy"])
        out = capsys.readouterr().out
        assert rc == 0 and "lfetch.nt1" in out and "br.ctop" in out

    def test_disasm_unknown(self, capsys):
        assert main(["disasm", "nope"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_validate_daxpy(self, capsys):
        rc = main(["validate", "--workloads", "daxpy", "--reps", "1", "--mode", "strict"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "differential[daxpy" in out
        assert "coherence checks" in out
        assert "isa[daxpy]: round-trip + patch/rollback" in out
        assert "validate: OK" in out

    def test_validate_unknown_workload(self, capsys):
        assert main(["validate", "--workloads", "nope"]) == 2

    def test_chaos_daxpy(self, capsys):
        rc = main([
            "chaos", "--workloads", "daxpy", "--seed", "3", "--runs", "2",
            "--threads", "2", "--reps", "3", "--strategies", "adaptive",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "chaos[daxpy" in out
        assert "seed=3" in out and "seed=4" in out
        assert "chaos: OK" in out

    def test_chaos_unknown_workload(self, capsys):
        assert main(["chaos", "--workloads", "nope"]) == 2

    def test_chaos_bad_rate(self, capsys):
        rc = main(["chaos", "--sample-rate", "7"])
        err = capsys.readouterr().err
        assert rc == 2 and "sample_rate" in err


class TestStrategyValidation:
    """Unknown strategy names are rejected at the CLI boundary with a
    one-line error and exit code 2 — never a raw traceback."""

    def test_daxpy_unknown_strategy(self, capsys):
        rc = main(["daxpy", "--strategy", "frobnicate"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.count("\n") == 1
        assert "unknown strategy 'frobnicate'" in err
        for name in ("baseline", "noprefetch", "excl", "adaptive"):
            assert name in err

    def test_npb_unknown_strategy(self, capsys):
        rc = main(["npb", "cg", "--strategy", "nope"])
        err = capsys.readouterr().err
        assert rc == 2 and "unknown strategy 'nope'" in err

    def test_validate_unknown_strategy(self, capsys):
        rc = main(["validate", "--workloads", "daxpy", "--strategies", "bogus"])
        err = capsys.readouterr().err
        assert rc == 2 and "unknown strategy 'bogus'" in err
        assert "none" in err

    def test_validate_strategy_subset(self, capsys):
        # "none" is added automatically for the differential baseline
        rc = main([
            "validate", "--workloads", "daxpy", "--reps", "1",
            "--strategies", "excl",
        ])
        out = capsys.readouterr().out
        assert rc == 0 and "validate: OK" in out

    def test_bench_unknown_strategy(self, capsys):
        rc = main(["bench", "--strategies", "bogus"])
        err = capsys.readouterr().err
        assert rc == 2 and "unknown strategy 'bogus'" in err

    def test_bench_unknown_benchmark(self, capsys):
        rc = main(["bench", "--benchmarks", "nope"])
        err = capsys.readouterr().err
        assert rc == 2 and "unknown benchmark 'nope'" in err

    def test_chaos_unknown_strategy(self, capsys):
        rc = main(["chaos", "--strategies", "bogus"])
        err = capsys.readouterr().err
        assert rc == 2 and "unknown strategy 'bogus'" in err


class TestEnvValidation:
    """Malformed REPRO_* overrides die with one-line errors, exit 2."""

    def test_negative_repro_faults_seed(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "-3")
        rc = main(["table1"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.count("\n") == 1
        assert "REPRO_FAULTS must be a non-negative integer seed, got '-3'" in err

    def test_non_integer_repro_faults(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "lots")
        rc = main(["table1"])
        err = capsys.readouterr().err
        assert rc == 2 and "REPRO_FAULTS" in err and "'lots'" in err

    def test_repro_checkpoint_must_be_a_directory(self, capsys, monkeypatch, tmp_path):
        not_a_dir = tmp_path / "file.txt"
        not_a_dir.write_text("x")
        monkeypatch.setenv("REPRO_CHECKPOINT", str(not_a_dir))
        rc = main(["table1"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "REPRO_CHECKPOINT must name a checkpoint directory" in err

    def test_valid_env_passes_through(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "0")
        assert main(["table1"]) == 0

    def test_malformed_trace_jit(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_JIT", "yes")
        rc = main(["table1"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.count("\n") == 1
        assert "REPRO_TRACE_JIT must be '0', '1' or 'osr-off', got 'yes'" in err

    def test_trace_jit_rejects_stray_integer(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_JIT", "2")
        rc = main(["table1"])
        err = capsys.readouterr().err
        assert rc == 2 and "REPRO_TRACE_JIT" in err and "'2'" in err

    def test_trace_jit_rejects_osr_off_typo(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_JIT", "osr_off")
        rc = main(["table1"])
        err = capsys.readouterr().err
        assert rc == 2 and "'osr_off'" in err

    @pytest.mark.parametrize("value", ["0", "1", "", " 1 ", "osr-off"])
    def test_trace_jit_accepts_valid_values(self, capsys, monkeypatch, value):
        # unset/empty means "default on" (mirrors REPRO_FAULTS handling)
        monkeypatch.setenv("REPRO_TRACE_JIT", value)
        assert main(["table1"]) == 0


class TestCheckpointCli:
    def test_checkpoint_then_resume(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        rc = main([
            "--scale", "4", "daxpy", "--checkpoint-dir", ckpt,
            "--strategy", "noprefetch", "--reps", "4",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "persistence:" in out and "verified:        True" in out

        rc = main(["resume", "--checkpoint-dir", ckpt])
        out = capsys.readouterr().out
        assert rc == 0
        assert "warm restart: resumed from checkpoint" in out
        assert "verified:        True" in out

    def test_checkpoint_requires_cobra_strategy(self, capsys, tmp_path):
        rc = main([
            "daxpy", "--checkpoint-dir", str(tmp_path / "c"),
            "--strategy", "baseline",
        ])
        err = capsys.readouterr().err
        assert rc == 2 and "--checkpoint-dir requires a COBRA strategy" in err

    def test_resume_missing_directory(self, capsys, tmp_path):
        rc = main(["resume", "--checkpoint-dir", str(tmp_path / "nope")])
        err = capsys.readouterr().err
        assert rc == 2 and "no checkpoint directory" in err

    def test_resume_empty_store(self, capsys, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        rc = main(["resume", "--checkpoint-dir", str(empty)])
        err = capsys.readouterr().err
        assert rc == 2 and "no resumable checkpoint" in err


class TestProfileDBCli:
    def test_second_run_warm_starts_from_the_database(self, capsys, tmp_path):
        db = str(tmp_path / "daxpy.profile.db")
        args = [
            "--scale", "4", "daxpy", "--profile-db", db,
            "--strategy", "noprefetch", "--reps", "10",
        ]
        rc = main(args)
        out = capsys.readouterr().out
        assert rc == 0
        assert "profile-db: miss" in out and "verified:        True" in out

        rc = main(args)
        out = capsys.readouterr().out
        assert rc == 0
        assert "profile-db: hit" in out
        assert "warm at 0 retired" in out
        assert "verified:        True" in out

    def test_profile_db_rejects_directory(self, capsys, tmp_path):
        rc = main(["daxpy", "--profile-db", str(tmp_path)])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.count("\n") == 1
        assert "--profile-db must name a database file" in err

    def test_profile_db_requires_cobra_strategy(self, capsys, tmp_path):
        rc = main([
            "daxpy", "--profile-db", str(tmp_path / "p.db"),
            "--strategy", "baseline",
        ])
        err = capsys.readouterr().err
        assert rc == 2 and "--profile-db requires a COBRA strategy" in err

    def test_env_override_rejects_directory(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PROFILE_DB", str(tmp_path))
        rc = main(["table1"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.count("\n") == 1
        assert "REPRO_PROFILE_DB must name a profile-database file" in err

    def test_env_override_attaches_the_database(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PROFILE_DB", str(tmp_path / "env.profile.db"))
        rc = main(["--scale", "4", "daxpy", "--strategy", "noprefetch",
                   "--reps", "4"])
        out = capsys.readouterr().out
        assert rc == 0 and "profile-db: miss" in out

    def test_warm_rejects_unknown_benchmark(self, capsys):
        rc = main(["warm", "--workloads", "nope"])
        err = capsys.readouterr().err
        assert rc == 2 and "unknown benchmark 'nope'" in err

    def test_warm_rejects_bad_min_reduction(self, capsys):
        rc = main(["warm", "--min-reduction", "150"])
        err = capsys.readouterr().err
        assert rc == 2 and "--min-reduction" in err

    def test_warm_rejects_unknown_strategy(self, capsys):
        rc = main(["warm", "--strategy", "nope"])
        err = capsys.readouterr().err
        assert rc == 2 and "unknown strategy 'nope'" in err


class TestFuzzCli:
    """Argument validation plus a tiny smoke sweep — the full sweep and
    the planted-divergence path live in tests/fuzz/."""

    def test_bad_jobs(self, capsys):
        rc = main(["fuzz", "--seeds", "1", "--jobs", "0"])
        err = capsys.readouterr().err
        assert rc == 2 and "--jobs must be >= 1" in err

    def test_fault_seed_requires_replay(self, capsys):
        rc = main(["fuzz", "--seeds", "1", "--fault-seed", "7"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.count("\n") == 1
        assert "--fault-seed requires --replay" in err

    def test_negative_fault_seed(self, capsys):
        rc = main(["fuzz", "--replay", "3", "--fault-seed", "-1"])
        err = capsys.readouterr().err
        assert rc == 2 and "--fault-seed must be >= 0" in err

    def test_bad_seed_count(self, capsys):
        rc = main(["fuzz", "--seeds", "0"])
        err = capsys.readouterr().err
        assert rc == 2 and "--seeds must be >= 1" in err

    def test_missing_corpus(self, capsys, tmp_path):
        rc = main(["fuzz", "--corpus", str(tmp_path / "nope.json")])
        err = capsys.readouterr().err
        assert rc == 2 and "bad corpus" in err

    def test_malformed_corpus(self, capsys, tmp_path):
        bad = tmp_path / "corpus.json"
        bad.write_text('{"entries": [{"seed": 1}]}')
        rc = main(["fuzz", "--corpus", str(bad)])
        err = capsys.readouterr().err
        assert rc == 2 and "bad corpus" in err

    def test_smoke_sweep(self, capsys):
        rc = main(["fuzz", "--seeds", "2", "--no-verbose"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fuzz: 2 scenario(s)" in out and "OK" in out

    def test_replay_single_seed(self, capsys):
        rc = main(["fuzz", "--replay", "3"])
        out = capsys.readouterr().out
        assert rc == 0 and "fuzz[seed=3]" in out

    def test_out_writes_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "report.json"
        rc = main(["fuzz", "--replay", "3", "--out", str(out_path)])
        assert rc == 0
        data = json.loads(out_path.read_text())
        assert data["ok"] is True
        assert data["scenarios"][0]["seed"] == 3
        assert len(data["scenarios"][0]["digests"]) == 12


class TestRecoveryCli:
    """Argument validation only — the sweep itself is covered by
    tests/validate/test_recovery_harness.py (the CLI run takes minutes)."""

    def test_unknown_workload(self, capsys):
        assert main(["recovery", "--workloads", "nope"]) == 2

    def test_unknown_strategy(self, capsys):
        rc = main(["recovery", "--strategy", "bogus"])
        err = capsys.readouterr().err
        assert rc == 2 and "unknown strategy 'bogus'" in err

    def test_bad_stride(self, capsys):
        rc = main(["recovery", "--stride", "0"])
        err = capsys.readouterr().err
        assert rc == 2 and "--stride must be >= 1" in err

    def test_bad_torn_bytes(self, capsys):
        rc = main(["recovery", "--torn-bytes", "-1"])
        err = capsys.readouterr().err
        assert rc == 2 and "--torn-bytes must be >= 0" in err


class TestFleetCli:
    """`repro fleet`: argument validation and a small end-to-end run."""

    def test_small_clean_fleet(self, capsys, tmp_path):
        out = tmp_path / "fleet.json"
        rc = main(["fleet", "--instances", "4", "--jobs", "2",
                   "--out", str(out)])
        captured = capsys.readouterr().out
        assert rc == 0
        assert "4 instance(s) (2 cold + 2 warm)" in captured
        assert "bit-identical to solo reference" in captured
        assert out.exists()
        import json

        data = json.loads(out.read_text())
        assert len(data["records"]) == 4
        digests = {r["digest"] for r in data["records"]}
        assert digests == {data["reference_digest"]}

    def test_faulted_fleet_accounts_every_fault(self, capsys):
        rc = main(["fleet", "--instances", "4", "--fault-seed", "7"])
        captured = capsys.readouterr().out
        assert rc == 0
        assert "faults[fleet]:" in captured
        assert "recovery: crash at batch" in captured

    def test_bad_instances(self, capsys):
        rc = main(["fleet", "--instances", "0"])
        err = capsys.readouterr().err
        assert rc == 2 and err.count("\n") == 1
        assert "--instances must be >= 1" in err

    def test_bad_quorum(self, capsys):
        rc = main(["fleet", "--quorum", "-1"])
        err = capsys.readouterr().err
        assert rc == 2 and "--quorum must be >= 0" in err

    def test_quorum_exceeding_fleet(self, capsys):
        rc = main(["fleet", "--instances", "2", "--quorum", "3"])
        err = capsys.readouterr().err
        assert rc == 2 and "quorum 3 exceeds --instances 2" in err

    def test_bad_fault_seed(self, capsys):
        rc = main(["fleet", "--fault-seed", "-1"])
        err = capsys.readouterr().err
        assert rc == 2 and "--fault-seed must be >= 0" in err

    def test_bad_flush_interval(self, capsys):
        rc = main(["fleet", "--flush-interval", "0"])
        err = capsys.readouterr().err
        assert rc == 2 and "--flush-interval must be >= 1" in err

    def test_unknown_workload(self, capsys):
        rc = main(["fleet", "--workload", "nope"])
        err = capsys.readouterr().err
        assert rc == 2 and "unknown workload 'nope'" in err

    def test_malformed_env_quorum(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_QUORUM", "two")
        rc = main(["fleet", "--instances", "2"])
        err = capsys.readouterr().err
        assert rc == 2 and err.count("\n") == 1
        assert "REPRO_FLEET_QUORUM must be a positive integer, got 'two'" in err

    def test_env_quorum_applied(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_QUORUM", "1")
        rc = main(["fleet", "--instances", "2"])
        captured = capsys.readouterr().out
        assert rc == 0 and "quorum=1" in captured


class TestGovernorCli:
    """Governor knobs: one-line exit-2 boundary errors, and the armed
    runs stay verified with a governor line in the summary."""

    def test_budget_arms_the_governor(self, capsys):
        rc = main(["--scale", "4", "daxpy", "--reps", "10",
                   "--trace-cache-budget", "96"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified:        True" in out
        assert "governor[" in out

    def test_overload_seed_stays_verified(self, capsys):
        rc = main(["--scale", "4", "daxpy", "--reps", "10",
                   "--overload-seed", "7"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified:        True" in out
        assert "governor[" in out

    def test_governor_requires_cobra_strategy(self, capsys):
        rc = main(["daxpy", "--strategy", "baseline",
                   "--trace-cache-budget", "96"])
        err = capsys.readouterr().err
        assert rc == 2 and err.count("\n") == 1
        assert "require a COBRA strategy" in err

    def test_bad_budget(self, capsys):
        rc = main(["daxpy", "--trace-cache-budget", "0"])
        err = capsys.readouterr().err
        assert rc == 2 and "--trace-cache-budget must be >= 1" in err

    def test_bad_overload_seed(self, capsys):
        rc = main(["daxpy", "--overload-seed", "-1"])
        err = capsys.readouterr().err
        assert rc == 2 and "--overload-seed must be >= 0" in err

    def test_malformed_env_governor(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_GOVERNOR", "on")
        rc = main(["table1"])
        err = capsys.readouterr().err
        assert rc == 2 and err.count("\n") == 1
        assert "REPRO_GOVERNOR must be '0' or '1', got 'on'" in err

    def test_env_governor_arms_defaults(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_GOVERNOR", "1")
        rc = main(["--scale", "4", "daxpy", "--reps", "4"])
        out = capsys.readouterr().out
        assert rc == 0 and "governor[" in out


class TestOverloadCli:
    """`repro overload`: argument validation and a one-cell smoke run."""

    def test_bad_jobs(self, capsys):
        rc = main(["overload", "--jobs", "0"])
        err = capsys.readouterr().err
        assert rc == 2 and "--jobs must be >= 1" in err

    def test_bad_seed(self, capsys):
        rc = main(["overload", "--seed", "-1"])
        err = capsys.readouterr().err
        assert rc == 2 and "--seed must be >= 0" in err

    def test_bad_runs(self, capsys):
        rc = main(["overload", "--runs", "0"])
        err = capsys.readouterr().err
        assert rc == 2 and "--runs must be >= 1" in err

    def test_unknown_schedule(self, capsys):
        rc = main(["overload", "--schedules", "nope"])
        err = capsys.readouterr().err
        assert rc == 2 and "unknown schedule 'nope'" in err

    def test_unknown_workload(self, capsys):
        assert main(["overload", "--workloads", "nope"]) == 2

    def test_smoke_sweep(self, capsys):
        rc = main(["overload", "--workloads", "daxpy", "--seed", "0",
                   "--runs", "1", "--threads", "2", "--reps", "6",
                   "--schedules", "shrink"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "overload: OK" in out
