"""Snapshot codec, versioned store, fallback, and pruning."""

from __future__ import annotations

import pytest

from repro.persist import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_MAGIC,
    MemoryDisk,
    SnapshotStore,
    decode_snapshot,
    encode_snapshot,
)


class TestCodec:
    def test_roundtrip(self):
        payload = {"journal_seq": 41, "state": {"mode": "normal"}, "meta": None}
        assert decode_snapshot(encode_snapshot(payload)) == payload

    def test_short_blob_rejected(self):
        with pytest.raises(ValueError, match="shorter"):
            decode_snapshot(b"CSNP")

    def test_bad_magic_rejected(self):
        data = bytearray(encode_snapshot({"a": 1}))
        data[0:4] = b"XXXX"
        with pytest.raises(ValueError, match="magic"):
            decode_snapshot(bytes(data))

    def test_truncated_payload_rejected(self):
        data = encode_snapshot({"a": 1})
        with pytest.raises(ValueError, match="length"):
            decode_snapshot(data[:-2])

    def test_digest_mismatch_rejected(self):
        data = bytearray(encode_snapshot({"a": 1}))
        data[-1] ^= 0x01
        with pytest.raises(ValueError, match="digest"):
            decode_snapshot(bytes(data))

    def test_newer_format_rejected_older_accepted(self):
        # a snapshot from a future build: digest fine, semantics unknown
        with pytest.raises(ValueError, match="newer"):
            decode_snapshot(encode_snapshot({"a": 1}, fmt=SNAPSHOT_FORMAT + 1))
        assert SNAPSHOT_MAGIC == b"CSNP"

    def test_non_object_payload_rejected(self):
        import hashlib
        import struct

        body = b"[1,2,3]"
        head = struct.Struct("<4sHHI").pack(SNAPSHOT_MAGIC, SNAPSHOT_FORMAT, 0, len(body))
        blob = head + hashlib.sha256(head + body).digest() + body
        with pytest.raises(ValueError, match="object"):
            decode_snapshot(blob)


class TestStore:
    def test_write_load_newest(self):
        disk = MemoryDisk()
        store = SnapshotStore(disk)
        store.write(0, {"v": 0})
        store.write(1, {"v": 1})
        load = store.load_newest()
        assert load.payload == {"v": 1} and load.version == 1
        assert load.corrupt == [] and load.stray_tmp == []

    def test_falls_back_past_corrupt_newest(self):
        disk = MemoryDisk()
        store = SnapshotStore(disk)
        store.write(0, {"v": 0})
        store.write(1, {"v": 1})
        blob = bytearray(disk.read(store.name_for(1)))
        blob[-3] ^= 0xFF
        disk.write(store.name_for(1), bytes(blob))
        load = store.load_newest()
        assert load.payload == {"v": 0} and load.version == 0
        assert load.corrupt == [store.name_for(1)]

    def test_all_corrupt_returns_none_with_notes(self):
        disk = MemoryDisk()
        store = SnapshotStore(disk)
        store.write(0, {"v": 0})
        disk.write(store.name_for(0), b"garbage bytes, not a snapshot")
        load = store.load_newest()
        assert load.payload is None and load.version == -1
        assert load.corrupt == [store.name_for(0)]

    def test_stray_tmp_is_reported(self):
        disk = MemoryDisk()
        store = SnapshotStore(disk)
        store.write(0, {"v": 0})
        disk.write(store.name_for(1) + ".tmp", b"died before rename")
        load = store.load_newest()
        assert load.payload == {"v": 0}
        assert load.stray_tmp == [store.name_for(1) + ".tmp"]

    def test_prune_keeps_newest(self):
        disk = MemoryDisk()
        store = SnapshotStore(disk)
        for v in range(5):
            store.write(v, {"v": v})
        assert store.prune(keep=2) == 3
        assert store.versions() == [3, 4]

    def test_versions_ignores_foreign_files(self):
        disk = MemoryDisk()
        disk.write("journal.wal", b"x")
        disk.write("snap-zz.ckpt", b"x")
        store = SnapshotStore(disk)
        store.write(7, {"v": 7})
        assert store.versions() == [7]
