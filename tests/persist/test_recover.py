"""Recovery: snapshot + journal-tail replay, txn deltas, repair."""

from __future__ import annotations

from repro.persist import (
    JOURNAL_NAME,
    JournalWriter,
    MemoryDisk,
    SnapshotStore,
    empty_state,
    recover,
    repair,
    scan_journal,
)


def _store_with(records, snapshot=None):
    disk = MemoryDisk()
    writer = JournalWriter(disk)
    for kind, payload in records:
        writer.append(kind, payload)
    if snapshot is not None:
        version, payload = snapshot
        SnapshotStore(disk).write(version, payload)
    return disk


class TestRecover:
    def test_empty_store(self):
        rec = recover(MemoryDisk())
        assert rec.state is None and rec.meta is None
        assert rec.next_seq == 0 and rec.snapshot_version == -1
        assert rec.next_snapshot_version == 0 and rec.replayed == 0
        assert rec.repair_length is None

    def test_window_records_are_last_wins(self):
        disk = _store_with([
            ("window", {"state": {"mode": "normal", "cpi_history": [1.0]}}),
            ("window", {"state": {"mode": "monitor-only", "cpi_history": [2.0]}}),
        ])
        rec = recover(disk)
        assert rec.state == {"mode": "monitor-only", "cpi_history": [2.0]}
        assert rec.replayed == 2 and rec.next_seq == 2

    def test_txn_deploy_and_rollback_deltas(self):
        disk = _store_with([
            ("txn", {"op": "deploy", "head": 64, "back_branch": 96,
                     "hotness": 5, "optimization": "noprefetch", "n_rewrites": 2}),
            ("txn", {"op": "deploy", "head": 128, "back_branch": 160,
                     "hotness": 9, "optimization": "excl", "n_rewrites": 1}),
            ("txn", {"op": "rollback", "head": 64, "back_branch": 96,
                     "hotness": 5, "optimization": "noprefetch", "n_rewrites": 2}),
        ])
        rec = recover(disk)
        deployments = rec.state["deployments"]
        assert [d["head"] for d in deployments] == [128]
        assert deployments[0]["optimization"] == "excl"

    def test_redeploy_same_head_dedupes(self):
        disk = _store_with([
            ("txn", {"op": "deploy", "head": 64, "optimization": "noprefetch"}),
            ("txn", {"op": "deploy", "head": 64, "optimization": "excl"}),
        ])
        rec = recover(disk)
        deployments = rec.state["deployments"]
        assert len(deployments) == 1 and deployments[0]["optimization"] == "excl"

    def test_decision_records_append_events(self):
        disk = _store_with([
            ("decision", {"event": [100, "deploy", 64, "noprefetch", "hot"]}),
            ("decision", {"event": [200, "rollback", 64, "noprefetch", "cold"]}),
        ])
        rec = recover(disk)
        assert rec.state["events"] == [
            [100, "deploy", 64, "noprefetch", "hot"],
            [200, "rollback", 64, "noprefetch", "cold"],
        ]

    def test_snapshot_subsumes_older_records(self):
        disk = _store_with(
            [
                ("window", {"state": {"mode": "normal", "tag": "old"}}),    # seq 0
                ("window", {"state": {"mode": "normal", "tag": "new"}}),    # seq 1
            ],
            snapshot=(0, {"journal_seq": 0,
                          "state": {"mode": "normal", "tag": "snap"},
                          "meta": None}),
        )
        rec = recover(disk)
        # seq 0 is folded into the snapshot; only seq 1 replays on top
        assert rec.replayed == 1
        assert rec.state["tag"] == "new"
        assert rec.snapshot_version == 0 and rec.next_snapshot_version == 1
        assert rec.next_seq == 2

    def test_meta_tracked_even_when_subsumed(self):
        disk = _store_with(
            [("meta", {"meta": {"cmd": "daxpy", "reps": 4}})],
            snapshot=(0, {"journal_seq": 5, "state": {"mode": "normal"},
                          "meta": None}),
        )
        rec = recover(disk)
        assert rec.meta == {"cmd": "daxpy", "reps": 4}
        assert rec.replayed == 0  # meta is session metadata, not state

    def test_unknown_kinds_are_skipped(self):
        disk = _store_with([
            ("window", {"state": {"mode": "normal"}}),
            ("hologram", {"future": True}),
        ])
        rec = recover(disk)
        assert rec.state == {"mode": "normal"}
        assert rec.next_seq == 2  # unknown record still advances the seq

    def test_torn_tail_reports_repair_point(self):
        disk = _store_with([("window", {"state": {"mode": "normal"}})])
        good_len = len(disk.read(JOURNAL_NAME))
        disk.append(JOURNAL_NAME, b"\xba\xc0\x00")  # torn next record
        rec = recover(disk)
        assert rec.state == {"mode": "normal"}
        assert rec.repair_length == good_len
        assert len(rec.discarded) == 1

    def test_corrupt_snapshot_falls_back_and_is_noted(self):
        disk = _store_with(
            [("window", {"state": {"mode": "normal", "tag": "tail"}})],
            snapshot=(1, {"journal_seq": -1, "state": {"tag": "snap"},
                          "meta": None}),
        )
        store = SnapshotStore(disk)
        blob = bytearray(disk.read(store.name_for(1)))
        blob[-1] ^= 0x10
        disk.write(store.name_for(1), bytes(blob))
        rec = recover(disk)
        assert rec.state["tag"] == "tail"          # rebuilt from the journal
        assert rec.corrupt_snapshots == [store.name_for(1)]
        assert rec.next_snapshot_version == 2      # monotonic past corruption


class TestRepair:
    def test_truncates_tear_and_deletes_strays(self):
        disk = _store_with([("window", {"state": {"mode": "normal"}})])
        good_len = len(disk.read(JOURNAL_NAME))
        disk.append(JOURNAL_NAME, b"torn!")
        disk.write("snap-00000003.ckpt.tmp", b"died before rename")
        rec = recover(disk)
        repair(disk, rec)
        assert len(disk.read(JOURNAL_NAME)) == good_len
        assert not disk.exists("snap-00000003.ckpt.tmp")
        # idempotent and now clean
        rec2 = recover(disk)
        assert rec2.repair_length is None and rec2.discarded == []
        repair(disk, rec2)

    def test_appending_after_repair_scans_clean(self):
        disk = _store_with([("window", {"state": {"mode": "normal"}})])
        disk.append(JOURNAL_NAME, b"\x01\x02\x03")
        rec = recover(disk)
        repair(disk, rec)
        JournalWriter(disk, next_seq=rec.next_seq).append(
            "window", {"state": {"mode": "monitor-only"}}
        )
        records, _len, discarded = scan_journal(disk.read(JOURNAL_NAME))
        assert discarded == []
        assert [r["seq"] for r in records] == [0, 1]
        assert records[-1]["state"]["mode"] == "monitor-only"


class TestEmptyState:
    def test_shape_matches_optimizer_export(self):
        state = empty_state()
        assert state["deployments"] == [] and state["mode"] == "normal"
        assert set(state) >= {
            "profiler", "cpi_history", "blacklist", "mode",
            "fault_strikes", "events", "deployments", "samples_per_cpu",
        }
