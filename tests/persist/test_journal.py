"""Journal wire format, scan semantics, and the injectable disks."""

from __future__ import annotations

import pytest

from repro.errors import PersistError
from repro.persist import (
    JOURNAL_NAME,
    FileDisk,
    JournalWriter,
    MemoryDisk,
    encode_record,
    scan_journal,
)
from repro.persist.journal import HEADER_BYTES


class TestWireFormat:
    def test_roundtrip_multiple_records(self):
        payloads = [{"t": "window", "seq": i, "x": i * 7} for i in range(5)]
        data = b"".join(encode_record(p) for p in payloads)
        records, valid_len, discarded = scan_journal(data)
        assert records == payloads
        assert valid_len == len(data)
        assert discarded == []

    def test_empty_journal(self):
        assert scan_journal(b"") == ([], 0, [])

    def test_torn_header_is_noted(self):
        data = encode_record({"a": 1}) + b"\xba\xc0"  # 2 of 12 header bytes
        records, valid_len, discarded = scan_journal(data)
        assert len(records) == 1
        assert valid_len == len(encode_record({"a": 1}))
        assert len(discarded) == 1 and "torn header" in discarded[0]

    def test_torn_record_is_noted(self):
        record = encode_record({"a": 1})
        data = record + encode_record({"b": 2})[: HEADER_BYTES + 3]
        records, valid_len, discarded = scan_journal(data)
        assert records == [{"a": 1}]
        assert valid_len == len(record)
        assert len(discarded) == 1 and "torn record" in discarded[0]

    def test_bad_magic_stops_the_scan(self):
        record = encode_record({"a": 1})
        data = record + b"\x00" * 32
        records, valid_len, discarded = scan_journal(data)
        assert records == [{"a": 1}] and valid_len == len(record)
        assert "bad magic" in discarded[0]

    def test_crc_covers_the_header(self):
        # flip a byte inside the length field: without header coverage
        # the crc would still match the (unchanged) payload bytes
        record = bytearray(encode_record({"a": 1}))
        record[4] ^= 0x01
        records, valid_len, discarded = scan_journal(bytes(record))
        assert records == [] and valid_len == 0
        assert discarded  # torn record or crc mismatch, never decoded

    def test_crc_covers_the_payload(self):
        record = bytearray(encode_record({"a": 1}))
        record[-1] ^= 0x40
        records, _valid, discarded = scan_journal(bytes(record))
        assert records == []
        assert "crc mismatch" in discarded[0]

    def test_corruption_never_hides_earlier_records(self):
        good = encode_record({"a": 1}) + encode_record({"b": 2})
        bad = bytearray(good + encode_record({"c": 3}))
        bad[len(good) + HEADER_BYTES] ^= 0xFF
        records, valid_len, _ = scan_journal(bytes(bad))
        assert records == [{"a": 1}, {"b": 2}]
        assert valid_len == len(good)


class TestMemoryDisk:
    def test_durable_ops_count_appends_and_atomic_writes(self):
        disk = MemoryDisk()
        disk.append("j", b"one")
        disk.write_atomic("s", b"snap")
        disk.write("s.tmp", b"torn")          # non-durable: not counted
        assert disk.durable_ops == 2

    def test_kill_makes_all_writes_noops(self):
        disk = MemoryDisk()
        disk.append("j", b"one")
        disk.kill()
        disk.append("j", b"two")
        disk.write_atomic("s", b"snap")
        disk.truncate("j", 0)
        assert disk.read("j") == b"one"
        assert not disk.exists("s")

    def test_clone_is_independent(self):
        disk = MemoryDisk()
        disk.append("j", b"one")
        twin = disk.clone()
        disk.append("j", b"two")
        assert twin.read("j") == b"one"
        assert disk.read("j") == b"onetwo"

    def test_read_missing_raises(self):
        with pytest.raises(PersistError):
            MemoryDisk().read("nope")


class TestFileDisk:
    def test_roundtrip_on_real_files(self, tmp_path):
        disk = FileDisk(str(tmp_path / "ckpt"))
        disk.append(JOURNAL_NAME, b"aaa")
        disk.append(JOURNAL_NAME, b"bbb")
        disk.write_atomic("snap-00000000.ckpt", b"snap")
        assert disk.read(JOURNAL_NAME) == b"aaabbb"
        assert disk.listdir() == [JOURNAL_NAME, "snap-00000000.ckpt"]
        disk.truncate(JOURNAL_NAME, 3)
        assert disk.read(JOURNAL_NAME) == b"aaa"
        disk.delete("snap-00000000.ckpt")
        assert not disk.exists("snap-00000000.ckpt")

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        disk = FileDisk(str(tmp_path))
        disk.write_atomic("x", b"data")
        assert disk.listdir() == ["x"]


class TestJournalWriter:
    def test_sequences_are_stamped_monotonically(self):
        disk = MemoryDisk()
        writer = JournalWriter(disk, next_seq=10)
        assert writer.append("window", {"x": 1}) == 10
        assert writer.append("txn", {"y": 2}) == 11
        records, _, discarded = scan_journal(disk.read(JOURNAL_NAME))
        assert discarded == []
        assert [(r["t"], r["seq"]) for r in records] == [("window", 10), ("txn", 11)]
        assert writer.records_written == 2

    def test_gate_runs_before_the_write(self):
        calls = []

        def gate(name, data, mode):
            calls.append((name, len(data), mode))
            raise RuntimeError("gated")

        disk = MemoryDisk()
        writer = JournalWriter(disk, gate=gate)
        with pytest.raises(RuntimeError):
            writer.append("window", {"x": 1})
        assert calls and calls[0][0] == JOURNAL_NAME and calls[0][2] == "append"
        assert not disk.exists(JOURNAL_NAME)  # nothing landed
