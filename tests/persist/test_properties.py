"""Property tests: persistence codecs under arbitrary data and damage.

Two guarantees hypothesis hammers on:

* **round-trip identity** — any JSON-serializable payload survives
  encode → scan/decode bit-exactly, for both the journal record frame
  and the snapshot blob;
* **corruption is always detected** — flipping any single byte at any
  offset of an encoded artifact can never be silently decoded as a
  *different* valid artifact: the journal scan yields a prefix of the
  original records (with a note for the damage), and the snapshot
  decoder either raises or returns the original payload (a flip in the
  reserved header field is the one bit-exactness exception the digest
  intentionally covers — it still raises).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.persist import (
    decode_snapshot,
    encode_record,
    encode_snapshot,
    scan_journal,
)

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

# JSON-safe scalars: text avoids surrogates (json round-trips them
# inconsistently across codecs), ints stay in the i64 band like every
# real payload field
_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.text(max_size=20),
)

_payload = st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.one_of(
        _scalar,
        st.lists(_scalar, max_size=4),
        st.dictionaries(st.text(min_size=1, max_size=6), _scalar, max_size=3),
    ),
    max_size=6,
)


class TestJournalProperties:
    @given(payloads=st.lists(_payload, max_size=5))
    @settings(max_examples=60, **COMMON)
    def test_encode_scan_identity(self, payloads):
        data = b"".join(encode_record(p) for p in payloads)
        records, valid_len, discarded = scan_journal(data)
        assert records == payloads
        assert valid_len == len(data)
        assert discarded == []

    @given(
        payloads=st.lists(_payload, min_size=1, max_size=3),
        offset=st.integers(min_value=0),
        bit=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=120, **COMMON)
    def test_single_byte_flip_never_silently_decodes(self, payloads, offset, bit):
        encoded = [encode_record(p) for p in payloads]
        data = bytearray(b"".join(encoded))
        offset %= len(data)
        data[offset] ^= 1 << bit
        records, valid_len, discarded = scan_journal(bytes(data))
        # whatever got damaged, everything decoded is an untouched
        # prefix of the original records...
        assert records == payloads[: len(records)]
        # ...and the damage itself is never silently swallowed: either
        # some record was dropped (with a note), or the flip landed
        # beyond every decoded frame (impossible here: frames cover the
        # whole buffer, so a flip inside them must drop a record)
        assert len(records) < len(payloads)
        assert discarded
        assert valid_len <= offset

    @given(payload=_payload, cut=st.integers(min_value=0))
    @settings(max_examples=60, **COMMON)
    def test_truncation_is_detected(self, payload, cut):
        data = encode_record(payload)
        cut %= len(data)  # strictly shorter than the full record
        records, valid_len, discarded = scan_journal(data[:cut])
        assert records == [] and valid_len == 0
        assert (discarded == []) == (cut == 0)


class TestSnapshotProperties:
    @given(payload=_payload)
    @settings(max_examples=60, **COMMON)
    def test_encode_decode_identity(self, payload):
        assert decode_snapshot(encode_snapshot(payload)) == payload

    @given(
        payload=_payload,
        offset=st.integers(min_value=0),
        bit=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=120, **COMMON)
    def test_single_byte_flip_always_raises(self, payload, offset, bit):
        data = bytearray(encode_snapshot(payload))
        offset %= len(data)
        data[offset] ^= 1 << bit
        try:
            decoded = decode_snapshot(bytes(data))
        except ValueError:
            return  # detected — the required outcome
        raise AssertionError(
            f"corruption at offset {offset} decoded silently: {decoded!r}"
        )

    @given(payload=_payload, cut=st.integers(min_value=0))
    @settings(max_examples=60, **COMMON)
    def test_truncation_always_raises(self, payload, cut):
        data = encode_snapshot(payload)
        cut %= len(data)
        try:
            decode_snapshot(data[:cut])
        except ValueError:
            return
        raise AssertionError(f"truncated snapshot ({cut} bytes) decoded silently")
