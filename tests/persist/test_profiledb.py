"""Profile database: codec round-trips, damage tolerance, merge algebra.

The database is a pure accelerator, so its failure contract is strict:
any byte-level damage loads as *empty* (never raises, never half-loads),
a future format version is refused up front, and :func:`merge_entries`
is commutative/associative so N runs fold to the same entry in any
order.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import itanium2_smp, sgi_altix
from repro.cpu import Machine
from repro.persist import (
    PROFILEDB_FORMAT,
    PROFILEDB_NAME,
    MemoryDisk,
    ProfileDB,
    encode_snapshot,
    image_digest,
    machine_descriptor,
    merge_entries,
    profile_key,
)
from repro.persist.profiledb import empty_entry
from repro.workloads import build_daxpy

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

_count = st.integers(min_value=0, max_value=10_000)

_pc_stat = st.fixed_dictionaries(
    {
        "samples": _count,
        "coherent": _count,
        "total_latency": _count,
        "lines": st.lists(st.integers(0, 63), max_size=4).map(sorted),
        "threads": st.lists(st.integers(0, 7), max_size=3).map(sorted),
    }
)

_profiler = st.fixed_dictionaries(
    {
        "misses": st.fixed_dictionaries(
            {
                "by_pc": st.dictionaries(
                    st.integers(0x4000, 0x4200).map(str), _pc_stat, max_size=4
                ),
                "total_events": _count,
                "total_coherent": _count,
            }
        ),
        "btb": st.lists(
            st.tuples(
                st.integers(0x4000, 0x4100),
                st.integers(0x4000, 0x4100),
                st.integers(1, 50),
            ).map(list),
            max_size=4,
        ),
        "samples_seen": _count,
        "quarantined": st.just({}),
        "quarantined_total": st.just(0),
        "bus_delta": _count,
        "coherent_delta": _count,
    }
)

_decision_rec = st.fixed_dictionaries(
    {
        "proven": st.integers(0, 20),
        "rolled_back": st.integers(0, 20),
        "back_branch": st.integers(0x4000, 0x4200),
        "hotness": st.integers(0, 100),
    }
)

# [root, head, kind, sor] trace-tree shapes, pre-canonicalized (sorted,
# deduped) the way every writer emits them
_tree_shapes = st.lists(
    st.tuples(
        st.integers(0x4000, 0x4100),
        st.integers(0x4000, 0x4100),
        st.sampled_from(("loop", "linear")),
        st.sampled_from((0, 8, 16)),
    ),
    max_size=3,
    unique=True,
).map(lambda shapes: sorted(list(s) for s in shapes))

# integer-valued cpi_total keeps float addition exact, so the
# associativity assertion below is bit-exact rather than approximate
_entry = st.fixed_dictionaries(
    {
        "runs": st.integers(0, 5),
        "profiler": st.one_of(st.none(), _profiler),
        "cpi_total": st.integers(0, 500).map(float),
        "cpi_count": st.integers(0, 100),
        "decisions": st.dictionaries(
            st.integers(0x4000, 0x4100).map(str),
            st.dictionaries(
                st.sampled_from(("noprefetch", "excl")), _decision_rec, max_size=2
            ),
            max_size=3,
        ),
        "flips": st.integers(0, 10),
        "jit_trees": _tree_shapes,
    }
)

_key = st.text(
    alphabet="abcdef0123456789/:=-", min_size=1, max_size=24
)


def _canon(entry: dict) -> str:
    # no sort_keys: the merge promises *canonically ordered* output,
    # and the byte comparison must see any ordering drift
    return json.dumps(entry)


class TestMergeAlgebra:
    @given(a=_entry, b=_entry)
    @settings(max_examples=60, **COMMON)
    def test_commutative_to_the_byte(self, a, b):
        assert _canon(merge_entries(a, b)) == _canon(merge_entries(b, a))

    @given(a=_entry, b=_entry, c=_entry)
    @settings(max_examples=60, **COMMON)
    def test_associative(self, a, b, c):
        left = merge_entries(merge_entries(a, b), c)
        right = merge_entries(a, merge_entries(b, c))
        assert left == right

    @given(a=_entry)
    @settings(max_examples=40, **COMMON)
    def test_empty_entry_is_the_identity(self, a):
        assert merge_entries(empty_entry(), a) == a
        assert merge_entries(a, empty_entry()) == a

    @given(a=_entry, b=_entry)
    @settings(max_examples=40, **COMMON)
    def test_counts_add_and_quarantine_resets(self, a, b):
        merged = merge_entries(a, b)
        assert merged["runs"] == a["runs"] + b["runs"]
        assert merged["cpi_count"] == a["cpi_count"] + b["cpi_count"]
        if a["profiler"] is not None and b["profiler"] is not None:
            prof = merged["profiler"]
            assert prof["samples_seen"] == (
                a["profiler"]["samples_seen"] + b["profiler"]["samples_seen"]
            )
            # quarantine counters are session noise, never profile signal
            assert prof["quarantined"] == {}
            assert prof["quarantined_total"] == 0


class TestStoreRoundTrip:
    @given(entries=st.dictionaries(_key, _entry, max_size=3))
    @settings(max_examples=40, **COMMON)
    def test_save_load_identity(self, entries):
        disk = MemoryDisk()
        db = ProfileDB(disk)
        db.entries = dict(entries)
        db.save()
        again = ProfileDB(disk)
        again.load()
        assert again.entries == entries
        assert again.stats.present
        assert not again.stats.corrupt
        assert not again.stats.future_format

    @given(
        entries=st.dictionaries(_key, _entry, min_size=1, max_size=2),
        data=st.data(),
    )
    @settings(max_examples=60, **COMMON)
    def test_single_byte_flip_never_half_loads(self, entries, data):
        disk = MemoryDisk()
        db = ProfileDB(disk)
        db.entries = dict(entries)
        db.save()
        blob = disk.files[PROFILEDB_NAME]
        offset = data.draw(st.integers(0, len(blob) - 1))
        blob[offset] ^= data.draw(st.integers(1, 255))
        again = ProfileDB(disk)
        again.load()
        # the codec digest either catches the flip (load as empty) or
        # the flip was provably inconsequential (identical entries);
        # a *different* valid database must never come back
        if again.stats.corrupt:
            assert again.entries == {}
        else:
            assert again.entries == entries

    def test_truncation_loads_empty(self):
        disk = MemoryDisk()
        db = ProfileDB(disk)
        db.record_run("k", empty_entry())
        db.save()
        blob = disk.files[PROFILEDB_NAME]
        del blob[len(blob) // 2:]
        again = ProfileDB(disk)
        again.load()
        assert again.entries == {}
        assert again.stats.corrupt

    def test_future_format_refused_up_front(self):
        disk = MemoryDisk()
        disk.write_atomic(
            PROFILEDB_NAME,
            encode_snapshot(
                {"format": PROFILEDB_FORMAT + 1, "entries": {"k": {}}}
            ),
        )
        db = ProfileDB(disk)
        db.load()
        assert db.entries == {}
        assert db.stats.future_format
        assert not db.stats.corrupt

    def test_non_object_entries_load_empty(self):
        disk = MemoryDisk()
        disk.write_atomic(
            PROFILEDB_NAME,
            encode_snapshot({"format": PROFILEDB_FORMAT, "entries": [1, 2]}),
        )
        db = ProfileDB(disk)
        db.load()
        assert db.entries == {}
        assert db.stats.corrupt

    def test_missing_file_loads_empty(self):
        db = ProfileDB(MemoryDisk())
        db.load()
        assert db.entries == {}
        assert not db.stats.present

    def test_record_run_merges_existing_key(self):
        db = ProfileDB(MemoryDisk())
        one = empty_entry()
        one["runs"] = 1
        one["cpi_count"] = 4
        db.record_run("k", dict(one))
        db.record_run("k", dict(one))
        assert db.entries["k"]["runs"] == 2
        assert db.entries["k"]["cpi_count"] == 8
        assert db.stats.runs_recorded == 2


class TestKeying:
    def _image(self, n=64):
        machine = Machine(itanium2_smp(2, scale=4))
        return build_daxpy(machine, n, 2, outer_reps=1).image

    def test_identical_builds_digest_equal(self):
        assert image_digest(self._image()) == image_digest(self._image())

    def test_different_programs_digest_differently(self):
        assert image_digest(self._image(64)) != image_digest(self._image(128))

    def test_machine_descriptor_separates_configs(self):
        smp = itanium2_smp(4, scale=16)
        descriptors = {
            machine_descriptor(smp),
            machine_descriptor(itanium2_smp(2, scale=16)),
            machine_descriptor(itanium2_smp(4, scale=4)),
            machine_descriptor(sgi_altix(8, scale=16)),
        }
        assert len(descriptors) == 4

    def test_key_separates_strategies(self):
        image = self._image()
        config = itanium2_smp(2, scale=4)
        keys = {
            profile_key(image, config, s)
            for s in ("noprefetch", "excl", "adaptive")
        }
        assert len(keys) == 3
