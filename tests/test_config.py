"""Machine configuration: scaling, validation, platform presets."""

import pytest

from repro.config import (
    CacheConfig,
    CobraConfig,
    LatencyConfig,
    MachineConfig,
    itanium2_smp,
    sgi_altix,
)


class TestCacheConfig:
    def test_geometry(self):
        cache = CacheConfig(size_bytes=16 * 1024, associativity=8)
        assert cache.n_lines == 128 and cache.n_sets == 16

    def test_illegal_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=8)


class TestPresets:
    def test_smp_is_single_node(self):
        cfg = itanium2_smp(4)
        assert not cfg.is_numa and cfg.n_nodes == 1

    def test_altix_is_two_cpus_per_node(self):
        cfg = sgi_altix(8)
        assert cfg.is_numa and cfg.cpus_per_node == 2 and cfg.n_nodes == 4

    @pytest.mark.parametrize("scale", [1, 2, 4, 8, 16, 32])
    def test_scaling_preserves_line_size(self, scale):
        cfg = itanium2_smp(4, scale=scale)
        assert cfg.l2.line_size == 128 and cfg.l3.line_size == 128
        assert cfg.l2.size_bytes * scale == 256 * 1024

    def test_latency_bands_match_the_paper(self):
        lat = LatencyConfig()
        # memory loads 120-150, coherent misses >180-200 (paper §4)
        assert 120 <= lat.memory <= 150
        assert lat.cache_to_cache >= 180
        assert lat.remote_cache_to_cache > lat.cache_to_cache
        assert lat.remote_memory > lat.memory

    def test_cobra_filter_thresholds_are_consistent(self):
        cobra = CobraConfig()
        lat = LatencyConfig()
        # the first-level filter excludes the L3-hit band
        assert cobra.dear_latency_floor >= 12
        # the second level separates memory (120-150) from coherent (>180)
        assert lat.memory < cobra.coherent_latency_threshold < lat.cache_to_cache
        assert lat.upgrade > cobra.coherent_latency_threshold

    def test_with_cobra_returns_new_config(self):
        cfg = itanium2_smp(4)
        new = cfg.with_cobra(enable_rollback=False)
        assert new.cobra.enable_rollback is False
        assert cfg.cobra.enable_rollback is True

    def test_invalid_machine(self):
        with pytest.raises(ValueError):
            MachineConfig(
                name="bad", n_cpus=3, cpus_per_node=2,
                l2=CacheConfig(16 * 1024), l3=CacheConfig(192 * 1024, associativity=4),
            )


class TestPersistConfig:
    def test_needs_directory_or_disk(self):
        from repro.config import PersistConfig

        with pytest.raises(ValueError, match="directory or an injectable disk"):
            PersistConfig()

    def test_directory_alone_is_enough(self):
        from repro.config import PersistConfig

        cfg = PersistConfig(directory="/tmp/ckpt")
        assert cfg.resume and cfg.snapshot_interval >= 1

    def test_intervals_validated(self):
        from repro.config import PersistConfig

        with pytest.raises(ValueError, match="snapshot_interval"):
            PersistConfig(directory="x", snapshot_interval=0)
        with pytest.raises(ValueError, match="snapshots_kept"):
            PersistConfig(directory="x", snapshots_kept=0)

    def test_cobra_config_carries_persist(self):
        from repro.config import PersistConfig

        cobra = CobraConfig(persist=PersistConfig(directory="x"))
        assert cobra.persist.directory == "x"
        assert CobraConfig().persist is None


class TestFleetConfigs:
    def test_fault_rates_validated(self):
        from repro.config import FleetFaultConfig

        with pytest.raises(ValueError, match="frame_rate"):
            FleetFaultConfig(frame_rate=1.5)
        with pytest.raises(ValueError, match="partition_rate"):
            FleetFaultConfig(partition_rate=-0.1)
        with pytest.raises(ValueError, match="seed"):
            FleetFaultConfig(seed=-1)
        with pytest.raises(ValueError, match="daemon_crash_batch"):
            FleetFaultConfig(daemon_crash_batch=0)

    def test_fault_backoff_validated(self):
        from repro.config import FleetFaultConfig

        with pytest.raises(ValueError, match="max_attempts"):
            FleetFaultConfig(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_base"):
            FleetFaultConfig(backoff_base=0)
        with pytest.raises(ValueError, match="backoff_cap"):
            FleetFaultConfig(backoff_base=64, backoff_cap=32)

    def test_agent_config_validated(self):
        from repro.config import FleetAgentConfig

        with pytest.raises(ValueError, match="instance"):
            FleetAgentConfig(instance="")
        with pytest.raises(ValueError, match="instances"):
            FleetAgentConfig(instance="i0", instances=0)
        with pytest.raises(ValueError, match="quorum"):
            FleetAgentConfig(instance="i0", quorum=0)
        with pytest.raises(ValueError, match="cannot exceed"):
            FleetAgentConfig(instance="i0", instances=2, quorum=3)
        with pytest.raises(ValueError, match="flush_interval"):
            FleetAgentConfig(instance="i0", flush_interval=0)

    def test_cobra_config_carries_fleet(self):
        from repro.config import FleetAgentConfig

        cobra = CobraConfig(fleet=FleetAgentConfig(instance="i0"))
        assert cobra.fleet.instance == "i0"
        assert CobraConfig().fleet is None


class TestGovernorConfigs:
    def test_overload_rates_validated(self):
        from repro.config import OverloadConfig

        with pytest.raises(ValueError, match="shrink_rate"):
            OverloadConfig(shrink_rate=1.5)
        with pytest.raises(ValueError, match="storm_rate"):
            OverloadConfig(storm_rate=-0.1)
        with pytest.raises(ValueError, match="seed"):
            OverloadConfig(seed=-1)
        with pytest.raises(ValueError, match="shrink_factor"):
            OverloadConfig(shrink_factor=1.0)
        with pytest.raises(ValueError, match="flood_factor"):
            OverloadConfig(flood_factor=1)
        with pytest.raises(ValueError, match="flood_windows"):
            OverloadConfig(flood_windows=0)
        with pytest.raises(ValueError, match="max_events"):
            OverloadConfig(max_events=-1)

    def test_governor_budgets_validated(self):
        from repro.config import GovernorConfig

        with pytest.raises(ValueError, match="trace_cache_budget"):
            GovernorConfig(trace_cache_budget=0)
        with pytest.raises(ValueError, match="sample_queue_depth"):
            GovernorConfig(sample_queue_depth=0)
        with pytest.raises(ValueError, match="profile_db_entries"):
            GovernorConfig(profile_db_entries=0)
        with pytest.raises(ValueError, match="outbox_batches"):
            GovernorConfig(outbox_batches=0)
        with pytest.raises(ValueError, match="budget_floor"):
            GovernorConfig(budget_floor=0)
        with pytest.raises(ValueError, match="recovery_windows"):
            GovernorConfig(recovery_windows=0)

    def test_hysteresis_band_must_be_non_empty(self):
        from repro.config import GovernorConfig

        with pytest.raises(ValueError, match="escalate_pressure"):
            GovernorConfig(escalate_pressure=1.2)
        with pytest.raises(ValueError, match="recover_pressure"):
            GovernorConfig(recover_pressure=0.0)
        with pytest.raises(ValueError, match="must be below"):
            GovernorConfig(escalate_pressure=0.5, recover_pressure=0.5)

    def test_cobra_config_carries_governor(self):
        from repro.config import GovernorConfig, OverloadConfig

        cobra = CobraConfig(
            governor=GovernorConfig(
                trace_cache_budget=96, overload=OverloadConfig(seed=3)
            )
        )
        assert cobra.governor.trace_cache_budget == 96
        assert cobra.governor.overload.seed == 3
        assert CobraConfig().governor is None
