"""Property tests: random access interleavings never break coherence.

Hypothesis drives random sequences of (cpu, access kind, line) through
both coherent fabrics — the snooping bus and the cc-NUMA directory —
with a strict CoherenceChecker attached.  Any sequence that broke a
MESI/directory invariant would raise and shrink to a minimal
counterexample.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import LINE_SIZE, itanium2_smp, sgi_altix
from repro.cpu import Machine
from repro.memory.hierarchy import (
    ATOMIC,
    LOAD,
    LOAD_BIAS,
    PREFETCH,
    PREFETCH_EXCL,
    STORE,
)
from repro.validate import CoherenceChecker

BASE = 0x8000_0000
KINDS = (LOAD, STORE, PREFETCH, PREFETCH_EXCL, LOAD_BIAS, ATOMIC)

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _ops(n_cpus: int, n_lines: int = 10, max_size: int = 80):
    """Random interleavings of reads/stores/lfetch/lfetch.excl/ld8.bias."""
    return st.lists(
        st.tuples(
            st.integers(0, n_cpus - 1),
            st.sampled_from(KINDS),
            st.integers(0, n_lines - 1),
        ),
        min_size=1,
        max_size=max_size,
    )


def _drive(machine: Machine, ops, mode: str = "strict") -> CoherenceChecker:
    checker = CoherenceChecker(machine, mode, structure_interval=16)
    with checker:
        for now, (cpu, kind, idx) in enumerate(ops):
            machine.caches[cpu].access(now, BASE + idx * LINE_SIZE, kind)
    return checker


@settings(max_examples=60, **COMMON)
@given(ops=_ops(4))
def test_snooping_bus_holds_invariants(ops):
    checker = _drive(Machine(itanium2_smp(4, scale=64)), ops)
    assert checker.checks == len(ops)
    assert checker.violations == []


@settings(max_examples=60, **COMMON)
@given(ops=_ops(4))
def test_numa_directory_holds_invariants(ops):
    checker = _drive(Machine(sgi_altix(4, scale=64)), ops)
    assert checker.checks == len(ops)
    assert checker.violations == []


@settings(max_examples=30, **COMMON)
@given(ops=_ops(2))
def test_record_mode_agrees_with_strict(ops):
    checker = _drive(Machine(itanium2_smp(2, scale=64)), ops, mode="record")
    assert checker.violations == []


@settings(max_examples=30, **COMMON)
@given(ops=_ops(2, n_lines=160, max_size=120))
def test_tiny_caches_evict_coherently(ops):
    # scale=256 leaves ~96 L3 lines, so long runs force eviction and
    # writeback traffic through every checker hook; inclusion and the
    # dirty/excl bookkeeping must survive any interleaving
    machine = Machine(itanium2_smp(2, scale=256))
    checker = _drive(machine, ops)
    assert checker.violations == []
    for cache in machine.caches:
        cache.check_inclusion()


@settings(max_examples=20, **COMMON)
@given(ops=_ops(8, n_lines=6, max_size=60))
def test_many_cpu_directory_contention(ops):
    # 8 CPUs over 6 lines maximizes invalidation/demotion churn on the
    # directory fabric (4 nodes x 2 cpus)
    checker = _drive(Machine(sgi_altix(8, scale=64)), ops)
    assert checker.violations == []
