"""Property tests: interleaved fault schedules vs the patch journal.

Hypothesis drives arbitrary interleavings of deployment attempts (clean
or carrying an injected patch fault) and rollbacks against one program
image, then checks the transactional invariants the runtime promises:

* a failed deployment is all-or-nothing — the loop head bundle and the
  trace-cache occupancy are byte-identical to the pre-call state;
* at every step the loop head is either the original bundle or a
  redirect to the currently active deployment, never a torn hybrid;
* rollback is idempotent, and after rolling everything back the image
  equals its pristine self bundle-for-bundle;
* the patch journal replays: patches and reverts pair off, and every
  injected patch fault ends the run detected or tolerated.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler import StreamLoop, Term
from repro.config import FaultConfig, itanium2_smp
from repro.core.filters import MissStats
from repro.core.opts import make_noprefetch_rewrite
from repro.core.tracecache import TraceCache
from repro.core.tracesel import LoopTrace
from repro.cpu import Machine
from repro.errors import TraceCacheError
from repro.faults import FaultInjector
from repro.isa import Op
from repro.runtime import ParallelProgram

ACTIONS = ("deploy", "deploy:torn_patch", "deploy:stale_image",
           "deploy:cache_exhaustion", "rollback", "rollback")

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _build_program():
    machine = Machine(itanium2_smp(2, scale=16))
    prog = ParallelProgram(machine, "prop")
    prog.array("x", 64, 1.0)
    prog.array("y", 64, 0.0)
    fn = prog.kernel(
        StreamLoop("k", dest="y", terms=(Term("y", 1.0, 0), Term("x", 2.0, 0)))
    )
    prog.parallel_for(fn, 64, 1)
    prog.build(outer_reps=1)
    image = prog.image
    head = image.labels[".k_loop"]
    back = None
    for addr, slot in image.find_ops(Op.BR_CTOP, fn.region):
        back = addr + slot
    trace = LoopTrace(head=head, back_branch=back, hotness=10)
    trace.lfetch_sites = image.find_ops(Op.LFETCH, (head, addr))
    trace.misses = [MissStats(pc=head, samples=10, coherent=10, total_latency=2000)]
    return image, trace


def _injector_for(action):
    kind = action.partition(":")[2]
    if not kind:
        return None
    return FaultInjector(FaultConfig(patch_rate=1.0, kinds=(kind,)))


@settings(max_examples=40, **COMMON)
@given(actions=st.lists(st.sampled_from(ACTIONS), min_size=1, max_size=12))
def test_fault_interleavings_respect_the_journal(actions):
    image, trace = _build_program()
    pristine = {addr: bundle for addr, bundle in image.iter_bundles()}
    original_head = image.fetch_bundle(trace.head)
    cache = TraceCache()
    injectors = []
    active = None

    for action in actions:
        if action.startswith("deploy"):
            if cache.is_deployed(trace.head):
                continue  # overlap rule: one active trace per loop
            cache.faults = _injector_for(action)
            if cache.faults is not None:
                injectors.append(cache.faults)
            used_before = cache.used_bundles
            journal_before = len(image.patches)
            try:
                active = cache.deploy(
                    image, trace, make_noprefetch_rewrite(), "np"
                )
            except TraceCacheError:
                # all-or-nothing: nothing may have leaked
                assert cache.used_bundles == used_before
                head = image.fetch_bundle(trace.head)
                if active is not None and active.active:
                    assert head == active.head_patch.new
                else:
                    assert head == original_head
                # journal replays: any writes were paired with reverts
                for patch in image.patches[journal_before:]:
                    assert image.fetch_bundle(patch.address) == original_head
        else:
            if active is None:
                continue
            was_active = active.active
            assert cache.rollback(image, active) is was_active
            assert image.fetch_bundle(trace.head) == original_head
            # idempotency, immediately
            assert cache.rollback(image, active) is False
            assert image.fetch_bundle(trace.head) == original_head

    # drain: revert everything and compare against the pristine image
    for deployment in cache.deployments:
        cache.rollback(image, deployment)
    for addr, bundle in pristine.items():
        assert image.fetch_bundle(addr) == bundle

    # every injected patch fault was settled by the transaction logic
    for injector in injectors:
        assert injector.ledger().accounted, injector.ledger().summary()


@settings(max_examples=25, **COMMON)
@given(
    seed=st.integers(0, 1_000_000),
    n_ops=st.integers(1, 10),
)
def test_seeded_schedules_replay(seed, n_ops):
    """The same seed must produce the same draw sequence — the chaos
    harness depends on failures being replayable from their seed."""
    def draws(injector):
        out = []
        for _ in range(n_ops):
            event = injector.patch_fault()
            out.append(None if event is None else event.kind)
            event = injector.sample_fault()
            out.append(None if event is None else event.kind)
        return out

    cfg = FaultConfig(seed=seed, sample_rate=0.4, patch_rate=0.4)
    assert draws(FaultInjector(cfg)) == draws(FaultInjector(cfg))
