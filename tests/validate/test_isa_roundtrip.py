"""Property tests: assemble/disassemble round-trips and patch/rollback.

Random instruction streams are packed into images; the disassembly must
reassemble to a byte-identical image (under the canonical encoding) and
reach a textual fixpoint, and journaled patches must revert to the exact
original bytes — the contract COBRA's live rewriting relies on.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.errors import ValidationError
from repro.isa.assembler import assemble
from repro.isa.binary import BinaryImage
from repro.isa.bundle import Bundle
from repro.isa.disassembler import disassemble
from repro.isa.instructions import Instruction, Op, nop
from repro.validate import (
    check_image,
    check_patch_rollback,
    check_roundtrip,
    encode_image,
    encode_instruction,
)
from repro.workloads import build_daxpy

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

greg = st.integers(0, 63)
freg = st.integers(0, 63)
preg = st.integers(0, 15)
qp = st.integers(0, 15)
imm = st.integers(-(1 << 20), 1 << 20)
postinc = st.sampled_from((0, 8, -8, 16, 128, 256))
target = st.integers(0, 1 << 20).map(lambda n: n * 16)


def _b(fn, *args):
    return st.builds(fn, *args)


INSTRUCTIONS = st.one_of(
    _b(lambda u, q: Instruction(Op.NOP, unit=u, qp=q), st.sampled_from("MIFB"), qp),
    _b(
        lambda op, a, b, c, q: Instruction(op, r1=a, r2=b, r3=c, qp=q),
        st.sampled_from((Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR)),
        greg, greg, greg, qp,
    ),
    _b(lambda a, b, i, q: Instruction(Op.ADDI, r1=a, r2=b, imm=i, qp=q),
       greg, greg, imm, qp),
    _b(lambda a, b, q: Instruction(Op.MOV, r1=a, r2=b, qp=q), greg, greg, qp),
    _b(lambda a, i, q: Instruction(Op.MOVI, r1=a, imm=i, qp=q), greg, imm, qp),
    _b(
        lambda op, a, b, i, q: Instruction(op, r1=a, r2=b, imm=i, qp=q),
        st.sampled_from((Op.SHL, Op.SHR)), greg, greg, st.integers(0, 63), qp,
    ),
    _b(lambda a, b, i, c, q: Instruction(Op.SHLADD, r1=a, r2=b, imm=i, r3=c, qp=q),
       greg, greg, st.integers(1, 4), greg, qp),
    _b(
        lambda op, pt, pf, a, b, q: Instruction(op, r1=pt, r2=pf, r3=a, r4=b, qp=q),
        st.sampled_from((Op.CMP_LT, Op.CMP_LE, Op.CMP_EQ, Op.CMP_NE)),
        preg, preg, greg, greg, qp,
    ),
    _b(
        lambda op, pt, pf, a, i, q: Instruction(op, r1=pt, r2=pf, r3=a, imm=i, qp=q),
        st.sampled_from((Op.CMPI_LT, Op.CMPI_LE, Op.CMPI_EQ, Op.CMPI_NE)),
        preg, preg, greg, imm, qp,
    ),
    _b(lambda i: Instruction(Op.MOV_LC_IMM, imm=i), st.integers(0, 4096)),
    _b(lambda r: Instruction(Op.MOV_LC_REG, r2=r), greg),
    _b(lambda i: Instruction(Op.MOV_EC_IMM, imm=i), st.integers(0, 64)),
    _b(lambda i: Instruction(Op.ALLOC, imm=i), st.integers(0, 96)),
    st.just(Instruction(Op.CLRRRB)),
    _b(lambda i: Instruction(Op.MOV_PR_ROT, imm=i), st.integers(0, 1 << 24)),
    _b(
        lambda a, b, i, e, q: Instruction(
            Op.LD8, r1=a, r2=b, imm=i, excl=e, unit="M", qp=q
        ),
        greg, greg, postinc, st.booleans(), qp,
    ),
    _b(lambda b, c, i, q: Instruction(Op.ST8, r2=b, r3=c, imm=i, unit="M", qp=q),
       greg, greg, postinc, qp),
    _b(lambda a, b, i, q: Instruction(Op.LDFD, r1=a, r2=b, imm=i, unit="M", qp=q),
       freg, greg, postinc, qp),
    _b(lambda b, c, i, q: Instruction(Op.STFD, r2=b, r3=c, imm=i, unit="M", qp=q),
       greg, freg, postinc, qp),
    _b(
        lambda b, i, h, e, q: Instruction(
            Op.LFETCH, r2=b, imm=i, hint=h, excl=e, unit="M", qp=q
        ),
        greg, postinc, st.sampled_from((None, "nt1", "nt2", "nta")),
        st.booleans(), qp,
    ),
    _b(lambda a, b, i: Instruction(Op.FETCHADD8, r1=a, r2=b, imm=i, unit="M"),
       greg, greg, st.sampled_from((-8, -1, 0, 1, 8))),
    _b(lambda a, b, c, d, q: Instruction(Op.FMA, r1=a, r2=b, r3=c, r4=d, qp=q),
       freg, freg, freg, freg, qp),
    _b(
        lambda op, a, b, c, q: Instruction(op, r1=a, r2=b, r3=c, qp=q),
        st.sampled_from((Op.FADD, Op.FSUB, Op.FMUL, Op.FMAX)),
        freg, freg, freg, qp,
    ),
    _b(lambda a, b, q: Instruction(Op.FABS, r1=a, r2=b, qp=q), freg, freg, qp),
    _b(lambda a, b: Instruction(Op.SETF, r1=a, r2=b), freg, greg),
    _b(lambda a, b: Instruction(Op.GETF, r1=a, r2=b), greg, freg),
    _b(lambda t, q: Instruction(Op.BR, imm=t, unit="B", qp=q), target, qp),
    _b(
        lambda op, t, h, q: Instruction(op, imm=t, hint=h, unit="B", qp=q),
        st.sampled_from((Op.BR_COND, Op.BR_CTOP, Op.BR_CLOOP, Op.BR_WTOP)),
        target, st.sampled_from((None, "sptk", "spnt", "dptk")), qp,
    ),
    _b(lambda t: Instruction(Op.BR_CALL, imm=t, unit="B"), target),
    st.just(Instruction(Op.BR_RET, unit="B")),
    st.just(Instruction(Op.HALT, unit="B")),
)

STREAMS = st.lists(INSTRUCTIONS, min_size=1, max_size=30)


def _image_of(instrs: list[Instruction]) -> BinaryImage:
    image = BinaryImage(0x4000_0000)
    padded = list(instrs)
    while len(padded) % 3:
        padded.append(nop("I"))
    for i in range(0, len(padded), 3):
        image.append(Bundle(padded[i : i + 3]))
    image.link()
    return image


@settings(max_examples=120, **COMMON)
@given(instrs=STREAMS)
def test_random_streams_roundtrip(instrs):
    image = _image_of(instrs)
    assert check_roundtrip(image, mode="strict") == []
    rebuilt = assemble(disassemble(image), base=image.base)
    assert encode_image(rebuilt) == encode_image(image)


@settings(max_examples=60, **COMMON)
@given(instrs=STREAMS)
def test_builtin_patch_probe_is_reversible(instrs):
    image = _image_of(instrs)
    before = encode_image(image)
    assert check_patch_rollback(image, mode="strict") == []
    assert encode_image(image) == before


@settings(max_examples=60, **COMMON)
@given(
    instrs=STREAMS,
    picks=st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 2)), max_size=6),
)
def test_random_patch_sequences_revert_byte_identically(instrs, picks):
    image = _image_of(instrs)
    before = encode_image(image)
    addrs = [a for a, _ in image.iter_bundles()]
    applied = []
    for pick, slot in picks:
        addr = addrs[pick % len(addrs)]
        unit = image.fetch_bundle(addr).template[slot].upper()
        image.patch_slot(addr, slot, nop("I" if unit == "L" else unit), reason="probe")
        applied.append(image.patches[-1])
    for patch in reversed(applied):
        image.revert_patch(patch)
    assert encode_image(image) == before


def test_compiled_daxpy_image_passes_all_isa_checks():
    machine = Machine(itanium2_smp(4))
    prog = build_daxpy(machine, 2048, 4, outer_reps=1)
    assert check_image(prog.image, mode="strict") == []


def test_handwritten_source_roundtrips():
    image = assemble(
        "\n".join(
            [
                "loop:",
                "{ .mmb",
                "  (p16) ldfd f38=[r33],8",
                "  (p16) lfetch.excl.nt1 [r43],128",
                "  br.ctop.sptk loop ;;",
                "}",
                "add r41=16,r43",
                "cmp.eq p1,p2=r8,r9",
                "halt",
            ]
        )
    )
    assert check_roundtrip(image, mode="strict") == []


def test_unlinked_instruction_is_rejected():
    with pytest.raises(ValidationError):
        encode_instruction(Instruction(Op.BR, label="loop", unit="B"))


def test_default_branch_hint_is_canonical():
    bare = Instruction(Op.BR_CTOP, imm=0x40, unit="B")
    hinted = Instruction(Op.BR_CTOP, imm=0x40, hint="sptk", unit="B")
    assert encode_instruction(bare) == encode_instruction(hinted)


def test_unparsable_disassembly_is_reported_not_hidden():
    # a float MOVI disassembles to "mov r1=2.5", which the assembler
    # refuses: record mode must surface that as an isa-roundtrip finding
    image = BinaryImage(0x4000_0000)
    image.append(Bundle([Instruction(Op.MOVI, r1=1, imm=2.5), nop("I"), nop("I")]))
    image.link()
    violations = check_roundtrip(image, mode="record")
    assert len(violations) == 1
    assert violations[0].invariant == "isa-roundtrip"
    with pytest.raises(ValidationError):
        check_roundtrip(image, mode="strict")
