"""Chunk-boundary cache-line sharing under adaptive optimization.

With a 128-byte line (16 doubles / 16 int64s), any per-thread chunk
that is not a multiple of 16 makes adjacent threads' chunks share the
cache line straddling their boundary.  That line ping-pongs between
CPUs, which is exactly the traffic COBRA's noprefetch/excl rewrites
target — so these are the scenarios where a wrong rewrite would show
up as cross-thread corruption.  Ground truth (no COBRA) and adaptive
must stay bit-identical.
"""

import dataclasses

import pytest

from repro.fuzz.differ import _run_axis
from repro.fuzz.generator import generate_params

#: 13 % 16 != 0: thread t's last element and thread t+1's first share a line.
_SHARED_CHUNK = 13


def _params(loop_class: str, n_threads: int):
    base = generate_params(0, fault_seed=0)
    return dataclasses.replace(
        base,
        loop_class=loop_class,
        machine_kind="smp",
        n_threads=n_threads,
        chunk=_SHARED_CHUNK,
        reps=3,
        share_boundary=True,
        nest_depth=3,
    )


class TestBoundarySharing:
    @pytest.mark.parametrize("loop_class", ["gather", "histogram"])
    @pytest.mark.parametrize("n_threads", [2, 4])
    def test_adaptive_bit_identical_on_shared_lines(self, loop_class, n_threads):
        params = _params(loop_class, n_threads)
        assert params.chunk % 16 != 0  # the premise: chunks share a line
        none = _run_axis(params, cobra=False, jit=True)
        adaptive = _run_axis(params, cobra=True, jit=True)
        assert adaptive.digest == none.digest

    def test_shared_line_scenarios_deterministic(self):
        params = _params("histogram", 2)
        first = _run_axis(params, cobra=True, jit=True)
        second = _run_axis(params, cobra=True, jit=True)
        assert first == second
