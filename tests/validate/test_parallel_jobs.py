"""Process-parallel scenario fan-out: reports byte-identical at any N.

``repro.parallel.run_tasks`` is the one primitive every harness shares:
an ordered task list goes in, results come back in submission order no
matter how many worker processes ran them.  These tests pin that
contract directly and then end-to-end — the differential, chaos and
recovery harness reports (and the bench digests) must match
byte-for-byte between ``jobs=1`` (inline) and ``jobs=4`` (process
pool).
"""

from __future__ import annotations

import os

import pytest

from repro.config import FaultConfig
from repro.errors import ValidationError
from repro.faults import ChaosHarness
from repro.parallel import run_tasks
from repro.validate import RecoveryHarness
from repro.validate.differential import (
    DifferentialHarness,
    MachineRecipe,
    daxpy_spec,
)

# toy task for the run_tasks contract tests — must be module-level and
# importable so the process pool can pickle it
def _square(x: int) -> int:
    return x * x


def _pid_tag(x: int) -> tuple[int, int]:
    return x, os.getpid()


class TestRunTasks:
    def test_results_in_submission_order(self):
        tasks = [(_square, (n,)) for n in range(20)]
        assert run_tasks(tasks, jobs=4) == [n * n for n in range(20)]

    def test_inline_when_single_job(self):
        tasks = [(_pid_tag, (n,)) for n in range(4)]
        results = run_tasks(tasks, jobs=1)
        assert [x for x, _ in results] == [0, 1, 2, 3]
        assert {pid for _, pid in results} == {os.getpid()}

    def test_workers_are_separate_processes(self):
        tasks = [(_pid_tag, (n,)) for n in range(8)]
        results = run_tasks(tasks, jobs=4)
        assert [x for x, _ in results] == list(range(8))
        assert os.getpid() not in {pid for _, pid in results}

    def test_unpicklable_task_is_rejected_upfront(self):
        with pytest.raises(ValidationError, match="--jobs"):
            run_tasks([(lambda: None, ()), (lambda: None, ())], jobs=2)

    def test_single_task_runs_inline_even_with_jobs(self):
        # one cell can't be parallelized; the pool (and its pickling
        # requirement) is skipped entirely
        assert run_tasks([(lambda: 42, ())], jobs=8) == [42]

    def test_empty_task_list(self):
        assert run_tasks([], jobs=4) == []


def _machines():
    # picklable factories (MachineRecipe, not lambdas) sized small
    # enough that the 2x harness runs stay cheap
    return {
        "smp2": MachineRecipe("smp", 2, 4),
        "altix2": MachineRecipe("altix", 2, 4),
    }


SPEC = daxpy_spec(n_elems=256, n_threads=2, reps=2)


class TestHarnessJobsDeterminism:
    def test_differential_report_identical(self):
        def sweep(jobs):
            return DifferentialHarness(SPEC, _machines()).run(jobs=jobs)

        seq, par = sweep(1), sweep(4)
        assert seq.summary() == par.summary()
        assert seq.ok and par.ok
        assert [r.digest for r in seq.records] == [r.digest for r in par.records]

    def test_chaos_report_identical(self):
        def sweep(jobs):
            harness = ChaosHarness(
                SPEC,
                machines=_machines(),
                strategies=("adaptive",),
                seeds=(0, 1),
                fault_config=FaultConfig(
                    sample_rate=0.2, patch_rate=0.8, loop_rate=0.4
                ),
            )
            return harness.run(jobs=jobs)

        seq, par = sweep(1), sweep(4)
        assert seq.summary() == par.summary()
        assert seq.baseline_digests == par.baseline_digests
        assert [r.ledger.injected for r in seq.records] == [
            r.ledger.injected for r in par.records
        ]

    def test_recovery_report_identical(self):
        def sweep(jobs):
            harness = RecoveryHarness(
                SPEC,
                {"smp2": MachineRecipe("smp", 2, 4)},
                strategy="noprefetch",
                stride=9,
                torn_modes=(None,),
            )
            return harness.run(jobs=jobs)

        seq, par = sweep(1), sweep(4)
        assert seq.summary() == par.summary()
        assert seq.reference_digests == par.reference_digests
        assert [r.digest for r in seq.records] == [
            r.digest for r in par.records
        ]

    def test_bench_cases_identical(self):
        from repro.bench import run_bench

        def matrix(jobs):
            report = run_bench(
                benchmarks=("daxpy",),
                machines=("smp4",),
                strategies=("none", "adaptive"),
                samples=1,
                quick=True,
                jobs=jobs,
            )
            # wall timings are host-scheduling noise by design; strip
            # them and everything derived from them
            for case in report["cases"]:
                for key in ("wall_s", "wall_s_median", "cycles_per_sec",
                            "retired_per_sec", "samples_per_sec"):
                    case.pop(key)
            return report["cases"]

        assert matrix(1) == matrix(2)
