"""Recovery-equivalence harness: a bounded sweep must come back clean."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import StreamLoop, Term
from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.runtime import ParallelProgram
from repro.validate import RecoveryHarness, WorkloadSpec, zero_rate_faults


def _daxpy(machine: Machine) -> ParallelProgram:
    prog = ParallelProgram(machine, "rec")
    prog.array("x", 2048, np.arange(2048, dtype=float))
    prog.array("y", 2048, 1.0)
    fn = prog.kernel(
        StreamLoop("daxpy", dest="y", terms=(Term("y", 1.0, 0), Term("x", 2.0, 0)))
    )
    prog.parallel_for(fn, 2048, 4)
    prog.build(outer_reps=14)
    return prog


SPEC = WorkloadSpec(name="daxpy-recovery", build=_daxpy)
MACHINES = {"smp4": lambda: Machine(itanium2_smp(4, scale=4))}


class TestRecoveryHarness:
    @pytest.fixture(scope="class")
    def report(self):
        harness = RecoveryHarness(
            SPEC, MACHINES, strategy="noprefetch", stride=7,
            torn_modes=(None, 7),
        )
        return harness.run()

    def test_sweep_is_clean(self, report):
        assert report.failures == []
        assert report.ok

    def test_every_crash_point_recovered(self, report):
        assert report.records
        n_ops = report.durable_writes["smp4"]
        assert n_ops > 0
        expected = len(range(1, n_ops + 1, 7)) * 2
        assert len(report.records) == expected
        ref = report.reference_digests["smp4"]
        assert all(r.digest == ref for r in report.records)
        assert all(r.accounted for r in report.records)

    def test_torn_cells_discard_and_boundary_cells_do_not(self, report):
        torn = [r for r in report.records if r.torn_bytes is not None]
        clean = [r for r in report.records if r.torn_bytes is None]
        assert torn and all(r.discarded >= 1 for r in torn)
        assert clean and all(r.discarded == 0 for r in clean)

    def test_sweep_exercised_warm_redeploys(self, report):
        assert report.total_warm_deploys() > 0

    def test_summary_mentions_the_verdict(self, report):
        text = report.summary()
        assert "recovery[daxpy-recovery]:" in text and "OK" in text

    def test_to_json_shape(self, report):
        doc = report.to_json()
        assert doc["ok"] is True
        assert len(doc["cells"]) == len(report.records)
        assert set(doc["cells"][0]) == {
            "machine", "crash_write", "torn_bytes", "digest",
            "replayed", "discarded", "warm_deploys", "accounted",
        }


class TestHarnessValidation:
    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError, match="stride"):
            RecoveryHarness(SPEC, MACHINES, stride=0)

    def test_zero_rate_faults_draw_nothing(self):
        from repro.faults import FaultInjector

        inj = FaultInjector(zero_rate_faults())
        for _ in range(50):
            assert inj.sample_fault() is None
            assert inj.patch_fault() is None
            assert inj.loop_fault() is None
        assert inj.ledger().injected == 0
