"""CoherenceChecker unit tests: clean runs stay silent, deliberately
corrupted cache state is caught with a structured InvariantViolation."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import LINE_SIZE, itanium2_smp
from repro.core import Cobra, run_with_cobra
from repro.cpu import Machine
from repro.errors import (
    CobraError,
    InvariantViolation,
    MachineError,
    ValidationError,
)
from repro.memory.coherence import EXCLUSIVE, MODIFIED, SHARED
from repro.memory.hierarchy import LOAD, PREFETCH_EXCL, STORE
from repro.validate import AccessEvent, CoherenceChecker, EvictEvent
from repro.workloads import build_daxpy

BASE = 0x8000_0000


def addr(i: int) -> int:
    return BASE + i * LINE_SIZE


def line(i: int) -> int:
    return addr(i) // LINE_SIZE


def test_clean_sharing_run_is_silent(smp2):
    with CoherenceChecker(smp2, "strict") as checker:
        smp2.caches[0].access(0, addr(0), LOAD)
        smp2.caches[1].access(1, addr(0), LOAD)
        smp2.caches[0].access(2, addr(0), STORE)
        smp2.caches[1].access(3, addr(0), LOAD)
        smp2.caches[1].access(4, addr(1), PREFETCH_EXCL)
        smp2.caches[0].access(5, addr(1), STORE)
    assert checker.checks == 6
    assert checker.violations == []
    assert "6 accesses checked" in checker.summary()
    assert "0 violations" in checker.summary()


def test_double_owner_corruption_raises_structured_violation(smp2):
    with CoherenceChecker(smp2, "strict") as checker:
        smp2.caches[0].access(0, addr(0), LOAD)
        smp2.caches[1].access(1, addr(0), LOAD)
        # corrupt: promote both sharers to M behind the protocol's back
        smp2.caches[0].state[line(0)] = MODIFIED
        smp2.caches[1].state[line(0)] = MODIFIED
        with pytest.raises(InvariantViolation) as exc_info:
            checker.check_line(line(0))
        violation = exc_info.value
        assert violation.invariant == "exclusive-owner"
        assert violation.line == line(0)
        assert violation.states == {0: "M", 1: "M"}
        assert "[exclusive-owner]" in str(violation)
        # repair before detach so the exit-time structure sweep is clean
        smp2.caches[0].state[line(0)] = SHARED
        smp2.caches[1].state[line(0)] = SHARED


def test_owner_alongside_sharer_caught_on_next_access(smp2):
    with CoherenceChecker(smp2, "strict") as checker:
        smp2.caches[0].access(0, addr(0), LOAD)
        smp2.caches[1].access(1, addr(0), LOAD)
        smp2.caches[0].state[line(0)] = MODIFIED  # corrupt one sharer
        with pytest.raises(InvariantViolation) as exc_info:
            smp2.caches[1].access(2, addr(0), LOAD)
        violation = exc_info.value
        assert violation.invariant == "owner-alone"
        assert violation.line == line(0)
        assert violation.states == {0: "M", 1: "S"}
        assert isinstance(violation.event, AccessEvent)
        assert violation.event.cpu == 1
        assert violation.event.kind == LOAD
        smp2.caches[0].state[line(0)] = SHARED
    assert checker.violations == []  # strict mode raises, never records


def test_record_mode_accumulates_and_resyncs(smp2):
    with CoherenceChecker(smp2, "record") as checker:
        smp2.caches[0].access(0, addr(0), LOAD)
        smp2.caches[1].access(1, addr(0), LOAD)
        smp2.caches[0].state[line(0)] = MODIFIED
        smp2.caches[1].access(2, addr(0), LOAD)  # sees the corruption
        first = len(checker.violations)
        assert first >= 2  # owner-alone + shadow divergence
        seen = {v.invariant for v in checker.violations}
        assert "owner-alone" in seen
        assert "protocol-model" in seen
        # the shadow resynchronized: a second hit reports only the
        # still-true static violation, not a cascading model divergence
        smp2.caches[1].access(3, addr(0), LOAD)
        assert len(checker.violations) == first + 1
        assert checker.violations[-1].invariant == "owner-alone"
        smp2.caches[0].state[line(0)] = SHARED
    assert "violation(s)" in checker.summary()


def test_silently_dropped_line_diverges_from_shadow(smp2):
    with CoherenceChecker(smp2, "strict"):
        smp2.caches[0].access(0, addr(0), LOAD)  # sole reader: E
        assert smp2.caches[0].state[line(0)] == EXCLUSIVE
        # corrupt: the line vanishes from cpu0 without any bus event
        smp2.caches[0].l2.remove(line(0))
        smp2.caches[0].l3.remove(line(0))
        del smp2.caches[0].state[line(0)]
        with pytest.raises(InvariantViolation) as exc_info:
            smp2.caches[1].access(1, addr(0), LOAD)
        violation = exc_info.value
        assert violation.invariant == "protocol-model"
        assert "shadow directory" in str(violation)


def test_dirty_eviction_must_write_back(smp2):
    with CoherenceChecker(smp2, "strict") as checker:
        smp2.caches[0].access(0, addr(0), STORE)
        with pytest.raises(InvariantViolation) as exc_info:
            checker.on_evict(smp2.caches[0], line(0), MODIFIED, wrote_back=False)
        violation = exc_info.value
        assert violation.invariant == "writeback-on-dirty-evict"
        assert isinstance(violation.event, EvictEvent)
        assert "wb=False" in str(violation.event)
        # a clean (shared) eviction needs no writeback
        smp2.caches[1].access(1, addr(1), LOAD)
        checker.on_evict(smp2.caches[1], line(1), SHARED, wrote_back=False)
        smp2.caches[1].access(2, addr(1), LOAD)  # refill for a clean detach


def test_stateless_eviction_is_a_structure_violation(smp2):
    with CoherenceChecker(smp2, "record") as checker:
        checker.on_evict(smp2.caches[0], line(0), None, wrote_back=False)
    assert [v.invariant for v in checker.violations] == ["structure"]


def test_structure_sweep_catches_orphan_state(smp2):
    checker = CoherenceChecker(smp2, "record").attach()
    smp2.caches[0].access(0, addr(0), LOAD)
    smp2.caches[0].state[line(5)] = SHARED  # state with no L3 tag
    checker.detach()  # detach always runs the full structure sweep
    assert any(
        v.invariant == "structure" and "mirror" in str(v)
        for v in checker.violations
    )


def test_eviction_storm_under_strict_checking():
    # scale=256 shrinks L3 to ~96 lines: storing 200 distinct lines
    # forces dirty evictions + writebacks through the checker's
    # on_evict path, which must stay silent for the real protocol
    machine = Machine(itanium2_smp(2, scale=256))
    with CoherenceChecker(machine, "strict", structure_interval=64) as checker:
        for i in range(200):
            machine.caches[i % 2].access(i, addr(i), STORE)
        for i in range(200):
            machine.caches[(i + 1) % 2].access(200 + i, addr(i), LOAD)
    assert checker.checks == 400
    assert checker.violations == []


def test_checker_rejects_bad_modes_and_double_attach(smp2):
    with pytest.raises(ValidationError):
        CoherenceChecker(smp2, "off")
    with pytest.raises(ValidationError):
        CoherenceChecker(smp2, "sometimes")
    first = CoherenceChecker(smp2, "strict").attach()
    assert first.attach() is first  # idempotent for the same checker
    with pytest.raises(MachineError):
        CoherenceChecker(smp2, "strict").attach()
    first.detach()
    first.detach()  # idempotent


def test_cobra_config_enables_validation(smp4):
    prog = build_daxpy(smp4, 256, 4, outer_reps=1)
    config = replace(smp4.config.cobra, validate="strict")
    result, report = run_with_cobra(prog, "adaptive", config=config)
    assert result.retired > 0
    assert report.validate_checks > 0
    assert report.violations == []
    assert "validated" in report.summary()


def test_validate_off_by_default(smp4):
    prog = build_daxpy(smp4, 256, 4, outer_reps=1)
    cobra = Cobra(smp4, prog.image, "adaptive")
    assert cobra.checker is None


def test_env_var_overrides_config(smp4, monkeypatch):
    prog = build_daxpy(smp4, 256, 4, outer_reps=1)
    monkeypatch.setenv("REPRO_VALIDATE", "record")
    cobra = Cobra(smp4, prog.image, "adaptive")
    assert cobra.checker is not None
    assert cobra.checker.mode == "record"
    monkeypatch.setenv("REPRO_VALIDATE", "paranoid")
    with pytest.raises(CobraError):
        Cobra(smp4, prog.image, "adaptive")


def test_cobra_rejects_bad_config_mode(smp4):
    prog = build_daxpy(smp4, 256, 4, outer_reps=1)
    config = replace(smp4.config.cobra, validate="paranoid")
    with pytest.raises(CobraError):
        Cobra(smp4, prog.image, "adaptive", config=config)
