"""Differential regression tests: COBRA must never change program output.

Each workload runs under every strategy (baseline, noprefetch, excl,
adaptive) on both the snooping-bus SMP and the cc-NUMA directory
machine, with a strict coherence checker attached; the committed array
bytes must be identical (sha256) across the whole matrix.
"""

from __future__ import annotations

import pytest

from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.errors import ValidationError
from repro.validate import (
    ALL_STRATEGIES,
    DifferentialHarness,
    WorkloadSpec,
    daxpy_spec,
    default_machines,
    npb_spec,
)
from repro.workloads import build_daxpy


def _assert_bitwise_identical(report, n_machines=2):
    assert report.ok, report.summary()
    expected_runs = n_machines * len(ALL_STRATEGIES)
    assert len(report.records) == expected_runs
    assert len({record.digest for record in report.records}) == 1
    assert {record.strategy for record in report.records} == set(ALL_STRATEGIES)
    assert all(record.checks > 0 for record in report.records)
    assert "OK" in report.summary()


def test_daxpy_identical_across_strategies_and_machines():
    report = DifferentialHarness(
        daxpy_spec(n_elems=256, n_threads=4, reps=3), default_machines(4)
    ).run()
    _assert_bitwise_identical(report)
    assert all(record.verified is True for record in report.records)


def test_npb_cg_identical_across_strategies_and_machines():
    report = DifferentialHarness(npb_spec("cg", 4, reps=2), default_machines(4)).run()
    _assert_bitwise_identical(report)
    assert all(record.verified is True for record in report.records)


def test_npb_mg_identical_across_strategies_and_machines():
    report = DifferentialHarness(npb_spec("mg", 4, reps=1), default_machines(4)).run()
    _assert_bitwise_identical(report)
    assert all(record.verified is True for record in report.records)


def test_output_divergence_is_reported():
    # a workload that (wrongly) computes something different on every
    # rebuild: the harness must flag the optimized runs against baseline
    calls = {"n": 0}

    def build(machine):
        calls["n"] += 1
        return build_daxpy(machine, 64, 2, 1, a=float(calls["n"]))

    report = DifferentialHarness(
        WorkloadSpec(name="mutant-daxpy", build=build),
        {"smp2": lambda: Machine(itanium2_smp(2))},
        strategies=("none", "adaptive"),
    ).run()
    assert not report.ok
    assert any("differs" in text for text in report.mismatches)
    assert "FAIL" in report.summary()
    assert "MISMATCH" in report.summary()


def test_harness_requires_baseline_and_valid_mode():
    spec = daxpy_spec(n_elems=64, n_threads=2, reps=1)
    with pytest.raises(ValidationError):
        DifferentialHarness(spec, strategies=("adaptive", "excl"))
    with pytest.raises(ValidationError):
        DifferentialHarness(spec, mode="off")
