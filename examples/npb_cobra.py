#!/usr/bin/env python
"""COBRA on the NPB-like suite: the paper's headline experiment (Fig. 5-7).

Runs the six reported benchmarks (BT, SP, LU, FT, MG, CG) on both
simulated platforms, with and without COBRA, and prints the
Figure-5/6/7-style tables: speedup, normalized L3 misses, normalized
bus transactions.  EP and IS are also run once to confirm why the paper
excludes them (no long-latency coherent misses worth optimizing).

Run:  python examples/npb_cobra.py           (~5 minutes)
      python examples/npb_cobra.py --quick   (SMP only, fewer reps)
"""

from __future__ import annotations

import sys

from repro import BENCHMARKS, Machine, itanium2_smp, run_with_cobra, sgi_altix
from repro.analysis import Comparison, ExperimentSeries, format_series_table
from repro.workloads import REPORTED

STRATEGIES = ("noprefetch", "excl")


def run_machine(label: str, config, n_threads: int, reps_factor: int) -> None:
    print(f"\n===== {label}: {n_threads} threads =====")
    series = {s: ExperimentSeries(s) for s in STRATEGIES}
    for name in REPORTED:
        bench = BENCHMARKS[name]
        reps = bench.default_reps * reps_factor
        machine = Machine(config)
        prog = bench.build(machine, n_threads, reps=reps)
        baseline = prog.run()
        assert bench.verify(prog, reps), f"{name}: baseline verification failed"
        for strategy in STRATEGIES:
            machine = Machine(config)
            prog = bench.build(machine, n_threads, reps=reps)
            result, report = run_with_cobra(prog, strategy)
            assert bench.verify(prog, reps), f"{name}/{strategy}: verification failed"
            series[strategy].add(Comparison(name, baseline, result))
        print(".", end="", flush=True)
    print()
    print("\nspeedup over the prefetch baseline (Figure 5):")
    print(format_series_table(series, "speedup"))
    print("\nnormalized L3 misses (Figure 6):")
    print(format_series_table(series, "normalized_l3"))
    print("\nnormalized bus memory transactions (Figure 7):")
    print(format_series_table(series, "normalized_bus"))


def show_excluded(config, n_threads: int) -> None:
    print("\n===== why EP and IS are excluded (paper §5.2) =====")
    for name in ("ep", "is"):
        bench = BENCHMARKS[name]
        machine = Machine(config)
        prog = bench.build(machine, n_threads)
        result = prog.run()
        events = result.events
        print(
            f"{name}: coherent bus events = {events.coherent_bus_events()}, "
            f"hitm = {events.bus_rd_hitm} — no long-latency coherent misses to remove"
        )


def main() -> None:
    quick = "--quick" in sys.argv
    reps_factor = 2 if quick else 3
    run_machine("Itanium 2 SMP server", itanium2_smp(4), 4, reps_factor)
    if not quick:
        run_machine("SGI Altix cc-NUMA", sgi_altix(8), 8, reps_factor)
    show_excluded(itanium2_smp(4), 4)


if __name__ == "__main__":
    main()
