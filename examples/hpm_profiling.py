#!/usr/bin/env python
"""Using the simulated hardware-performance-monitoring stack directly.

Shows the layer COBRA is built on: program the four PMU counters with
the coherent-traffic event set, arm perfmon sampling with a
DEAR latency filter, run a sharing-heavy kernel, and print what the
samples captured — counter deltas, branch-trace-buffer loop evidence,
and latency-classified miss addresses (the paper's §3.1/§4 machinery).

Run:  python examples/hpm_profiling.py
"""

from __future__ import annotations

from collections import Counter

from repro import Machine, build_daxpy, itanium2_smp
from repro.cpu import Scheduler
from repro.hpm import PerfmonDriver, PmuEvent
from repro.workloads import working_set_elems

EVENTS = [
    PmuEvent.BUS_MEMORY,
    PmuEvent.BUS_RD_HIT,
    PmuEvent.BUS_RD_HITM,
    PmuEvent.BUS_RD_INVAL,
]


def main() -> None:
    machine = Machine(itanium2_smp(4, scale=4))
    n = working_set_elems("128K", 4)
    program = build_daxpy(machine, n, 4, outer_reps=20)

    driver = PerfmonDriver(machine.cores)
    samples = []
    for session in driver.sessions:
        session.configure(EVENTS, interval=2000, dear_min_latency=12)
        session.set_listener(samples.append)

    for thread in program.threads:
        thread.start()
    Scheduler([t.core for t in program.threads]).run_until_halt()
    driver.stop_all()

    print(f"collected {len(samples)} samples from {machine.n_cpus} CPUs\n")

    print("final counter values per CPU (BUS_MEMORY, RD_HIT, RD_HITM, RD_INVAL):")
    for session in driver.sessions:
        values = session.pmu.read_all()
        total, hit, hitm, inval = values
        ratio = (hit + hitm + inval) / total if total else 0.0
        print(f"  cpu{session.core.cpu_id}: {values}  coherent ratio {ratio:.2f}")

    misses = [s for s in samples if s.has_miss()]
    coherent = [s for s in misses if (s.miss_latency or 0) > 180]
    print(f"\nDEAR captures: {len(misses)} filtered misses, "
          f"{len(coherent)} in the coherent band (>180 cycles)")
    by_pc = Counter(s.miss_pc for s in coherent)
    for pc, count in by_pc.most_common(5):
        print(f"  miss pc {pc:#x}: {count} coherent events")

    pairs = Counter(pair for s in samples for pair in s.btb if pair[1] <= pair[0])
    print("\nhot backward branches from the BTB (loop evidence):")
    for (branch, target), count in pairs.most_common(3):
        print(f"  {branch:#x} -> {target:#x}: seen {count} times")


if __name__ == "__main__":
    main()
