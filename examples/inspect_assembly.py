#!/usr/bin/env python
"""Inspect the compiler's DAXPY code and COBRA's runtime rewrite of it.

Reproduces the paper's Figure 2 experience: disassemble the icc-style
software-pipelined DAXPY kernel (prologue prefetches, rotating lfetch
queue, predicated stages, br.ctop), then run it under COBRA and
disassemble the optimized trace the framework deployed — showing the
lfetch -> nop rewrite and the patched redirection bundle.

Run:  python examples/inspect_assembly.py
"""

from __future__ import annotations

from repro import Machine, build_daxpy, itanium2_smp, run_with_cobra
from repro.compiler import PrefetchPlan
from repro.isa import disassemble
from repro.workloads import working_set_elems

ICC_PLAN = PrefetchPlan(prologue_per_stream=3)  # 6 prologue lfetches, as Fig. 2


def main() -> None:
    machine = Machine(itanium2_smp(4, scale=4))
    n = working_set_elems("128K", 4)
    program = build_daxpy(machine, n, 4, outer_reps=40, plan=ICC_PLAN)

    region = program.image.regions["daxpy"]
    print("=== compiler output (paper Figure 2) ===")
    print(disassemble(program.image, *region))

    result, report = run_with_cobra(program, strategy="noprefetch")
    print(f"\n=== after COBRA ({result.cycles} cycles) ===")
    print(report.summary())

    for deployment in report.deployments:
        print(f"\n--- patched loop head at {deployment.loop.head:#x} ---")
        print(disassemble(program.image, deployment.loop.head, deployment.loop.head + 16))
        trace_image = None
        # the trace cache is the extra image every core can fetch from
        for image in machine.cores[0].images:
            if deployment.entry in image.bundles:
                trace_image = image
                break
        assert trace_image is not None
        end = deployment.entry + (deployment.loop.n_bundles + 1) * 16
        print(f"--- optimized trace at {deployment.entry:#x} "
              f"({deployment.optimization}, {deployment.n_rewrites} rewrites) ---")
        print(disassemble(trace_image, deployment.entry, end))


if __name__ == "__main__":
    main()
