#!/usr/bin/env python
"""First-touch page placement on the cc-NUMA machine (paper §3.2).

"SGI Altix cc-NUMA system uses a first-touch policy to pin a memory
page to the first processor that accesses the memory page."  This
example shows why that matters: the same DAXPY run is measured once
with pages placed by the threads that use them (parallel
initialization — the normal OpenMP idiom) and once with every page
pinned to node 0 (serial initialization by the master thread).  The
misplaced version pays remote-memory latency for most of its misses.

Run:  python examples/numa_first_touch.py
"""

from __future__ import annotations

from repro import Machine, sgi_altix
from repro.workloads import build_daxpy, verify_daxpy, working_set_elems

THREADS = 8
REPS = 10


def run(pin_to_node0: bool) -> tuple[int, float]:
    machine = Machine(sgi_altix(THREADS, scale=4))
    n = working_set_elems("2M", 4)  # streaming: placement dominates
    program = build_daxpy(machine, n, THREADS, outer_reps=REPS)
    if pin_to_node0:
        # the serial-init anti-pattern: master touched everything first
        for name in ("x", "y"):
            machine.mem.place_pages(program.arrays[name], node=0)
    result = program.run()
    assert verify_daxpy(program, REPS)
    events = result.events
    return result.cycles, events.coherent_ratio()


def main() -> None:
    good_cycles, good_ratio = run(pin_to_node0=False)
    bad_cycles, bad_ratio = run(pin_to_node0=True)
    print(f"first-touch (parallel init):  {good_cycles:>9} cycles  "
          f"coherent ratio {good_ratio:.2f}")
    print(f"all pages on node 0:          {bad_cycles:>9} cycles  "
          f"coherent ratio {bad_ratio:.2f}")
    print(f"\nmisplacement penalty: {bad_cycles / good_cycles:.2f}x — "
          "remote-memory latency on every streaming miss")


if __name__ == "__main__":
    main()
