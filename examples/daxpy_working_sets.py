#!/usr/bin/env python
"""The paper's motivation study (Figures 1-3): one binary is not enough.

Sweeps the OpenMP DAXPY kernel over the paper's three working-set
classes and 1/2/4 threads, under the three static strategies
(prefetch / noprefetch / prefetch.excl), and prints the Figure-3-style
normalized execution times.  The punchline is the paper's: no single
statically-compiled binary wins everywhere — which is why the binary
must be re-adapted at runtime.

Run:  python examples/daxpy_working_sets.py        (~2 minutes)
"""

from __future__ import annotations

from repro import Machine, itanium2_smp
from repro.analysis import format_fig3_table
from repro.compiler import AGGRESSIVE, PrefetchPlan
from repro.isa import Op
from repro.isa.instructions import nop
from repro.workloads import build_daxpy, working_set_elems

SCALE = 4
WORKING_SETS = ("128K", "512K", "2M")
THREADS = (1, 2, 4)
STRATEGIES = ("prefetch", "noprefetch", "prefetch.excl")


def steady_cycles(ws: str, n_threads: int, strategy: str) -> int:
    """Steady-state cycles (two runs, warm-up subtracted)."""
    n = working_set_elems(ws, SCALE)
    reps = max(4, 16384 // n)
    plan = PrefetchPlan(excl=True) if strategy == "prefetch.excl" else AGGRESSIVE
    cycles = []
    for factor in (1, 2):
        machine = Machine(itanium2_smp(4, scale=SCALE))
        program = build_daxpy(machine, n, n_threads, outer_reps=reps * factor, plan=plan)
        if strategy == "noprefetch":
            # the paper's method: the same binary with lfetch -> NOP
            for addr, slot in program.image.find_ops(Op.LFETCH):
                program.image.patch_slot(addr, slot, nop("M"), "static noprefetch")
        cycles.append(program.run().cycles)
    return cycles[1] - cycles[0]


def main() -> None:
    results = {}
    for ws in WORKING_SETS:
        for t in THREADS:
            for strategy in STRATEGIES:
                results[(ws, t, strategy)] = steady_cycles(ws, t, strategy)
                print(".", end="", flush=True)
    print("\n")
    print(format_fig3_table(results, list(WORKING_SETS), list(THREADS), list(STRATEGIES)))
    print(
        "\nNote how noprefetch wins at 128K with 2-4 threads but loses badly at"
        "\n2M, while prefetch.excl helps in between — the adaptation COBRA does"
        "\nat runtime (see examples/quickstart.py)."
    )


if __name__ == "__main__":
    main()
