#!/usr/bin/env python
"""Differential fuzzing: catch a planted bug, replay it, shrink it.

Walks the full divergence-triage loop end to end:

1. runs a small clean sweep — every generated kernel must agree
   bit-for-bit across all must-agree axes (adaptive vs none, trace JIT
   on vs off, faulted vs clean, checkpoint-resume vs straight-through);
2. plants a bug: the ``noprefetch`` rewrite is replaced with one that
   *stores zero* through the prefetch pointer instead of nopping the
   lfetch — silent cross-thread data corruption, the kind only a
   digest comparison catches;
3. reruns one scenario, which now diverges, and shows how the report
   names the exact ``(generator_seed, fault_seed)`` pair;
4. replays the divergence from those two integers alone — the pair is
   the complete repro, nothing else is needed;
5. shrinks the scenario to the smallest kernel that still diverges.

Run:  python examples/fuzz_divergence_replay.py
"""

from __future__ import annotations

import repro.core.optimizer as optimizer
from repro.fuzz import DifferentialFuzzer, generate_params, run_scenario, shrink
from repro.fuzz.generator import describe
from repro.fuzz.report import repro_command
from repro.isa.instructions import Instruction, Op

PLANT_SEED = 12  # a scenario whose adaptive run deploys noprefetch


def corrupting_rewrite(sites=None):
    """The planted bug: lfetch becomes a store of zero."""
    del sites

    def rewrite(instr):
        if instr.op is Op.LFETCH:
            return Instruction(Op.ST8, r2=instr.r2, r3=0, imm=instr.imm, unit="M")
        return None

    return rewrite


def main() -> None:
    print("== 1. clean sweep (4 seeds) ==")
    report = DifferentialFuzzer(seeds=range(4)).run()
    print(report.summary(verbose=False))
    assert report.ok

    print("\n== 2. plant the bug ==")
    original = optimizer.make_noprefetch_rewrite
    optimizer.make_noprefetch_rewrite = corrupting_rewrite
    try:
        params = generate_params(PLANT_SEED)
        print(f"scenario: {describe(params)}")

        print("\n== 3. the sweep catches it ==")
        result = run_scenario(params)
        assert not result.ok
        for div in result.divergences:
            print(f"  DIVERGENCE {div.describe()}")
            print(f"  repro: {repro_command(div.seed, div.fault_seed)}")

        print("\n== 4. replay from the printed pair alone ==")
        replayed = generate_params(params.seed, fault_seed=params.fault_seed)
        assert replayed == params, "the pair reconstructs the full scenario"
        again = run_scenario(replayed)
        assert again.divergences == result.divergences
        print(f"  ({params.seed}, {params.fault_seed}) -> same "
              f"{len(again.divergences)} divergence(s), bit-identical report")

        print("\n== 5. shrink to a minimal failing kernel ==")
        outcome = shrink(params, budget=24)
        print(f"  {outcome.summary()}")
        assert not run_scenario(outcome.params).ok
    finally:
        optimizer.make_noprefetch_rewrite = original

    print("\n== bug removed: the same seed is clean again ==")
    assert run_scenario(generate_params(PLANT_SEED)).ok
    print("OK")


if __name__ == "__main__":
    main()
