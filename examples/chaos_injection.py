#!/usr/bin/env python
"""Fault injection: break COBRA's inputs and watch it not care.

Runs the CG benchmark under COBRA three times:

1. fault-free, to establish the reference output digest;
2. with a seeded fault schedule attacking all three surfaces (HPM
   sampling, trace-cache patching, the monitor/optimizer loop) —
   outputs must stay bit-identical and every injected fault must be
   accounted in the ledger;
3. with an aggressive schedule and a low escalation threshold, so the
   watchdog gives up on optimizing and degrades to monitor-only mode —
   which costs performance, never correctness.

Run:  python examples/chaos_injection.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import Machine, itanium2_smp, run_with_cobra
from repro.config import FaultConfig
from repro.validate.differential import _digest, _snapshot_arrays, npb_spec

THREADS = 4
SCALE = 16
SPEC = npb_spec("cg", n_threads=THREADS)


def run(faults: FaultConfig | None = None, threshold: int = 8):
    machine = Machine(itanium2_smp(THREADS, scale=SCALE))
    program = SPEC.build(machine)
    config = replace(
        machine.config.cobra, faults=faults, fault_escalation_threshold=threshold
    )
    result, report = run_with_cobra(program, "adaptive", config=config)
    return _digest(_snapshot_arrays(program)), result, report


def main() -> None:
    # -- 1. the fault-free reference -------------------------------------
    baseline_digest, base, _ = run()
    print(f"fault-free:  {base.cycles:>7} cycles   digest {baseline_digest[:16]}\n")

    # -- 2. a moderate seeded fault schedule ------------------------------
    faults = FaultConfig(seed=7, sample_rate=0.2, patch_rate=0.6, loop_rate=0.3)
    digest, result, report = run(faults)
    assert digest == baseline_digest, "a fault reached program correctness!"
    assert report.faults.accounted, report.faults.summary()
    print(f"seed=7:      {result.cycles:>7} cycles   digest {digest[:16]}  (identical)")
    print(f"  {report.faults.summary()}")
    if report.quarantined:
        print(f"  quarantined: {report.quarantined}")
    for line in report.recovery_log:
        print(f"  recovery: {line}")

    print("\ninjected fault schedule (replayable from seed=7):")
    for event in report.faults.events:
        print(f"  {event}")

    # -- 3. hammer it until the watchdog degrades the runtime -------------
    storm = FaultConfig(seed=11, sample_rate=0.5, patch_rate=1.0, loop_rate=0.8)
    digest, result, report = run(storm, threshold=2)
    assert digest == baseline_digest
    assert report.faults.accounted
    print(f"\nfault storm: {result.cycles:>7} cycles   digest {digest[:16]}  (identical)")
    print(f"  end mode: {report.mode}")
    for event in report.events:
        if event.kind in ("degrade", "recover"):
            print(f"  @{event.retired:>7} retired  {event.kind:8s} {event.reason}")
    print("\noutputs never changed; only the optimization level did.")


if __name__ == "__main__":
    main()
