#!/usr/bin/env python
"""Continuous re-adaptation: deploy, then undo when the program changes.

The paper's title promise — *Continuous Binary Re-Adaptation* — in one
run: phase 1 hammers a cache-resident DAXPY slice (prefetch-induced
coherent misses dominate; COBRA deploys noprefetch); phase 2 switches
the same loop to a streaming working set (prefetching is now essential;
the coherent ratio collapses, and COBRA rolls the deployment back,
restoring the original bundles).

Run:  python examples/phase_adaptation.py
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import Machine, itanium2_smp, run_with_cobra
from repro.compiler import StreamLoop, Term
from repro.runtime import ParallelProgram

SMALL, LARGE = 2048, 32768
P1_REPS, P2_REPS = 16, 6


def main() -> None:
    machine = Machine(itanium2_smp(4, scale=4))
    prog = ParallelProgram(machine, "phases")
    prog.array("x", LARGE, np.arange(LARGE, dtype=float))
    prog.array("y", LARGE, 1.0)
    fn = prog.kernel(
        StreamLoop("daxpy", dest="y", terms=(Term("y", 1.0, 0), Term("x", 2.0, 0)))
    )
    prog.parallel_for(fn, SMALL, 4)    # phase 1: cache-resident slice
    prog.phase_break()
    prog.parallel_for(fn, LARGE, 4)    # phase 2: streaming sweep
    prog.build(outer_reps=[P1_REPS, P2_REPS])

    config = dataclasses.replace(machine.config.cobra, optimize_interval=30_000)
    result, report = run_with_cobra(prog, "noprefetch", config=config)

    print(f"run finished in {result.cycles} cycles; "
          f"{len(report.deployments)} deployment(s) still active\n")
    print("optimizer event log (watch the deploy -> rollback arc):")
    for event in report.events:
        if event.kind == "skip" and "below threshold" in event.reason:
            continue  # phase-2 gate skips, elided for brevity
        loop = f"loop {event.loop_head:#x}" if event.loop_head else ""
        print(f"  @{event.retired:>8} retired  {event.kind:9s} {loop:18s} {event.reason}")


if __name__ == "__main__":
    main()
