#!/usr/bin/env python
"""Quickstart: run COBRA on the paper's motivating DAXPY kernel.

Builds a 4-way Itanium-2-like SMP machine, compiles the OpenMP DAXPY
kernel with icc-style aggressive prefetching, runs it once as the
baseline, then runs it again with COBRA attached in adaptive mode and
prints what the optimizer observed, decided, and patched.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Machine, build_daxpy, itanium2_smp, run_with_cobra, verify_daxpy
from repro.workloads import working_set_elems

THREADS = 4
REPS = 40
SCALE = 4  # cache/working-set scale factor (DESIGN.md §1)


def main() -> None:
    n = working_set_elems("128K", SCALE)
    print(f"DAXPY: {n} elements/array (the paper's 128 KB working-set class), "
          f"{THREADS} threads, {REPS} outer iterations\n")

    # -- baseline: the compiler's aggressively-prefetched binary --------
    machine = Machine(itanium2_smp(THREADS, scale=SCALE))
    baseline = build_daxpy(machine, n, THREADS, REPS)
    base = baseline.run()
    assert verify_daxpy(baseline, REPS)
    print(f"baseline (prefetch):  {base.cycles:>9} cycles   "
          f"coherent ratio {base.events.coherent_ratio():.2f}")

    # -- the same binary under COBRA ------------------------------------
    machine = Machine(itanium2_smp(THREADS, scale=SCALE))
    program = build_daxpy(machine, n, THREADS, REPS)
    result, report = run_with_cobra(program, strategy="adaptive")
    assert verify_daxpy(program, REPS)
    print(f"with COBRA (adaptive): {result.cycles:>9} cycles   "
          f"speedup {base.cycles / result.cycles:.2f}x\n")

    print(report.summary())
    print("\noptimizer event log:")
    for event in report.events:
        loop = f"loop {event.loop_head:#x}" if event.loop_head else ""
        print(f"  @{event.retired:>8} retired  {event.kind:8s} {loop:18s} {event.reason}")


if __name__ == "__main__":
    main()
