"""Ablations of the design choices DESIGN.md calls out.

1. Two-level DEAR latency filter vs no filter: lowering the coherent
   threshold to the floor makes every filtered miss "coherent", so the
   optimizer rewrites prefetches in loops where they are useful — the
   selectivity is what protects performance (paper §5.2.1).
2. Re-adaptation (rollback) on vs off, measured where deployments can
   go wrong: rollback must never make things worse.
3. Adaptive strategy vs fixed: on DAXPY's cache-resident working set
   the adaptive policy should find the noprefetch decision by itself.
4. Cross-thread profile aggregation vs single-thread profiling: with
   only one monitored thread the optimizer sees fewer qualifying
   samples and acts later or not at all.
"""

from __future__ import annotations

from conftest import emit

import dataclasses

import pytest

from repro.config import itanium2_smp
from repro.core import run_with_cobra
from repro.core.framework import Cobra
from repro.cpu import Machine, Scheduler
from repro.workloads import BENCHMARKS, build_daxpy, working_set_elems

MAX_BUNDLES = 400_000_000


def _daxpy_prog(machine, reps=40):
    n = working_set_elems("128K", 4)
    return build_daxpy(machine, n, 4, outer_reps=reps)


def test_ablation_two_level_filter(benchmark):
    """Dropping the second-level filter must not help, and typically hurts."""

    def run(threshold):
        machine = Machine(itanium2_smp(4))
        bench = BENCHMARKS["cg"]
        prog = bench.build(machine, 4, reps=bench.default_reps * 3)
        config = dataclasses.replace(
            machine.config.cobra,
            coherent_latency_threshold=threshold,
            enable_rollback=False,
        )
        res, rep = run_with_cobra(prog, "noprefetch", config=config, max_bundles=MAX_BUNDLES)
        return res.cycles, len(rep.deployments)

    def experiment():
        filtered, _ = run(180)      # paper's coherent band
        unfiltered, n_dep = run(13)  # everything above the floor "qualifies"
        return filtered, unfiltered, n_dep

    filtered, unfiltered, n_dep = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(f"\nfiltered={filtered} unfiltered={unfiltered} (unfiltered deployments={n_dep})")
    assert filtered <= unfiltered * 1.02, (
        "the two-level filter must be at least as good as no filter"
    )


def test_ablation_rollback(benchmark):
    """Rollback bounds the damage of a mistaken deployment."""

    def run(enable):
        machine = Machine(itanium2_smp(4))
        bench = BENCHMARKS["ft"]
        prog = bench.build(machine, 4, reps=bench.default_reps * 3)
        config = dataclasses.replace(machine.config.cobra, enable_rollback=enable)
        res, rep = run_with_cobra(prog, "noprefetch", config=config, max_bundles=MAX_BUNDLES)
        rollbacks = sum(1 for e in rep.events if e.kind == "rollback")
        return res.cycles, rollbacks

    def experiment():
        with_rb, n_rb = run(True)
        without_rb, _ = run(False)
        return with_rb, without_rb, n_rb

    with_rb, without_rb, n_rb = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit(f"\nwith rollback={with_rb} ({n_rb} rollbacks) without={without_rb}")
    assert with_rb <= without_rb * 1.05, "rollback must not make things worse"


def test_ablation_adaptive_policy(benchmark):
    """Adaptive picks noprefetch on the cache-resident DAXPY by itself."""

    def experiment():
        out = {}
        for strategy in ("noprefetch", "excl", "adaptive"):
            machine = Machine(itanium2_smp(4, scale=4))
            prog = _daxpy_prog(machine)
            res, rep = run_with_cobra(prog, strategy, max_bundles=MAX_BUNDLES)
            out[strategy] = (res.cycles, [d.optimization for d in rep.deployments])
        return out

    out = benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit()
    for k, (cycles, deps) in out.items():
        emit(f"{k}: cycles={cycles} deployments={deps}")
    assert "noprefetch" in out["adaptive"][1], (
        "adaptive must choose noprefetch for the coherence-dominated loop"
    )
    assert out["adaptive"][0] <= out["excl"][0], (
        "adaptive must not do worse than the wrong fixed strategy"
    )


def test_ablation_single_thread_profile(benchmark):
    """System-wide aggregation beats profiling a single thread."""

    def run(single):
        machine = Machine(itanium2_smp(4, scale=4))
        prog = _daxpy_prog(machine)
        cobra = Cobra(machine, prog.image, "noprefetch")
        if single:
            cobra.optimizer.monitors = cobra.monitors[:1]
            for monitor in cobra.monitors[1:]:
                monitor.stop()  # not yet started; prevents arming below
        scheduler = Scheduler([th.core for th in prog.threads])
        cobra.install(scheduler)
        if single:
            for monitor in cobra.monitors[1:]:
                monitor.stop()
        res = prog.run(max_bundles=MAX_BUNDLES, scheduler=scheduler)
        cobra.stop()
        report = cobra.report()
        return res.cycles, report.samples

    def experiment():
        all_cycles, all_samples = run(False)
        one_cycles, one_samples = run(True)
        return all_cycles, all_samples, one_cycles, one_samples

    all_cycles, all_samples, one_cycles, one_samples = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    emit(f"\nall-threads: cycles={all_cycles} samples={all_samples}; "
          f"one-thread: cycles={one_cycles} samples={one_samples}")
    assert one_samples < all_samples, "single-thread profiling sees fewer samples"
    assert all_cycles <= one_cycles * 1.05, (
        "system-wide profiles must not be worse than single-thread profiles"
    )
