"""Table 1: static loop and prefetch counts in the compiled binaries.

The paper counts ``lfetch``, ``br.ctop``, ``br.cloop`` and ``br.wtop``
in the icc-compiled OpenMP NPB binaries.  We compile our structural
analogues and print the same table (ours/paper).  Shape expectations:
MG and CG near the top for lfetch, EP tiny, every benchmark dominated
by counted/modulo-scheduled loops, ``br.wtop`` only where non-counted
inner loops exist (gathers).
"""

from __future__ import annotations

from conftest import emit

from repro.analysis import PAPER_TABLE1, format_table1
from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.isa import Op
from repro.workloads import BENCHMARKS

N_THREADS = 4


def _static_counts() -> dict[str, tuple[int, int, int, int]]:
    counts = {}
    for name, bench in BENCHMARKS.items():
        machine = Machine(itanium2_smp(N_THREADS))
        prog = bench.build(machine, N_THREADS, reps=1)
        image = prog.image
        counts[name] = (
            image.count_ops(Op.LFETCH),
            image.count_ops(Op.BR_CTOP),
            image.count_ops(Op.BR_CLOOP),
            image.count_ops(Op.BR_WTOP),
        )
    return counts


def test_table1_static_counts(benchmark):
    counts = benchmark.pedantic(_static_counts, rounds=1, iterations=1)
    emit()
    emit("Table 1 — static counts in compiled NPB binaries")
    emit(format_table1(counts))

    lf = {name: c[0] for name, c in counts.items()}
    # shape assertions mirroring the paper's table
    assert lf["ep"] == min(lf.values()), "EP must have the fewest prefetches"
    assert lf["mg"] >= lf["bt"], "MG outranks BT in static prefetches"
    assert lf["sp"] > lf["bt"], "SP has more loops/prefetches than BT"
    for name, (lfetch, ctop, cloop, wtop) in counts.items():
        assert lfetch >= 0 and ctop + cloop + wtop > 0
    # br.wtop appears exactly where non-counted inner loops exist
    assert counts["ft"][3] > 0 and counts["mg"][3] > 0 and counts["cg"][3] > 0
    assert counts["bt"][3] == 0 and counts["sp"][3] == 0
