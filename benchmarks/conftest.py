"""Shared experiment matrices for the benchmark harness.

Figures 5, 6 and 7 report different metrics of the *same* runs, so the
NPB matrix (benchmark x strategy x machine) is computed once per pytest
session and shared.  Likewise the DAXPY matrix feeds both Figure 3
panels.
"""

from __future__ import annotations

import pytest

_CONFIG = None


def pytest_configure(config):
    global _CONFIG
    _CONFIG = config


def emit(*args: object) -> None:
    """Print a report line past pytest's capture.

    The rendered tables are the benchmark suite's payload; they must
    reach the console (and a teed output file) even without ``-s``.
    """
    capman = _CONFIG.pluginmanager.getplugin("capturemanager") if _CONFIG else None
    if capman is not None:
        with capman.global_and_fixture_disabled():
            print(*args, flush=True)
    else:  # pragma: no cover - plain python execution
        print(*args, flush=True)

from repro.analysis import Comparison, ExperimentSeries
from repro.config import itanium2_smp, sgi_altix
from repro.core import run_with_cobra
from repro.cpu import Machine
from repro.workloads import BENCHMARKS, REPORTED, build_daxpy, working_set_elems
from repro.compiler import AGGRESSIVE, PrefetchPlan
from repro.isa import Op
from repro.isa.instructions import nop

MAX_BUNDLES = 400_000_000

#: Paper machines for the final results (Figures 5-7).
MACHINES = {
    "smp4": (itanium2_smp(4), 4),
    "altix8": (sgi_altix(8), 8),
}

STRATEGIES = ("noprefetch", "excl")


def _run_npb(name: str, machine_key: str, strategy: str | None):
    config, n_threads = MACHINES[machine_key]
    bench = BENCHMARKS[name]
    machine = Machine(config)
    reps = bench.default_reps * 3
    prog = bench.build(machine, n_threads, reps=reps)
    if strategy is None:
        return prog.run(max_bundles=MAX_BUNDLES), None
    return run_with_cobra(prog, strategy, max_bundles=MAX_BUNDLES)


@pytest.fixture(scope="session")
def npb_matrix():
    """(machine, benchmark, strategy|None) -> RunResult."""
    results = {}
    for machine_key in MACHINES:
        for name in REPORTED:
            results[(machine_key, name, None)] = _run_npb(name, machine_key, None)[0]
            for strategy in STRATEGIES:
                results[(machine_key, name, strategy)] = _run_npb(
                    name, machine_key, strategy
                )[0]
    return results


def npb_series(npb_matrix, machine_key: str) -> dict[str, ExperimentSeries]:
    """Fold the matrix into per-strategy series for one machine."""
    out: dict[str, ExperimentSeries] = {}
    for strategy in STRATEGIES:
        series = ExperimentSeries(f"{machine_key}:{strategy}")
        for name in REPORTED:
            series.add(
                Comparison(
                    name,
                    baseline=npb_matrix[(machine_key, name, None)],
                    optimized=npb_matrix[(machine_key, name, strategy)],
                )
            )
        out[strategy] = series
    return out


# -- DAXPY (Figure 3) ---------------------------------------------------------

DAXPY_SCALE = 4
DAXPY_WORKING_SETS = ("128K", "512K", "2M")
DAXPY_THREADS = (1, 2, 4)
DAXPY_STRATEGIES = ("prefetch", "noprefetch", "prefetch.excl")


def _daxpy_steady_cycles(ws: str, n_threads: int, strategy: str) -> int:
    """Steady-state cycles for one Figure-3 bar (warmup subtracted)."""
    n = working_set_elems(ws, DAXPY_SCALE)
    reps = max(4, 16384 // n)
    plan = PrefetchPlan(excl=True) if strategy == "prefetch.excl" else AGGRESSIVE
    cycles = []
    for factor in (1, 2):
        machine = Machine(itanium2_smp(4, scale=DAXPY_SCALE))
        prog = build_daxpy(machine, n, n_threads, outer_reps=reps * factor, plan=plan)
        if strategy == "noprefetch":
            # the paper's noprefetch binary: same code, lfetch -> NOP
            for addr, slot in prog.image.find_ops(Op.LFETCH):
                prog.image.patch_slot(addr, slot, nop("M"), "static noprefetch")
        cycles.append(prog.run(max_bundles=MAX_BUNDLES).cycles)
    return cycles[1] - cycles[0]


@pytest.fixture(scope="session")
def daxpy_matrix():
    """(working set, threads, strategy) -> steady-state cycles."""
    results = {}
    for ws in DAXPY_WORKING_SETS:
        for t in DAXPY_THREADS:
            for strategy in DAXPY_STRATEGIES:
                results[(ws, t, strategy)] = _daxpy_steady_cycles(ws, t, strategy)
    return results
