"""Figure 7: system-bus memory transactions, normalized to baseline.

"Since L3 misses are directly translated into memory transactions on
the system bus, the number of memory transactions is highly correlated
with L3 misses.  Hence, Figure 7 is closely correlated to Figure 6"
(§5.2.3).  We assert exactly that correlation, plus the average
reduction under noprefetch.
"""

from __future__ import annotations

from conftest import emit, npb_series

from repro.analysis import format_series_table


def _check(series_by_strategy) -> None:
    np_series = series_by_strategy["noprefetch"]
    assert np_series.avg_normalized_bus() < 1.0
    # Fig. 7 correlates with Fig. 6: per benchmark the two normalized
    # metrics move together
    for comparison in np_series.comparisons:
        assert abs(comparison.normalized_bus - comparison.normalized_l3) < 0.15, (
            f"{comparison.name}: bus and L3 reductions should be correlated"
        )


def test_fig7a_smp_bus_transactions(benchmark, npb_matrix):
    series = benchmark.pedantic(
        lambda: npb_series(npb_matrix, "smp4"), rounds=1, iterations=1
    )
    emit()
    emit("Figure 7(a) — normalized bus memory transactions, 4 threads SMP")
    emit(format_series_table(series, "normalized_bus"))
    _check(series)


def test_fig7b_altix_bus_transactions(benchmark, npb_matrix):
    series = benchmark.pedantic(
        lambda: npb_series(npb_matrix, "altix8"), rounds=1, iterations=1
    )
    emit()
    emit("Figure 7(b) — normalized bus memory transactions, 8 threads Altix")
    emit(format_series_table(series, "normalized_bus"))
    _check(series)
