"""Figure 2: the icc-style assembly our compiler emits for DAXPY.

The paper shows the compiler-generated Itanium code: six prologue
``lfetch`` instructions covering the first cache lines of y, then a
software-pipelined loop with predicated loads, one rotating-register
``lfetch`` alternating between the x and y streams 9 lines ahead, the
fma, the predicated store, and ``br.ctop``.  We compile the same kernel
(with the icc prologue count) and check every structural property.
"""

from __future__ import annotations

from conftest import emit

from repro.compiler import AGGRESSIVE, PrefetchPlan, StreamLoop, Term
from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.isa import Op, disassemble
from repro.workloads import build_daxpy

ICC_PLAN = PrefetchPlan(prologue_per_stream=3)  # 3 x 2 streams = 6, as in Fig. 2


def _compile_daxpy():
    machine = Machine(itanium2_smp(4, scale=4))
    prog = build_daxpy(machine, 2048, 4, outer_reps=1, plan=ICC_PLAN)
    return prog


def test_fig2_daxpy_assembly(benchmark):
    prog = benchmark.pedantic(_compile_daxpy, rounds=1, iterations=1)
    image = prog.image
    region = image.regions["daxpy"]
    listing = disassemble(image, *region)
    emit()
    emit("Figure 2 — compiler-generated DAXPY kernel")
    emit(listing)

    # six prologue prefetches (Figure 2 shows lfetch for y[0]..y[0]+648)
    head = image.labels[".daxpy_loop"]
    prologue_lfetch = image.count_ops(Op.LFETCH, (region[0], head))
    assert prologue_lfetch == 6
    # exactly one rotating lfetch inside the software-pipelined loop
    loop_lfetch = image.find_ops(Op.LFETCH, (head, region[1]))
    assert len(loop_lfetch) == 1
    addr, slot = loop_lfetch[0]
    lf = image.fetch_bundle(addr).slots[slot]
    assert lf.hint == "nt1" and lf.qp == 16 and lf.r2 >= 32, (
        "the in-loop lfetch is predicated, nt1-hinted, rotating-addressed"
    )
    # the loop closes with br.ctop (modulo-scheduled), Figure 2's .b1_22
    assert image.count_ops(Op.BR_CTOP, region) == 1
    # the re-queue add advances by 16 bytes (two streams, Fig. 2's
    # "add r41=16,r43")
    requeues = [
        instr
        for a in range(head, region[1], 16)
        if a in image.bundles
        for instr in image.fetch_bundle(a).slots
        if instr.op is Op.ADDI and instr.qp == 16 and instr.r1 >= 32
    ]
    assert len(requeues) == 1 and requeues[0].imm == 16
    # predicated stages: load on p16, fma on p17, store on p18
    stages = {
        instr.op: instr.qp
        for a in range(head, region[1], 16)
        if a in image.bundles
        for instr in image.fetch_bundle(a).slots
        if instr.op in (Op.LDFD, Op.FMA, Op.STFD)
    }
    assert stages[Op.LDFD] == 16 and stages[Op.FMA] == 17 and stages[Op.STFD] == 18
