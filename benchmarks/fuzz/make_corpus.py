"""Regenerate ``benchmarks/fuzz/corpus.json``.

Scans generator seeds in order and keeps the first 50 whose scenarios
jointly cover every loop class in both *trace-tree* regimes the runtime
has — "tree-linked" meaning the adaptive axis chained at least one
compiled trace exit into another compiled trace (nested loops, epilogue
drains, early-exit tails promoted into the tree), "tree-free" meaning
every compiled trace always fell back to the interpreter at its exits.
``gather`` and ``histogram`` are exempt from the tree-free cell: their
shapes (CSR inner nests, bin-update early exits) are exactly the
tree-eligible ones and always chain, so that regime does not exist for
them.  With OSR entry the 3-back-edge hot threshold makes every
generated scenario JIT-eligible, so ``jit_eligible`` is recorded per
entry but no longer a coverage dimension.  Every kept entry must
already be divergence-free; the committed corpus is the frozen
regression baseline that tests/fuzz/test_corpus.py replays.

Usage::

    PYTHONPATH=src python benchmarks/fuzz/make_corpus.py
"""

from __future__ import annotations

import json
import os

from repro.fuzz.differ import run_scenario
from repro.fuzz.generator import LOOP_CLASSES, generate_params

TARGET = 50
OUT = os.path.join(os.path.dirname(__file__), "corpus.json")

#: loop classes whose generated shapes always chain compiled exits
ALWAYS_LINKED = ("gather", "histogram")


def main() -> None:
    entries = []
    covered: set[tuple[str, bool]] = set()
    wanted = {(cls, True) for cls in LOOP_CLASSES} | {
        (cls, False) for cls in LOOP_CLASSES if cls not in ALWAYS_LINKED
    }
    seed = 0
    while len(entries) < TARGET:
        params = generate_params(seed)
        result = run_scenario(params)
        if not result.ok:
            raise SystemExit(
                f"seed {seed} diverges; fix the framework before freezing a corpus"
            )
        cell = (params.loop_class, result.tree_links > 0)
        # prioritize unseen cells; afterwards take seeds in order
        if cell in wanted - covered or len(covered) == len(wanted):
            covered.add(cell)
            entries.append(
                {
                    "seed": params.seed,
                    "fault_seed": params.fault_seed,
                    "loop_class": params.loop_class,
                    "jit_eligible": result.compiles > 0,
                    "tree_linked": result.tree_links > 0,
                }
            )
        seed += 1
        if seed > 2000:
            raise SystemExit(f"coverage stalled; missing cells: {wanted - covered}")
    missing = wanted - covered
    if missing:
        raise SystemExit(f"corpus incomplete; missing cells: {missing}")
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump({"entries": entries}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {OUT}: {len(entries)} entries, {len(covered)} coverage cells")


if __name__ == "__main__":
    main()
