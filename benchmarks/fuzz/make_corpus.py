"""Regenerate ``benchmarks/fuzz/corpus.json``.

Scans generator seeds in order and keeps the first 50 whose scenarios
jointly cover every loop class in both JIT regimes — "JIT-eligible"
meaning the adaptive axis actually compiled at least one trace (the
scenario's per-phase trip counts crossed the 16 back-edge hot-loop
threshold), "JIT-ineligible" meaning it never did.  Every kept entry
must already be divergence-free; the committed corpus is the frozen
regression baseline that tests/fuzz/test_corpus.py replays.

Usage::

    PYTHONPATH=src python benchmarks/fuzz/make_corpus.py
"""

from __future__ import annotations

import json
import os

from repro.fuzz.differ import run_scenario
from repro.fuzz.generator import LOOP_CLASSES, generate_params

TARGET = 50
OUT = os.path.join(os.path.dirname(__file__), "corpus.json")


def main() -> None:
    entries = []
    covered: set[tuple[str, bool]] = set()
    wanted = {(cls, jit) for cls in LOOP_CLASSES for jit in (True, False)}
    seed = 0
    while len(entries) < TARGET:
        params = generate_params(seed)
        result = run_scenario(params)
        if not result.ok:
            raise SystemExit(
                f"seed {seed} diverges; fix the framework before freezing a corpus"
            )
        cell = (params.loop_class, result.compiles > 0)
        # prioritize unseen cells; afterwards take seeds in order
        if cell in wanted - covered or len(covered) == len(wanted):
            covered.add(cell)
            entries.append(
                {
                    "seed": params.seed,
                    "fault_seed": params.fault_seed,
                    "loop_class": params.loop_class,
                    "jit_eligible": result.compiles > 0,
                }
            )
        seed += 1
        if seed > 2000:
            raise SystemExit(f"coverage stalled; missing cells: {wanted - covered}")
    missing = wanted - covered
    if missing:
        raise SystemExit(f"corpus incomplete; missing cells: {missing}")
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump({"entries": entries}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {OUT}: {len(entries)} entries, {len(covered)} coverage cells")


if __name__ == "__main__":
    main()
