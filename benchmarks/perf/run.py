#!/usr/bin/env python
"""Standalone entry point for the hot-path perf harness.

Equivalent to ``python -m repro bench``; exists so the perf suite can be
run from a checkout without installing the package::

    python benchmarks/perf/run.py --quick --out BENCH_perf.json

See README.md in this directory for the report schema and how to compare
two builds.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
