"""§2's static alternatives vs COBRA's runtime adaptation.

The paper argues a static compiler *could* avoid prefetch-induced
coherent misses with conditional prefetches or multi-version code, but
doesn't, because both cost extra instructions and need accurate
profiles.  This bench quantifies the trade-off on DAXPY:

* at the cache-resident 128K working set, conditional prefetch
  recovers most of noprefetch's win (it nullifies the overshoot);
* at the streaming 2M working set, conditional prefetch keeps most of
  aggressive prefetching's win (unlike blanket noprefetch);
* both pay a per-iteration instruction tax that COBRA's profile-guided
  rewrite does not.
"""

from __future__ import annotations

from conftest import emit

from repro.compiler import AGGRESSIVE, PrefetchPlan
from repro.config import itanium2_smp
from repro.cpu import Machine
from repro.isa import Op
from repro.isa.instructions import nop
from repro.workloads import build_daxpy, working_set_elems

SCALE = 4
PLANS = {
    "prefetch": AGGRESSIVE,
    "noprefetch": None,  # lfetch -> NOP patches
    "conditional": PrefetchPlan(conditional=True),
    "multiversion": PrefetchPlan(multiversion=True),
}


def _steady(ws: str, threads: int, plan_name: str) -> int:
    n = working_set_elems(ws, SCALE)
    reps = max(4, 16384 // n)
    plan = PLANS[plan_name] or AGGRESSIVE
    cycles = []
    for factor in (1, 2):
        machine = Machine(itanium2_smp(4, scale=SCALE))
        prog = build_daxpy(machine, n, threads, outer_reps=reps * factor, plan=plan)
        if plan_name == "noprefetch":
            for addr, slot in prog.image.find_ops(Op.LFETCH):
                prog.image.patch_slot(addr, slot, nop("M"), "static noprefetch")
        cycles.append(prog.run(max_bundles=400_000_000).cycles)
    return cycles[1] - cycles[0]


def _experiment():
    out = {}
    for ws, threads in (("128K", 4), ("2M", 4)):
        for plan_name in PLANS:
            out[(ws, plan_name)] = _steady(ws, threads, plan_name)
    return out


def test_static_alternatives(benchmark):
    results = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    emit()
    emit("Static prefetch policies, DAXPY, 4 threads (steady-state cycles)")
    for ws in ("128K", "2M"):
        base = results[(ws, "prefetch")]
        row = "  ".join(
            f"{name}={results[(ws, name)]} ({base / results[(ws, name)]:.2f}x)"
            for name in PLANS
        )
        emit(f"  {ws}: {row}")

    # 128K: conditional recovers a meaningful share of noprefetch's win
    base, nopf = results[("128K", "prefetch")], results[("128K", "noprefetch")]
    cond = results[("128K", "conditional")]
    assert nopf < base, "sanity: noprefetch wins at 128K/4T"
    assert cond < base, "conditional prefetch must also beat aggressive here"
    # 2M: conditional must NOT collapse to noprefetch's loss
    base2, nopf2 = results[("2M", "prefetch")], results[("2M", "noprefetch")]
    cond2 = results[("2M", "conditional")]
    assert nopf2 > base2 * 1.5, "sanity: noprefetch loses at 2M"
    assert cond2 < nopf2 * 0.75, "conditional keeps most of the prefetch benefit"
    # multiversion behaves like prefetch at 2M (large chunks)
    mv2 = results[("2M", "multiversion")]
    assert mv2 < nopf2 * 0.75
