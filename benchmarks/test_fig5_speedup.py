"""Figure 5: speedup of COBRA's optimizations on the NPB suite.

(a) 4 threads on the 4-way SMP server; (b) 8 threads on the SGI Altix
cc-NUMA machine.  Bars are speedup over the icc ``prefetch`` baseline;
the paper reports noprefetch up to 15 % (avg 4.7 %) on SMP and up to
68 % (avg 17.5 %) on the Altix, with prefetch.excl behind noprefetch on
both (avg 2.7 % / 8.5 %).

Shape assertions (absolute magnitudes are not expected to match — our
substrate is a simulator, DESIGN.md §1):

* noprefetch achieves a clear win on several benchmarks and on average
  does not lose;
* noprefetch beats prefetch.excl on average on both machines;
* the best noprefetch win is substantial (>10 %).
"""

from __future__ import annotations

from conftest import emit, npb_series

from repro.analysis import format_series_table

PAPER_SMP = {"avg": "1.047 (np) / 1.027 (excl)"}
PAPER_ALTIX = {"avg": "1.175 (np) / 1.085 (excl)"}


def test_fig5a_smp_speedup(benchmark, npb_matrix):
    series = benchmark.pedantic(
        lambda: npb_series(npb_matrix, "smp4"), rounds=1, iterations=1
    )
    emit()
    emit("Figure 5(a) — speedup over prefetch baseline, 4 threads SMP")
    emit(format_series_table(series, "speedup", PAPER_SMP))

    np_series = series["noprefetch"]
    excl_series = series["excl"]
    assert np_series.avg_speedup() > 0.99, "noprefetch must not lose on average"
    assert np_series.max_speedup() > 1.10, "some benchmark must win substantially"
    assert np_series.avg_speedup() > excl_series.avg_speedup(), (
        "noprefetch outperforms prefetch.excl on average (paper §5.2.1)"
    )


def test_fig5b_altix_speedup(benchmark, npb_matrix):
    series = benchmark.pedantic(
        lambda: npb_series(npb_matrix, "altix8"), rounds=1, iterations=1
    )
    emit()
    emit("Figure 5(b) — speedup over prefetch baseline, 8 threads Altix cc-NUMA")
    emit(format_series_table(series, "speedup", PAPER_ALTIX))

    np_series = series["noprefetch"]
    excl_series = series["excl"]
    assert np_series.avg_speedup() > 0.99
    assert np_series.max_speedup() > 1.05
    assert np_series.avg_speedup() > excl_series.avg_speedup()
