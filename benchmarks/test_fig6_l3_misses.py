"""Figure 6: number of L3 misses, normalized to the prefetch baseline.

"When coherent memory accesses are a significant portion of L3 cache
misses, reducing L3 misses substantially indicates that we have reduced
unnecessary coherent misses" (§5.2.2).  The paper reports reductions up
to ~30-40 % (SP, CG on SMP; BT, SP, CG ~20 % on the Altix).

Shape assertions: noprefetch reduces average L3 misses on both
machines, and at least one benchmark shows a substantial (>15 %)
reduction.
"""

from __future__ import annotations

from conftest import emit, npb_series

from repro.analysis import format_series_table


def _check(series_by_strategy) -> None:
    np_series = series_by_strategy["noprefetch"]
    assert np_series.avg_normalized_l3() < 1.0, "noprefetch must cut L3 misses"
    best = min(c.normalized_l3 for c in np_series.comparisons)
    assert best < 0.85, "at least one benchmark shows a substantial reduction"


def test_fig6a_smp_l3_misses(benchmark, npb_matrix):
    series = benchmark.pedantic(
        lambda: npb_series(npb_matrix, "smp4"), rounds=1, iterations=1
    )
    emit()
    emit("Figure 6(a) — normalized L3 misses, 4 threads SMP (1.0 = prefetch)")
    emit(format_series_table(series, "normalized_l3"))
    _check(series)


def test_fig6b_altix_l3_misses(benchmark, npb_matrix):
    series = benchmark.pedantic(
        lambda: npb_series(npb_matrix, "altix8"), rounds=1, iterations=1
    )
    emit()
    emit("Figure 6(b) — normalized L3 misses, 8 threads Altix (1.0 = prefetch)")
    emit(format_series_table(series, "normalized_l3"))
    _check(series)
