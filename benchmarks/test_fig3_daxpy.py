"""Figure 3: DAXPY under the three prefetch strategies.

(a) prefetch vs noprefetch and (b) prefetch vs prefetch.excl, over the
paper's three working-set classes and 1/2/4 threads on the 4-way SMP
server.  Bars are steady-state execution time normalized to the
1-thread prefetch run of each working set (warm-up subtracted, because
the paper's million-iteration outer loop amortizes it away).

Shape expectations from the paper:

* 128K, 1 thread — no difference between the three strategies;
* 128K, 2/4 threads — noprefetch ~1.35x/~1.5x faster; excl faster too
  but less so (paper: 18 %/14 %);
* 512K, 4 threads — excl ~7 % faster than prefetch;
* 2M — prefetch wins big over noprefetch (streaming), excl no longer
  helps (the paper reports an excl slowdown from extra write-backs).
"""

from __future__ import annotations

from conftest import emit, DAXPY_STRATEGIES, DAXPY_THREADS, DAXPY_WORKING_SETS

from repro.analysis import format_fig3_table


def test_fig3_daxpy_strategies(benchmark, daxpy_matrix):
    results = benchmark.pedantic(lambda: daxpy_matrix, rounds=1, iterations=1)
    emit()
    emit("Figure 3 — OpenMP DAXPY on the 4-way SMP server")
    emit(
        format_fig3_table(
            results,
            list(DAXPY_WORKING_SETS),
            list(DAXPY_THREADS),
            list(DAXPY_STRATEGIES),
        )
    )

    def ratio(ws, t, strategy):  # prefetch time / strategy time
        return results[(ws, t, "prefetch")] / results[(ws, t, strategy)]

    # 128K, 1 thread: all three equivalent (paper: "no much difference")
    assert abs(ratio("128K", 1, "noprefetch") - 1.0) < 0.05
    assert abs(ratio("128K", 1, "prefetch.excl") - 1.0) < 0.05
    # 128K, multithreaded: noprefetch wins clearly (paper 1.35x / 1.52x)
    assert ratio("128K", 2, "noprefetch") > 1.15
    assert ratio("128K", 4, "noprefetch") > 1.3
    # 128K, multithreaded: excl wins, but less than noprefetch
    assert ratio("128K", 2, "prefetch.excl") > 1.05
    assert ratio("128K", 4, "prefetch.excl") > 1.05
    assert ratio("128K", 4, "noprefetch") > ratio("128K", 4, "prefetch.excl")
    # 512K, 4 threads: excl still ahead (paper ~7 %)
    assert ratio("512K", 4, "prefetch.excl") > 1.0
    # 2M: prefetching is essential — noprefetch loses badly
    assert ratio("2M", 1, "noprefetch") < 0.8
    assert ratio("2M", 4, "noprefetch") < 0.8
    # 2M: excl has lost its edge (paper reports a slowdown)
    assert ratio("2M", 4, "prefetch.excl") < 1.1
