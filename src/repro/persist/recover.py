"""Crash recovery: newest valid snapshot + journal-tail replay.

Recovery never fails on damaged state — that is its whole job.  The
procedure:

1. load the newest snapshot whose digest verifies, falling back past
   corrupt or too-new ones (and noting stray ``.tmp`` files left by a
   writer that died before its rename);
2. scan the journal's longest valid record prefix and replay every
   record newer than the snapshot's sequence point: ``window`` records
   replace the control-plane state wholesale (last-wins — each carries
   the full state at one optimizer wake), ``txn`` records apply
   deploy/rollback deltas, ``decision`` records append to the event
   history, ``meta`` records carry the workload descriptor;
3. report the repair point: the journal is truncated back to its valid
   prefix before the next session appends (otherwise replay would stop
   at the old tear forever and silently drop every later record).

Everything discarded — torn tail, corrupt snapshot, stray temp — is
returned as structured notes so the caller can account each one in the
fault ledger.  The recovery-equivalence harness turns "accounted" into
a hard invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .journal import JOURNAL_NAME, Disk, scan_journal
from .snapshot import SnapshotStore

__all__ = ["RecoveredState", "recover", "repair", "empty_state"]


def empty_state() -> dict:
    """Control-plane state of a run that has not completed a wake yet."""
    return {
        "profiler": None,
        "cpi_history": [],
        "blacklist": [],
        "mode": "normal",
        "fault_strikes": 0,
        "events": [],
        "deployments": [],
        "samples_per_cpu": {},
    }


@dataclass
class RecoveredState:
    """Everything recovery could reconstruct from a checkpoint store."""

    #: rebuilt control-plane state, or ``None`` when the store held no
    #: usable state at all (fresh directory, or everything corrupt)
    state: dict | None
    #: last workload descriptor written by a session (``repro resume``
    #: rebuilds the program from this)
    meta: dict | None
    #: sequence the next journal record must carry
    next_seq: int
    #: version of the snapshot the state was based on (-1 = none)
    snapshot_version: int
    #: version the next snapshot write must use (monotonic across
    #: sessions, past corrupt files too)
    next_snapshot_version: int
    #: journal records applied on top of the snapshot
    replayed: int
    #: torn/corrupt journal regions, one note each
    discarded: list[str] = field(default_factory=list)
    #: snapshot files that failed digest/format verification
    corrupt_snapshots: list[str] = field(default_factory=list)
    #: temp files from atomic writes that never renamed
    stray_tmp: list[str] = field(default_factory=list)
    #: byte length to truncate the journal to (``None`` = no tear)
    repair_length: int | None = None


def _apply_txn(state: dict, record: dict) -> None:
    deployments: list[dict] = state.setdefault("deployments", [])
    head = int(record.get("head", -1))
    if record.get("op") == "deploy":
        deployments[:] = [d for d in deployments if int(d["head"]) != head]
        deployments.append(
            {
                "head": head,
                "back_branch": int(record.get("back_branch", 0)),
                "hotness": int(record.get("hotness", 0)),
                "optimization": str(record.get("optimization", "")),
                "n_rewrites": int(record.get("n_rewrites", 0)),
            }
        )
    else:  # rollback
        deployments[:] = [d for d in deployments if int(d["head"]) != head]


def recover(disk: Disk) -> RecoveredState:
    """Rebuild the newest consistent control-plane state on ``disk``."""
    store = SnapshotStore(disk)
    load = store.load_newest()
    versions = store.versions()
    next_version = (versions[-1] + 1) if versions else 0

    state: dict | None = None
    meta: dict | None = None
    base_seq = -1
    if load.payload is not None:
        state = load.payload.get("state")
        meta = load.payload.get("meta")
        base_seq = int(load.payload.get("journal_seq", -1))

    data = disk.read(JOURNAL_NAME) if disk.exists(JOURNAL_NAME) else b""
    records, valid_len, discarded = scan_journal(data)

    replayed = 0
    last_seq = base_seq
    for record in records:
        seq = int(record.get("seq", -1))
        last_seq = max(last_seq, seq)
        kind = record.get("t")
        if kind == "meta":
            # the descriptor is session-scoped, not state: always track
            # the newest one, even from records the snapshot subsumes
            meta = record.get("meta", meta)
            continue
        if seq <= base_seq:
            continue  # already folded into the snapshot
        replayed += 1
        if kind == "window":
            state = record.get("state", state)
        elif kind == "txn":
            if state is None:
                state = empty_state()
            _apply_txn(state, record)
        elif kind == "decision":
            if state is None:
                state = empty_state()
            state.setdefault("events", []).append(record.get("event"))
        # unknown kinds: forward compatibility, skip silently

    return RecoveredState(
        state=state,
        meta=meta,
        next_seq=last_seq + 1,
        snapshot_version=load.version,
        next_snapshot_version=next_version,
        replayed=replayed,
        discarded=discarded,
        corrupt_snapshots=list(load.corrupt),
        stray_tmp=list(load.stray_tmp),
        repair_length=valid_len if valid_len < len(data) else None,
    )


def repair(disk: Disk, recovered: RecoveredState) -> None:
    """Make the store append-safe again after a torn crash.

    Truncates the journal back to its valid prefix (appending after a
    tear would strand every later record behind the bad region) and
    removes stray snapshot temps.  Idempotent; a no-op on clean stores.
    """
    if recovered.repair_length is not None:
        disk.truncate(JOURNAL_NAME, recovered.repair_length)
    for name in recovered.stray_tmp:
        disk.delete(name)
