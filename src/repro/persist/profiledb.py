"""Cross-run profile database (BOLT-style profile reuse).

Every completed COBRA run knows things the *next* run of the same
binary will spend its whole cold ramp rediscovering: which loops are
hot, how much coherent traffic they generate, which rewrites proved out
and which were rolled back.  The profile database makes that knowledge
durable and shares it **across runs and machine configs**:

* entries are keyed by ``profile_key(image, machine_config, strategy)``
  — a digest of the binary image's canonical instruction stream
  combined with a machine descriptor (name, CPU count, node count,
  capacity scale) and the COBRA strategy.  A recompiled binary, a
  different machine, or a different strategy never reuses a foreign
  profile;
* an entry accumulates the profiler aggregates (miss profile, BTB
  pairs, bus/coherent deltas), steady-state CPI statistics, and
  per-loop proven/rolled-back decision counts.  :func:`merge_entries`
  is pure, commutative, and associative — entries recorded by any
  number of runs in any order merge to the same bytes;
* the store is one snapshot-codec file (CRC/sha-guarded, version-gated
  like every other ``repro.persist`` artifact) on an injectable
  :class:`~repro.persist.journal.Disk`.  Damage of any kind — bad
  magic, digest mismatch, a format version that postdates this reader,
  a non-object payload — makes the database load as *empty*, never
  crash: a profile DB is a pure accelerator, and the worst a corrupt
  one may do is cost the cold ramp again.

Determinism contract: with the database absent, freshly created, or
corrupt, a run's outputs and counters are bit-identical to a run with
no database at all (loading happens before the first instruction,
recording after the last).  A warm hit changes only *when* proven
optimizations deploy (immediately instead of after the profiling
ramp), never what the program computes.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

from ..isa.binary import BinaryImage
from .journal import Disk, FileDisk
from .snapshot import decode_snapshot, encode_snapshot

__all__ = [
    "PROFILEDB_NAME",
    "PROFILEDB_FORMAT",
    "ProfileDB",
    "ProfileDBStats",
    "image_digest",
    "machine_descriptor",
    "profile_key",
    "merge_entries",
    "empty_entry",
]

#: Default file name inside the backing disk.
PROFILEDB_NAME = "profile.db"

#: Inner payload format version.  The outer snapshot codec already
#: gates its own layout; this gates the *entry schema*.  Readers treat
#: a payload whose format postdates this as absent (never mid-restore
#: crashes on fields they cannot interpret).
PROFILEDB_FORMAT = 1


# -- keying -------------------------------------------------------------------


def image_digest(image: BinaryImage) -> str:
    """Canonical digest of a binary image's instruction stream.

    Covers the base address and, per bundle in address order, the
    template and every instruction field — two images digest equal iff
    they decode identically, independent of patch history or the dict
    order bundles were inserted in.
    """
    h = hashlib.sha256()
    h.update(f"base={image.base:#x}".encode())
    for addr, bundle in image.iter_bundles():
        h.update(f"\n{addr:#x}:{bundle.template or '-'}".encode())
        for instr in bundle.slots:
            fields = "|".join(str(getattr(instr, s)) for s in instr.__slots__)
            h.update(f";{fields}".encode())
    return h.hexdigest()


def machine_descriptor(config) -> str:
    """Stable descriptor of the platform a profile was collected on."""
    return (
        f"{config.name}:cpus={config.n_cpus}"
        f":nodes={config.n_nodes}:scale={config.scale}"
    )


def profile_key(image: BinaryImage, machine_config, strategy: str) -> str:
    """Database key: binary identity x machine descriptor x strategy."""
    return f"{image_digest(image)[:16]}/{machine_descriptor(machine_config)}/{strategy}"


# -- entries ------------------------------------------------------------------


def empty_entry() -> dict:
    """A zero entry (the merge identity)."""
    return {
        "runs": 0,
        "profiler": None,
        "cpi_total": 0.0,
        "cpi_count": 0,
        "decisions": {},
        "flips": 0,
        "jit_trees": [],
    }


def _merge_profilers(a: dict | None, b: dict | None) -> dict | None:
    if a is None:
        return b
    if b is None:
        return a
    by_pc: dict[str, dict] = {}
    for prof in (a, b):
        for pc, s in prof["misses"]["by_pc"].items():
            cur = by_pc.get(pc)
            if cur is None:
                by_pc[pc] = {
                    "samples": s["samples"],
                    "coherent": s["coherent"],
                    "total_latency": s["total_latency"],
                    "lines": sorted(s["lines"]),
                    "threads": sorted(s["threads"]),
                }
            else:
                cur["samples"] += s["samples"]
                cur["coherent"] += s["coherent"]
                cur["total_latency"] += s["total_latency"]
                cur["lines"] = sorted(set(cur["lines"]) | set(s["lines"]))
                cur["threads"] = sorted(set(cur["threads"]) | set(s["threads"]))
    btb: dict[tuple[int, int], int] = {}
    for prof in (a, b):
        for branch, target, count in prof["btb"]:
            btb[(branch, target)] = btb.get((branch, target), 0) + count
    return {
        "misses": {
            "by_pc": {pc: by_pc[pc] for pc in sorted(by_pc, key=int)},
            "total_events": a["misses"]["total_events"] + b["misses"]["total_events"],
            "total_coherent": (
                a["misses"]["total_coherent"] + b["misses"]["total_coherent"]
            ),
        },
        "btb": [[bt[0], bt[1], c] for bt, c in sorted(btb.items())],
        "samples_seen": a["samples_seen"] + b["samples_seen"],
        # quarantine counters are per-session noise, not profile signal;
        # a seeded run must start with a clean quarantine ledger
        "quarantined": {},
        "quarantined_total": 0,
        "bus_delta": a["bus_delta"] + b["bus_delta"],
        "coherent_delta": a["coherent_delta"] + b["coherent_delta"],
    }


def _canon_decision(rec: dict) -> dict:
    # rebuild in fixed field order: merged output must be byte-canonical
    # regardless of the key order either input happened to carry
    return {
        "proven": rec["proven"],
        "rolled_back": rec["rolled_back"],
        "back_branch": rec["back_branch"],
        "hotness": rec["hotness"],
    }


def _merge_decisions(a: dict, b: dict) -> dict:
    out: dict[str, dict] = {}
    for decisions in (a, b):
        for head, opts in decisions.items():
            slot = out.setdefault(head, {})
            for optimization, rec in opts.items():
                cur = slot.get(optimization)
                if cur is None:
                    slot[optimization] = _canon_decision(rec)
                else:
                    cur["proven"] = cur["proven"] + rec["proven"]
                    cur["rolled_back"] = cur["rolled_back"] + rec["rolled_back"]
                    cur["back_branch"] = max(cur["back_branch"], rec["back_branch"])
                    cur["hotness"] = max(cur["hotness"], rec["hotness"])
    return {
        head: {opt: out[head][opt] for opt in sorted(out[head])}
        for head in sorted(out, key=int)
    }


def _merge_trees(a, b) -> list:
    # canonical sorted union of [root, head, kind, sor] shapes; shapes
    # may arrive as lists (JSON round-trip) or tuples (fresh export) —
    # normalize so merged output is byte-canonical either way
    shapes = {
        tuple(shape)
        for trees in (a, b)
        if isinstance(trees, (list, tuple))
        for shape in trees
        if isinstance(shape, (list, tuple)) and len(shape) == 4
    }
    return sorted(list(shape) for shape in shapes)


def merge_entries(a: dict, b: dict) -> dict:
    """Merge two entries for the same key.

    Pure and commutative/associative: counts and deltas add, line/thread
    sets union, decision evidence adds per ``(loop, optimization)`` —
    so N runs folding into the database produce the same entry in any
    order, and two databases merged either way agree byte-for-byte.
    """
    return {
        "runs": a["runs"] + b["runs"],
        "profiler": _merge_profilers(a.get("profiler"), b.get("profiler")),
        "cpi_total": a["cpi_total"] + b["cpi_total"],
        "cpi_count": a["cpi_count"] + b["cpi_count"],
        "decisions": _merge_decisions(a["decisions"], b["decisions"]),
        "flips": a["flips"] + b["flips"],
        # additive schema field: entries written before trace-tree
        # persistence merge as having no shapes
        "jit_trees": _merge_trees(a.get("jit_trees"), b.get("jit_trees")),
    }


# -- the store ----------------------------------------------------------------


@dataclass
class ProfileDBStats:
    """What loading/saving the database observed."""

    #: the backing file existed at load time
    present: bool = False
    #: the file existed but failed the codec or schema checks
    corrupt: bool = False
    #: the payload's format version postdates this reader
    future_format: bool = False
    #: entries available after load
    entries: int = 0
    #: run records folded in by this process
    runs_recorded: int = 0
    #: the store was (re)written at close
    saved: bool = False


class ProfileDB:
    """One profile database file on an injectable disk."""

    def __init__(
        self,
        disk: Disk,
        name: str = PROFILEDB_NAME,
        *,
        seed: bool = True,
        record: bool = True,
    ) -> None:
        self.disk = disk
        self.name = name
        self.seed = seed
        self.record = record
        self.entries: dict[str, dict] = {}
        self.stats = ProfileDBStats()

    @classmethod
    def from_config(cls, config) -> "ProfileDB":
        """Build from a :class:`~repro.config.ProfileDBConfig`."""
        if config.disk is not None:
            return cls(config.disk, seed=config.seed, record=config.record)
        directory, name = os.path.split(config.path)
        return cls(
            FileDisk(directory or "."),
            name=name or PROFILEDB_NAME,
            seed=config.seed,
            record=config.record,
        )

    def load(self) -> None:
        """Read the store; any damage loads as empty, never raises."""
        self.entries = {}
        if not self.disk.exists(self.name):
            return
        self.stats.present = True
        try:
            payload = decode_snapshot(bytes(self.disk.read(self.name)))
        except ValueError:
            self.stats.corrupt = True
            return
        fmt = payload.get("format")
        if not isinstance(fmt, int):
            self.stats.corrupt = True
            return
        if fmt > PROFILEDB_FORMAT:
            # written by a newer build: refuse up front instead of
            # crashing mid-restore on semantics this reader predates
            self.stats.future_format = True
            return
        entries = payload.get("entries")
        if not isinstance(entries, dict) or not all(
            isinstance(e, dict) for e in entries.values()
        ):
            self.stats.corrupt = True
            return
        self.entries = entries
        self.stats.entries = len(entries)

    def entry(self, key: str) -> dict | None:
        return self.entries.get(key)

    def discard(self, key: str) -> None:
        """Drop one entry (e.g. it failed structural validation)."""
        self.entries.pop(key, None)

    def record_run(self, key: str, entry: dict) -> None:
        """Fold one completed run's entry into the database."""
        existing = self.entries.get(key)
        self.entries[key] = (
            entry if existing is None else merge_entries(existing, entry)
        )
        self.stats.runs_recorded += 1

    def compact(self, max_entries: int) -> int:
        """Drop the coldest entries until at most ``max_entries`` remain.

        Coldness is accumulated run count (``runs``), tie-broken by key
        — a pure function of store content, so any two replicas compact
        to the same surviving set.  Returns the number dropped.
        """
        if len(self.entries) <= max_entries:
            return 0
        order = sorted(
            self.entries, key=lambda k: (self.entries[k].get("runs", 0), k)
        )
        victims = order[: len(self.entries) - max_entries]
        for key in victims:
            del self.entries[key]
        self.stats.entries = len(self.entries)
        return len(victims)

    def save(self) -> None:
        """Write the store atomically (temp + rename via the disk)."""
        payload = {"format": PROFILEDB_FORMAT, "entries": self.entries}
        self.disk.write_atomic(self.name, encode_snapshot(payload))
        self.stats.saved = True
        self.stats.entries = len(self.entries)
