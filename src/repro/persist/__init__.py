"""Crash-consistent durability for the COBRA control plane.

A write-ahead journal (append-only, per-record CRC, fsync'd through an
injectable disk) plus periodic checksummed snapshots give every COBRA
run a recoverable record of its profiles, deployments, and decisions.
Recovery loads the newest valid snapshot, replays the journal tail,
and a warm-restarted run re-deploys its proven optimizations without
the cold profiling ramp — see DESIGN.md for the on-disk format and the
recovery-equivalence guarantee.
"""

from .journal import (
    JOURNAL_NAME,
    RECORD_MAGIC,
    Disk,
    FileDisk,
    JournalWriter,
    MemoryDisk,
    encode_record,
    scan_journal,
)
from .manager import PersistenceManager, PersistStats
from .profiledb import (
    PROFILEDB_FORMAT,
    PROFILEDB_NAME,
    ProfileDB,
    ProfileDBStats,
    image_digest,
    machine_descriptor,
    merge_entries,
    profile_key,
)
from .recover import RecoveredState, empty_state, recover, repair
from .snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_MAGIC,
    SnapshotStore,
    decode_snapshot,
    encode_snapshot,
)

__all__ = [
    "JOURNAL_NAME",
    "RECORD_MAGIC",
    "Disk",
    "FileDisk",
    "MemoryDisk",
    "JournalWriter",
    "encode_record",
    "scan_journal",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_MAGIC",
    "SnapshotStore",
    "encode_snapshot",
    "decode_snapshot",
    "RecoveredState",
    "empty_state",
    "recover",
    "repair",
    "PersistenceManager",
    "PersistStats",
    "PROFILEDB_FORMAT",
    "PROFILEDB_NAME",
    "ProfileDB",
    "ProfileDBStats",
    "image_digest",
    "machine_descriptor",
    "merge_entries",
    "profile_key",
]
