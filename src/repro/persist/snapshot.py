"""Checksummed, versioned control-plane snapshots.

A snapshot compacts the journal: it captures the full recoverable
state (profiler aggregates, trace-cache deployments, optimizer
history) at a journal sequence point so recovery replays only the
tail.  Snapshots are written via write-temp-then-atomic-rename, so a
crash mid-write leaves either the previous snapshot intact plus a
stray ``.tmp``, or the new one — never a half-visible file under the
real name.

On-disk layout of ``snap-%08d.ckpt``::

    magic:b"CSNP"  format:u16  reserved:u16  payload_len:u32
    sha256:32 bytes  payload bytes

The digest covers header + payload, so corruption anywhere in the
file (including a tampered format version or length) is detected and
recovery falls back to the next-older snapshot.  ``format`` is the
forward-compatibility gate: readers refuse versions newer than
:data:`SNAPSHOT_FORMAT` (they cannot know the semantics) and fall
back, while older-but-supported versions decode normally.  Payloads
are canonical JSON; unknown keys are ignored on load.
"""

from __future__ import annotations

import hashlib
import json
import re
import struct
from dataclasses import dataclass, field

from .journal import Disk

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_MAGIC",
    "SnapshotStore",
    "encode_snapshot",
    "decode_snapshot",
]

SNAPSHOT_MAGIC = b"CSNP"
#: Current snapshot format version.  Bump on incompatible layout change.
SNAPSHOT_FORMAT = 1

_HEAD = struct.Struct("<4sHHI")   # magic, format, reserved, payload_len
_DIGEST_BYTES = 32

_SNAP_RE = re.compile(r"^snap-(\d{8})\.ckpt$")


def encode_snapshot(payload: dict, fmt: int = SNAPSHOT_FORMAT) -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    head = _HEAD.pack(SNAPSHOT_MAGIC, fmt, 0, len(body))
    digest = hashlib.sha256(head + body).digest()
    return head + digest + body


def decode_snapshot(data: bytes) -> dict:
    """Decode one snapshot blob; raise ``ValueError`` on any damage.

    Callers (the store, recovery) treat a ``ValueError`` as "fall back
    to an older snapshot", never as fatal.
    """
    if len(data) < _HEAD.size + _DIGEST_BYTES:
        raise ValueError("snapshot shorter than header")
    magic, fmt, _reserved, length = _HEAD.unpack_from(data, 0)
    if magic != SNAPSHOT_MAGIC:
        raise ValueError(f"bad snapshot magic {magic!r}")
    digest = data[_HEAD.size : _HEAD.size + _DIGEST_BYTES]
    body = data[_HEAD.size + _DIGEST_BYTES :]
    if len(body) != length:
        raise ValueError(f"snapshot payload length {len(body)} != header {length}")
    want = hashlib.sha256(data[: _HEAD.size] + body).digest()
    if digest != want:
        raise ValueError("snapshot digest mismatch")
    if fmt > SNAPSHOT_FORMAT:
        # digest is fine but the layout postdates this reader; a newer
        # build wrote it — treat like corruption and fall back
        raise ValueError(f"snapshot format {fmt} newer than supported {SNAPSHOT_FORMAT}")
    payload = json.loads(body.decode())
    if not isinstance(payload, dict):
        raise ValueError("snapshot payload is not an object")
    return payload


@dataclass
class SnapshotLoad:
    """Result of :meth:`SnapshotStore.load_newest`."""

    payload: dict | None
    version: int
    #: snapshot files that failed verification, oldest-first
    corrupt: list[str] = field(default_factory=list)
    #: stray temp files from writes that died before their rename
    stray_tmp: list[str] = field(default_factory=list)


class SnapshotStore:
    """Versioned snapshot files on a :class:`Disk`."""

    def __init__(self, disk: Disk) -> None:
        self.disk = disk

    @staticmethod
    def name_for(version: int) -> str:
        return f"snap-{version:08d}.ckpt"

    def versions(self) -> list[int]:
        """All snapshot versions present, ascending."""
        out = []
        for name in self.disk.listdir():
            m = _SNAP_RE.match(name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def write(self, version: int, payload: dict) -> None:
        self.disk.write_atomic(self.name_for(version), encode_snapshot(payload))

    def load_newest(self) -> SnapshotLoad:
        """Newest snapshot that verifies, falling back past corrupt ones."""
        stray = [n for n in self.disk.listdir() if n.endswith(".tmp")]
        corrupt: list[str] = []
        for version in reversed(self.versions()):
            name = self.name_for(version)
            try:
                payload = decode_snapshot(self.disk.read(name))
            except ValueError:
                corrupt.append(name)
                continue
            corrupt.reverse()
            return SnapshotLoad(payload, version, corrupt, stray)
        corrupt.reverse()
        return SnapshotLoad(None, -1, corrupt, stray)

    def prune(self, keep: int = 2) -> int:
        """Delete all but the newest ``keep`` snapshots; return count removed."""
        versions = self.versions()
        removed = 0
        for version in versions[:-keep] if keep else versions:
            self.disk.delete(self.name_for(version))
            removed += 1
        return removed
