"""Persistence manager: the one object the COBRA runtime talks to.

Owns the journal writer and snapshot store over one disk, performs
recovery + repair when a session opens, and exposes the three logging
hooks the control plane calls (window merges, trace-cache transactions,
optimizer decisions).  Every durable write first passes the fault
injector's crash gate, so the crash sweep can kill the "process" at any
journal/snapshot boundary — including mid-write, leaving a torn record
or a stray snapshot temp for the next recovery to account.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..config import PersistConfig
from ..errors import SimulatedCrash
from .journal import JOURNAL_NAME, Disk, FileDisk, JournalWriter
from .recover import RecoveredState, recover, repair
from .snapshot import SnapshotStore

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector

__all__ = ["PersistenceManager", "PersistStats"]


@dataclass
class PersistStats:
    """Durability counters surfaced on :class:`~repro.core.framework.CobraReport`."""

    records_written: int = 0
    records_replayed: int = 0
    records_discarded: int = 0
    snapshots_written: int = 0
    snapshots_discarded: int = 0
    tmp_cleaned: int = 0
    journal_repaired_bytes: int = 0
    resumed: bool = False


class PersistenceManager:
    """Journals and snapshots the COBRA control plane on one disk."""

    def __init__(self, config: PersistConfig, faults: "FaultInjector | None" = None) -> None:
        self.config = config
        self.disk: Disk = config.disk if config.disk is not None else FileDisk(config.directory)
        self.faults = faults
        self.store = SnapshotStore(self.disk)
        self.stats = PersistStats()
        self.journal: JournalWriter | None = None
        self._meta = dict(config.meta) if config.meta is not None else None
        self._last_state: dict | None = None
        self._next_snapshot_version = 0
        self._windows_since_snapshot = 0

    # -- session open -------------------------------------------------------

    def open(self) -> RecoveredState:
        """Recover + repair the store; arm the journal for appending."""
        if not self.config.resume:
            # explicit fresh start: the operator asked to discard the
            # previous state rather than resume it
            for name in self.disk.listdir():
                self.disk.delete(name)
        recovered = recover(self.disk)
        repair(self.disk, recovered)

        stats = self.stats
        stats.records_replayed = recovered.replayed
        stats.records_discarded = len(recovered.discarded)
        stats.snapshots_discarded = len(recovered.corrupt_snapshots)
        stats.tmp_cleaned = len(recovered.stray_tmp)
        stats.resumed = recovered.state is not None
        if recovered.repair_length is not None:
            stats.journal_repaired_bytes = recovered.repair_length

        if self.faults is not None:
            # every byte recovery refused to trust becomes a ledger
            # entry: the equivalence harness requires each torn record,
            # corrupt snapshot, and stray temp to be accounted
            for note in recovered.discarded:
                self.faults.observe("torn_journal_record", "persist", note)
            for name in recovered.corrupt_snapshots:
                self.faults.observe("corrupt_snapshot", "persist", f"{name} failed verification")
            for name in recovered.stray_tmp:
                self.faults.observe("stray_snapshot_tmp", "persist", f"{name} removed")

        self.journal = JournalWriter(self.disk, next_seq=recovered.next_seq, gate=self._gate)
        self._next_snapshot_version = recovered.next_snapshot_version
        self._last_state = recovered.state
        if self._meta is None:
            self._meta = recovered.meta
        if self._meta is not None:
            self._append("meta", {"meta": self._meta})
        return recovered

    # -- crash gate ---------------------------------------------------------

    def _gate(self, name: str, data: bytes, mode: str) -> None:
        """Maybe kill the run at this durable-write boundary."""
        if self.faults is None:
            return
        crash, torn = self.faults.crash_gate()
        if not crash:
            return
        if torn is not None:
            prefix = data[: min(torn, len(data))]
            if mode == "append":
                # the tail of the journal gets a partial record
                self.disk.append(name, prefix)
            else:
                # snapshot writer died before its rename: torn temp only
                self.disk.write(name + ".tmp", prefix)
        self.disk.kill()
        raise SimulatedCrash(
            f"crash injected at persistence write "
            f"#{self.faults.durable_writes} ({name})"
        )

    def _append(self, kind: str, payload: dict) -> None:
        assert self.journal is not None, "open() must run before logging"
        self.journal.append(kind, payload)
        self.stats.records_written += 1

    # -- logging hooks ------------------------------------------------------

    def log_window(self, state: dict) -> None:
        """One optimizer wake completed: journal the full control state."""
        self._last_state = state
        self._append("window", {"state": state})
        self._windows_since_snapshot += 1
        if self._windows_since_snapshot >= self.config.snapshot_interval:
            self.snapshot_now()

    def log_txn(
        self,
        op: str,
        head: int,
        back_branch: int,
        hotness: int,
        optimization: str,
        n_rewrites: int,
    ) -> None:
        """A trace-cache deploy/rollback committed: journal the delta."""
        self._append(
            "txn",
            {
                "op": op,
                "head": head,
                "back_branch": back_branch,
                "hotness": hotness,
                "optimization": optimization,
                "n_rewrites": n_rewrites,
            },
        )

    def log_decision(self, event: list) -> None:
        """One optimizer event (deploy/rollback/skip/recover/degrade)."""
        self._append("decision", {"event": event})

    # -- snapshots ----------------------------------------------------------

    def snapshot_now(self) -> None:
        """Write a checksummed snapshot of the last journaled state."""
        if self._last_state is None or self.journal is None:
            return
        from .snapshot import encode_snapshot

        payload = {
            "journal_seq": self.journal.next_seq - 1,
            "state": self._last_state,
            "meta": self._meta,
        }
        name = SnapshotStore.name_for(self._next_snapshot_version)
        data = encode_snapshot(payload)
        self._gate(name, data, "atomic")
        self.disk.write_atomic(name, data)
        self.stats.snapshots_written += 1
        self._next_snapshot_version += 1
        self._windows_since_snapshot = 0
        self.store.prune(self.config.snapshots_kept)

    def close(self, state: dict) -> None:
        """End of run: journal the final state and snapshot it."""
        if self.journal is None:
            return
        self.log_window(state)
        self.snapshot_now()
