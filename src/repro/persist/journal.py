"""Write-ahead journal over an injectable disk.

The journal is the durability backbone of ``repro.persist``: an
append-only stream of length-prefixed, CRC-guarded records, fsync'd
record-by-record.  Three record types flow through it during a COBRA
run (profiler window merges, trace-cache deploy/rollback transactions,
optimizer decisions) plus a session ``meta`` record; recovery replays
the longest valid prefix and accounts every torn or corrupt byte after
it.

Record wire format (little-endian)::

    magic:u16  flags:u16  payload_len:u32  crc32:u32  payload bytes

``crc32`` covers the first 8 header bytes *and* the payload, so a
single flipped bit anywhere in a record — magic, flags, length, or
body — breaks the checksum (the classic WAL torn-write guard; cf.
perf-tools' durable counter records).  Payloads are canonical JSON
(sorted keys, no whitespace), which keeps encoding deterministic and
the format forward-compatible: readers ignore keys they do not know.

Durability is mediated by a :class:`Disk` so tests stay deterministic:
:class:`MemoryDisk` models a kernel page cache that can die mid-write
(crash injection leaves a torn prefix), :class:`FileDisk` is the real
fsync/rename-backed store for ``--checkpoint-dir``.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from ..errors import PersistError

__all__ = [
    "Disk",
    "MemoryDisk",
    "FileDisk",
    "JournalWriter",
    "JOURNAL_NAME",
    "RECORD_MAGIC",
    "encode_record",
    "scan_journal",
]

#: Journal file name inside a checkpoint directory / disk namespace.
JOURNAL_NAME = "journal.wal"

#: First header field of every journal record.
RECORD_MAGIC = 0xC0BA

_HEAD = struct.Struct("<HHI")     # magic, flags, payload_len
_CRC = struct.Struct("<I")
HEADER_BYTES = _HEAD.size + _CRC.size


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def encode_record(payload: dict) -> bytes:
    """One framed journal record for ``payload`` (canonical JSON)."""
    body = _canonical(payload)
    head = _HEAD.pack(RECORD_MAGIC, 0, len(body))
    crc = zlib.crc32(head + body) & 0xFFFFFFFF
    return head + _CRC.pack(crc) + body


def scan_journal(data: bytes) -> tuple[list[dict], int, list[str]]:
    """Decode the longest valid record prefix of ``data``.

    Returns ``(records, valid_len, discarded)``: the decoded payloads,
    the byte length of the valid prefix (the journal repair point), and
    one human-readable note per discarded region.  Scanning stops at
    the first bad record — in an append-only journal everything after a
    corruption is unordered noise, never silently decoded.
    """
    records: list[dict] = []
    discarded: list[str] = []
    offset = 0
    n = len(data)
    while offset < n:
        remaining = n - offset
        if remaining < HEADER_BYTES:
            discarded.append(f"torn header at offset {offset} ({remaining} byte(s))")
            break
        magic, flags, length = _HEAD.unpack_from(data, offset)
        if magic != RECORD_MAGIC:
            discarded.append(f"bad magic {magic:#06x} at offset {offset}")
            break
        (crc,) = _CRC.unpack_from(data, offset + _HEAD.size)
        body_start = offset + HEADER_BYTES
        if length > n - body_start:
            discarded.append(
                f"torn record at offset {offset}: {length} byte payload, "
                f"{n - body_start} on disk"
            )
            break
        body = data[body_start : body_start + length]
        want = zlib.crc32(data[offset : offset + _HEAD.size] + body) & 0xFFFFFFFF
        if crc != want:
            discarded.append(f"crc mismatch at offset {offset}")
            break
        try:
            payload = json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            # a crc collision would be required to reach this; account
            # it the same way rather than trusting the bytes
            discarded.append(f"undecodable payload at offset {offset}")
            break
        if not isinstance(payload, dict):
            discarded.append(f"non-record payload at offset {offset}")
            break
        records.append(payload)
        offset = body_start + length
    return records, offset, discarded


# -- disks --------------------------------------------------------------------


class Disk:
    """Durable byte store interface (the injectable 'disk').

    Contract: :meth:`append` and :meth:`write_atomic` are durable when
    they return (append implies fsync; write_atomic implies
    write-temp + fsync + atomic rename).  :meth:`write` is a plain
    non-atomic create/overwrite — the crash injector uses it to leave
    torn temporaries behind, exactly like a real snapshot writer dying
    before its rename.
    """

    def append(self, name: str, data: bytes) -> None:
        raise NotImplementedError

    def write(self, name: str, data: bytes) -> None:
        raise NotImplementedError

    def write_atomic(self, name: str, data: bytes) -> None:
        raise NotImplementedError

    def read(self, name: str) -> bytes:
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def listdir(self) -> list[str]:
        raise NotImplementedError

    def delete(self, name: str) -> None:
        raise NotImplementedError

    def truncate(self, name: str, length: int) -> None:
        raise NotImplementedError

    def kill(self) -> None:
        """The owning process died: ignore every later write.

        Host-side cleanup code keeps running after a simulated crash
        (``finally`` blocks); a dead process cannot reach the disk, so
        post-crash writes must not land.
        """
        raise NotImplementedError


class MemoryDisk(Disk):
    """Deterministic in-memory disk for tests and the crash sweeps."""

    def __init__(self) -> None:
        self.files: dict[str, bytearray] = {}
        self.dead = False
        #: durable operations performed (appends + atomic writes); the
        #: crash sweep enumerates its kill points over this count
        self.durable_ops = 0

    def append(self, name: str, data: bytes) -> None:
        if self.dead:
            return
        self.files.setdefault(name, bytearray()).extend(data)
        self.durable_ops += 1

    def write(self, name: str, data: bytes) -> None:
        if self.dead:
            return
        self.files[name] = bytearray(data)

    def write_atomic(self, name: str, data: bytes) -> None:
        if self.dead:
            return
        self.files[name] = bytearray(data)
        self.durable_ops += 1

    def read(self, name: str) -> bytes:
        try:
            return bytes(self.files[name])
        except KeyError:
            raise PersistError(f"no such file {name!r} on disk") from None

    def exists(self, name: str) -> bool:
        return name in self.files

    def listdir(self) -> list[str]:
        return sorted(self.files)

    def delete(self, name: str) -> None:
        self.files.pop(name, None)

    def truncate(self, name: str, length: int) -> None:
        if self.dead:
            return
        if name in self.files:
            del self.files[name][length:]

    def kill(self) -> None:
        self.dead = True

    def clone(self) -> "MemoryDisk":
        """Independent copy (the recovery harness resumes from copies)."""
        disk = MemoryDisk()
        disk.files = {name: bytearray(data) for name, data in self.files.items()}
        disk.durable_ops = self.durable_ops
        return disk


class FileDisk(Disk):
    """Checkpoint directory on the real filesystem (``--checkpoint-dir``)."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.dead = False
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        return os.path.join(self.root, name)

    def append(self, name: str, data: bytes) -> None:
        if self.dead:
            return
        with open(self._path(name), "ab") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())

    def write(self, name: str, data: bytes) -> None:
        if self.dead:
            return
        with open(self._path(name), "wb") as fh:
            fh.write(data)

    def write_atomic(self, name: str, data: bytes) -> None:
        if self.dead:
            return
        tmp = self._path(name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._path(name))

    def read(self, name: str) -> bytes:
        try:
            with open(self._path(name), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            raise PersistError(f"no such file {name!r} on disk") from None

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def listdir(self) -> list[str]:
        return sorted(os.listdir(self.root))

    def delete(self, name: str) -> None:
        try:
            os.unlink(self._path(name))
        except FileNotFoundError:
            pass

    def truncate(self, name: str, length: int) -> None:
        if self.dead:
            return
        if self.exists(name):
            os.truncate(self._path(name), length)

    def kill(self) -> None:
        self.dead = True


class JournalWriter:
    """Appends sequenced records to the journal, one fsync per record.

    ``gate`` (if given) is called with ``(name, encoded_bytes, "append")``
    before each durable write — the crash-injection hook.
    """

    def __init__(
        self,
        disk: Disk,
        next_seq: int = 0,
        name: str = JOURNAL_NAME,
        gate=None,
    ) -> None:
        self.disk = disk
        self.name = name
        self.next_seq = next_seq
        self.records_written = 0
        self.gate = gate

    def append(self, kind: str, payload: dict) -> int:
        """Frame and durably append one record; return its sequence."""
        seq = self.next_seq
        record = dict(payload)
        record["t"] = kind
        record["seq"] = seq
        data = encode_record(record)
        if self.gate is not None:
            self.gate(self.name, data, "append")
        self.disk.append(self.name, data)
        self.next_seq = seq + 1
        self.records_written += 1
        return seq
