"""Process-parallel scenario runner for the validation harnesses.

The differential, chaos, recovery and bench sweeps are matrices of
*independent* cells — every cell builds a fresh machine and a fresh
program, so there is no shared mutable state between them and the only
coupling is the order results are folded into the report.  That makes
them embarrassingly parallel: :func:`run_tasks` fans cells out over a
``ProcessPoolExecutor`` and collects results **in submission order**,
so the merged report is byte-identical at any job count.

Determinism argument (DESIGN.md §9):

* the work list is built *before* dispatch, in the exact order the
  sequential sweep would visit it (seed-stable partitioning — the
  partition is a function of the matrix, never of worker timing);
* each cell is a pure function of its arguments (fresh machine, fresh
  program, seeded injectors), so running it in another process changes
  nothing it computes;
* results are merged by walking the futures in submission order —
  completion order, worker count and scheduling jitter never reach the
  report.

Tasks must be picklable (the workload specs and machine factories are
frozen-dataclass recipes rather than closures for exactly this reason);
:func:`run_tasks` fails fast with a :class:`~repro.errors.ValidationError`
naming the offender instead of letting the pool raise an opaque error
mid-sweep.  A worker exception is re-raised in the parent at the same
matrix position where the sequential sweep would have raised it.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from .errors import ValidationError

__all__ = ["run_tasks"]

#: A unit of work: ``(callable, args)`` — invoked as ``callable(*args)``.
Task = tuple[Callable[..., Any], Sequence[Any]]


def _invoke(task: Task) -> Any:
    fn, args = task
    return fn(*args)


def run_tasks(tasks: Iterable[Task], jobs: int = 1) -> list[Any]:
    """Run every task; return results in task order.

    ``jobs <= 1`` (or a single task) runs inline in this process — the
    parallel path is an optimization, never a behavior change.
    """
    work = list(tasks)
    if jobs <= 1 or len(work) <= 1:
        return [fn(*args) for fn, args in work]
    try:
        pickle.dumps(work)
    except Exception as exc:
        raise ValidationError(
            f"scenario cells are not picklable, cannot fan out with --jobs: {exc}"
        ) from exc
    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
        futures = [pool.submit(_invoke, task) for task in work]
        # submission order, not completion order: the merge is ordered
        return [future.result() for future in futures]
