"""Patchable binary images.

A :class:`BinaryImage` is the in-memory executable the simulated cores
fetch from and that COBRA patches at runtime.  Bundles live at 16-byte-
aligned addresses; a program counter is ``bundle_address + slot`` with
``slot`` in ``{0, 1, 2}``.  Branch targets are always slot 0 of a
bundle, as on IA-64.

The image records:

* ``labels`` — symbol table (entry points, loop heads);
* ``regions`` — named address ranges (loop bodies emitted by the
  compiler; used by tests and Table 1, *not* by COBRA, which discovers
  loops from BTB profiles);
* a patch journal, so tests can assert exactly what COBRA rewrote and
  rollback can restore original bundles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import BinaryError
from .bundle import BUNDLE_BYTES, Bundle
from .instructions import Instruction, Op

__all__ = ["BinaryImage", "Patch", "pc_bundle", "pc_slot"]

#: Default base address for program text.
TEXT_BASE = 0x4000_0000


def pc_bundle(pc: int) -> int:
    """Bundle address containing ``pc``."""
    return pc & ~(BUNDLE_BYTES - 1)


def pc_slot(pc: int) -> int:
    """Slot index (0..2) of ``pc`` within its bundle."""
    return pc & (BUNDLE_BYTES - 1)


@dataclass(frozen=True)
class Patch:
    """Journal entry for one runtime code modification."""

    address: int
    slot: int | None          # None -> whole bundle replaced
    old: Bundle
    new: Bundle
    reason: str = ""


class BinaryImage:
    """Bundles, symbols, and a patch journal."""

    def __init__(self, base: int = TEXT_BASE) -> None:
        if base % BUNDLE_BYTES:
            raise BinaryError("base address must be bundle-aligned")
        self.base = base
        self.bundles: dict[int, Bundle] = {}
        self.labels: dict[str, int] = {}
        self.regions: dict[str, tuple[int, int]] = {}
        self.patches: list[Patch] = []
        #: bumped on every mutation; decode caches compare it against the
        #: journal length to distinguish patches from structural changes
        self.version = 0
        self._next = base
        self._linked = False

    # -- construction -----------------------------------------------------

    def append(self, bundle: Bundle) -> int:
        """Place ``bundle`` at the next free address; return the address."""
        addr = self._next
        self.bundles[addr] = bundle
        self.version += 1
        self._next += BUNDLE_BYTES
        return addr

    def here(self) -> int:
        """Address the next appended bundle will receive."""
        return self._next

    def truncate(self, addr: int) -> int:
        """Discard every bundle at or above ``addr``; return the count.

        Supports all-or-nothing trace deployment: a transactional
        deploy that fails verification reclaims the bundles it appended
        instead of leaking trace-cache capacity.  Only tail bundles can
        go (``addr`` must lie between ``base`` and the append cursor);
        nothing may reference them yet — the caller guarantees no
        redirect was left pointing into the discarded range.
        """
        if addr % BUNDLE_BYTES:
            raise BinaryError(f"truncate address {addr:#x} not bundle-aligned")
        if not self.base <= addr <= self._next:
            raise BinaryError(
                f"truncate address {addr:#x} outside [{self.base:#x}, {self._next:#x}]"
            )
        removed = 0
        for address in range(addr, self._next, BUNDLE_BYTES):
            if self.bundles.pop(address, None) is not None:
                removed += 1
        self._next = addr
        if removed:
            # structural change (not a journaled patch): decode caches
            # see a version bump without a journal entry and rebuild
            self.version += 1
        return removed

    def free(self, addr: int, n_bundles: int) -> int:
        """Discard ``n_bundles`` bundles starting at ``addr``; return the count.

        Supports governor eviction of cold resident trace versions: the
        hole is never reused (the append cursor does not move back), so
        no later append can alias an address a stale redirect might
        still name — the caller guarantees nothing references the freed
        range (only *inactive* versions are ever evicted).
        """
        if addr % BUNDLE_BYTES:
            raise BinaryError(f"free address {addr:#x} not bundle-aligned")
        removed = 0
        for address in range(addr, addr + n_bundles * BUNDLE_BYTES, BUNDLE_BYTES):
            if self.bundles.pop(address, None) is not None:
                removed += 1
        if removed:
            # structural change (not a journaled patch): decode caches
            # see a version bump without a journal entry and rebuild
            self.version += 1
        return removed

    def mark(self, name: str, addr: int | None = None) -> int:
        """Define label ``name`` at ``addr`` (default: the next address)."""
        if addr is None:
            addr = self._next
        if name in self.labels:
            raise BinaryError(f"duplicate label {name!r}")
        self.labels[name] = addr
        return addr

    def mark_region(self, name: str, start: int, end: int) -> None:
        """Record a named half-open bundle-address range [start, end)."""
        if name in self.regions:
            raise BinaryError(f"duplicate region {name!r}")
        self.regions[name] = (start, end)

    def link(self) -> None:
        """Resolve symbolic branch targets to absolute addresses."""
        for addr, bundle in self.bundles.items():
            for slot, instr in enumerate(bundle.slots):
                if instr.label is None:
                    continue
                target = self.labels.get(instr.label)
                if target is None:
                    raise BinaryError(f"undefined label {instr.label!r} at {addr:#x}")
                bundle.slots[slot] = instr.clone(imm=target, label=None)
        self.version += 1
        self._linked = True

    # -- fetch --------------------------------------------------------------

    def fetch_bundle(self, addr: int) -> Bundle:
        try:
            return self.bundles[addr]
        except KeyError:
            raise BinaryError(f"no bundle at {addr:#x}") from None

    def fetch(self, pc: int) -> Instruction:
        return self.fetch_bundle(pc_bundle(pc)).slots[pc_slot(pc)]

    def __contains__(self, addr: int) -> bool:
        return addr in self.bundles

    def __len__(self) -> int:
        return len(self.bundles)

    def iter_bundles(self) -> Iterator[tuple[int, Bundle]]:
        return iter(sorted(self.bundles.items()))

    # -- runtime patching (COBRA deployment path) ----------------------------

    def patch_slot(self, addr: int, slot: int, instr: Instruction, reason: str = "") -> None:
        """Replace one slot of the bundle at ``addr``.

        Models an atomic store to one syllable; used for in-place rewrites
        such as lfetch -> nop.
        """
        old = self.fetch_bundle(addr)
        new = old.with_slot(slot, instr)
        self.bundles[addr] = new
        self.patches.append(Patch(addr, slot, old, new, reason))
        self.version += 1

    def patch_bundle(self, addr: int, bundle: Bundle, reason: str = "") -> None:
        """Replace a whole bundle (trace-entry redirection)."""
        old = self.fetch_bundle(addr)
        self.bundles[addr] = bundle
        self.patches.append(Patch(addr, None, old, bundle, reason))
        self.version += 1

    def revert_patch(self, patch: Patch) -> None:
        """Undo one journaled patch (adaptive rollback)."""
        current = self.fetch_bundle(patch.address)
        if current != patch.new:
            raise BinaryError(
                f"cannot revert patch at {patch.address:#x}: bundle changed since"
            )
        self.bundles[patch.address] = patch.old
        self.patches.append(
            Patch(patch.address, patch.slot, patch.new, patch.old, f"revert: {patch.reason}")
        )
        self.version += 1

    # -- static analysis ------------------------------------------------------

    def count_ops(self, op: Op, region: tuple[int, int] | None = None) -> int:
        """Static count of ``op`` occurrences (paper Table 1)."""
        lo, hi = region if region else (0, 1 << 62)
        return sum(
            1
            for addr, bundle in self.bundles.items()
            if lo <= addr < hi
            for instr in bundle.slots
            if instr.op is op
        )

    def find_ops(self, op: Op, region: tuple[int, int] | None = None) -> list[tuple[int, int]]:
        """All (bundle address, slot) locations holding ``op``."""
        lo, hi = region if region else (0, 1 << 62)
        return [
            (addr, slot)
            for addr, bundle in sorted(self.bundles.items())
            if lo <= addr < hi
            for slot, instr in enumerate(bundle.slots)
            if instr.op is op
        ]
