"""Decoded-bundle cache for the interpreter hot path.

The cores used to re-read :class:`~repro.isa.instructions.Instruction`
attribute by attribute on every fetch of every bundle, and to scan their
image list linearly per fetch.  Both costs scale with *executed*
bundles, not with code size — exactly the monitoring-overhead trap the
paper budgets against (§3, §5).

:class:`DecodeCache` decodes each bundle **once** into executable form
``(n_slots, entries)`` where each entry is

    ``(idx, op, qp, r1, r2, r3, r4, imm, excl)``

for the non-NOP slots only (see :func:`decode_bundle`), and merges all
attached images into a single ``addr -> decoded`` dict, so a fetch is
one dict lookup and executing a slot is one tuple unpack.

Correctness under runtime patching
----------------------------------

COBRA rewrites code while it runs (lfetch→nop, lfetch→lfetch.excl,
trace-entry redirection, rollback).  The cache therefore keys every
entry by the bundle's *content bytes* (:func:`encode_bundle`) and
invalidates through the image's patch journal:

* every :class:`~repro.isa.binary.BinaryImage` mutation bumps
  ``image.version``;
* when the version delta equals the journal delta, only the journaled
  addresses are re-decoded (patch / rollback — the common runtime case);
* any other delta (append, link) rebuilds that image's entries.

``sync()`` is called once per scheduler slice; when nothing changed it
is a handful of int compares.  Decode-time operand validation replaces
the per-access register range checks the interpreter used to pay for:
a slot whose register fields are out of range never enters the cache.
"""

from __future__ import annotations

from ..errors import RegisterError
from .binary import BinaryImage
from .bundle import Bundle
from .instructions import (
    Instruction,
    Op,
)

__all__ = [
    "DecodeCache",
    "DecodedSlot",
    "decode_bundle",
    "decode_instruction",
    "encode_bundle",
]

#: Decoded slot layout: (op, qp, r1, r2, r3, r4, imm, excl).
DecodedSlot = tuple

_NOP = int(Op.NOP)

#: Compare opcodes write predicate registers through r1/r2.
_PR_TARGET_OPS = frozenset(
    int(op)
    for op in (
        Op.CMP_LT, Op.CMP_LE, Op.CMP_EQ, Op.CMP_NE,
        Op.CMPI_LT, Op.CMPI_LE, Op.CMPI_EQ, Op.CMPI_NE,
    )
)


def decode_instruction(instr: Instruction) -> DecodedSlot:
    """One instruction -> the flat tuple the interpreter executes.

    Validates operand ranges once, so the interpreter can index the
    register files without per-access bounds checks (writes to the
    hardwired registers r0/f0/f1/p0 are still guarded at execution).
    """
    op = int(instr.op)
    qp = instr.qp
    if not 0 <= qp < 64:
        raise RegisterError(f"p{qp} out of range")
    if op in _PR_TARGET_OPS:
        if not 0 <= instr.r1 < 64:
            raise RegisterError(f"p{instr.r1} out of range")
        if not 0 <= instr.r2 < 64:
            raise RegisterError(f"p{instr.r2} out of range")
    for reg in (instr.r1, instr.r2, instr.r3, instr.r4):
        if not 0 <= reg < 128:
            raise RegisterError(f"r{reg} out of range")
    return (op, qp, instr.r1, instr.r2, instr.r3, instr.r4, instr.imm, instr.excl)


def decode_bundle(bundle: Bundle) -> tuple[int, tuple[DecodedSlot, ...]]:
    """One bundle -> ``(n_slots, entries)`` in executable form.

    ``entries`` holds only the non-NOP slots, each prefixed with its slot
    index: ``(idx, op, qp, r1, r2, r3, r4, imm, excl)``.  The interpreter
    never iterates (or unpacks) NOP padding, but still retires it:
    ``n_slots`` is the bundle's architectural slot count, and the index
    prefix reconstructs the per-slot PC for the BTB/DEAR and for partial
    bundles.  NOP slots are still validated at decode time.
    """
    entries = []
    for idx, instr in enumerate(bundle.slots):
        decoded = decode_instruction(instr)
        if decoded[0] != _NOP:
            entries.append((idx,) + decoded)
    return (len(bundle.slots), tuple(entries))


def encode_bundle(bundle: Bundle) -> bytes:
    """Deterministic byte serialization of a bundle's architectural content.

    This is the cache key: two bundles encode equal iff a fresh decode
    of them is indistinguishable to the interpreter (plus template and
    assembly metadata, so patch provenance is never conflated).
    """
    parts = [bundle.template.encode()]
    for instr in bundle.slots:
        parts.append(
            repr(
                (
                    int(instr.op), instr.qp, instr.r1, instr.r2, instr.r3,
                    instr.r4, instr.imm, instr.hint, instr.excl, instr.unit,
                    instr.label,
                )
            ).encode()
        )
    return b"|".join(parts)


class DecodeCache:
    """Journal-invalidated decoded view of a set of binary images.

    Images must occupy disjoint address ranges (the machine hands out
    disjoint text segments); on overlap the most recently synced image
    wins, matching the old last-image-loaded fetch order.
    """

    __slots__ = ("map", "keys", "epoch", "decodes", "_images", "_seen")

    def __init__(self) -> None:
        #: bundle address -> (n_slots, entries) (the interpreter's view)
        self.map: dict[int, tuple] = {}
        #: bundle address -> content key bytes (audit / property tests)
        self.keys: dict[int, bytes] = {}
        #: bumped whenever sync() re-decodes anything — consumers holding
        #: derived views (compiled traces) revalidate on epoch change
        self.epoch = 0
        #: total decode_bundle calls (bundle decode events); a fetch that
        #: is served from ``map`` costs none, so the cache hit rate over a
        #: run is ``1 - decodes / bundles_fetched``
        self.decodes = 0
        self._images: list[BinaryImage] = []
        #: per image: [version seen, journal length seen]
        self._seen: list[list[int]] = []

    # -- wiring ------------------------------------------------------------

    def attach(self, image: BinaryImage) -> None:
        """Start serving ``image`` (idempotent per image object)."""
        for known in self._images:
            if known is image:
                return
        self._images.append(image)
        self._seen.append([-1, 0])  # forces a full build on first sync

    def images(self) -> list[BinaryImage]:
        return list(self._images)

    # -- coherence with the images ----------------------------------------

    def sync(self) -> dict[int, tuple]:
        """Bring the cache up to date; return the merged decoded map.

        Cheap when nothing changed: one int compare per image.
        """
        decoded_map = self.map
        keys = self.keys
        dirty = 0
        for idx, image in enumerate(self._images):
            seen = self._seen[idx]
            version = image.version
            if version == seen[0]:
                continue
            journal = image.patches
            n_journal = len(journal)
            if seen[0] >= 0 and version - seen[0] == n_journal - seen[1]:
                # Journaled invalidation: every mutation since the last
                # sync was a patch or rollback, so only the journaled
                # bundle addresses can have changed.
                bundles = image.bundles
                for patch in journal[seen[1]:]:
                    bundle = bundles[patch.address]
                    decoded_map[patch.address] = decode_bundle(bundle)
                    keys[patch.address] = encode_bundle(bundle)
                    dirty += 1
            else:
                # Structural change (first sync, append, link): rebuild
                # this image's entries wholesale.
                for addr, bundle in image.bundles.items():
                    decoded_map[addr] = decode_bundle(bundle)
                    keys[addr] = encode_bundle(bundle)
                    dirty += 1
            seen[0] = version
            seen[1] = n_journal
        if dirty:
            self.decodes += dirty
            self.epoch += 1
        return decoded_map

    # -- audit --------------------------------------------------------------

    def bytes_at(self, addr: int) -> bytes | None:
        """Content key the cache is serving for ``addr`` (post-sync)."""
        return self.keys.get(addr)

    def verify(self) -> list[str]:
        """Compare every served entry against a fresh decode.

        Returns human-readable mismatch descriptions (empty = the cache
        is byte-identical to re-decoding the images from scratch).
        """
        self.sync()
        problems: list[str] = []
        fresh_addrs: set[int] = set()
        for image in self._images:
            for addr, bundle in image.bundles.items():
                fresh_addrs.add(addr)
                if self.map.get(addr) != decode_bundle(bundle):
                    problems.append(f"decoded slots stale at {addr:#x}")
                if self.keys.get(addr) != encode_bundle(bundle):
                    problems.append(f"content key stale at {addr:#x}")
        for addr in self.map:
            if addr not in fresh_addrs:
                problems.append(f"cache serves {addr:#x} but no image holds it")
        return problems
