"""Register files with IA-64-style register rotation.

The simulated CPU exposes the register resources COBRA-generated code
relies on:

* 128 general registers ``r0..r127`` (``r0`` is hardwired to zero); the
  region ``r32..r32+sor-1`` rotates, with the rotating-region size
  (``sor``) set by ``alloc``;
* 128 floating-point registers ``f0..f127`` (``f0`` = 0.0 and ``f1`` =
  1.0 hardwired); ``f32..f127`` always rotate;
* 64 predicate registers ``p0..p63`` (``p0`` hardwired true);
  ``p16..p63`` always rotate;
* the application registers ``LC`` (loop count) and ``EC`` (epilog
  count) used by the modulo-scheduled loop branches.

Rotation is implemented with rename bases (``rrb.gr``, ``rrb.fr``,
``rrb.pr``) exactly as on IA-64: a rotate decrements each base modulo
its region size, so a value written to logical ``r32`` in one software-
pipeline stage is visible as ``r33`` in the next.
"""

from __future__ import annotations

from ..errors import RegisterError

__all__ = ["RegisterFile", "GR_ROT_START", "FR_ROT_START", "FR_ROT_SIZE", "PR_ROT_START", "PR_ROT_SIZE"]

GR_ROT_START = 32
FR_ROT_START = 32
FR_ROT_SIZE = 96
PR_ROT_START = 16
PR_ROT_SIZE = 48

_MASK64 = (1 << 64) - 1


class RegisterFile:
    """All architectural register state of one simulated core."""

    __slots__ = ("gr", "fr", "pr", "lc", "ec", "sor", "rrb_gr", "rrb_fr", "rrb_pr")

    def __init__(self) -> None:
        self.gr: list[int] = [0] * 128
        self.fr: list[float] = [0.0] * 128
        self.fr[1] = 1.0
        self.pr: list[bool] = [False] * 64
        self.pr[0] = True
        self.lc = 0
        self.ec = 0
        self.sor = 0          # size of rotating GR region (set by alloc)
        self.rrb_gr = 0
        self.rrb_fr = 0
        self.rrb_pr = 0

    # -- renaming -------------------------------------------------------

    def _phys_gr(self, idx: int) -> int:
        sor = self.sor
        if sor and GR_ROT_START <= idx < GR_ROT_START + sor:
            return GR_ROT_START + (idx - GR_ROT_START + self.rrb_gr) % sor
        return idx

    def _phys_fr(self, idx: int) -> int:
        if idx >= FR_ROT_START:
            return FR_ROT_START + (idx - FR_ROT_START + self.rrb_fr) % FR_ROT_SIZE
        return idx

    def _phys_pr(self, idx: int) -> int:
        if idx >= PR_ROT_START:
            return PR_ROT_START + (idx - PR_ROT_START + self.rrb_pr) % PR_ROT_SIZE
        return idx

    # -- general registers ---------------------------------------------

    def read_gr(self, idx: int) -> int:
        if not 0 <= idx < 128:
            raise RegisterError(f"r{idx} out of range")
        return self.gr[self._phys_gr(idx)]

    def write_gr(self, idx: int, value: int) -> None:
        if not 0 <= idx < 128:
            raise RegisterError(f"r{idx} out of range")
        if idx == 0:
            raise RegisterError("r0 is read-only")
        # wrap to signed 64-bit two's complement (matches memory storage)
        self.gr[self._phys_gr(idx)] = ((value + (1 << 63)) & _MASK64) - (1 << 63)

    # -- floating-point registers ----------------------------------------

    def read_fr(self, idx: int) -> float:
        if not 0 <= idx < 128:
            raise RegisterError(f"f{idx} out of range")
        return self.fr[self._phys_fr(idx)]

    def write_fr(self, idx: int, value: float) -> None:
        if not 0 <= idx < 128:
            raise RegisterError(f"f{idx} out of range")
        if idx in (0, 1):
            raise RegisterError(f"f{idx} is read-only")
        self.fr[self._phys_fr(idx)] = value

    # -- predicate registers ---------------------------------------------

    def read_pr(self, idx: int) -> bool:
        if not 0 <= idx < 64:
            raise RegisterError(f"p{idx} out of range")
        return self.pr[self._phys_pr(idx)]

    def write_pr(self, idx: int, value: bool) -> None:
        if not 0 <= idx < 64:
            raise RegisterError(f"p{idx} out of range")
        if idx == 0:
            raise RegisterError("p0 is read-only")
        self.pr[self._phys_pr(idx)] = bool(value)

    # -- rotation ---------------------------------------------------------

    def alloc_rotating(self, sor: int) -> None:
        """Set the size of the rotating GR region (``alloc``)."""
        if sor < 0 or GR_ROT_START + sor > 128:
            raise RegisterError(f"illegal rotating region size {sor}")
        self.sor = sor

    def rotate(self) -> None:
        """One register rotation (performed by ``br.ctop``/``br.wtop``)."""
        if self.sor:
            self.rrb_gr = (self.rrb_gr - 1) % self.sor
        self.rrb_fr = (self.rrb_fr - 1) % FR_ROT_SIZE
        self.rrb_pr = (self.rrb_pr - 1) % PR_ROT_SIZE

    def clear_rrb(self) -> None:
        """Reset all rename bases (``clrrrb``)."""
        self.rrb_gr = self.rrb_fr = self.rrb_pr = 0

    def clear_rotating_predicates(self) -> None:
        """Set ``p16..p63`` to false (SWP prologue convention)."""
        for i in range(PR_ROT_START, 64):
            self.pr[i] = False
