"""Instruction set of the simulated IA-64-like architecture.

The subset covers everything the paper's code examples use: predicated
ALU/FP ops, post-increment loads/stores, ``lfetch`` with temporal hints
and the ``.excl`` exclusive hint, ``ld8.bias``, the three modulo-
scheduled loop branches (``br.ctop``, ``br.cloop``, ``br.wtop``), and
the SWP setup instructions (``alloc``, ``clrrrb``, ``mov pr.rot``,
``mov lc/ec``).

Instructions are plain slotted objects dispatched by integer opcode in
the interpreter; operand meaning per opcode is documented on the
:class:`Op` members.  Register operands occupy the generic ``r1..r4``
fields (destination first); ``imm`` holds immediates, post-increment
amounts, or resolved branch targets; ``label`` holds a symbolic branch
target until link time.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any

__all__ = ["Op", "Instruction", "MEMORY_OPS", "BRANCH_OPS", "LOOP_BRANCH_OPS"]


class Op(IntEnum):
    """Opcodes. Operand conventions are given per member."""

    NOP = 0          # unit: which issue unit the nop fills
    # -- integer ALU --------------------------------------------------
    ADD = 1          # r1 = r2 + r3
    ADDI = 2         # r1 = r2 + imm
    SUB = 3          # r1 = r2 - r3
    MOV = 4          # r1 = r2
    MOVI = 5         # r1 = imm  (also covers movl)
    AND = 6          # r1 = r2 & r3
    OR = 7           # r1 = r2 | r3
    XOR = 8          # r1 = r2 ^ r3
    SHL = 9          # r1 = r2 << imm
    SHR = 10         # r1 = r2 >> imm
    SHLADD = 11      # r1 = (r2 << imm) + r3
    # -- compares (two predicate targets, IA-64 style) ------------------
    CMP_LT = 12      # (r1, r2) = (r3 < r4, !(r3 < r4))
    CMP_LE = 13
    CMP_EQ = 14
    CMP_NE = 15
    CMPI_LT = 16     # (r1, r2) = (r3 < imm, ...)
    CMPI_LE = 17
    CMPI_EQ = 18
    CMPI_NE = 19
    # -- application registers / SWP setup ------------------------------
    MOV_LC_IMM = 20  # LC = imm
    MOV_LC_REG = 21  # LC = r2
    MOV_EC_IMM = 22  # EC = imm
    ALLOC = 23       # rotating GR region size = imm
    CLRRRB = 24      # clear rename bases
    MOV_PR_ROT = 25  # rotating predicates = bitmask imm (bit i -> p_i)
    # -- memory ----------------------------------------------------------
    LD8 = 26         # r1 = mem[gr[r2]]; gr[r2] += imm; excl -> ld8.bias
    ST8 = 27         # mem[gr[r2]] = gr[r3]; gr[r2] += imm
    LDFD = 28        # f[r1] = mem[gr[r2]]; gr[r2] += imm
    STFD = 29        # mem[gr[r2]] = f[r3]; gr[r2] += imm
    LFETCH = 30      # prefetch line at gr[r2]; gr[r2] += imm; hint/excl
    # -- floating point ---------------------------------------------------
    FMA = 31         # f[r1] = f[r2] * f[r3] + f[r4]
    FADD = 32        # f[r1] = f[r2] + f[r3]
    FSUB = 33
    FMUL = 34
    SETF = 35        # f[r1] = float(gr[r2])   (value conversion)
    GETF = 36        # gr[r1] = int(f[r2])
    FABS = 37        # f[r1] = abs(f[r2])
    FMAX = 38        # f[r1] = max(f[r2], f[r3])
    # -- branches ---------------------------------------------------------
    BR = 39          # goto imm
    BR_COND = 40     # if pr[qp]: goto imm   (qp is the qualifying pred)
    BR_CTOP = 41     # modulo-sched counted loop (rotates, LC/EC)
    BR_CLOOP = 42    # simple counted loop (LC, no rotation)
    BR_WTOP = 43     # modulo-sched while loop (rotates, p16 from qp stage)
    BR_CALL = 44     # call imm (return address on core call stack)
    BR_RET = 45      # return
    HALT = 46        # end of the thread's program (simulator pseudo-op)
    FETCHADD8 = 47   # r1 = mem[gr[r2]]; mem[gr[r2]] += imm  (atomic)


#: Opcodes that access the data memory hierarchy.
MEMORY_OPS = frozenset({Op.LD8, Op.ST8, Op.LDFD, Op.STFD, Op.LFETCH, Op.FETCHADD8})

#: All control-transfer opcodes.
BRANCH_OPS = frozenset(
    {Op.BR, Op.BR_COND, Op.BR_CTOP, Op.BR_CLOOP, Op.BR_WTOP, Op.BR_CALL, Op.BR_RET}
)

#: The loop branches the paper's Table 1 counts.
LOOP_BRANCH_OPS = frozenset({Op.BR_CTOP, Op.BR_CLOOP, Op.BR_WTOP})

_UNITS = ("M", "I", "F", "B", "A")


class Instruction:
    """One decoded instruction.

    Instances are treated as immutable once placed in a bundle; rewrites
    (COBRA optimizations) create modified copies via :meth:`clone`.
    """

    __slots__ = ("op", "qp", "r1", "r2", "r3", "r4", "imm", "hint", "excl", "unit", "label")

    def __init__(
        self,
        op: Op,
        *,
        qp: int = 0,
        r1: int = 0,
        r2: int = 0,
        r3: int = 0,
        r4: int = 0,
        imm: int | float = 0,
        hint: str | None = None,
        excl: bool = False,
        unit: str = "A",
        label: str | None = None,
    ) -> None:
        if unit not in _UNITS:
            raise ValueError(f"bad unit {unit!r}")
        self.op = op
        self.qp = qp
        self.r1 = r1
        self.r2 = r2
        self.r3 = r3
        self.r4 = r4
        self.imm = imm
        self.hint = hint
        self.excl = excl
        self.unit = unit
        self.label = label

    def clone(self, **changes: Any) -> "Instruction":
        """Copy with selected fields replaced."""
        kwargs = {name: getattr(self, name) for name in self.__slots__ if name != "op"}
        op = changes.pop("op", self.op)
        kwargs.update(changes)
        return Instruction(op, **kwargs)

    @property
    def is_memory(self) -> bool:
        return self.op in MEMORY_OPS

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_prefetch(self) -> bool:
        return self.op is Op.LFETCH

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return all(getattr(self, s) == getattr(other, s) for s in self.__slots__)

    def __hash__(self) -> int:
        return hash(tuple(getattr(self, s) for s in self.__slots__))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        from .disassembler import format_instruction

        return f"<Instruction {format_instruction(self)}>"


def nop(unit: str = "I") -> Instruction:
    """A nop for the given issue unit (COBRA's noprefetch target)."""
    return Instruction(Op.NOP, unit=unit)
