"""IA-64-like instruction set: registers, instructions, bundles, binaries.

The ISA layer is the substrate COBRA rewrites: it provides real
instruction semantics (predication, register rotation, modulo-scheduled
loop branches, hinted prefetches) plus patchable binary images, an
assembler, and a disassembler that mirrors the paper's Figure 2 syntax.
"""

from .binary import BinaryImage, Patch, pc_bundle, pc_slot
from .bundle import BUNDLE_BYTES, SLOTS_PER_BUNDLE, Bundle
from .decode import DecodeCache, decode_bundle, decode_instruction, encode_bundle
from .instructions import BRANCH_OPS, LOOP_BRANCH_OPS, MEMORY_OPS, Instruction, Op, nop
from .registers import RegisterFile
from .assembler import assemble, parse_instruction
from .disassembler import disassemble, format_bundle, format_instruction

__all__ = [
    "BinaryImage",
    "Patch",
    "pc_bundle",
    "pc_slot",
    "Bundle",
    "BUNDLE_BYTES",
    "SLOTS_PER_BUNDLE",
    "DecodeCache",
    "decode_bundle",
    "decode_instruction",
    "encode_bundle",
    "Instruction",
    "Op",
    "nop",
    "MEMORY_OPS",
    "BRANCH_OPS",
    "LOOP_BRANCH_OPS",
    "RegisterFile",
    "assemble",
    "parse_instruction",
    "disassemble",
    "format_bundle",
    "format_instruction",
]
