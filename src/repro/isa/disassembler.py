"""Textual disassembly in the paper's (IA-64 assembly) style.

``format_bundle`` reproduces the layout of the paper's Figure 2::

    { .mmb
      (p16) ldfd f38=[r33]
      (p16) lfetch.nt1 [r43]
      nop.b 0 ;;
    }
"""

from __future__ import annotations

from .bundle import Bundle
from .instructions import Instruction, Op

__all__ = ["format_instruction", "format_bundle", "disassemble"]

_CMP_SUFFIX = {
    Op.CMP_LT: "lt", Op.CMPI_LT: "lt",
    Op.CMP_LE: "le", Op.CMPI_LE: "le",
    Op.CMP_EQ: "eq", Op.CMPI_EQ: "eq",
    Op.CMP_NE: "ne", Op.CMPI_NE: "ne",
}


def _postinc(instr: Instruction) -> str:
    return f",{instr.imm}" if instr.imm else ""


def _target(instr: Instruction) -> str:
    if instr.label is not None:
        return instr.label
    return f"{int(instr.imm):#x}"


def format_instruction(instr: Instruction) -> str:
    """Render one instruction without its qualifying-predicate prefix."""
    op = instr.op
    if op is Op.NOP:
        return f"nop.{instr.unit.lower()} 0"
    if op is Op.ADD:
        return f"add r{instr.r1}=r{instr.r2},r{instr.r3}"
    if op is Op.ADDI:
        return f"add r{instr.r1}={instr.imm},r{instr.r2}"
    if op is Op.SUB:
        return f"sub r{instr.r1}=r{instr.r2},r{instr.r3}"
    if op is Op.MOV:
        return f"mov r{instr.r1}=r{instr.r2}"
    if op is Op.MOVI:
        return f"mov r{instr.r1}={instr.imm}"
    if op in (Op.AND, Op.OR, Op.XOR):
        return f"{op.name.lower()} r{instr.r1}=r{instr.r2},r{instr.r3}"
    if op is Op.SHL:
        return f"shl r{instr.r1}=r{instr.r2},{instr.imm}"
    if op is Op.SHR:
        return f"shr r{instr.r1}=r{instr.r2},{instr.imm}"
    if op is Op.SHLADD:
        return f"shladd r{instr.r1}=r{instr.r2},{instr.imm},r{instr.r3}"
    if op in (Op.CMP_LT, Op.CMP_LE, Op.CMP_EQ, Op.CMP_NE):
        return f"cmp.{_CMP_SUFFIX[op]} p{instr.r1},p{instr.r2}=r{instr.r3},r{instr.r4}"
    if op in (Op.CMPI_LT, Op.CMPI_LE, Op.CMPI_EQ, Op.CMPI_NE):
        return f"cmp.{_CMP_SUFFIX[op]} p{instr.r1},p{instr.r2}=r{instr.r3},{instr.imm}"
    if op is Op.MOV_LC_IMM:
        return f"mov ar.lc={instr.imm}"
    if op is Op.MOV_LC_REG:
        return f"mov ar.lc=r{instr.r2}"
    if op is Op.MOV_EC_IMM:
        return f"mov ar.ec={instr.imm}"
    if op is Op.ALLOC:
        return f"alloc rot={instr.imm}"
    if op is Op.CLRRRB:
        return "clrrrb"
    if op is Op.MOV_PR_ROT:
        return f"mov pr.rot={int(instr.imm):#x}"
    if op is Op.FETCHADD8:
        return f"fetchadd8 r{instr.r1}=[r{instr.r2}],{instr.imm}"
    if op is Op.LD8:
        mnem = "ld8.bias" if instr.excl else "ld8"
        return f"{mnem} r{instr.r1}=[r{instr.r2}]{_postinc(instr)}"
    if op is Op.ST8:
        return f"st8 [r{instr.r2}]=r{instr.r3}{_postinc(instr)}"
    if op is Op.LDFD:
        return f"ldfd f{instr.r1}=[r{instr.r2}]{_postinc(instr)}"
    if op is Op.STFD:
        return f"stfd [r{instr.r2}]=f{instr.r3}{_postinc(instr)}"
    if op is Op.LFETCH:
        mnem = "lfetch"
        if instr.excl:
            mnem += ".excl"
        if instr.hint:
            mnem += f".{instr.hint}"
        return f"{mnem} [r{instr.r2}]{_postinc(instr)}"
    if op is Op.FMA:
        return f"fma.d f{instr.r1}=f{instr.r2},f{instr.r3},f{instr.r4}"
    if op in (Op.FADD, Op.FSUB, Op.FMUL, Op.FMAX):
        return f"{op.name.lower()}.d f{instr.r1}=f{instr.r2},f{instr.r3}"
    if op is Op.FABS:
        return f"fabs f{instr.r1}=f{instr.r2}"
    if op is Op.SETF:
        return f"setf.d f{instr.r1}=r{instr.r2}"
    if op is Op.GETF:
        return f"getf.d r{instr.r1}=f{instr.r2}"
    if op is Op.BR:
        return f"br {_target(instr)}"
    if op is Op.BR_COND:
        return f"br.cond.{instr.hint or 'sptk'} {_target(instr)}"
    if op is Op.BR_CTOP:
        return f"br.ctop.{instr.hint or 'sptk'} {_target(instr)}"
    if op is Op.BR_CLOOP:
        return f"br.cloop.{instr.hint or 'sptk'} {_target(instr)}"
    if op is Op.BR_WTOP:
        return f"br.wtop.{instr.hint or 'sptk'} {_target(instr)}"
    if op is Op.BR_CALL:
        return f"br.call {_target(instr)}"
    if op is Op.BR_RET:
        return "br.ret"
    if op is Op.HALT:
        return "halt"
    raise AssertionError(f"unhandled opcode {op!r}")  # pragma: no cover


def format_predicated(instr: Instruction) -> str:
    """Instruction text with its ``(pN)`` prefix when predicated."""
    text = format_instruction(instr)
    return f"(p{instr.qp}) {text}" if instr.qp else text


def format_bundle(bundle: Bundle, indent: str = "  ") -> str:
    """Multi-line rendering of one bundle, Figure-2 style."""
    lines = [f"{{ .{bundle.template}"]
    for i, instr in enumerate(bundle.slots):
        stop = " ;;" if i == len(bundle.slots) - 1 else ""
        lines.append(f"{indent}{format_predicated(instr)}{stop}")
    lines.append("}")
    return "\n".join(lines)


def disassemble(image, start: int | None = None, end: int | None = None) -> str:
    """Disassemble an address range of a :class:`BinaryImage`.

    Labels from the image's symbol table are interleaved at their
    addresses.
    """
    by_addr: dict[int, list[str]] = {}
    for name, addr in image.labels.items():
        by_addr.setdefault(addr, []).append(name)
    out: list[str] = []
    for addr, bundle in image.iter_bundles():
        if start is not None and addr < start:
            continue
        if end is not None and addr >= end:
            continue
        for name in by_addr.get(addr, ()):
            out.append(f"{name}:")
        body = format_bundle(bundle)
        out.append(f"{addr:#010x}  " + body.replace("\n", f"\n{'':12}"))
    return "\n".join(out)
