"""Instruction bundles.

IA-64 packs three instruction slots into a 16-byte bundle tagged with a
template that names the issue units (``.mii``, ``.mmb``, ``.mfi`` ...).
The simulator keeps the bundle structure because COBRA patches code at
bundle granularity: ``noprefetch`` replaces an ``lfetch`` slot with a
unit-compatible ``nop`` so the bundle shape is preserved, and trace
deployment replaces a whole entry bundle with a branch.
"""

from __future__ import annotations

from ..errors import BundleError
from .instructions import Instruction, Op

__all__ = ["Bundle", "BUNDLE_BYTES", "SLOTS_PER_BUNDLE"]

#: Size of one bundle in the simulated address space.
BUNDLE_BYTES = 16

SLOTS_PER_BUNDLE = 3

#: Unit letters a slot of each kind may legally hold.  'A'-type ALU ops
#: issue on either an M or an I slot, as on real IA-64.
_COMPATIBLE = {
    "M": {"M", "A"},
    "I": {"I", "A"},
    "F": {"F"},
    "B": {"B"},
    "L": {"I", "A"},  # movl occupies L+X; modeled as one long slot
}


def _default_unit(instr: Instruction) -> str:
    """Issue unit of an instruction; 'A' = ALU op usable on M or I."""
    if instr.is_memory:
        return "M"
    if instr.is_branch:
        return "B"
    if instr.op in (Op.FMA, Op.FADD, Op.FSUB, Op.FMUL, Op.FABS, Op.FMAX, Op.SETF, Op.GETF):
        return "F"
    return instr.unit


class Bundle:
    """Three instruction slots plus a template."""

    __slots__ = ("slots", "template")

    def __init__(self, slots: list[Instruction], template: str | None = None) -> None:
        if len(slots) != SLOTS_PER_BUNDLE:
            raise BundleError(f"bundle needs {SLOTS_PER_BUNDLE} slots, got {len(slots)}")
        if template is None:
            template = "".join(
                ("i" if u == "A" else u.lower())
                for u in (_default_unit(i) for i in slots)
            )
        template = template.lower()
        if len(template) != SLOTS_PER_BUNDLE:
            raise BundleError(f"bad template {template!r}")
        for slot_unit, instr in zip(template.upper(), slots):
            if slot_unit not in _COMPATIBLE:
                raise BundleError(f"unknown unit {slot_unit!r} in template")
            if instr.op is Op.NOP or instr.op is Op.HALT:
                continue  # nops fill any slot in the simulator
            unit = _default_unit(instr)
            if unit not in _COMPATIBLE[slot_unit] and unit != slot_unit:
                raise BundleError(
                    f"instruction unit {unit} illegal in {slot_unit} slot "
                    f"(template {template!r})"
                )
        self.slots = list(slots)
        self.template = template

    def with_slot(self, index: int, instr: Instruction) -> "Bundle":
        """A copy of this bundle with one slot replaced.

        The replacement must be unit-compatible with the slot; COBRA's
        rewrites (lfetch -> nop, lfetch -> lfetch.excl) always are.
        """
        if not 0 <= index < SLOTS_PER_BUNDLE:
            raise BundleError(f"slot index {index} out of range")
        slots = list(self.slots)
        slots[index] = instr
        return Bundle(slots, self.template)

    def __iter__(self):
        return iter(self.slots)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bundle):
            return NotImplemented
        return self.slots == other.slots and self.template == other.template

    def __hash__(self) -> int:
        return hash((tuple(self.slots), self.template))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        from .disassembler import format_bundle

        return f"<Bundle {format_bundle(self)}>"
