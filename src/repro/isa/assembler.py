"""A small assembler for the simulated ISA.

Accepts the same textual syntax the disassembler emits (which follows
the paper's Figure 2), so `assemble(disassemble(img))` round-trips.
Intended for tests, examples, and hand-written micro-kernels; the
compiler builds :class:`~repro.isa.instructions.Instruction` objects
directly.

Supported forms::

    .b1_22:                         // label (bundle-aligned)
    { .mmb                          // explicit bundle
      (p16) ldfd f38=[r33]
      (p16) lfetch.nt1 [r43]
      nop.b 0 ;;
    }
    add r41=16,r43                  // loose instructions are packed
    br.ctop.sptk .b1_22             // greedily, 3 per bundle

Loose instructions are packed three to a bundle; a label or a branch
flushes the current bundle (labels must land on bundle boundaries).
"""

from __future__ import annotations

import re

from ..errors import AssemblyError
from .binary import BinaryImage
from .bundle import Bundle
from .instructions import Instruction, Op

__all__ = ["assemble", "parse_instruction"]

_LABEL_RE = re.compile(r"^([.\w$]+):$")
_PRED_RE = re.compile(r"^\((p\d+)\)\s+(.*)$")
_REG_RE = re.compile(r"^([rfp])(\d+)$")

_CMP_OPS = {
    "lt": (Op.CMP_LT, Op.CMPI_LT),
    "le": (Op.CMP_LE, Op.CMPI_LE),
    "eq": (Op.CMP_EQ, Op.CMPI_EQ),
    "ne": (Op.CMP_NE, Op.CMPI_NE),
}

_BR_OPS = {"cond": Op.BR_COND, "ctop": Op.BR_CTOP, "cloop": Op.BR_CLOOP, "wtop": Op.BR_WTOP}


def _reg(token: str, kind: str, line: int) -> int:
    m = _REG_RE.match(token.strip())
    if not m or m.group(1) != kind:
        raise AssemblyError(f"expected {kind}-register, got {token!r}", line)
    return int(m.group(2))


def _int(token: str, line: int) -> int:
    try:
        return int(token.strip(), 0)
    except ValueError:
        raise AssemblyError(f"bad integer {token!r}", line) from None


def _split_eq(body: str, line: int) -> tuple[str, str]:
    if "=" not in body:
        raise AssemblyError(f"expected '=' in {body!r}", line)
    lhs, rhs = body.split("=", 1)
    return lhs.strip(), rhs.strip()


def _mem_operand(token: str, line: int) -> tuple[int, int]:
    """Parse ``[rN]`` or ``[rN],imm`` -> (address register, post-inc)."""
    token = token.strip()
    m = re.match(r"^\[(r\d+)\](?:,(.+))?$", token)
    if not m:
        raise AssemblyError(f"bad memory operand {token!r}", line)
    addr = _reg(m.group(1), "r", line)
    inc = _int(m.group(2), line) if m.group(2) else 0
    return addr, inc


def _store_source(token: str, line: int) -> tuple[str, int]:
    """Parse a store's ``rN`` or ``rN,imm`` source (post-increment form)."""
    if "," in token:
        src, inc = token.split(",", 1)
        return src.strip(), _int(inc, line)
    return token.strip(), 0


def parse_instruction(text: str, line: int = 0) -> Instruction:
    """Parse one instruction (with optional ``(pN)`` prefix)."""
    text = text.strip()
    qp = 0
    m = _PRED_RE.match(text)
    if m:
        qp = int(m.group(1)[1:])
        text = m.group(2).strip()
    if text.endswith(";;"):
        text = text[:-2].strip()

    parts = text.split(None, 1)
    mnemonic = parts[0]
    body = parts[1].strip() if len(parts) > 1 else ""
    dots = mnemonic.split(".")
    name = dots[0]

    if name == "nop":
        unit = dots[1].upper() if len(dots) > 1 else "I"
        return Instruction(Op.NOP, qp=qp, unit=unit)
    if name == "halt":
        return Instruction(Op.HALT, qp=qp, unit="B")
    if name == "clrrrb":
        return Instruction(Op.CLRRRB, qp=qp)
    if name == "alloc":
        lhs, rhs = _split_eq(body, line)
        if lhs != "rot":
            raise AssemblyError(f"alloc expects rot=<n>, got {body!r}", line)
        return Instruction(Op.ALLOC, qp=qp, imm=_int(rhs, line))
    if name in ("add", "adds"):
        lhs, rhs = _split_eq(body, line)
        dest = _reg(lhs, "r", line)
        a, b = (s.strip() for s in rhs.split(","))
        if a.startswith("r"):
            return Instruction(Op.ADD, qp=qp, r1=dest, r2=_reg(a, "r", line), r3=_reg(b, "r", line))
        return Instruction(Op.ADDI, qp=qp, r1=dest, imm=_int(a, line), r2=_reg(b, "r", line))
    if name == "sub":
        lhs, rhs = _split_eq(body, line)
        a, b = (s.strip() for s in rhs.split(","))
        return Instruction(Op.SUB, qp=qp, r1=_reg(lhs, "r", line), r2=_reg(a, "r", line), r3=_reg(b, "r", line))
    if name in ("and", "or", "xor"):
        lhs, rhs = _split_eq(body, line)
        a, b = (s.strip() for s in rhs.split(","))
        op = {"and": Op.AND, "or": Op.OR, "xor": Op.XOR}[name]
        return Instruction(op, qp=qp, r1=_reg(lhs, "r", line), r2=_reg(a, "r", line), r3=_reg(b, "r", line))
    if name in ("shl", "shr"):
        lhs, rhs = _split_eq(body, line)
        a, b = (s.strip() for s in rhs.split(","))
        op = Op.SHL if name == "shl" else Op.SHR
        return Instruction(op, qp=qp, r1=_reg(lhs, "r", line), r2=_reg(a, "r", line), imm=_int(b, line))
    if name == "shladd":
        lhs, rhs = _split_eq(body, line)
        a, b, c = (s.strip() for s in rhs.split(","))
        return Instruction(
            Op.SHLADD, qp=qp, r1=_reg(lhs, "r", line), r2=_reg(a, "r", line),
            imm=_int(b, line), r3=_reg(c, "r", line),
        )
    if name in ("mov", "movl"):
        lhs, rhs = _split_eq(body, line)
        if lhs == "ar.lc":
            if rhs.startswith("r"):
                return Instruction(Op.MOV_LC_REG, qp=qp, r2=_reg(rhs, "r", line))
            return Instruction(Op.MOV_LC_IMM, qp=qp, imm=_int(rhs, line))
        if lhs == "ar.ec":
            return Instruction(Op.MOV_EC_IMM, qp=qp, imm=_int(rhs, line))
        if lhs == "pr.rot":
            return Instruction(Op.MOV_PR_ROT, qp=qp, imm=_int(rhs, line))
        if lhs.startswith("f"):
            # pseudo: mov fX=fY -> fadd fX=fY,f0 ; mov fX=0 -> fadd fX=f0,f0
            dest = _reg(lhs, "f", line)
            if rhs.startswith("f") and _REG_RE.match(rhs):
                return Instruction(Op.FADD, qp=qp, r1=dest, r2=_reg(rhs, "f", line), r3=0)
            if _int(rhs, line) == 0:
                return Instruction(Op.FADD, qp=qp, r1=dest, r2=0, r3=0)
            raise AssemblyError("mov fX=<imm> only supports 0 (use setf)", line)
        dest = _reg(lhs, "r", line)
        if rhs.startswith("r") and _REG_RE.match(rhs):
            return Instruction(Op.MOV, qp=qp, r1=dest, r2=_reg(rhs, "r", line))
        return Instruction(Op.MOVI, qp=qp, r1=dest, imm=_int(rhs, line))
    if name == "cmp":
        if len(dots) < 2 or dots[1] not in _CMP_OPS:
            raise AssemblyError(f"unknown compare {mnemonic!r}", line)
        reg_op, imm_op = _CMP_OPS[dots[1]]
        lhs, rhs = _split_eq(body, line)
        pt, pf = (s.strip() for s in lhs.split(","))
        a, b = (s.strip() for s in rhs.split(","))
        common = dict(qp=qp, r1=_reg(pt, "p", line), r2=_reg(pf, "p", line), r3=_reg(a, "r", line))
        if b.startswith("r") and _REG_RE.match(b):
            return Instruction(reg_op, r4=_reg(b, "r", line), **common)
        return Instruction(imm_op, imm=_int(b, line), **common)
    if name == "ld8":
        lhs, rhs = _split_eq(body, line)
        addr, inc = _mem_operand(rhs, line)
        return Instruction(
            Op.LD8, qp=qp, r1=_reg(lhs, "r", line), r2=addr, imm=inc,
            excl=("bias" in dots), unit="M",
        )
    if name == "fetchadd8":
        lhs, rhs = _split_eq(body, line)
        addr, inc = _mem_operand(rhs, line)
        return Instruction(Op.FETCHADD8, qp=qp, r1=_reg(lhs, "r", line), r2=addr, imm=inc, unit="M")
    if name == "st8":
        lhs, rhs = _split_eq(body, line)
        addr, _ = _mem_operand(lhs, line)
        src, inc = _store_source(rhs, line)
        return Instruction(Op.ST8, qp=qp, r2=addr, r3=_reg(src, "r", line), imm=inc, unit="M")
    if name == "ldfd":
        lhs, rhs = _split_eq(body, line)
        addr, inc = _mem_operand(rhs, line)
        return Instruction(Op.LDFD, qp=qp, r1=_reg(lhs, "f", line), r2=addr, imm=inc, unit="M")
    if name == "stfd":
        lhs, rhs = _split_eq(body, line)
        addr, _ = _mem_operand(lhs, line)
        src, inc = _store_source(rhs, line)
        return Instruction(Op.STFD, qp=qp, r2=addr, r3=_reg(src, "f", line), imm=inc, unit="M")
    if name == "lfetch":
        addr, inc = _mem_operand(body, line)
        hint = next((d for d in dots[1:] if d in ("nt1", "nt2", "nta")), None)
        return Instruction(
            Op.LFETCH, qp=qp, r2=addr, imm=inc, hint=hint, excl=("excl" in dots), unit="M",
        )
    if name in ("fma", "fadd", "fsub", "fmul", "fmax", "fabs"):
        lhs, rhs = _split_eq(body, line)
        dest = _reg(lhs, "f", line)
        srcs = [_reg(s, "f", line) for s in rhs.split(",")]
        if name == "fma":
            return Instruction(Op.FMA, qp=qp, r1=dest, r2=srcs[0], r3=srcs[1], r4=srcs[2])
        if name == "fabs":
            return Instruction(Op.FABS, qp=qp, r1=dest, r2=srcs[0])
        op = {"fadd": Op.FADD, "fsub": Op.FSUB, "fmul": Op.FMUL, "fmax": Op.FMAX}[name]
        return Instruction(op, qp=qp, r1=dest, r2=srcs[0], r3=srcs[1])
    if name == "setf":
        lhs, rhs = _split_eq(body, line)
        return Instruction(Op.SETF, qp=qp, r1=_reg(lhs, "f", line), r2=_reg(rhs, "r", line))
    if name == "getf":
        lhs, rhs = _split_eq(body, line)
        return Instruction(Op.GETF, qp=qp, r1=_reg(lhs, "r", line), r2=_reg(rhs, "f", line))
    if name == "br":
        hint = dots[2] if len(dots) > 2 else None

        def target_kwargs(text: str) -> dict:
            try:
                return {"imm": int(text, 0)}
            except ValueError:
                return {"label": text or None}

        if len(dots) == 1:
            return Instruction(Op.BR, qp=qp, unit="B", **target_kwargs(body))
        kind = dots[1]
        if kind == "call":
            return Instruction(Op.BR_CALL, qp=qp, unit="B", **target_kwargs(body))
        if kind == "ret":
            return Instruction(Op.BR_RET, qp=qp, unit="B")
        if kind in _BR_OPS:
            return Instruction(
                _BR_OPS[kind], qp=qp, hint=hint, unit="B", **target_kwargs(body)
            )
        raise AssemblyError(f"unknown branch {mnemonic!r}", line)
    raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line)


def _pad_bundle(instrs: list[Instruction]) -> Bundle:
    from .instructions import nop

    slots = list(instrs)
    if slots and slots[-1].is_branch:
        # keep the branch in the last slot (IA-64 .mib/.mmb convention)
        while len(slots) < 3:
            slots.insert(len(slots) - 1, nop("M" if len(slots) == 1 else "I"))
    else:
        while len(slots) < 3:
            slots.append(nop("I"))
    return Bundle(slots)


def assemble(text: str, base: int | None = None) -> BinaryImage:
    """Assemble source text into a linked :class:`BinaryImage`."""
    image = BinaryImage() if base is None else BinaryImage(base)
    pending: list[Instruction] = []
    in_bundle = False
    bundle_slots: list[Instruction] = []
    bundle_template: str | None = None

    def flush() -> None:
        while pending:
            chunk, rest = pending[:3], pending[3:]
            # keep a branch (or halt) in the last slot of its bundle
            for i, ins in enumerate(chunk[:-1]):
                if ins.is_branch or ins.op is Op.HALT:
                    chunk, rest = chunk[: i + 1], chunk[i + 1 :] + rest
                    break
            image.append(_pad_bundle(chunk))
            pending[:] = rest

    for lineno, raw in enumerate(text.splitlines(), start=1):
        code = raw.split("//", 1)[0].strip()
        # tolerate disassembler output: strip a leading address column
        m = re.match(r"^0x[0-9a-fA-F]+\s+(.*)$", code)
        if m:
            code = m.group(1).strip()
        if not code:
            continue
        if code.startswith("{"):
            if in_bundle:
                raise AssemblyError("nested bundle", lineno)
            flush()
            in_bundle = True
            bundle_slots = []
            rest = code[1:].strip()
            bundle_template = rest[1:] if rest.startswith(".") else None
            continue
        if code == "}":
            if not in_bundle:
                raise AssemblyError("unmatched '}'", lineno)
            if len(bundle_slots) != 3:
                raise AssemblyError(f"bundle has {len(bundle_slots)} slots", lineno)
            image.append(Bundle(bundle_slots, bundle_template))
            in_bundle = False
            continue
        m = _LABEL_RE.match(code)
        if m:
            if in_bundle:
                raise AssemblyError("label inside bundle", lineno)
            flush()
            image.mark(m.group(1))
            continue
        instr = parse_instruction(code, lineno)
        if in_bundle:
            bundle_slots.append(instr)
        else:
            pending.append(instr)
            if instr.is_branch or instr.op is Op.HALT:
                flush()
    if in_bundle:
        raise AssemblyError("unterminated bundle")
    flush()
    image.link()
    return image
