"""Simulated threading / OpenMP-like runtime."""

from .affinity import bind_threads
from .barrier import emit_barrier
from .team import Call, ParallelProgram, RunResult, static_chunks
from .thread import SimThread

__all__ = [
    "bind_threads",
    "emit_barrier",
    "Call",
    "ParallelProgram",
    "RunResult",
    "static_chunks",
    "SimThread",
]
