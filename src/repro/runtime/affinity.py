"""Thread-to-CPU binding policies.

``compact`` fills nodes in order (threads 0,1 on node 0, ...);
``scatter`` round-robins across nodes first.  The paper binds each
thread to a different processor; on the Altix the placement interacts
with first-touch page homes, so both policies are provided.
"""

from __future__ import annotations

from ..config import MachineConfig
from ..errors import RuntimeError_

__all__ = ["bind_threads"]


def bind_threads(config: MachineConfig, n_threads: int, policy: str = "compact") -> list[int]:
    """Return the CPU id for each thread id."""
    if n_threads < 1:
        raise RuntimeError_("need at least one thread")
    if n_threads > config.n_cpus:
        raise RuntimeError_(
            f"{n_threads} threads exceed {config.n_cpus} CPUs (threads are 1:1 bound)"
        )
    if policy == "compact":
        return list(range(n_threads))
    if policy == "scatter":
        per_node = config.cpus_per_node
        order: list[int] = []
        for offset in range(per_node):
            for node in range(config.n_nodes):
                order.append(node * per_node + offset)
        return order[:n_threads]
    raise RuntimeError_(f"unknown affinity policy {policy!r}")
