"""Simulated worker threads.

Threads are 1:1 bound to CPUs for the whole run ("each thread is bound
to a different processor", paper §2), so a thread is little more than a
record tying a thread id to a core and its entry point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.core import Core

__all__ = ["SimThread"]


@dataclass
class SimThread:
    """One OpenMP worker thread bound to one core."""

    tid: int
    core: Core
    entry: int

    def start(self) -> None:
        self.core.start(self.entry)

    @property
    def done(self) -> bool:
        return self.core.halted

    @property
    def cpu_id(self) -> int:
        return self.core.cpu_id
