"""OpenMP barrier, compiled to machine code.

A sense-reversing central barrier using ``fetchadd8`` on a shared
counter and a spin on a generation word — the implicit barrier at the
end of every ``omp parallel for``.  Spinning threads re-read the
generation line, so barrier traffic itself produces realistic coherence
transactions (a shared line bouncing between caches).

The emitted function takes no parameters (the counter/generation
addresses and thread count are baked in) and clobbers ``r25..r28`` and
``p8/p9``.
"""

from __future__ import annotations

from ..isa.instructions import Instruction, Op
from ..memory.dram import MemorySystem
from .thread import SimThread  # noqa: F401  (re-export convenience)

__all__ = ["emit_barrier"]


def emit_barrier(emitter, mem: MemorySystem, n_threads: int, name: str = "__barrier") -> int:
    """Emit the shared barrier function; return its entry address.

    ``emitter`` is a :class:`~repro.compiler.codegen.Emitter` on the
    program image.
    """
    state = mem.alloc(f"{name}_state", 256)  # count and gen on separate lines
    count_addr = state.base
    gen_addr = state.base + 128

    entry = emitter.label(name)
    emitter.emit(Instruction(Op.MOVI, r1=25, imm=count_addr))
    emitter.emit(Instruction(Op.MOVI, r1=26, imm=gen_addr))
    # g0 must be read before joining the count
    emitter.emit(Instruction(Op.LD8, r1=27, r2=26, unit="M"))
    emitter.emit(Instruction(Op.FETCHADD8, r1=28, r2=25, imm=1, unit="M"))
    emitter.emit(Instruction(Op.CMPI_EQ, r1=8, r2=9, r3=28, imm=n_threads - 1))
    emitter.emit(Instruction(Op.BR_COND, qp=9, label=f".{name}_wait", unit="B"))
    # last arrival: reset the counter, advance the generation
    emitter.emit(Instruction(Op.ST8, r2=25, r3=0, unit="M"))
    emitter.emit(Instruction(Op.ADDI, r1=27, r2=27, imm=1))
    emitter.emit(Instruction(Op.ST8, r2=26, r3=27, unit="M"))
    emitter.emit(Instruction(Op.BR_RET, unit="B"))

    emitter.label(f".{name}_wait")
    emitter.emit(Instruction(Op.LD8, r1=28, r2=26, unit="M"))
    emitter.emit(Instruction(Op.CMP_EQ, r1=8, r2=9, r3=28, r4=27))
    emitter.emit(Instruction(Op.BR_COND, qp=8, label=f".{name}_wait", unit="B"))
    emitter.emit(Instruction(Op.BR_RET, unit="B"))
    return entry
