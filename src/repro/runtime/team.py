"""Parallel program assembly and execution (the OpenMP-like runtime).

:class:`ParallelProgram` owns a binary image and wires together:

* arrays in simulated memory;
* kernel functions compiled from templates (shared by all threads);
* per-thread *driver stubs* that materialize chunk parameters in
  registers, ``br.call`` the shared kernels, and hit the implicit
  barrier between regions — the moral equivalent of the outlined
  functions an OpenMP compiler emits;
* an optional in-binary outer repetition loop (the ``j`` loop of the
  paper's DAXPY example, Figure 1).

Work distribution is OpenMP static scheduling: "computations inside a
loop are distributed based on the loop index range regardless of data
locations" (paper §5.1) — which is exactly what creates boundary
sharing and, with aggressive prefetch, the coherent misses COBRA
removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compiler.codegen import Emitter, Function, KernelCompiler
from ..compiler.kernels import KernelTemplate
from ..compiler.prefetch import AGGRESSIVE, PrefetchPlan
from ..cpu.machine import Machine
from ..cpu.scheduler import Scheduler
from ..errors import RuntimeError_
from ..isa.binary import BinaryImage
from ..isa.instructions import Instruction, Op
from ..memory.dram import Allocation
from ..memory.events import MemEvents
from .affinity import bind_threads
from .barrier import emit_barrier
from .thread import SimThread

__all__ = ["Call", "RunResult", "ParallelProgram", "static_chunks"]


def static_chunks(n: int, n_threads: int) -> list[tuple[int, int]]:
    """OpenMP static schedule: (start, count) per thread, block-wise."""
    if n < 0 or n_threads < 1:
        raise RuntimeError_("bad chunking request")
    size = -(-n // n_threads) if n else 0
    out = []
    for t in range(n_threads):
        start = min(t * size, n)
        out.append((start, min(size, n - start)))
    return out


@dataclass(frozen=True)
class Call:
    """One kernel invocation with fully-resolved register arguments."""

    fn: Function
    args: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.args) != len(self.fn.params):
            raise RuntimeError_(
                f"{self.fn.name}: {len(self.args)} args for {len(self.fn.params)} params"
            )


@dataclass
class RunResult:
    """Observables of one program execution."""

    cycles: int                       # wall-clock proxy: max per-core delta
    per_cpu_cycles: list[int]
    retired: int
    events: MemEvents                 # system-wide delta
    per_cpu_events: list[dict[str, int]]

    @property
    def l3_misses(self) -> int:
        return self.events.l3_misses

    @property
    def bus_transactions(self) -> int:
        return self.events.bus_memory


class ParallelProgram:
    """Builder + executor for one multithreaded program."""

    def __init__(self, machine: Machine, name: str = "prog") -> None:
        self.machine = machine
        self.name = name
        self.image = BinaryImage(machine.next_text_base())
        self.compiler = KernelCompiler(self.image, machine.mem)
        self.arrays: dict[str, Allocation] = {}
        self._thread_calls: dict[int, list[list[Call]]] = {}
        self._phase_breaks: list[int] = []
        self._built = False
        self.threads: list[SimThread] = []
        self.n_threads = 0

    # -- data ------------------------------------------------------------------

    def array(self, name: str, n_elems: int, init: np.ndarray | float | None = None) -> Allocation:
        """Allocate an 8-byte-element array; optionally initialize it."""
        alloc = self.machine.mem.alloc(name, n_elems * 8)
        self.arrays[name] = alloc
        if init is not None:
            view = self.machine.mem.view_f64(alloc)
            view[:n_elems] = init
        return alloc

    def int_array(self, name: str, n_elems: int, init: np.ndarray | int | None = None) -> Allocation:
        alloc = self.machine.mem.alloc(name, n_elems * 8)
        self.arrays[name] = alloc
        if init is not None:
            view = self.machine.mem.view_i64(alloc)
            view[:n_elems] = init
        return alloc

    def f64(self, name: str) -> np.ndarray:
        """Float view of an array (element count, not padded size)."""
        return self.machine.mem.view_f64(self.arrays[name])

    def i64(self, name: str) -> np.ndarray:
        return self.machine.mem.view_i64(self.arrays[name])

    # -- code ---------------------------------------------------------------------

    def kernel(self, template: KernelTemplate, plan: PrefetchPlan = AGGRESSIVE) -> Function:
        return self.compiler.compile(template, plan)

    def make_call(
        self,
        fn: Function,
        start: int,
        count: int,
        raw: dict[str, int] | None = None,
    ) -> Call:
        """Resolve a chunk ``[start, start+count)`` into register args.

        ``raw`` supplies values for ``raw`` params, keyed by array name
        (``None``-array raw params use the key ``"result"``).
        """
        raw = raw or {}
        args: list[int] = []
        for spec in fn.params:
            if spec.kind == "count":
                args.append(count)
            elif spec.kind == "addr":
                alloc = self.arrays[spec.array]
                args.append(alloc.addr(start + spec.shift))
            else:  # raw
                key = spec.array if spec.array is not None else "result"
                if key in raw:
                    args.append(raw[key])
                elif spec.array is not None:
                    args.append(self.arrays[spec.array].base)
                else:
                    raise RuntimeError_(f"{fn.name}: missing raw value for {key!r}")
        return Call(fn, tuple(args))

    def region(self, calls: list[Call | None]) -> None:
        """Add one parallel region: ``calls[t]`` runs on thread ``t``
        (``None`` = this thread has no work; it only hits the barrier)."""
        n = len(calls)
        if self.n_threads == 0:
            self.n_threads = n
        elif n != self.n_threads:
            raise RuntimeError_("all regions must cover the same thread count")
        for t, call in enumerate(calls):
            self._thread_calls.setdefault(t, []).append([call] if call else [])

    def parallel_for(
        self,
        fn: Function,
        n: int,
        n_threads: int,
        raw: dict[str, int] | None = None,
    ) -> None:
        """Convenience: one statically-chunked region over ``[0, n)``."""
        calls: list[Call | None] = []
        for start, count in static_chunks(n, n_threads):
            calls.append(self.make_call(fn, start, count, raw) if count else None)
        self.region(calls)

    def phase_break(self) -> None:
        """End the current phase: regions added before and after the
        break get independent outer repetition loops (the workload
        changes behaviour between phases — COBRA's re-adaptation case).
        """
        if self.n_threads == 0:
            raise RuntimeError_("add at least one region before a phase break")
        self._phase_breaks.append(len(self._thread_calls[0]))

    # -- build ------------------------------------------------------------------------

    def _region_groups(self, t: int) -> list[list[list[Call]]]:
        regions = self._thread_calls[t]
        groups = []
        prev = 0
        for brk in self._phase_breaks:
            groups.append(regions[prev:brk])
            prev = brk
        groups.append(regions[prev:])
        return [g for g in groups if g]

    def build(
        self,
        outer_reps: int | list[int] = 1,
        affinity: str = "compact",
        barrier_between_regions: bool = True,
    ) -> None:
        """Emit per-thread drivers (+barrier), link, and load the image.

        ``outer_reps`` may be a list with one entry per phase (phases
        are delimited with :meth:`phase_break`); a scalar applies to
        every phase.
        """
        if self._built:
            raise RuntimeError_("program already built")
        if self.n_threads == 0:
            raise RuntimeError_("no regions added")
        n_phases = len(self._region_groups(0))
        if isinstance(outer_reps, int):
            reps_list = [outer_reps] * n_phases
        else:
            reps_list = list(outer_reps)
        if len(reps_list) != n_phases:
            raise RuntimeError_(
                f"{len(reps_list)} outer_reps entries for {n_phases} phase(s)"
            )
        if any(r < 1 for r in reps_list):
            raise RuntimeError_("outer_reps must be >= 1")

        em = Emitter(self.image)
        barrier_entry = None
        if self.n_threads > 1 and barrier_between_regions:
            emit_barrier(em, self.machine.mem, self.n_threads, f"__barrier_{self.name}")
            barrier_entry = f"__barrier_{self.name}"

        cpu_ids = bind_threads(self.machine.config, self.n_threads, affinity)
        for t in range(self.n_threads):
            entry_label = f"__thread{t}_{self.name}"
            em.label(entry_label)
            for phase, group in enumerate(self._region_groups(t)):
                reps = reps_list[phase]
                if reps > 1:
                    # r31: the only GR that must stay live across kernel
                    # calls.  It sits above the parameter window
                    # (r16..r27) and the barrier scratch regs (r25..r28).
                    em.emit(Instruction(Op.MOVI, r1=31, imm=reps))
                    em.label(f".outer{t}p{phase}_{self.name}")
                for region in group:
                    for call in region:
                        for spec, value in zip(call.fn.params, call.args):
                            em.emit(Instruction(Op.MOVI, r1=spec.reg, imm=value))
                        em.emit(Instruction(Op.BR_CALL, label=call.fn.name, unit="B"))
                    if barrier_entry is not None:
                        em.emit(Instruction(Op.BR_CALL, label=barrier_entry, unit="B"))
                if reps > 1:
                    em.emit(Instruction(Op.ADDI, r1=31, r2=31, imm=-1))
                    em.emit(Instruction(Op.CMPI_NE, r1=6, r2=7, r3=31, imm=0))
                    em.emit(
                        Instruction(
                            Op.BR_COND, qp=6, label=f".outer{t}p{phase}_{self.name}",
                            unit="B",
                        )
                    )
            em.emit(Instruction(Op.HALT, unit="B"))
            em.flush()

        self.compiler.link()
        self.machine.load_image(self.image)
        self.threads = [
            SimThread(t, self.machine.cores[cpu_ids[t]], self.image.labels[f"__thread{t}_{self.name}"])
            for t in range(self.n_threads)
        ]
        self._built = True

    # -- run ----------------------------------------------------------------------------

    def run(self, max_bundles: int | None = None, scheduler: Scheduler | None = None) -> RunResult:
        """Execute all threads to completion; return delta observables."""
        if not self._built:
            raise RuntimeError_("call build() first")
        cores = [th.core for th in self.threads]
        start_cycles = [c.cycles for c in cores]
        start_retired = [c.retired for c in cores]
        start_events = [c.cache.events.snapshot() for c in cores]

        for th in self.threads:
            th.start()
        sched = scheduler or Scheduler(cores)
        sched.run_until_halt(max_bundles)

        per_cpu_cycles = [c.cycles - s for c, s in zip(cores, start_cycles)]
        per_cpu_events = [
            c.cache.events.delta(s) for c, s in zip(cores, start_events)
        ]
        total = MemEvents()
        for c in cores:
            total.add(c.cache.events)
        baseline = MemEvents()
        for snap in start_events:
            for key, val in snap.items():
                setattr(baseline, key, getattr(baseline, key) + val)
        delta = MemEvents()
        for name in MemEvents.__slots__:
            setattr(delta, name, getattr(total, name) - getattr(baseline, name))

        return RunResult(
            cycles=max(per_cpu_cycles),
            per_cpu_cycles=per_cpu_cycles,
            retired=sum(c.retired - s for c, s in zip(cores, start_retired)),
            events=delta,
            per_cpu_events=per_cpu_events,
        )
