"""Command-line interface: run workloads and paper experiments.

Examples::

    python -m repro daxpy --threads 4 --working-set 128K --strategy adaptive
    python -m repro npb cg --machine altix8 --strategy noprefetch
    python -m repro table1
    python -m repro disasm daxpy
    python -m repro validate --workloads daxpy cg mg
    python -m repro chaos --workloads daxpy cg --seed 7 --runs 3
    python -m repro daxpy --checkpoint-dir ckpt --strategy noprefetch
    python -m repro resume --checkpoint-dir ckpt
    python -m repro recovery --workloads daxpy --stride 4
    python -m repro npb cg --profile-db cg.profile.db
    python -m repro warm --workloads daxpy cg
    python -m repro overload --workloads daxpy --seed 3 --runs 2
    python -m repro daxpy --trace-cache-budget 96 --overload-seed 7
"""

from __future__ import annotations

import argparse
import os
import sys

import json

from dataclasses import replace

from .analysis import format_table1
from .bench import (
    BENCH_STRATEGIES,
    FULL_BENCHMARKS,
    compare_reports,
    format_report,
    run_bench,
)
from .config import (
    FaultConfig,
    GovernorConfig,
    OverloadConfig,
    PersistConfig,
    ProfileDBConfig,
    itanium2_smp,
    sgi_altix,
)
from .core import STRATEGIES, run_with_cobra
from .faults import CHAOS_STRATEGIES, ChaosHarness
from .cpu import Machine
from .isa import Op, disassemble
from .persist import FileDisk, recover
from .validate import (
    DifferentialHarness,
    RecoveryHarness,
    check_image,
    daxpy_spec,
    default_machines,
    npb_spec,
)
from .workloads import BENCHMARKS, build_daxpy, verify_daxpy, working_set_elems

__all__ = ["main"]

MACHINES = {
    "smp4": (lambda scale: itanium2_smp(4, scale=scale), 4),
    "altix8": (lambda scale: sgi_altix(8, scale=scale), 8),
}


# Strategy names accepted at the CLI.  "baseline" (and its harness alias
# "none") run the raw simulator; the rest come from the COBRA policy.
CLI_STRATEGIES = ("baseline",) + STRATEGIES


def _bad_strategy(name: str, valid: tuple[str, ...]) -> int:
    """One-line diagnostic for an unknown strategy name; exit code 2.

    Unknown names must be rejected here at the CLI boundary — letting
    them reach ``decide()`` surfaces a raw ValueError traceback.
    """
    print(
        f"repro: error: unknown strategy {name!r} "
        f"(choose from: {', '.join(valid)})",
        file=sys.stderr,
    )
    return 2


def _bad_jobs(jobs: int) -> int | None:
    """Exit code 2 for a non-positive --jobs, else None."""
    if jobs < 1:
        print(f"repro: error: --jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2
    return None


def _machine(args) -> tuple[Machine, int]:
    factory, default_threads = MACHINES[args.machine]
    machine = Machine(factory(args.scale))
    threads = args.threads or default_threads
    return machine, threads


def _run_config(args, machine: Machine, meta: dict):
    """COBRA config carrying the CLI's store attachments, or ``None``.

    ``meta`` is the workload descriptor journaled into the checkpoint
    store so that ``repro resume`` can rebuild the same machine and
    program without any side-channel file.  ``--profile-db`` rides on
    the same config: unlike the checkpoint store it survives across
    runs, so the second invocation of the same workload warm-starts.
    """
    config = None
    if args.checkpoint_dir:
        persist = PersistConfig(directory=args.checkpoint_dir, meta=meta)
        config = replace(machine.config.cobra, persist=persist)
    if getattr(args, "profile_db", None):
        config = replace(
            config or machine.config.cobra,
            profile_db=ProfileDBConfig(path=args.profile_db),
        )
    budget = getattr(args, "trace_cache_budget", None)
    overload_seed = getattr(args, "overload_seed", None)
    if budget is not None or overload_seed is not None:
        # --overload-seed arms the full mixed schedule (cf. the fleet
        # --fault-seed flag): every overload category at a moderate
        # rate, capped so the run can demonstrate recovery
        overload = (
            None
            if overload_seed is None
            else OverloadConfig(
                seed=overload_seed,
                shrink_rate=0.15, flood_rate=0.15,
                disk_rate=0.15, storm_rate=0.15,
                max_events=8,
            )
        )
        config = replace(
            config or machine.config.cobra,
            governor=GovernorConfig(
                trace_cache_budget=budget, overload=overload
            ),
        )
    return config


def _bad_profile_db(args) -> int | None:
    """Exit code 2 for a malformed --profile-db, else None.

    Same boundary contract as the REPRO_* env checks: one-line
    diagnostic before any simulation work starts.
    """
    path = getattr(args, "profile_db", None)
    if not path:
        return None
    if args.strategy == "baseline":
        print(
            "repro: error: --profile-db requires a COBRA strategy "
            "(the baseline collects no profile)",
            file=sys.stderr,
        )
        return 2
    if os.path.isdir(path):
        print(
            f"repro: error: --profile-db must name a database file, "
            f"got directory {path!r}",
            file=sys.stderr,
        )
        return 2
    return None


def _bad_governor(args) -> int | None:
    """Exit code 2 for malformed governor knobs, else None."""
    budget = getattr(args, "trace_cache_budget", None)
    seed = getattr(args, "overload_seed", None)
    if budget is None and seed is None:
        return None
    if args.strategy == "baseline":
        print(
            "repro: error: --trace-cache-budget/--overload-seed require a "
            "COBRA strategy (the baseline has no runtime to govern)",
            file=sys.stderr,
        )
        return 2
    if budget is not None and budget < 1:
        print(
            f"repro: error: --trace-cache-budget must be >= 1, got {budget}",
            file=sys.stderr,
        )
        return 2
    if seed is not None and seed < 0:
        print(
            f"repro: error: --overload-seed must be >= 0, got {seed}",
            file=sys.stderr,
        )
        return 2
    return None


def _report_run(result, report, verified: bool | None) -> int:
    print(f"cycles:          {result.cycles}")
    print(f"retired:         {result.retired}")
    print(f"L3 misses:       {result.events.l3_misses}")
    print(f"bus txns:        {result.events.bus_memory}")
    print(f"coherent ratio:  {result.events.coherent_ratio():.2f}")
    if verified is not None:
        print(f"verified:        {verified}")
    if report is not None:
        print(report.summary())
    return 0 if verified in (True, None) else 1


def _cmd_daxpy(args) -> int:
    if args.strategy not in CLI_STRATEGIES:
        return _bad_strategy(args.strategy, CLI_STRATEGIES)
    if args.checkpoint_dir and args.strategy == "baseline":
        print(
            "repro: error: --checkpoint-dir requires a COBRA strategy "
            "(the baseline has no runtime state to checkpoint)",
            file=sys.stderr,
        )
        return 2
    bad = _bad_profile_db(args)
    if bad is None:
        bad = _bad_governor(args)
    if bad is not None:
        return bad
    machine, threads = _machine(args)
    n = working_set_elems(args.working_set, machine.config.scale)
    prog = build_daxpy(machine, n, threads, outer_reps=args.reps)
    if args.strategy == "baseline":
        result, report = prog.run(), None
    else:
        config = _run_config(args, machine, {
            "cmd": "daxpy", "machine": args.machine, "threads": threads,
            "scale": args.scale, "working_set": args.working_set,
            "reps": args.reps, "strategy": args.strategy,
        })
        result, report = run_with_cobra(prog, args.strategy, config=config)
    return _report_run(result, report, verify_daxpy(prog, args.reps))


def _cmd_npb(args) -> int:
    if args.strategy not in CLI_STRATEGIES:
        return _bad_strategy(args.strategy, CLI_STRATEGIES)
    if args.checkpoint_dir and args.strategy == "baseline":
        print(
            "repro: error: --checkpoint-dir requires a COBRA strategy "
            "(the baseline has no runtime state to checkpoint)",
            file=sys.stderr,
        )
        return 2
    bad = _bad_profile_db(args)
    if bad is None:
        bad = _bad_governor(args)
    if bad is not None:
        return bad
    bench = BENCHMARKS[args.benchmark]
    machine, threads = _machine(args)
    reps = args.reps or bench.default_reps
    prog = bench.build(machine, threads, reps=reps)
    if args.strategy == "baseline":
        result, report = prog.run(), None
    else:
        config = _run_config(args, machine, {
            "cmd": "npb", "benchmark": args.benchmark, "machine": args.machine,
            "threads": threads, "scale": args.scale, "reps": reps,
            "strategy": args.strategy,
        })
        result, report = run_with_cobra(prog, args.strategy, config=config)
    return _report_run(result, report, bench.verify(prog, reps))


def _cmd_resume(args) -> int:
    """Warm-restart a checkpointed run from its workload descriptor."""
    if not os.path.isdir(args.checkpoint_dir):
        print(
            f"repro: error: no checkpoint directory {args.checkpoint_dir!r}",
            file=sys.stderr,
        )
        return 2
    recovered = recover(FileDisk(args.checkpoint_dir))
    meta = recovered.meta
    if not meta:
        print(
            f"repro: error: no resumable checkpoint in {args.checkpoint_dir!r} "
            "(no workload descriptor recovered)",
            file=sys.stderr,
        )
        return 2
    mname = meta.get("machine", "smp4")
    if mname not in MACHINES:
        print(
            f"repro: error: checkpoint names unknown machine {mname!r}",
            file=sys.stderr,
        )
        return 2
    strategy = meta.get("strategy", "adaptive")
    if strategy not in STRATEGIES:
        return _bad_strategy(strategy, STRATEGIES)
    factory, default_threads = MACHINES[mname]
    machine = Machine(factory(int(meta.get("scale", 16))))
    threads = int(meta.get("threads") or default_threads)
    cmd = meta.get("cmd")
    if cmd == "daxpy":
        n = working_set_elems(meta.get("working_set", "128K"), machine.config.scale)
        reps = int(meta.get("reps", 20))
        prog = build_daxpy(machine, n, threads, outer_reps=reps)
        verified = lambda p: verify_daxpy(p, reps)  # noqa: E731
    elif cmd == "npb" and meta.get("benchmark") in BENCHMARKS:
        bench = BENCHMARKS[meta["benchmark"]]
        reps = int(meta.get("reps") or bench.default_reps)
        prog = bench.build(machine, threads, reps=reps)
        verified = lambda p: bench.verify(p, reps)  # noqa: E731
    else:
        print(
            f"repro: error: checkpoint descriptor names unknown workload {cmd!r}",
            file=sys.stderr,
        )
        return 2
    config = replace(
        machine.config.cobra,
        persist=PersistConfig(directory=args.checkpoint_dir, meta=meta),
    )
    result, report = run_with_cobra(prog, strategy, config=config)
    return _report_run(result, report, verified(prog))


def _cmd_table1(args) -> int:
    counts = {}
    for name, bench in BENCHMARKS.items():
        machine = Machine(itanium2_smp(4, scale=args.scale))
        prog = bench.build(machine, 4, reps=1)
        counts[name] = (
            prog.image.count_ops(Op.LFETCH),
            prog.image.count_ops(Op.BR_CTOP),
            prog.image.count_ops(Op.BR_CLOOP),
            prog.image.count_ops(Op.BR_WTOP),
        )
    print(format_table1(counts))
    return 0


def _cmd_disasm(args) -> int:
    if args.kernel == "daxpy":
        machine = Machine(itanium2_smp(4, scale=args.scale))
        prog = build_daxpy(machine, 2048, 4, outer_reps=1)
        region = prog.image.regions["daxpy"]
        print(disassemble(prog.image, *region))
        return 0
    bench = BENCHMARKS.get(args.kernel)
    if bench is None:
        print(f"unknown kernel {args.kernel!r}", file=sys.stderr)
        return 2
    machine = Machine(itanium2_smp(4, scale=args.scale))
    prog = bench.build(machine, 4, reps=1)
    print(disassemble(prog.image))
    return 0


def _cmd_validate(args) -> int:
    bad = _bad_jobs(args.jobs)
    if bad is not None:
        return bad
    strategies = None
    if args.strategies:
        valid = ("none",) + STRATEGIES
        for name in args.strategies:
            if name not in valid:
                return _bad_strategy(name, valid)
        # the harness needs the "none" reference run to diff against
        strategies = tuple(args.strategies)
        if "none" not in strategies:
            strategies = ("none",) + strategies
    failures = 0
    machines = default_machines(args.threads, scale=args.scale)
    for name in args.workloads:
        if name == "daxpy":
            spec = daxpy_spec(n_threads=args.threads, reps=args.reps)
        elif name in BENCHMARKS:
            spec = npb_spec(name, n_threads=args.threads, reps=args.reps)
        else:
            print(f"unknown workload {name!r}", file=sys.stderr)
            return 2
        harness = (
            DifferentialHarness(spec, machines, strategies=strategies, mode=args.mode)
            if strategies is not None
            else DifferentialHarness(spec, machines, mode=args.mode)
        )
        report = harness.run(jobs=args.jobs)
        print(report.summary())
        if not report.ok:
            failures += 1

        # ISA checks on the compiled image of this workload
        machine = Machine(itanium2_smp(max(4, args.threads), scale=args.scale))
        if name == "daxpy":
            prog = build_daxpy(machine, 256, args.threads, 1)
        else:
            prog = BENCHMARKS[name].build(machine, args.threads, reps=1)
        isa_violations = check_image(prog.image, mode="record")
        status = "OK" if not isa_violations else "FAIL"
        print(f"isa[{name}]: round-trip + patch/rollback over "
              f"{len(prog.image)} bundle(s), {status}")
        for violation in isa_violations:
            print(f"  VIOLATION: {violation}")
            failures += 1
    print("validate:", "OK" if failures == 0 else f"{failures} failure(s)")
    return 0 if failures == 0 else 1


def _cmd_chaos(args) -> int:
    bad = _bad_jobs(args.jobs)
    if bad is not None:
        return bad
    strategies = CHAOS_STRATEGIES
    if args.strategies:
        for name in args.strategies:
            if name not in STRATEGIES:
                return _bad_strategy(name, STRATEGIES)
        strategies = tuple(args.strategies)
    try:
        fault_config = FaultConfig(
            sample_rate=args.sample_rate,
            patch_rate=args.patch_rate,
            loop_rate=args.loop_rate,
        )
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    seeds = tuple(range(args.seed, args.seed + args.runs))
    machines = default_machines(args.threads, scale=args.scale)
    failures = 0
    for name in args.workloads:
        if name == "daxpy":
            spec = daxpy_spec(n_threads=args.threads, reps=args.reps)
        elif name in BENCHMARKS:
            spec = npb_spec(name, n_threads=args.threads, reps=args.reps)
        else:
            print(f"unknown workload {name!r}", file=sys.stderr)
            return 2
        harness = ChaosHarness(
            spec, machines, strategies=strategies, seeds=seeds,
            fault_config=fault_config,
        )
        report = harness.run(jobs=args.jobs)
        print(report.summary())
        if not report.ok:
            failures += 1
    print("chaos:", "OK" if failures == 0 else f"{failures} failure(s)")
    return 0 if failures == 0 else 1


def _cmd_overload(args) -> int:
    # deferred: the governor package pulls in the whole runtime stack
    from .governor import OVERLOAD_SCHEDULES, OverloadHarness

    bad = _bad_jobs(args.jobs)
    if bad is not None:
        return bad
    if args.seed < 0:
        print(f"repro: error: --seed must be >= 0, got {args.seed}", file=sys.stderr)
        return 2
    if args.runs < 1:
        print(f"repro: error: --runs must be >= 1, got {args.runs}", file=sys.stderr)
        return 2
    schedules = None
    if args.schedules:
        for name in args.schedules:
            if name not in OVERLOAD_SCHEDULES:
                print(
                    f"repro: error: unknown schedule {name!r} "
                    f"(choose from: {', '.join(sorted(OVERLOAD_SCHEDULES))})",
                    file=sys.stderr,
                )
                return 2
        schedules = {name: OVERLOAD_SCHEDULES[name] for name in args.schedules}
    seeds = tuple(range(args.seed, args.seed + args.runs))
    machines = default_machines(args.threads, scale=args.scale)
    failures = 0
    for name in args.workloads:
        if name == "daxpy":
            spec = daxpy_spec(n_threads=args.threads, reps=args.reps)
        elif name in BENCHMARKS:
            spec = npb_spec(name, n_threads=args.threads, reps=args.reps)
        else:
            print(f"unknown workload {name!r}", file=sys.stderr)
            return 2
        harness = OverloadHarness(
            spec, machines, schedules=schedules, seeds=seeds
        )
        report = harness.run(jobs=args.jobs)
        print(report.summary())
        if not report.ok:
            failures += 1
    print("overload:", "OK" if failures == 0 else f"{failures} failure(s)")
    return 0 if failures == 0 else 1


def _cmd_recovery(args) -> int:
    bad = _bad_jobs(args.jobs)
    if bad is not None:
        return bad
    if args.strategy not in STRATEGIES:
        return _bad_strategy(args.strategy, STRATEGIES)
    if args.stride < 1:
        print(
            f"repro: error: --stride must be >= 1, got {args.stride}",
            file=sys.stderr,
        )
        return 2
    if args.torn_bytes < 0:
        print(
            f"repro: error: --torn-bytes must be >= 0, got {args.torn_bytes}",
            file=sys.stderr,
        )
        return 2
    torn_modes = (None, args.torn_bytes) if args.torn_bytes else (None,)
    # small-scale machines: the sweep workloads must actually cross the
    # deployment threshold, or the sweep never replays a transaction
    machines = default_machines(args.threads, scale=4)
    failures = 0
    ledgers = []
    for name in args.workloads:
        if name == "daxpy":
            spec = daxpy_spec(n_elems=2048, n_threads=args.threads, reps=args.reps)
        elif name in BENCHMARKS:
            spec = npb_spec(name, n_threads=args.threads, reps=args.reps or None)
        else:
            print(f"unknown workload {name!r}", file=sys.stderr)
            return 2
        harness = RecoveryHarness(
            spec, machines, strategy=args.strategy, stride=args.stride,
            torn_modes=torn_modes,
        )
        report = harness.run(jobs=args.jobs)
        print(report.summary())
        ledgers.append(report.to_json())
        if not report.ok:
            failures += 1
    if args.ledger_out:
        with open(args.ledger_out, "w", encoding="utf-8") as fh:
            json.dump({"reports": ledgers}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.ledger_out}")
    print("recovery:", "OK" if failures == 0 else f"{failures} failure(s)")
    return 0 if failures == 0 else 1


def _cmd_fuzz(args) -> int:
    # deferred: the fuzz package pulls in the whole runtime stack
    from .fuzz import DifferentialFuzzer, shrink
    from .fuzz.report import repro_command

    bad = _bad_jobs(args.jobs)
    if bad is not None:
        return bad
    if args.fault_seed is not None and args.replay is None:
        print(
            "repro: error: --fault-seed requires --replay "
            "(outside a replay the generator draws the fault seed)",
            file=sys.stderr,
        )
        return 2
    if args.fault_seed is not None and args.fault_seed < 0:
        print(
            f"repro: error: --fault-seed must be >= 0, got {args.fault_seed}",
            file=sys.stderr,
        )
        return 2
    if args.seeds < 1:
        print(f"repro: error: --seeds must be >= 1, got {args.seeds}", file=sys.stderr)
        return 2

    if args.replay is not None:
        fuzzer = DifferentialFuzzer(
            seeds=[args.replay], fault_seed=args.fault_seed
        )
    elif args.corpus:
        try:
            with open(args.corpus, encoding="utf-8") as fh:
                corpus = json.load(fh)
            pairs = [
                (int(entry["seed"]), int(entry["fault_seed"]))
                for entry in corpus["entries"]
            ]
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"repro: error: bad corpus {args.corpus!r}: {exc}", file=sys.stderr)
            return 2
        fuzzer = DifferentialFuzzer(pairs=pairs)
    else:
        fuzzer = DifferentialFuzzer(seeds=range(args.start, args.start + args.seeds))

    report = fuzzer.run(jobs=args.jobs)
    print(report.summary(verbose=args.verbose))

    if not report.ok and args.shrink:
        shrunk = 0
        for result in report.results:
            if result.ok or shrunk >= args.max_shrinks:
                continue
            shrunk += 1
            outcome = shrink(result.params)
            print(f"shrink[seed={result.params.seed}]: {outcome.summary()}")
            print(
                "  replay: "
                + repro_command(outcome.params.seed, outcome.params.fault_seed)
            )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0 if report.ok else 1


def _cmd_bench(args) -> int:
    bad = _bad_jobs(args.jobs)
    if bad is not None:
        return bad
    for name in args.strategies or ():
        if name not in BENCH_STRATEGIES:
            return _bad_strategy(name, BENCH_STRATEGIES)
    for name in args.benchmarks or ():
        if name not in FULL_BENCHMARKS:
            print(
                f"repro: error: unknown benchmark {name!r} "
                f"(choose from: {', '.join(FULL_BENCHMARKS)})",
                file=sys.stderr,
            )
            return 2
    baseline = None
    if args.compare:
        if not os.path.isfile(args.compare):
            print(
                f"repro: error: no baseline report {args.compare!r}",
                file=sys.stderr,
            )
            return 2
        with open(args.compare, encoding="utf-8") as fh:
            baseline = json.load(fh)
    report = run_bench(
        benchmarks=args.benchmarks or None,
        machines=args.machines or None,
        strategies=tuple(args.strategies) if args.strategies else None,
        samples=args.samples,
        quick=args.quick,
        jobs=args.jobs,
    )
    print(format_report(report))
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if baseline is not None:
        lines, ok = compare_reports(baseline, report, threshold=args.threshold)
        print(f"compare vs {args.compare} (threshold {args.threshold:.0%}):")
        for line in lines:
            print(f"  {line}")
        if not ok:
            print("bench compare: FAIL")
            return 1
        print("bench compare: OK")
    return 0


def _cmd_warm(args) -> int:
    from .bench import FULL_BENCHMARKS as WARM_BENCHMARKS
    from .bench import run_warm_case

    if args.strategy not in STRATEGIES:
        return _bad_strategy(args.strategy, STRATEGIES)
    if args.min_reduction < 0 or args.min_reduction > 100:
        print(
            f"repro: error: --min-reduction must be in [0, 100], "
            f"got {args.min_reduction}",
            file=sys.stderr,
        )
        return 2
    if args.optimize_interval < 1:
        print(
            f"repro: error: --optimize-interval must be >= 1, "
            f"got {args.optimize_interval}",
            file=sys.stderr,
        )
        return 2
    for name in args.workloads:
        if name not in WARM_BENCHMARKS:
            print(
                f"repro: error: unknown benchmark {name!r} "
                f"(choose from: {', '.join(WARM_BENCHMARKS)})",
                file=sys.stderr,
            )
            return 2
    header = (
        f"{'case':<28} {'cold ramp':>10} {'warm ramp':>10} "
        f"{'saved':>7} {'digests':>8} {'seeded':>7}"
    )
    print(header)
    print("-" * len(header))
    failures = 0
    for name in args.workloads:
        row = run_warm_case(
            name, args.machine, args.strategy,
            optimize_interval=args.optimize_interval,
        )
        ok = (
            row["digests_match"]
            and row["warm_seeded"]
            and row["ramp_reduction_pct"] >= args.min_reduction
        )
        if not ok:
            failures += 1
        print(
            f"{row['id']:<28} {row['cold']['ramp_retired']:>10} "
            f"{row['warm']['ramp_retired']:>10} "
            f"{row['ramp_reduction_pct']:>6.1f}% "
            f"{'match' if row['digests_match'] else 'DIFFER':>8} "
            f"{'yes' if row['warm_seeded'] else 'NO':>7}"
        )
    print(
        "warm:",
        "OK" if failures == 0 else f"{failures} failure(s) "
        f"(need >= {args.min_reduction:.0f}% ramp reduction, matching "
        "digests, and a seeded warm run)",
    )
    return 0 if failures == 0 else 1


def _cmd_fleet(args) -> int:
    # deferred: the fleet package pulls in the whole runtime stack
    from .config import FleetFaultConfig
    from .errors import FleetError
    from .fleet import FleetHarness
    from .validate import MachineRecipe

    bad = _bad_jobs(args.jobs)
    if bad is not None:
        return bad
    if args.instances < 1:
        print(
            f"repro: error: --instances must be >= 1, got {args.instances}",
            file=sys.stderr,
        )
        return 2
    if args.quorum < 0:
        print(
            f"repro: error: --quorum must be >= 0 (0 = auto), got {args.quorum}",
            file=sys.stderr,
        )
        return 2
    quorum = args.quorum or None
    if quorum is None:
        env = os.environ.get("REPRO_FLEET_QUORUM", "").strip()
        if env:
            quorum = int(env)  # pre-validated by _validate_env
    if quorum is not None and quorum > args.instances:
        print(
            f"repro: error: quorum {quorum} exceeds --instances {args.instances}",
            file=sys.stderr,
        )
        return 2
    if args.fault_seed is not None and args.fault_seed < 0:
        print(
            f"repro: error: --fault-seed must be >= 0, got {args.fault_seed}",
            file=sys.stderr,
        )
        return 2
    if args.flush_interval < 1:
        print(
            f"repro: error: --flush-interval must be >= 1, "
            f"got {args.flush_interval}",
            file=sys.stderr,
        )
        return 2
    if args.workload == "daxpy":
        spec = daxpy_spec(n_elems=2048, n_threads=args.threads, reps=args.reps)
    elif args.workload in BENCHMARKS:
        spec = npb_spec(args.workload, n_threads=args.threads, reps=args.reps)
    else:
        print(
            f"repro: error: unknown workload {args.workload!r}", file=sys.stderr
        )
        return 2
    faults = None
    if args.fault_seed is not None:
        # the full hostile schedule: frame faults of every kind, network
        # partitions, and one daemon crash mid-ingest
        faults = FleetFaultConfig(
            seed=args.fault_seed,
            frame_rate=0.2,
            partition_rate=0.15,
            daemon_crash_batch=5,
        )
    try:
        harness = FleetHarness(
            workload=spec,
            # small-scale machine so instances cross the deployment
            # threshold (cf. the recovery sweep)
            machine=MachineRecipe("smp", max(4, args.threads), 4),
            instances=args.instances,
            quorum=quorum,
            faults=faults,
            flush_interval=args.flush_interval,
        )
    except FleetError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    report = harness.run(jobs=args.jobs)
    print(report.summary())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0 if report.ok else 1


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COBRA reproduction: run workloads under the runtime optimizer",
    )
    parser.add_argument("--scale", type=int, default=16, help="cache scale factor")
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--machine", choices=sorted(MACHINES), default="smp4")
    common.add_argument("--threads", type=int, default=0, help="0 = machine default")
    # validated in the command handlers (one-line error, exit code 2)
    # rather than by argparse, so library strategy additions and the
    # error format stay in one place
    common.add_argument(
        "--strategy",
        metavar="{" + ",".join(CLI_STRATEGIES) + "}",
        default="adaptive",
    )
    common.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist a crash-consistent checkpoint store (journal + "
        "snapshots) in DIR; continue it later with 'repro resume'",
    )
    common.add_argument(
        "--profile-db", default=None, metavar="PATH",
        help="accumulate miss profiles and proven patch decisions in a "
        "cross-run database file at PATH; a later run of the same binary "
        "on the same machine config warm-starts from it",
    )
    common.add_argument(
        "--trace-cache-budget", type=int, default=None, metavar="N",
        help="arm the resource governor with a hard cap of N trace-cache "
        "bundles; cold inactive traces are evicted first, then further "
        "deployments are refused (accounted, never fatal)",
    )
    common.add_argument(
        "--overload-seed", type=int, default=None, metavar="SEED",
        help="attack the run with a seeded overload schedule (budget "
        "shrinks, sample floods, slow disk, ingest storms); outputs must "
        "stay bit-identical while the degradation ladder sheds load",
    )

    daxpy = sub.add_parser("daxpy", parents=[common], help="run the OpenMP DAXPY kernel")
    daxpy.add_argument("--working-set", choices=("128K", "512K", "2M"), default="128K")
    daxpy.add_argument("--reps", type=int, default=20)
    daxpy.set_defaults(func=_cmd_daxpy)

    npb = sub.add_parser("npb", parents=[common], help="run one NPB-like benchmark")
    npb.add_argument("benchmark", choices=sorted(BENCHMARKS))
    npb.add_argument("--reps", type=int, default=0, help="0 = benchmark default")
    npb.set_defaults(func=_cmd_npb)

    table1 = sub.add_parser("table1", help="print Table 1 (static counts)")
    table1.set_defaults(func=_cmd_table1)

    disasm = sub.add_parser("disasm", help="disassemble a compiled kernel")
    disasm.add_argument("kernel", help="'daxpy' or an NPB benchmark name")
    disasm.set_defaults(func=_cmd_disasm)

    validate = sub.add_parser(
        "validate",
        help="run the correctness suite: coherence invariants, "
        "differential (optimized vs baseline) bit-equality, ISA round-trips",
    )
    validate.add_argument(
        "--workloads", nargs="+", default=["daxpy", "cg", "mg"],
        help="'daxpy' and/or NPB benchmark names",
    )
    validate.add_argument("--threads", type=int, default=4)
    validate.add_argument(
        "--reps", type=int, default=2, help="outer repetitions per run"
    )
    validate.add_argument(
        "--mode", choices=("strict", "record"), default="record",
        help="strict raises on the first violation; record reports all",
    )
    validate.add_argument(
        "--strategies", nargs="+", default=None, metavar="STRATEGY",
        help="strategy matrix for the differential harness "
        "(default: none + all policies; 'none' is added if omitted)",
    )
    validate.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan scenario cells over N worker processes "
        "(reports are byte-identical at any N)",
    )
    validate.set_defaults(func=_cmd_validate)

    chaos = sub.add_parser(
        "chaos",
        help="run seeded fault-injection sweeps: under any fault schedule, "
        "program outputs must stay bit-identical to the fault-free run "
        "and every injected fault must be accounted in the ledger",
    )
    chaos.add_argument(
        "--workloads", nargs="+", default=["daxpy", "cg"],
        help="'daxpy' and/or NPB benchmark names",
    )
    chaos.add_argument("--seed", type=int, default=0, help="first PRNG seed")
    chaos.add_argument(
        "--runs", type=int, default=2,
        help="fault schedules per (machine, strategy) cell: seeds seed..seed+runs-1",
    )
    chaos.add_argument("--threads", type=int, default=4)
    chaos.add_argument(
        "--reps", type=int, default=4, help="outer repetitions per run"
    )
    chaos.add_argument(
        "--strategies", nargs="+", default=None, metavar="STRATEGY",
        help=f"COBRA strategies to fault (default: {' '.join(CHAOS_STRATEGIES)})",
    )
    chaos.add_argument(
        "--sample-rate", type=float, default=0.1,
        help="per-sample fault probability at the HPM surface",
    )
    chaos.add_argument(
        "--patch-rate", type=float, default=0.5,
        help="per-deployment fault probability at the trace-cache surface",
    )
    chaos.add_argument(
        "--loop-rate", type=float, default=0.2,
        help="per-wake fault probability at the monitor/optimizer surface",
    )
    chaos.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan scenario cells over N worker processes "
        "(reports are byte-identical at any N)",
    )
    chaos.set_defaults(func=_cmd_chaos)

    overload = sub.add_parser(
        "overload",
        help="run seeded overload sweeps: under shrinking budgets, sample "
        "floods, slow disks, and ingest storms the degradation ladder may "
        "only shed optimization work — outputs must stay bit-identical to "
        "the clean run and every shed item must be accounted",
    )
    overload.add_argument(
        "--workloads", nargs="+", default=["daxpy", "cg"],
        help="'daxpy' and/or NPB benchmark names",
    )
    overload.add_argument("--seed", type=int, default=0, help="first PRNG seed")
    overload.add_argument(
        "--runs", type=int, default=2,
        help="overload schedules per (machine, schedule) cell: "
        "seeds seed..seed+runs-1",
    )
    overload.add_argument("--threads", type=int, default=4)
    overload.add_argument(
        "--reps", type=int, default=4, help="outer repetitions per run"
    )
    overload.add_argument(
        "--schedules", nargs="+", default=None, metavar="SCHEDULE",
        help="named overload presets to sweep "
        "(default: shrink flood storm everything)",
    )
    overload.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan scenario cells over N worker processes "
        "(reports are byte-identical at any N)",
    )
    overload.set_defaults(func=_cmd_overload)

    resume = sub.add_parser(
        "resume",
        help="warm-restart a checkpointed run: recover the store, re-deploy "
        "previously proven optimizations, and continue the workload",
    )
    resume.add_argument(
        "--checkpoint-dir", required=True, metavar="DIR",
        help="directory written by a previous run's --checkpoint-dir",
    )
    resume.set_defaults(func=_cmd_resume)

    recovery = sub.add_parser(
        "recovery",
        help="crash-recovery sweep: kill the run at durable checkpoint "
        "writes (incl. mid-write tears), restart from the surviving store, "
        "and require outputs bit-identical to an uninterrupted run",
    )
    recovery.add_argument(
        "--workloads", nargs="+", default=["daxpy"],
        help="'daxpy' and/or NPB benchmark names",
    )
    recovery.add_argument("--threads", type=int, default=4)
    recovery.add_argument(
        "--reps", type=int, default=14,
        help="outer repetitions per run (enough for a deployment)",
    )
    recovery.add_argument(
        "--stride", type=int, default=4,
        help="crash at every stride-th durable write (1 = every write)",
    )
    recovery.add_argument(
        "--torn-bytes", type=int, default=7,
        help="also crash mid-write leaving this many durable bytes "
        "(0 = clean boundary kills only)",
    )
    recovery.add_argument(
        "--strategy", default="noprefetch", metavar="STRATEGY",
        help="COBRA strategy to run under the sweep",
    )
    recovery.add_argument(
        "--ledger-out", default=None, metavar="PATH",
        help="write the sweep's JSON ledger (cells, digests, failures) here",
    )
    recovery.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan crash cells over N worker processes "
        "(reports are byte-identical at any N)",
    )
    recovery.set_defaults(func=_cmd_recovery)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: run seeded generated kernels across "
        "every must-agree axis (adaptive/none, JIT on/off, OSR on/off, "
        "faulted/clean, checkpoint-resume/straight) and report "
        "bit-equality divergences",
    )
    fuzz.add_argument(
        "--seeds", type=int, default=25, metavar="N",
        help="number of generator seeds to sweep (seeds start..start+N-1)",
    )
    fuzz.add_argument(
        "--start", type=int, default=0, metavar="SEED",
        help="first generator seed of the sweep",
    )
    fuzz.add_argument(
        "--replay", type=int, default=None, metavar="SEED",
        help="re-run exactly one generator seed (pair with --fault-seed "
        "to replay a reported divergence)",
    )
    fuzz.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="override the fault schedule seed (only with --replay)",
    )
    fuzz.add_argument(
        "--corpus", default=None, metavar="PATH",
        help="run the (seed, fault_seed) pairs of a corpus JSON file "
        "instead of a seed range",
    )
    fuzz.add_argument(
        "--shrink", action=argparse.BooleanOptionalAction, default=True,
        help="minimize diverging scenarios toward the smallest failing kernel",
    )
    fuzz.add_argument(
        "--max-shrinks", type=int, default=3, metavar="N",
        help="shrink at most N diverging scenarios (each shrink re-runs "
        "the axis sweep many times)",
    )
    fuzz.add_argument(
        "--verbose", action=argparse.BooleanOptionalAction, default=True,
        help="print one line per scenario (divergences always print)",
    )
    fuzz.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the full JSON report here",
    )
    fuzz.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan scenarios over N worker processes "
        "(reports are byte-identical at any N)",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    bench = sub.add_parser(
        "bench",
        help="time the simulator hot path and write BENCH_perf.json",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small matrix (daxpy+cg on smp4, 2 samples) for CI smoke runs",
    )
    bench.add_argument(
        "--out", default="BENCH_perf.json", help="output JSON path"
    )
    bench.add_argument(
        "--samples", type=int, default=3,
        help="timing samples per case (median is reported)",
    )
    bench.add_argument(
        "--benchmarks", nargs="+", default=None, metavar="BENCH",
        help="subset of daxpy/cg/mg",
    )
    bench.add_argument(
        "--machines", nargs="+", default=None, metavar="MACHINE",
        choices=sorted(MACHINES), help="subset of machine models",
    )
    bench.add_argument(
        "--strategies", nargs="+", default=None, metavar="STRATEGY",
        help="subset of none/noprefetch/excl/adaptive",
    )
    bench.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="time cases in N worker processes (digests/counters stay "
        "byte-identical; co-scheduled walls contend, use jobs=1 for "
        "committed baselines)",
    )
    bench.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="diff against a committed BENCH_perf.json; exit non-zero on "
        "wall-clock regression beyond --threshold or any digest change",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.15, metavar="FRAC",
        help="fractional wall-clock regression tolerance for --compare",
    )
    bench.set_defaults(func=_cmd_bench)

    warm = sub.add_parser(
        "warm",
        help="profile-database smoke: run each workload twice against a "
        "fresh in-memory database and require the warm run to cut the "
        "profiling ramp with bit-identical outputs",
    )
    warm.add_argument(
        "--workloads", nargs="+", default=["daxpy", "cg"],
        help="benchmark names (daxpy/cg/mg)",
    )
    warm.add_argument("--machine", choices=sorted(MACHINES), default="smp4")
    warm.add_argument(
        "--strategy", default="adaptive", metavar="STRATEGY",
        help="COBRA strategy for both runs",
    )
    warm.add_argument(
        "--min-reduction", type=float, default=90.0, metavar="PCT",
        help="fail unless the warm run cuts the profiling ramp by at "
        "least PCT percent",
    )
    warm.add_argument(
        "--optimize-interval", type=int, default=10_000, metavar="N",
        help="optimizer wake interval (retired instructions) for both runs",
    )
    warm.set_defaults(func=_cmd_warm)

    fleet = sub.add_parser(
        "fleet",
        help="fleet control plane: run N instances against one "
        "optimization daemon over a fault-injectable transport and "
        "require solo-identical outputs, quorum-gated decision reuse, "
        "and a fully accounted fault ledger",
    )
    fleet.add_argument(
        "--instances", type=int, default=8, metavar="N",
        help="fleet size: first half runs cold, second half is "
        "dispatched warm with the daemon's published decisions",
    )
    fleet.add_argument(
        "--quorum", type=int, default=0, metavar="Q",
        help="independent instances required before a decision is "
        "published (0 = REPRO_FLEET_QUORUM or min(2, cold count))",
    )
    fleet.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="attack the transport with this seed (frame drop/dup/"
        "reorder/delay/corrupt/poison, partitions, one daemon crash); "
        "omit for a clean transport",
    )
    fleet.add_argument(
        "--workload", default="daxpy",
        help="'daxpy' or an NPB benchmark name",
    )
    fleet.add_argument("--threads", type=int, default=4)
    fleet.add_argument(
        "--reps", type=int, default=12,
        help="outer repetitions per instance (enough for a deployment)",
    )
    fleet.add_argument(
        "--flush-interval", type=int, default=1, metavar="K",
        help="queue one telemetry batch every K optimizer wakes",
    )
    fleet.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the fleet report JSON here",
    )
    fleet.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan instances over N worker processes "
        "(reports are byte-identical at any N)",
    )
    fleet.set_defaults(func=_cmd_fleet)

    return parser


def _validate_env() -> str | None:
    """Reject malformed REPRO_* overrides before any work starts.

    The framework raises :class:`~repro.errors.CobraError` for these
    too, but mid-run and per-construction; catching them here keeps the
    CLI contract of one-line diagnostics and exit code 2.
    """
    env = os.environ.get("REPRO_FAULTS", "").strip()
    if env:
        try:
            seed = int(env)
        except ValueError:
            seed = -1
        if seed < 0:
            return f"REPRO_FAULTS must be a non-negative integer seed, got {env!r}"
    ckpt = os.environ.get("REPRO_CHECKPOINT", "").strip()
    if ckpt and os.path.exists(ckpt) and not os.path.isdir(ckpt):
        return f"REPRO_CHECKPOINT must name a checkpoint directory, got {ckpt!r}"
    jit = os.environ.get("REPRO_TRACE_JIT", "").strip()
    if jit and jit not in ("0", "1", "osr-off"):
        return (
            f"REPRO_TRACE_JIT must be '0', '1' or 'osr-off', got {jit!r}"
        )
    gov = os.environ.get("REPRO_GOVERNOR", "").strip()
    if gov and gov not in ("0", "1"):
        return f"REPRO_GOVERNOR must be '0' or '1', got {gov!r}"
    db = os.environ.get("REPRO_PROFILE_DB", "").strip()
    if db and os.path.isdir(db):
        return (
            f"REPRO_PROFILE_DB must name a profile-database file, "
            f"got directory {db!r}"
        )
    quorum = os.environ.get("REPRO_FLEET_QUORUM", "").strip()
    if quorum:
        try:
            value = int(quorum)
        except ValueError:
            value = 0
        if value < 1:
            return (
                f"REPRO_FLEET_QUORUM must be a positive integer, got {quorum!r}"
            )
    return None


def main(argv: list[str] | None = None) -> int:
    error = _validate_env()
    if error is not None:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    args = _parser().parse_args(argv)
    return args.func(args)
