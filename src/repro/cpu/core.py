"""The interpreter core: one CPU executing bundles with a timing model.

Semantics are IA-64-flavoured: three slots per bundle, qualifying
predicates, register rotation driven by the modulo-scheduled loop
branches, non-blocking hinted prefetches, post-increment addressing.

Timing: one cycle per executed bundle plus memory stalls returned by
the CPU's cache hierarchy.  Absolute cycle counts are not meant to match
real hardware — every paper result is a normalized ratio (DESIGN.md §5).

Hot-path structure: bundles are fetched from a per-core
:class:`~repro.isa.decode.DecodeCache` — one dict lookup over all loaded
images, serving pre-decoded ``(op, qp, r1, r2, r3, r4, imm, excl)``
slot tuples — and the register-rename arithmetic of
:class:`~repro.isa.registers.RegisterFile` is inlined with the rename
bases held in locals (synced back to the register file at every exit,
fault, and sampling interrupt).  Operand ranges are validated once at
decode time; only the hardwired registers (r0, f0, f1, p0) keep their
write guards in the interpreter.  The cache stays coherent with runtime
patching through the images' journaled versions, checked once per
``run()`` slice — COBRA only patches between scheduler slices.

Two memory fast paths are additionally inlined into the interpreter
loop (both are exact replicas of the slow path's hit case, which stays
authoritative): an L2-hit check against the cache's own tag-array set
dicts, active only while no invariant validator is attached (the same
condition that binds ``CpuCacheSystem.access_fn``), and the functional
DRAM transfer via the backing ndarray's ``item``/``__setitem__`` with
the in-range/aligned test done locally — out-of-range or unaligned
addresses fall back to :class:`~repro.memory.dram.MemorySystem` for its
precise errors.

PMU hooks kept directly on the core for speed:

* ``retired`` / ``cycles`` — the base counters;
* ``btb`` — the last four (branch, target) pairs (Branch Trace Buffer);
* ``dear`` — the most recent data-miss event ``(pc, addr, latency)``
  whose latency exceeded ``dear_threshold`` (Data Event Address
  Register with latency filtering, paper §4);
* ``on_sample`` — callback fired every ``sample_interval`` retired
  instructions (the perfmon sampling interrupt).  The callback's cost
  on the monitored thread is charged via ``sample_overhead``.
"""

from __future__ import annotations

import os
from typing import Callable

from ..errors import RegisterError, SimulationFault
from ..isa.binary import BUNDLE_BYTES, BinaryImage
from ..isa.decode import DecodeCache
from ..isa.instructions import Op
from ..isa.registers import RegisterFile
from ..memory.address import LINE_SHIFT
from ..memory.coherence import MODIFIED, SHARED
from ..memory.dram import DATA_BASE, MemorySystem
from ..memory.hierarchy import (
    ATOMIC,
    LOAD,
    LOAD_BIAS,
    PREFETCH,
    PREFETCH_EXCL,
    STORE,
    CpuCacheSystem,
)
from .tracejit import EXIT_BUDGET, EXIT_SAMPLE, TraceJit

__all__ = ["Core"]

#: Trace compilation on by default; ``REPRO_TRACE_JIT=0`` forces every
#: bundle through the generic interpreter (the differential harness uses
#: this to prove the two paths bit-identical), and
#: ``REPRO_TRACE_JIT=osr-off`` keeps the JIT but pins loop-head-only
#: dispatch — no OSR entries, no trace trees (CI regression bisection).
_JIT_ENV = os.environ.get("REPRO_TRACE_JIT", "1")
_JIT_DEFAULT = _JIT_ENV != "0"
_OSR_DEFAULT = _JIT_DEFAULT and _JIT_ENV != "osr-off"

# opcode constants hoisted for dispatch speed
_NOP = int(Op.NOP)
_ADD = int(Op.ADD)
_ADDI = int(Op.ADDI)
_SUB = int(Op.SUB)
_MOV = int(Op.MOV)
_MOVI = int(Op.MOVI)
_AND = int(Op.AND)
_OR = int(Op.OR)
_XOR = int(Op.XOR)
_SHL = int(Op.SHL)
_SHR = int(Op.SHR)
_SHLADD = int(Op.SHLADD)
_CMP_LT = int(Op.CMP_LT)
_CMP_LE = int(Op.CMP_LE)
_CMP_EQ = int(Op.CMP_EQ)
_CMP_NE = int(Op.CMP_NE)
_CMPI_LT = int(Op.CMPI_LT)
_CMPI_LE = int(Op.CMPI_LE)
_CMPI_EQ = int(Op.CMPI_EQ)
_CMPI_NE = int(Op.CMPI_NE)
_MOV_LC_IMM = int(Op.MOV_LC_IMM)
_MOV_LC_REG = int(Op.MOV_LC_REG)
_MOV_EC_IMM = int(Op.MOV_EC_IMM)
_ALLOC = int(Op.ALLOC)
_CLRRRB = int(Op.CLRRRB)
_MOV_PR_ROT = int(Op.MOV_PR_ROT)
_LD8 = int(Op.LD8)
_ST8 = int(Op.ST8)
_LDFD = int(Op.LDFD)
_STFD = int(Op.STFD)
_LFETCH = int(Op.LFETCH)
_FMA = int(Op.FMA)
_FADD = int(Op.FADD)
_FSUB = int(Op.FSUB)
_FMUL = int(Op.FMUL)
_SETF = int(Op.SETF)
_GETF = int(Op.GETF)
_FABS = int(Op.FABS)
_FMAX = int(Op.FMAX)
_BR = int(Op.BR)
_BR_COND = int(Op.BR_COND)
_BR_CTOP = int(Op.BR_CTOP)
_BR_CLOOP = int(Op.BR_CLOOP)
_BR_WTOP = int(Op.BR_WTOP)
_BR_CALL = int(Op.BR_CALL)
_BR_RET = int(Op.BR_RET)
_HALT = int(Op.HALT)
_FETCHADD8 = int(Op.FETCHADD8)

_BTB_SIZE = 4

# 64-bit two's-complement wrap constants (match RegisterFile.write_gr)
_B63 = 1 << 63
_M64 = (1 << 64) - 1

_BMASK = ~(BUNDLE_BYTES - 1)
_SMASK = BUNDLE_BYTES - 1


class Core:
    """One simulated CPU (and the thread bound to it)."""

    __slots__ = (
        "cpu_id",
        "regs",
        "cache",
        "mem",
        "images",
        "pc",
        "cycles",
        "retired",
        "bundles_executed",
        "halted",
        "call_stack",
        "btb",
        "dear",
        "on_sample",
        "sample_interval",
        "sample_overhead",
        "_sample_countdown",
        "taken_branches",
        "bundles_per_cycle",
        "_issue_tick",
        "_dcache",
        "_tjit",
        "jit_enabled",
        "osr_enabled",
        "_resume",
    )

    def __init__(
        self,
        cpu_id: int,
        cache: CpuCacheSystem,
        mem: MemorySystem,
        bundles_per_cycle: int = 2,
    ) -> None:
        self.cpu_id = cpu_id
        self.regs = RegisterFile()
        self.cache = cache
        self.mem = mem
        self.images: list[BinaryImage] = []
        self._dcache = DecodeCache()
        self.pc = 0
        self.cycles = 0
        self.retired = 0
        self.bundles_executed = 0
        self.halted = True
        self.call_stack: list[int] = []
        self.btb: list[tuple[int, int]] = []
        self.dear: tuple[int, int, int] | None = None
        self.on_sample: Callable[["Core"], None] | None = None
        self.sample_interval = 0           # 0 -> sampling off
        self.sample_overhead = 0
        self._sample_countdown = 0
        self.taken_branches = 0
        # Itanium 2 disperses two bundles per cycle; issue cost is
        # accounted per bundle pair (memory stalls are charged in full)
        self.bundles_per_cycle = bundles_per_cycle
        self._issue_tick = 0
        self._tjit = TraceJit()
        self.jit_enabled = _JIT_DEFAULT
        self.osr_enabled = _OSR_DEFAULT
        # budget-exit resume hint: (tjit generation, pc, entry point);
        # lets the next slice re-enter the interrupted trace without a
        # dispatch re-probe (invalidation/eviction bumps the generation)
        self._resume: tuple | None = None

    # -- program control -----------------------------------------------------

    def add_image(self, image: BinaryImage) -> None:
        if image not in self.images:
            self.images.append(image)
        self._dcache.attach(image)

    @property
    def decode_cache(self) -> DecodeCache:
        """This core's decoded-bundle cache (exposed for audits/tests)."""
        return self._dcache

    @property
    def trace_jit(self) -> TraceJit:
        """This core's trace-compilation registry (audits/observability)."""
        return self._tjit

    def start(self, entry: int) -> None:
        """Point the core at ``entry`` and mark it runnable."""
        self.pc = entry
        self.halted = False

    def enable_sampling(
        self,
        interval: int,
        on_sample: Callable[["Core"], None],
        overhead: int = 0,
    ) -> None:
        self.sample_interval = interval
        self.on_sample = on_sample
        self.sample_overhead = overhead
        self._sample_countdown = interval

    def disable_sampling(self) -> None:
        self.sample_interval = 0
        self.on_sample = None

    def _fetch_bundle(self, addr: int):
        for image in self.images:
            bundle = image.bundles.get(addr)
            if bundle is not None:
                return bundle
        raise SimulationFault("no code at address", pc=addr, cpu=self.cpu_id)

    def _record_taken(self, branch_pc: int, target: int) -> None:
        self.taken_branches += 1
        btb = self.btb
        btb.append((branch_pc, target))
        if len(btb) > _BTB_SIZE:
            del btb[0]

    # -- execution --------------------------------------------------------------

    def run(self, max_bundles: int, cycle_limit: int | None = None) -> int:
        """Execute up to ``max_bundles`` bundles; return how many ran.

        ``cycle_limit`` stops execution once ``self.cycles`` exceeds it —
        the scheduler uses this to keep all cores' clocks closely
        synchronized (time-ordered simulation), which is what makes
        shared-bus queueing physically meaningful.
        """
        if self.halted:
            return 0
        if cycle_limit is None:
            cycle_limit = 1 << 62
        dcache = self._dcache
        dmap = dcache.sync()
        dmap_get = dmap.get
        # Trace dispatch state.  sync() revalidates compiled traces
        # against the decode journal at the same once-per-slice cadence
        # the decoded map itself refreshes, so a patched bundle can
        # never execute through a stale trace (COBRA patches between
        # scheduler slices; within a slice both views are equally live).
        tjit = self._tjit if self.jit_enabled else None
        if tjit is not None:
            osr_on = self.osr_enabled
            if tjit.osr != osr_on:
                # flag flipped since the last slice (differ axes, CI
                # modes): republish entry points under the new policy
                tjit.osr = osr_on
                tjit._rebuild_dispatch()
            dispatch = tjit.sync(dcache)
            dispatch_get = dispatch.get
            hot = tjit.hot
            hot_get = hot.get
            jit_threshold = tjit.threshold
            sites = tjit.sites
            sites_get = sites.get
            # read after sync(): invalidation may have bumped it
            generation = tjit.generation
            resume = self._resume
            self._resume = None
            if resume is not None and resume[0] != generation:
                resume = None   # traces changed under the hint
        else:
            dispatch_get = None
            hot = None
            osr_on = False
            resume = None
        regs = self.regs
        grl = regs.gr
        frl = regs.fr
        prl = regs.pr
        lc = regs.lc
        ec = regs.ec
        sor = regs.sor
        sor32 = 32 + sor
        rrb_gr = regs.rrb_gr
        rrb_fr = regs.rrb_fr
        rrb_pr = regs.rrb_pr
        cache = self.cache
        cache_access = cache.access_fn
        # Inline L2-hit fast path, mirroring ``CpuCacheSystem._access``'s
        # (same transitions, same ``l2_hit`` charge; the del/re-insert is
        # the LRU promotion).  Bound to the no-validator condition exactly
        # like ``access_fn``, and re-read after every sample callback.
        # During this core's slice only this core mutates its own L2
        # (snoops go to *other* caches), so the hoisted refs stay live;
        # ``CacheArray.clear`` empties the set dicts in place.
        fast_mem = cache.validator is None
        if fast_mem:
            l2_sets = cache._l2_sets
            l2_nsets = cache._l2_nsets
            l2_hit_lat = cache._l2_hit
            line_state = cache.state
            l2_dirty = cache.l2_dirty
            mem_events = cache.events
        mem = self.mem
        mem_read_f64 = mem.read_f64
        mem_write_f64 = mem.write_f64
        mem_read_i64 = mem.read_i64
        mem_write_i64 = mem.write_i64
        # Functional data access inlined: the in-range/aligned check runs
        # here and the ndarray ``item``/``__setitem__`` bound methods do
        # the transfer (``item`` yields a Python scalar, same as the
        # ``float()``/``int()`` in MemorySystem); out-of-range or
        # unaligned addresses fall back to the wrappers for their
        # precise errors.  The backing arrays are created once in
        # MemorySystem.__init__ and never rebound.
        mem_cap = mem.capacity
        mem_f64_item = mem._f64.item
        mem_f64_set = mem._f64.__setitem__
        mem_i64_item = mem._i64.item
        mem_i64_set = mem._i64.__setitem__
        btb = self.btb
        btb_append = btb.append
        call_stack = self.call_stack
        bundles_per_cycle = self.bundles_per_cycle
        pc = self.pc
        cycles = self.cycles
        retired = self.retired
        bundles_executed = self.bundles_executed
        taken_branches = self.taken_branches
        issue_tick = self._issue_tick
        countdown = self._sample_countdown
        # only the sample handler can change the interval mid-run, and
        # the reload block below re-reads it after every callback
        sampling = self.sample_interval
        executed = 0

        try:
            while executed < max_bundles and cycles <= cycle_limit:
                if dispatch_get is not None and fast_mem:
                    if resume is not None:
                        # budget exit from the previous slice: the hint
                        # is single-use and pre-validated by generation
                        if resume[1] == pc:
                            ep = resume[2]
                            tjit.resume_hits += 1
                        else:
                            ep = dispatch_get(pc)
                        resume = None
                    else:
                        ep = dispatch_get(pc)
                    if ep is not None and ep.trace.sor == sor:
                        tr = ep.trace
                        fn = ep.fn
                        if fn is None:
                            # first entry at this mid-trace index: build
                            # the OSR suffix closure (cached thereafter)
                            fn = tjit.materialize(ep)
                        before = bundles_executed
                        (
                            pc, lc, ec, rrb_gr, rrb_fr, rrb_pr, cycles,
                            retired, bundles_executed, taken_branches,
                            issue_tick, countdown, executed, t_iters, flag,
                        ) = fn(
                            self, cache, mem, grl, frl, prl, btb, lc, ec,
                            rrb_gr, rrb_fr, rrb_pr, cycles, retired,
                            bundles_executed, taken_branches, issue_tick,
                            countdown, sampling, executed, max_bundles,
                            cycle_limit,
                        )
                        tjit.entries += 1
                        tr.last_used = tjit.entries
                        if ep.idx:
                            tjit.osr_entries += 1
                        tjit.iters += t_iters
                        tjit.compiled_bundles += bundles_executed - before
                        tjit.deopts[flag] += 1
                        if flag == EXIT_SAMPLE:
                            # the trace retired a bundle that expired the
                            # sampling countdown: fire the PMU interrupt
                            # exactly as the generic path below does
                            countdown = sampling
                            cycles += self.sample_overhead
                            self.pc = pc
                            self.cycles = cycles
                            self.retired = retired
                            self.bundles_executed = bundles_executed
                            self.taken_branches = taken_branches
                            self._issue_tick = issue_tick
                            self._sample_countdown = countdown
                            regs.lc = lc
                            regs.ec = ec
                            regs.rrb_gr = rrb_gr
                            regs.rrb_fr = rrb_fr
                            regs.rrb_pr = rrb_pr
                            self.on_sample(self)  # type: ignore[misc]
                            pc = self.pc
                            cycles = self.cycles
                            retired = self.retired
                            bundles_executed = self.bundles_executed
                            taken_branches = self.taken_branches
                            issue_tick = self._issue_tick
                            countdown = self._sample_countdown
                            sampling = self.sample_interval
                            fast_mem = cache.validator is None
                            if fast_mem:
                                l2_sets = cache._l2_sets
                                l2_nsets = cache._l2_nsets
                                l2_hit_lat = cache._l2_hit
                                line_state = cache.state
                                l2_dirty = cache.l2_dirty
                                mem_events = cache.events
                            cache_access = cache.access_fn
                            lc = regs.lc
                            ec = regs.ec
                            sor = regs.sor
                            sor32 = 32 + sor
                            rrb_gr = regs.rrb_gr
                            rrb_fr = regs.rrb_fr
                            rrb_pr = regs.rrb_pr
                        elif flag == EXIT_BUDGET:
                            # the slice ends here; remember the probe so
                            # the next slice resumes without paying it
                            nep = dispatch_get(pc)
                            if nep is not None:
                                self._resume = (generation, pc, nep)
                        elif osr_on:
                            # architectural exit (loop/side/link): count
                            # the (head, target) site; a hot site grows
                            # the trace tree at the target
                            site = (tr.head, pc)
                            n = sites_get(site, 0) + 1
                            sites[site] = n
                            if n == jit_threshold:
                                tjit.promote(
                                    tr, pc, dmap, dcache.keys, sor,
                                    bundles_per_cycle,
                                )
                            if dispatch_get(pc) is not None:
                                tjit.tree_links += 1
                        continue
                base = pc & _BMASK
                decoded = dmap_get(base)
                if decoded is None:
                    raise SimulationFault(
                        "no code at address", pc=base, cpu=self.cpu_id
                    )
                slot = pc & _SMASK
                n_total = decoded[0]
                entries = decoded[1]
                taken = False
                stall = 0
                if slot:  # mid-bundle entry (rare: branch targets are slot 0)
                    entries = tuple(e for e in entries if e[0] >= slot)
                for idx, op, qp, r1, r2, r3, r4, imm, excl in entries:
                    if qp:
                        pv = (
                            prl[qp]
                            if qp < 16
                            else prl[16 + (qp - 16 + rrb_pr) % 48]
                        )
                        # predicated off; br.wtop still evaluates (below)
                        if not pv and op != _BR_WTOP:
                            continue
                    if op == _LDFD:
                        a = (
                            grl[r2]
                            if r2 < 32 or r2 >= sor32
                            else grl[32 + (r2 - 32 + rrb_gr) % sor]
                        )
                        hit = fast_mem
                        if hit:
                            line = a >> LINE_SHIFT
                            lru = l2_sets[line % l2_nsets]
                            if line in lru:
                                mem_events.loads += 1
                                del lru[line]
                                lru[line] = None
                                stall += l2_hit_lat
                            else:
                                hit = False
                        if not hit:
                            stall += cache_access(cycles, a, LOAD)
                            dp = cache.dear_pending
                            if dp is not None:
                                self.dear = (base + idx, a, dp)
                                cache.dear_pending = None
                        off = a - DATA_BASE
                        if 0 <= off < mem_cap and not off & 7:
                            v = mem_f64_item(off >> 3)
                        else:
                            v = mem_read_f64(a)
                        if r1 < 32:
                            if r1 > 1:
                                frl[r1] = v
                            else:
                                raise RegisterError(f"f{r1} is read-only")
                        else:
                            frl[32 + (r1 - 32 + rrb_fr) % 96] = v
                        if imm:
                            na = ((a + imm + _B63) & _M64) - _B63
                            if r2 < 32 or r2 >= sor32:
                                if r2:
                                    grl[r2] = na
                                else:
                                    raise RegisterError("r0 is read-only")
                            else:
                                grl[32 + (r2 - 32 + rrb_gr) % sor] = na
                    elif op == _STFD:
                        a = (
                            grl[r2]
                            if r2 < 32 or r2 >= sor32
                            else grl[32 + (r2 - 32 + rrb_gr) % sor]
                        )
                        hit = fast_mem
                        if hit:
                            line = a >> LINE_SHIFT
                            lru = l2_sets[line % l2_nsets]
                            if line in lru:
                                st = line_state[line]
                                if st != SHARED:
                                    mem_events.stores += 1
                                    if st != MODIFIED:
                                        line_state[line] = MODIFIED
                                    l2_dirty.add(line)
                                    del lru[line]
                                    lru[line] = None
                                    stall += l2_hit_lat
                                else:
                                    hit = False
                            else:
                                hit = False
                        if not hit:
                            stall += cache_access(cycles, a, STORE)
                            dp = cache.dear_pending
                            if dp is not None:
                                self.dear = (base + idx, a, dp)
                                cache.dear_pending = None
                        v = (
                            frl[r3]
                            if r3 < 32
                            else frl[32 + (r3 - 32 + rrb_fr) % 96]
                        )
                        off = a - DATA_BASE
                        if 0 <= off < mem_cap and not off & 7:
                            mem_f64_set(off >> 3, v)
                        else:
                            mem_write_f64(a, v)
                        if imm:
                            na = ((a + imm + _B63) & _M64) - _B63
                            if r2 < 32 or r2 >= sor32:
                                if r2:
                                    grl[r2] = na
                                else:
                                    raise RegisterError("r0 is read-only")
                            else:
                                grl[32 + (r2 - 32 + rrb_gr) % sor] = na
                    elif op == _LFETCH:
                        a = (
                            grl[r2]
                            if r2 < 32 or r2 >= sor32
                            else grl[32 + (r2 - 32 + rrb_gr) % sor]
                        )
                        hit = fast_mem
                        if hit:
                            line = a >> LINE_SHIFT
                            lru = l2_sets[line % l2_nsets]
                            if line in lru and (
                                not excl or line_state[line] == MODIFIED
                            ):
                                mem_events.prefetches += 1
                                del lru[line]
                                lru[line] = None
                            else:
                                hit = False
                        if not hit:
                            cache_access(
                                cycles, a, PREFETCH_EXCL if excl else PREFETCH
                            )
                        if imm:
                            na = ((a + imm + _B63) & _M64) - _B63
                            if r2 < 32 or r2 >= sor32:
                                if r2:
                                    grl[r2] = na
                                else:
                                    raise RegisterError("r0 is read-only")
                            else:
                                grl[32 + (r2 - 32 + rrb_gr) % sor] = na
                    elif op == _FMA:
                        v = (
                            frl[r2] if r2 < 32 else frl[32 + (r2 - 32 + rrb_fr) % 96]
                        ) * (
                            frl[r3] if r3 < 32 else frl[32 + (r3 - 32 + rrb_fr) % 96]
                        ) + (
                            frl[r4] if r4 < 32 else frl[32 + (r4 - 32 + rrb_fr) % 96]
                        )
                        if r1 < 32:
                            if r1 > 1:
                                frl[r1] = v
                            else:
                                raise RegisterError(f"f{r1} is read-only")
                        else:
                            frl[32 + (r1 - 32 + rrb_fr) % 96] = v
                    elif op == _ADD:
                        v = (
                            grl[r2]
                            if r2 < 32 or r2 >= sor32
                            else grl[32 + (r2 - 32 + rrb_gr) % sor]
                        ) + (
                            grl[r3]
                            if r3 < 32 or r3 >= sor32
                            else grl[32 + (r3 - 32 + rrb_gr) % sor]
                        )
                        v = ((v + _B63) & _M64) - _B63
                        if r1 < 32 or r1 >= sor32:
                            if r1:
                                grl[r1] = v
                            else:
                                raise RegisterError("r0 is read-only")
                        else:
                            grl[32 + (r1 - 32 + rrb_gr) % sor] = v
                    elif op == _ADDI:
                        v = (
                            grl[r2]
                            if r2 < 32 or r2 >= sor32
                            else grl[32 + (r2 - 32 + rrb_gr) % sor]
                        ) + imm
                        v = ((v + _B63) & _M64) - _B63
                        if r1 < 32 or r1 >= sor32:
                            if r1:
                                grl[r1] = v
                            else:
                                raise RegisterError("r0 is read-only")
                        else:
                            grl[32 + (r1 - 32 + rrb_gr) % sor] = v
                    elif op == _LD8:
                        a = (
                            grl[r2]
                            if r2 < 32 or r2 >= sor32
                            else grl[32 + (r2 - 32 + rrb_gr) % sor]
                        )
                        hit = fast_mem and not excl
                        if hit:
                            line = a >> LINE_SHIFT
                            lru = l2_sets[line % l2_nsets]
                            if line in lru:
                                mem_events.loads += 1
                                del lru[line]
                                lru[line] = None
                                stall += l2_hit_lat
                            else:
                                hit = False
                        if not hit:
                            stall += cache_access(
                                cycles, a, LOAD_BIAS if excl else LOAD
                            )
                            dp = cache.dear_pending
                            if dp is not None:
                                self.dear = (base + idx, a, dp)
                                cache.dear_pending = None
                        off = a - DATA_BASE
                        if 0 <= off < mem_cap and not off & 7:
                            v = mem_i64_item(off >> 3)
                        else:
                            v = mem_read_i64(a)
                        if r1 < 32 or r1 >= sor32:
                            if r1:
                                grl[r1] = v
                            else:
                                raise RegisterError("r0 is read-only")
                        else:
                            grl[32 + (r1 - 32 + rrb_gr) % sor] = v
                        if imm:
                            na = ((a + imm + _B63) & _M64) - _B63
                            if r2 < 32 or r2 >= sor32:
                                if r2:
                                    grl[r2] = na
                                else:
                                    raise RegisterError("r0 is read-only")
                            else:
                                grl[32 + (r2 - 32 + rrb_gr) % sor] = na
                    elif op == _ST8:
                        a = (
                            grl[r2]
                            if r2 < 32 or r2 >= sor32
                            else grl[32 + (r2 - 32 + rrb_gr) % sor]
                        )
                        hit = fast_mem
                        if hit:
                            line = a >> LINE_SHIFT
                            lru = l2_sets[line % l2_nsets]
                            if line in lru:
                                st = line_state[line]
                                if st != SHARED:
                                    mem_events.stores += 1
                                    if st != MODIFIED:
                                        line_state[line] = MODIFIED
                                    l2_dirty.add(line)
                                    del lru[line]
                                    lru[line] = None
                                    stall += l2_hit_lat
                                else:
                                    hit = False
                            else:
                                hit = False
                        if not hit:
                            stall += cache_access(cycles, a, STORE)
                            dp = cache.dear_pending
                            if dp is not None:
                                self.dear = (base + idx, a, dp)
                                cache.dear_pending = None
                        v = (
                            grl[r3]
                            if r3 < 32 or r3 >= sor32
                            else grl[32 + (r3 - 32 + rrb_gr) % sor]
                        )
                        off = a - DATA_BASE
                        if 0 <= off < mem_cap and not off & 7:
                            # registers hold wrapped signed-64 values, but
                            # mirror write_i64's defensive wrap exactly
                            mem_i64_set(off >> 3, ((v + _B63) & _M64) - _B63)
                        else:
                            mem_write_i64(a, v)
                        if imm:
                            na = ((a + imm + _B63) & _M64) - _B63
                            if r2 < 32 or r2 >= sor32:
                                if r2:
                                    grl[r2] = na
                                else:
                                    raise RegisterError("r0 is read-only")
                            else:
                                grl[32 + (r2 - 32 + rrb_gr) % sor] = na
                    elif op == _BR_CTOP:
                        if lc > 0:
                            lc -= 1
                            if sor:
                                rrb_gr = (rrb_gr - 1) % sor
                            rrb_fr = (rrb_fr - 1) % 96
                            rrb_pr = (rrb_pr - 1) % 48
                            prl[16 + rrb_pr] = True
                            taken = True
                        elif ec > 1:
                            ec -= 1
                            if sor:
                                rrb_gr = (rrb_gr - 1) % sor
                            rrb_fr = (rrb_fr - 1) % 96
                            rrb_pr = (rrb_pr - 1) % 48
                            prl[16 + rrb_pr] = False
                            taken = True
                        else:
                            if ec > 0:
                                ec -= 1
                            if sor:
                                rrb_gr = (rrb_gr - 1) % sor
                            rrb_fr = (rrb_fr - 1) % 96
                            rrb_pr = (rrb_pr - 1) % 48
                            prl[16 + rrb_pr] = False
                        if taken:
                            pc = imm
                            taken_branches += 1
                            btb_append((base + idx, imm))
                            if len(btb) > _BTB_SIZE:
                                del btb[0]
                            if hot is not None:
                                hits = hot_get(imm, 0) + 1
                                hot[imm] = hits
                                if hits == jit_threshold:
                                    tjit.compile(
                                        imm, dmap, dcache.keys, sor,
                                        bundles_per_cycle,
                                    )
                            break
                    elif op == _BR_CLOOP:
                        if lc > 0:
                            lc -= 1
                            pc = imm
                            taken = True
                            taken_branches += 1
                            btb_append((base + idx, imm))
                            if len(btb) > _BTB_SIZE:
                                del btb[0]
                            if hot is not None:
                                hits = hot_get(imm, 0) + 1
                                hot[imm] = hits
                                if hits == jit_threshold:
                                    tjit.compile(
                                        imm, dmap, dcache.keys, sor,
                                        bundles_per_cycle,
                                    )
                            break
                    elif op == _BR_WTOP:
                        # qp is the *branch* predicate here, not a guard
                        if (
                            prl[qp]
                            if qp < 16
                            else prl[16 + (qp - 16 + rrb_pr) % 48]
                        ):
                            if sor:
                                rrb_gr = (rrb_gr - 1) % sor
                            rrb_fr = (rrb_fr - 1) % 96
                            rrb_pr = (rrb_pr - 1) % 48
                            prl[16 + rrb_pr] = False
                            taken = True
                        elif ec > 1:
                            ec -= 1
                            if sor:
                                rrb_gr = (rrb_gr - 1) % sor
                            rrb_fr = (rrb_fr - 1) % 96
                            rrb_pr = (rrb_pr - 1) % 48
                            prl[16 + rrb_pr] = False
                            taken = True
                        else:
                            if ec > 0:
                                ec -= 1
                            if sor:
                                rrb_gr = (rrb_gr - 1) % sor
                            rrb_fr = (rrb_fr - 1) % 96
                            rrb_pr = (rrb_pr - 1) % 48
                            prl[16 + rrb_pr] = False
                        if taken:
                            pc = imm
                            taken_branches += 1
                            btb_append((base + idx, imm))
                            if len(btb) > _BTB_SIZE:
                                del btb[0]
                            if hot is not None:
                                hits = hot_get(imm, 0) + 1
                                hot[imm] = hits
                                if hits == jit_threshold:
                                    tjit.compile(
                                        imm, dmap, dcache.keys, sor,
                                        bundles_per_cycle,
                                    )
                            break
                    elif op == _BR_COND:
                        # guard already passed (qp true) -> taken
                        pc = imm
                        taken = True
                        taken_branches += 1
                        btb_append((base + idx, imm))
                        if len(btb) > _BTB_SIZE:
                            del btb[0]
                        if hot is not None and imm <= base:
                            # backward conditional branch: spin-waits,
                            # compiler-generated outer loops — arm the
                            # target like a modulo-loop back-edge
                            hits = hot_get(imm, 0) + 1
                            hot[imm] = hits
                            if hits == jit_threshold:
                                tjit.compile(
                                    imm, dmap, dcache.keys, sor,
                                    bundles_per_cycle,
                                )
                        break
                    elif op == _BR:
                        pc = imm
                        taken = True
                        taken_branches += 1
                        btb_append((base + idx, imm))
                        if len(btb) > _BTB_SIZE:
                            del btb[0]
                        break
                    elif _CMP_LT <= op <= _CMPI_NE:
                        a = (
                            grl[r3]
                            if r3 < 32 or r3 >= sor32
                            else grl[32 + (r3 - 32 + rrb_gr) % sor]
                        )
                        if op >= _CMPI_LT:
                            b = imm
                            op -= 4  # CMPI_xx -> CMP_xx for one compare chain
                        else:
                            b = (
                                grl[r4]
                                if r4 < 32 or r4 >= sor32
                                else grl[32 + (r4 - 32 + rrb_gr) % sor]
                            )
                        if op == _CMP_LT:
                            c = a < b
                        elif op == _CMP_LE:
                            c = a <= b
                        elif op == _CMP_EQ:
                            c = a == b
                        else:
                            c = a != b
                        if r1 < 16:
                            if r1:
                                prl[r1] = c
                            else:
                                raise RegisterError("p0 is read-only")
                        else:
                            prl[16 + (r1 - 16 + rrb_pr) % 48] = c
                        if r2 < 16:
                            if r2:
                                prl[r2] = not c
                            else:
                                raise RegisterError("p0 is read-only")
                        else:
                            prl[16 + (r2 - 16 + rrb_pr) % 48] = not c
                    elif op == _MOV:
                        v = (
                            grl[r2]
                            if r2 < 32 or r2 >= sor32
                            else grl[32 + (r2 - 32 + rrb_gr) % sor]
                        )
                        if r1 < 32 or r1 >= sor32:
                            if r1:
                                grl[r1] = v
                            else:
                                raise RegisterError("r0 is read-only")
                        else:
                            grl[32 + (r1 - 32 + rrb_gr) % sor] = v
                    elif op == _MOVI:
                        v = ((imm + _B63) & _M64) - _B63
                        if r1 < 32 or r1 >= sor32:
                            if r1:
                                grl[r1] = v
                            else:
                                raise RegisterError("r0 is read-only")
                        else:
                            grl[32 + (r1 - 32 + rrb_gr) % sor] = v
                    elif op == _SUB or op == _AND or op == _OR or op == _XOR:
                        a = (
                            grl[r2]
                            if r2 < 32 or r2 >= sor32
                            else grl[32 + (r2 - 32 + rrb_gr) % sor]
                        )
                        b = (
                            grl[r3]
                            if r3 < 32 or r3 >= sor32
                            else grl[32 + (r3 - 32 + rrb_gr) % sor]
                        )
                        if op == _SUB:
                            v = a - b
                        elif op == _AND:
                            v = a & b
                        elif op == _OR:
                            v = a | b
                        else:
                            v = a ^ b
                        v = ((v + _B63) & _M64) - _B63
                        if r1 < 32 or r1 >= sor32:
                            if r1:
                                grl[r1] = v
                            else:
                                raise RegisterError("r0 is read-only")
                        else:
                            grl[32 + (r1 - 32 + rrb_gr) % sor] = v
                    elif op == _SHL or op == _SHR or op == _SHLADD:
                        a = (
                            grl[r2]
                            if r2 < 32 or r2 >= sor32
                            else grl[32 + (r2 - 32 + rrb_gr) % sor]
                        )
                        if op == _SHL:
                            v = a << imm
                        elif op == _SHR:
                            v = a >> imm
                        else:
                            v = (a << imm) + (
                                grl[r3]
                                if r3 < 32 or r3 >= sor32
                                else grl[32 + (r3 - 32 + rrb_gr) % sor]
                            )
                        v = ((v + _B63) & _M64) - _B63
                        if r1 < 32 or r1 >= sor32:
                            if r1:
                                grl[r1] = v
                            else:
                                raise RegisterError("r0 is read-only")
                        else:
                            grl[32 + (r1 - 32 + rrb_gr) % sor] = v
                    elif op == _FADD or op == _FSUB or op == _FMUL or op == _FMAX:
                        a = frl[r2] if r2 < 32 else frl[32 + (r2 - 32 + rrb_fr) % 96]
                        b = frl[r3] if r3 < 32 else frl[32 + (r3 - 32 + rrb_fr) % 96]
                        if op == _FADD:
                            v = a + b
                        elif op == _FSUB:
                            v = a - b
                        elif op == _FMUL:
                            v = a * b
                        else:
                            v = a if a >= b else b
                        if r1 < 32:
                            if r1 > 1:
                                frl[r1] = v
                            else:
                                raise RegisterError(f"f{r1} is read-only")
                        else:
                            frl[32 + (r1 - 32 + rrb_fr) % 96] = v
                    elif op == _FABS:
                        v = abs(
                            frl[r2] if r2 < 32 else frl[32 + (r2 - 32 + rrb_fr) % 96]
                        )
                        if r1 < 32:
                            if r1 > 1:
                                frl[r1] = v
                            else:
                                raise RegisterError(f"f{r1} is read-only")
                        else:
                            frl[32 + (r1 - 32 + rrb_fr) % 96] = v
                    elif op == _SETF:
                        v = float(
                            grl[r2]
                            if r2 < 32 or r2 >= sor32
                            else grl[32 + (r2 - 32 + rrb_gr) % sor]
                        )
                        if r1 < 32:
                            if r1 > 1:
                                frl[r1] = v
                            else:
                                raise RegisterError(f"f{r1} is read-only")
                        else:
                            frl[32 + (r1 - 32 + rrb_fr) % 96] = v
                    elif op == _GETF:
                        v = int(
                            frl[r2] if r2 < 32 else frl[32 + (r2 - 32 + rrb_fr) % 96]
                        )
                        v = ((v + _B63) & _M64) - _B63
                        if r1 < 32 or r1 >= sor32:
                            if r1:
                                grl[r1] = v
                            else:
                                raise RegisterError("r0 is read-only")
                        else:
                            grl[32 + (r1 - 32 + rrb_gr) % sor] = v
                    elif op == _FETCHADD8:
                        a = (
                            grl[r2]
                            if r2 < 32 or r2 >= sor32
                            else grl[32 + (r2 - 32 + rrb_gr) % sor]
                        )
                        stall += cache_access(cycles, a, ATOMIC)
                        old = mem_read_i64(a)
                        mem_write_i64(a, old + imm)
                        if r1 < 32 or r1 >= sor32:
                            if r1:
                                grl[r1] = old
                            else:
                                raise RegisterError("r0 is read-only")
                        else:
                            grl[32 + (r1 - 32 + rrb_gr) % sor] = old
                    elif op == _MOV_LC_IMM:
                        lc = imm
                    elif op == _MOV_LC_REG:
                        lc = (
                            grl[r2]
                            if r2 < 32 or r2 >= sor32
                            else grl[32 + (r2 - 32 + rrb_gr) % sor]
                        )
                    elif op == _MOV_EC_IMM:
                        ec = imm
                    elif op == _ALLOC:
                        regs.alloc_rotating(imm)
                        sor = regs.sor
                        sor32 = 32 + sor
                    elif op == _MOV_PR_ROT:
                        mask = int(imm)
                        for i in range(16, 64):
                            prl[i] = bool(mask & (1 << i))
                        # note: writes physical rotating predicates
                        # (rrb-independent only when rrb is 0, which is
                        # how compilers use it)
                    elif op == _CLRRRB:
                        regs.clear_rrb()
                        rrb_gr = rrb_fr = rrb_pr = 0
                    elif op == _BR_CALL:
                        call_stack.append(base + BUNDLE_BYTES)
                        pc = imm
                        taken = True
                        taken_branches += 1
                        btb_append((base + idx, imm))
                        if len(btb) > _BTB_SIZE:
                            del btb[0]
                        break
                    elif op == _BR_RET:
                        if not call_stack:
                            raise SimulationFault(
                                "br.ret with empty call stack",
                                pc=base + slot,
                                cpu=self.cpu_id,
                            )
                        pc = call_stack.pop()
                        taken = True
                        taken_branches += 1
                        btb_append((base + idx, pc))
                        if len(btb) > _BTB_SIZE:
                            del btb[0]
                        break
                    elif op == _HALT:
                        self.halted = True
                        retired += idx + 1 - slot
                        cycles += 1 + stall
                        bundles_executed += 1
                        return executed + 1
                    else:  # pragma: no cover - defensive
                        raise SimulationFault(
                            f"illegal opcode {op}", pc=base + slot, cpu=self.cpu_id
                        )

                # architectural slots this bundle retired: everything up
                # to the taken branch, or the whole (possibly partial)
                # bundle — NOP padding retires without being iterated
                n_slots = (idx + 1 - slot) if taken else (n_total - slot)
                if not taken:
                    pc = base + BUNDLE_BYTES
                retired += n_slots
                issue_tick += 1
                if issue_tick >= bundles_per_cycle:
                    issue_tick = 0
                    cycles += 1 + stall
                else:
                    cycles += stall
                bundles_executed += 1
                executed += 1

                if sampling:
                    countdown -= n_slots
                    if countdown <= 0:
                        countdown = sampling
                        cycles += self.sample_overhead
                        # publish the architectural state the observer sees
                        self.pc = pc
                        self.cycles = cycles
                        self.retired = retired
                        self.bundles_executed = bundles_executed
                        self.taken_branches = taken_branches
                        self._issue_tick = issue_tick
                        self._sample_countdown = countdown
                        regs.lc = lc
                        regs.ec = ec
                        regs.rrb_gr = rrb_gr
                        regs.rrb_fr = rrb_fr
                        regs.rrb_pr = rrb_pr
                        self.on_sample(self)  # type: ignore[misc]
                        # the handler may have charged cycles or re-armed
                        # sampling: reload everything it can touch
                        pc = self.pc
                        cycles = self.cycles
                        retired = self.retired
                        bundles_executed = self.bundles_executed
                        taken_branches = self.taken_branches
                        issue_tick = self._issue_tick
                        countdown = self._sample_countdown
                        sampling = self.sample_interval
                        fast_mem = cache.validator is None
                        if fast_mem:
                            l2_sets = cache._l2_sets
                            l2_nsets = cache._l2_nsets
                            l2_hit_lat = cache._l2_hit
                            line_state = cache.state
                            l2_dirty = cache.l2_dirty
                            mem_events = cache.events
                        cache_access = cache.access_fn
                        lc = regs.lc
                        ec = regs.ec
                        sor = regs.sor
                        sor32 = 32 + sor
                        rrb_gr = regs.rrb_gr
                        rrb_fr = regs.rrb_fr
                        rrb_pr = regs.rrb_pr

            return executed
        finally:
            self.pc = pc
            self.cycles = cycles
            self.retired = retired
            self.bundles_executed = bundles_executed
            self.taken_branches = taken_branches
            self._issue_tick = issue_tick
            self._sample_countdown = countdown
            regs.lc = lc
            regs.ec = ec
            regs.rrb_gr = rrb_gr
            regs.rrb_fr = rrb_fr
            regs.rrb_pr = rrb_pr
