"""The interpreter core: one CPU executing bundles with a timing model.

Semantics are IA-64-flavoured: three slots per bundle, qualifying
predicates, register rotation driven by the modulo-scheduled loop
branches, non-blocking hinted prefetches, post-increment addressing.

Timing: one cycle per executed bundle plus memory stalls returned by
the CPU's cache hierarchy.  Absolute cycle counts are not meant to match
real hardware — every paper result is a normalized ratio (DESIGN.md §5).

PMU hooks kept directly on the core for speed:

* ``retired`` / ``cycles`` — the base counters;
* ``btb`` — the last four (branch, target) pairs (Branch Trace Buffer);
* ``dear`` — the most recent data-miss event ``(pc, addr, latency)``
  whose latency exceeded ``dear_threshold`` (Data Event Address
  Register with latency filtering, paper §4);
* ``on_sample`` — callback fired every ``sample_interval`` retired
  instructions (the perfmon sampling interrupt).  The callback's cost
  on the monitored thread is charged via ``sample_overhead``.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SimulationFault
from ..isa.binary import BUNDLE_BYTES, BinaryImage
from ..isa.instructions import Op
from ..isa.registers import RegisterFile
from ..memory.dram import MemorySystem
from ..memory.hierarchy import (
    ATOMIC,
    LOAD,
    LOAD_BIAS,
    PREFETCH,
    PREFETCH_EXCL,
    STORE,
    CpuCacheSystem,
)

__all__ = ["Core"]

# opcode constants hoisted for dispatch speed
_NOP = int(Op.NOP)
_ADD = int(Op.ADD)
_ADDI = int(Op.ADDI)
_SUB = int(Op.SUB)
_MOV = int(Op.MOV)
_MOVI = int(Op.MOVI)
_AND = int(Op.AND)
_OR = int(Op.OR)
_XOR = int(Op.XOR)
_SHL = int(Op.SHL)
_SHR = int(Op.SHR)
_SHLADD = int(Op.SHLADD)
_CMP_LT = int(Op.CMP_LT)
_CMP_LE = int(Op.CMP_LE)
_CMP_EQ = int(Op.CMP_EQ)
_CMP_NE = int(Op.CMP_NE)
_CMPI_LT = int(Op.CMPI_LT)
_CMPI_LE = int(Op.CMPI_LE)
_CMPI_EQ = int(Op.CMPI_EQ)
_CMPI_NE = int(Op.CMPI_NE)
_MOV_LC_IMM = int(Op.MOV_LC_IMM)
_MOV_LC_REG = int(Op.MOV_LC_REG)
_MOV_EC_IMM = int(Op.MOV_EC_IMM)
_ALLOC = int(Op.ALLOC)
_CLRRRB = int(Op.CLRRRB)
_MOV_PR_ROT = int(Op.MOV_PR_ROT)
_LD8 = int(Op.LD8)
_ST8 = int(Op.ST8)
_LDFD = int(Op.LDFD)
_STFD = int(Op.STFD)
_LFETCH = int(Op.LFETCH)
_FMA = int(Op.FMA)
_FADD = int(Op.FADD)
_FSUB = int(Op.FSUB)
_FMUL = int(Op.FMUL)
_SETF = int(Op.SETF)
_GETF = int(Op.GETF)
_FABS = int(Op.FABS)
_FMAX = int(Op.FMAX)
_BR = int(Op.BR)
_BR_COND = int(Op.BR_COND)
_BR_CTOP = int(Op.BR_CTOP)
_BR_CLOOP = int(Op.BR_CLOOP)
_BR_WTOP = int(Op.BR_WTOP)
_BR_CALL = int(Op.BR_CALL)
_BR_RET = int(Op.BR_RET)
_HALT = int(Op.HALT)
_FETCHADD8 = int(Op.FETCHADD8)

_BTB_SIZE = 4


class Core:
    """One simulated CPU (and the thread bound to it)."""

    __slots__ = (
        "cpu_id",
        "regs",
        "cache",
        "mem",
        "images",
        "pc",
        "cycles",
        "retired",
        "bundles_executed",
        "halted",
        "call_stack",
        "btb",
        "dear",
        "on_sample",
        "sample_interval",
        "sample_overhead",
        "_sample_countdown",
        "taken_branches",
        "bundles_per_cycle",
        "_issue_tick",
    )

    def __init__(
        self,
        cpu_id: int,
        cache: CpuCacheSystem,
        mem: MemorySystem,
        bundles_per_cycle: int = 2,
    ) -> None:
        self.cpu_id = cpu_id
        self.regs = RegisterFile()
        self.cache = cache
        self.mem = mem
        self.images: list[BinaryImage] = []
        self.pc = 0
        self.cycles = 0
        self.retired = 0
        self.bundles_executed = 0
        self.halted = True
        self.call_stack: list[int] = []
        self.btb: list[tuple[int, int]] = []
        self.dear: tuple[int, int, int] | None = None
        self.on_sample: Callable[["Core"], None] | None = None
        self.sample_interval = 0           # 0 -> sampling off
        self.sample_overhead = 0
        self._sample_countdown = 0
        self.taken_branches = 0
        # Itanium 2 disperses two bundles per cycle; issue cost is
        # accounted per bundle pair (memory stalls are charged in full)
        self.bundles_per_cycle = bundles_per_cycle
        self._issue_tick = 0

    # -- program control -----------------------------------------------------

    def add_image(self, image: BinaryImage) -> None:
        if image not in self.images:
            self.images.append(image)

    def start(self, entry: int) -> None:
        """Point the core at ``entry`` and mark it runnable."""
        self.pc = entry
        self.halted = False

    def enable_sampling(
        self,
        interval: int,
        on_sample: Callable[["Core"], None],
        overhead: int = 0,
    ) -> None:
        self.sample_interval = interval
        self.on_sample = on_sample
        self.sample_overhead = overhead
        self._sample_countdown = interval

    def disable_sampling(self) -> None:
        self.sample_interval = 0
        self.on_sample = None

    def _fetch_bundle(self, addr: int):
        for image in self.images:
            bundle = image.bundles.get(addr)
            if bundle is not None:
                return bundle
        raise SimulationFault("no code at address", pc=addr, cpu=self.cpu_id)

    def _record_taken(self, branch_pc: int, target: int) -> None:
        self.taken_branches += 1
        btb = self.btb
        btb.append((branch_pc, target))
        if len(btb) > _BTB_SIZE:
            del btb[0]

    # -- execution --------------------------------------------------------------

    def run(self, max_bundles: int, cycle_limit: int | None = None) -> int:
        """Execute up to ``max_bundles`` bundles; return how many ran.

        ``cycle_limit`` stops execution once ``self.cycles`` exceeds it —
        the scheduler uses this to keep all cores' clocks closely
        synchronized (time-ordered simulation), which is what makes
        shared-bus queueing physically meaningful.
        """
        if self.halted:
            return 0
        if cycle_limit is None:
            cycle_limit = 1 << 62
        regs = self.regs
        gr = regs.read_gr
        grw = regs.write_gr
        fr = regs.read_fr
        frw = regs.write_fr
        prr = regs.read_pr
        prw = regs.write_pr
        cache = self.cache
        cache_access = cache.access
        mem = self.mem
        executed = 0

        while executed < max_bundles and self.cycles <= cycle_limit:
            pc = self.pc
            bundle = self._fetch_bundle(pc & ~(BUNDLE_BYTES - 1))
            taken = False
            stall = 0
            n_slots = 0
            for instr in bundle.slots[pc & (BUNDLE_BYTES - 1) :]:
                op = instr.op
                n_slots += 1
                qp = instr.qp
                if qp and not prr(qp):
                    # predicated off; br.wtop still evaluates (see below)
                    if op != _BR_WTOP:
                        continue
                if op == _NOP:
                    continue
                elif op == _LDFD:
                    a = gr(instr.r2)
                    stall += cache_access(self.cycles, a, LOAD)
                    if cache.dear_pending is not None:
                        self.dear = (pc + n_slots - 1, a, cache.dear_pending)
                        cache.dear_pending = None
                    frw(instr.r1, mem.read_f64(a))
                    if instr.imm:
                        grw(instr.r2, a + instr.imm)
                elif op == _STFD:
                    a = gr(instr.r2)
                    stall += cache_access(self.cycles, a, STORE)
                    if cache.dear_pending is not None:
                        self.dear = (pc + n_slots - 1, a, cache.dear_pending)
                        cache.dear_pending = None
                    mem.write_f64(a, fr(instr.r3))
                    if instr.imm:
                        grw(instr.r2, a + instr.imm)
                elif op == _LFETCH:
                    a = gr(instr.r2)
                    cache_access(
                        self.cycles, a, PREFETCH_EXCL if instr.excl else PREFETCH
                    )
                    if instr.imm:
                        grw(instr.r2, a + instr.imm)
                elif op == _FMA:
                    frw(instr.r1, fr(instr.r2) * fr(instr.r3) + fr(instr.r4))
                elif op == _ADD:
                    grw(instr.r1, gr(instr.r2) + gr(instr.r3))
                elif op == _ADDI:
                    grw(instr.r1, gr(instr.r2) + instr.imm)
                elif op == _LD8:
                    a = gr(instr.r2)
                    stall += cache_access(
                        self.cycles, a, LOAD_BIAS if instr.excl else LOAD
                    )
                    if cache.dear_pending is not None:
                        self.dear = (pc + n_slots - 1, a, cache.dear_pending)
                        cache.dear_pending = None
                    grw(instr.r1, mem.read_i64(a))
                    if instr.imm:
                        grw(instr.r2, a + instr.imm)
                elif op == _ST8:
                    a = gr(instr.r2)
                    stall += cache_access(self.cycles, a, STORE)
                    if cache.dear_pending is not None:
                        self.dear = (pc + n_slots - 1, a, cache.dear_pending)
                        cache.dear_pending = None
                    mem.write_i64(a, gr(instr.r3))
                    if instr.imm:
                        grw(instr.r2, a + instr.imm)
                elif op == _BR_CTOP:
                    if regs.lc > 0:
                        regs.lc -= 1
                        regs.rotate()
                        prw(16, True)
                        taken = True
                    elif regs.ec > 1:
                        regs.ec -= 1
                        regs.rotate()
                        prw(16, False)
                        taken = True
                    else:
                        if regs.ec > 0:
                            regs.ec -= 1
                        regs.rotate()
                        prw(16, False)
                    if taken:
                        self.pc = instr.imm
                        self._record_taken(pc + n_slots - 1, instr.imm)
                        break
                elif op == _BR_CLOOP:
                    if regs.lc > 0:
                        regs.lc -= 1
                        self.pc = instr.imm
                        taken = True
                        self._record_taken(pc + n_slots - 1, instr.imm)
                        break
                elif op == _BR_WTOP:
                    # qp is the *branch* predicate here, not a guard
                    if prr(qp):
                        regs.rotate()
                        prw(16, False)
                        taken = True
                    elif regs.ec > 1:
                        regs.ec -= 1
                        regs.rotate()
                        prw(16, False)
                        taken = True
                    else:
                        if regs.ec > 0:
                            regs.ec -= 1
                        regs.rotate()
                        prw(16, False)
                    if taken:
                        self.pc = instr.imm
                        self._record_taken(pc + n_slots - 1, instr.imm)
                        break
                elif op == _BR_COND:
                    # guard already passed (qp true) -> taken
                    self.pc = instr.imm
                    taken = True
                    self._record_taken(pc + n_slots - 1, instr.imm)
                    break
                elif op == _BR:
                    self.pc = instr.imm
                    taken = True
                    self._record_taken(pc + n_slots - 1, instr.imm)
                    break
                elif op == _CMP_LT:
                    c = gr(instr.r3) < gr(instr.r4)
                    prw(instr.r1, c)
                    prw(instr.r2, not c)
                elif op == _CMP_LE:
                    c = gr(instr.r3) <= gr(instr.r4)
                    prw(instr.r1, c)
                    prw(instr.r2, not c)
                elif op == _CMP_EQ:
                    c = gr(instr.r3) == gr(instr.r4)
                    prw(instr.r1, c)
                    prw(instr.r2, not c)
                elif op == _CMP_NE:
                    c = gr(instr.r3) != gr(instr.r4)
                    prw(instr.r1, c)
                    prw(instr.r2, not c)
                elif op == _CMPI_LT:
                    c = gr(instr.r3) < instr.imm
                    prw(instr.r1, c)
                    prw(instr.r2, not c)
                elif op == _CMPI_LE:
                    c = gr(instr.r3) <= instr.imm
                    prw(instr.r1, c)
                    prw(instr.r2, not c)
                elif op == _CMPI_EQ:
                    c = gr(instr.r3) == instr.imm
                    prw(instr.r1, c)
                    prw(instr.r2, not c)
                elif op == _CMPI_NE:
                    c = gr(instr.r3) != instr.imm
                    prw(instr.r1, c)
                    prw(instr.r2, not c)
                elif op == _MOV:
                    grw(instr.r1, gr(instr.r2))
                elif op == _MOVI:
                    grw(instr.r1, instr.imm)
                elif op == _SUB:
                    grw(instr.r1, gr(instr.r2) - gr(instr.r3))
                elif op == _AND:
                    grw(instr.r1, gr(instr.r2) & gr(instr.r3))
                elif op == _OR:
                    grw(instr.r1, gr(instr.r2) | gr(instr.r3))
                elif op == _XOR:
                    grw(instr.r1, gr(instr.r2) ^ gr(instr.r3))
                elif op == _SHL:
                    grw(instr.r1, gr(instr.r2) << instr.imm)
                elif op == _SHR:
                    grw(instr.r1, gr(instr.r2) >> instr.imm)
                elif op == _SHLADD:
                    grw(instr.r1, (gr(instr.r2) << instr.imm) + gr(instr.r3))
                elif op == _FADD:
                    frw(instr.r1, fr(instr.r2) + fr(instr.r3))
                elif op == _FSUB:
                    frw(instr.r1, fr(instr.r2) - fr(instr.r3))
                elif op == _FMUL:
                    frw(instr.r1, fr(instr.r2) * fr(instr.r3))
                elif op == _FABS:
                    frw(instr.r1, abs(fr(instr.r2)))
                elif op == _FMAX:
                    frw(instr.r1, max(fr(instr.r2), fr(instr.r3)))
                elif op == _SETF:
                    frw(instr.r1, float(gr(instr.r2)))
                elif op == _GETF:
                    grw(instr.r1, int(fr(instr.r2)))
                elif op == _FETCHADD8:
                    a = gr(instr.r2)
                    stall += cache_access(self.cycles, a, ATOMIC)
                    old = mem.read_i64(a)
                    mem.write_i64(a, old + instr.imm)
                    grw(instr.r1, old)
                elif op == _MOV_LC_IMM:
                    regs.lc = instr.imm
                elif op == _MOV_LC_REG:
                    regs.lc = gr(instr.r2)
                elif op == _MOV_EC_IMM:
                    regs.ec = instr.imm
                elif op == _ALLOC:
                    regs.alloc_rotating(instr.imm)
                elif op == _MOV_PR_ROT:
                    mask = int(instr.imm)
                    for i in range(16, 64):
                        regs.pr[i] = bool(mask & (1 << i))
                    # note: writes physical rotating predicates (rrb-independent
                    # only when rrb is 0, which is how compilers use it)
                elif op == _CLRRRB:
                    regs.clear_rrb()
                elif op == _BR_CALL:
                    self.call_stack.append((pc & ~(BUNDLE_BYTES - 1)) + BUNDLE_BYTES)
                    self.pc = instr.imm
                    taken = True
                    self._record_taken(pc + n_slots - 1, instr.imm)
                    break
                elif op == _BR_RET:
                    if not self.call_stack:
                        raise SimulationFault("br.ret with empty call stack", pc=pc, cpu=self.cpu_id)
                    self.pc = self.call_stack.pop()
                    taken = True
                    self._record_taken(pc + n_slots - 1, self.pc)
                    break
                elif op == _HALT:
                    self.halted = True
                    self.retired += n_slots
                    self.cycles += 1 + stall
                    self.bundles_executed += 1
                    return executed + 1
                else:  # pragma: no cover - defensive
                    raise SimulationFault(f"illegal opcode {op}", pc=pc, cpu=self.cpu_id)

            if not taken:
                self.pc = (pc & ~(BUNDLE_BYTES - 1)) + BUNDLE_BYTES
            self.retired += n_slots
            self._issue_tick += 1
            if self._issue_tick >= self.bundles_per_cycle:
                self._issue_tick = 0
                self.cycles += 1 + stall
            else:
                self.cycles += stall
            self.bundles_executed += 1
            executed += 1

            if self.sample_interval:
                self._sample_countdown -= n_slots
                if self._sample_countdown <= 0:
                    self._sample_countdown = self.sample_interval
                    self.cycles += self.sample_overhead
                    self.on_sample(self)  # type: ignore[misc]

        return executed
