"""Trace compilation for the interpreter: hot loops become closures.

COBRA's own premise — steady-state loop traces dominate runtime and
deserve a specialized fast path — applied to the simulator itself.  The
generic interpreter pays, for every slot of every iteration, a decoded-
tuple unpack, a predicate check, a ~30-arm opcode dispatch chain and
static-vs-rotating register tests.  For the modulo-scheduled kernels
that make up essentially all simulated cycles, none of that changes
between iterations: the decoded slots, the predicate register numbers,
the rotation classification of every operand, the lfetch hints and the
memory-op kinds are all loop invariants.

:func:`compile_trace` therefore flattens the decoded bundles of one
loop body — from a hot ``br.ctop``/``br.cloop``/``br.wtop`` back-edge
target up to and including the back-edge bundle — into Python source
specialized for exactly that trace (operand indices folded to
constants, dispatch eliminated, hardwired-register guards proven away
at compile time), ``exec``s it once, and hands the interpreter a *step
closure* that runs steady-state iterations until the trace exits.

On top of single-loop traces the registry grows **trace trees** with
OSR-style mid-body entry (DESIGN.md §9):

* **OSR entry** — every covered bundle address of a compiled trace is a
  legal entry point.  The interpreter's dispatch map resolves any pc to
  an :class:`_EntryPoint` ``(trace, bundle index)``; entering at a
  nonzero index lazily compiles a *suffix closure* that ingests the
  current architectural state (rotation indices, predicates, LC/EC,
  sampling countdown — the same 22-argument capture contract the
  steady-state closure uses) and executes from that bundle.  A suffix
  that reaches the back-edge hands off to the steady-state closure via
  the ``EXIT_LINK`` flag instead of re-interpreting;
* **side-exit chaining** — architectural trace exits (``EXIT_LOOP``,
  ``EXIT_SIDE``, ``EXIT_LINK``) are counted per ``(head, target)`` exit
  site; a site crossing the hot threshold promotes the target into a
  secondary trace rooted at the parent's tree.  Promotion compiles a
  loop trace when the target is itself a loop head (nested loops) and a
  straight-line *linear trace* otherwise (epilogue drains after
  ``cloop``/``wtop``, early-exit tails, >``MAX_TRACE_BUNDLES`` loop
  prefixes) — so control chains from compiled code to compiled code
  instead of falling back to the interpreter forever;
* **tree invalidation** — every node keys its covered bundles by decode
  content exactly like a root trace, and staleness is evaluated on the
  *union* of the tree's covered bundles: a live patch under any node
  deoptimizes the whole tree before the next slice, while a
  byte-identical rollback leaves the whole tree resident.

The contract with the generic interpreter (DESIGN.md §9):

* **bit-identical observables** — the closure replicates the generic
  loop's cycle accounting, L2-hit fast path, DEAR/BTB updates and
  retirement arithmetic statement for statement; per-bundle it checks
  the same ``max_bundles``/``cycle_limit`` budget the scheduler uses to
  keep cores' clocks entangled, so even *slice boundaries* fall on the
  same bundle as the generic path;
* **fall back on anything unusual** — predicate/LC/EC divergence simply
  steers the coded exits (the trace is the specialized version; the
  generic interpreter is the always-correct fallback, cf. multi-version
  rewriting); sampling boundaries return control to the interpreter's
  sample-interrupt block; traces never compile over ``alloc``,
  ``clrrrb``, calls, returns or ``halt``;
* **deoptimize on patches** — compiled traces key every covered bundle
  by the decode cache's content bytes and are revalidated whenever the
  decode journal observes a mutation (:meth:`TraceJit.sync`), so
  lfetch→nop / lfetch→lfetch.excl rewrites and their rollbacks — or a
  chaos schedule tearing them mid-run — invalidate exactly the trees
  they touch before the next slice executes.

The closure executes only while the memory fast path is legal (no
coherence validator attached) and while ``sor`` matches the compiled
rotation geometry; the interpreter guards both at every entry.
"""

from __future__ import annotations

from ..isa.binary import BUNDLE_BYTES
from ..isa.instructions import Op
from ..memory.address import LINE_SHIFT
from ..memory.coherence import MODIFIED, SHARED
from ..memory.dram import DATA_BASE
from ..memory.hierarchy import (
    ATOMIC,
    LOAD,
    LOAD_BIAS,
    PREFETCH,
    PREFETCH_EXCL,
    STORE,
)

__all__ = [
    "CompiledTrace",
    "TraceJit",
    "compile_trace",
    "compile_linear_trace",
    "DEOPT_REASONS",
    "MAX_TRACE_BUNDLES",
    "HOT_THRESHOLD",
]

# deopt/exit flags returned by compiled traces (index into DEOPT_REASONS)
EXIT_LOOP = 0      # loop completed (back-edge not taken) — normal epilog exit
EXIT_SAMPLE = 1    # sampling countdown expired — fire the PMU interrupt
EXIT_BUDGET = 2    # max_bundles / cycle_limit slice boundary reached
EXIT_SIDE = 3      # a conditional branch left the trace mid-body
EXIT_LINK = 4      # normal completion handoff (OSR suffix / linear region end)

DEOPT_REASONS = ("loop-exit", "sample", "budget", "side-exit", "link")

#: Longest loop body (in bundles) the compiler will flatten.
MAX_TRACE_BUNDLES = 32

#: Shortest straight-line region worth a closure call (a 1-bundle
#: linear trace would pay the call overhead for zero dispatch savings).
MIN_LINEAR_BUNDLES = 2

#: Back-edge executions before a loop head is considered hot.  The same
#: threshold promotes hot trace-exit sites into secondary tree nodes.
#: OSR entry makes early compilation cheap — the interpreter transfers
#: in at the current iteration state instead of waiting for a cold
#: re-entry — so the ramp is exactly this many interpreted iterations
#: and a wrong guess costs one blacklisted compile attempt.  Three taken
#: back-edges separate steady-state loops from if-else diamonds well
#: enough to hold the fastpath bench's >=97% coverage floor.
HOT_THRESHOLD = 3

_NOP = int(Op.NOP)
_ADD = int(Op.ADD)
_ADDI = int(Op.ADDI)
_SUB = int(Op.SUB)
_MOV = int(Op.MOV)
_MOVI = int(Op.MOVI)
_AND = int(Op.AND)
_OR = int(Op.OR)
_XOR = int(Op.XOR)
_SHL = int(Op.SHL)
_SHR = int(Op.SHR)
_SHLADD = int(Op.SHLADD)
_CMP_LT = int(Op.CMP_LT)
_CMP_LE = int(Op.CMP_LE)
_CMP_EQ = int(Op.CMP_EQ)
_CMP_NE = int(Op.CMP_NE)
_CMPI_LT = int(Op.CMPI_LT)
_CMPI_NE = int(Op.CMPI_NE)
_MOV_LC_IMM = int(Op.MOV_LC_IMM)
_MOV_LC_REG = int(Op.MOV_LC_REG)
_MOV_EC_IMM = int(Op.MOV_EC_IMM)
_LD8 = int(Op.LD8)
_ST8 = int(Op.ST8)
_LDFD = int(Op.LDFD)
_STFD = int(Op.STFD)
_LFETCH = int(Op.LFETCH)
_FMA = int(Op.FMA)
_FADD = int(Op.FADD)
_FSUB = int(Op.FSUB)
_FMUL = int(Op.FMUL)
_SETF = int(Op.SETF)
_GETF = int(Op.GETF)
_FABS = int(Op.FABS)
_FMAX = int(Op.FMAX)
_BR = int(Op.BR)
_BR_COND = int(Op.BR_COND)
_BR_CTOP = int(Op.BR_CTOP)
_BR_CLOOP = int(Op.BR_CLOOP)
_BR_WTOP = int(Op.BR_WTOP)
_FETCHADD8 = int(Op.FETCHADD8)

_B63 = 1 << 63
_M64 = (1 << 64) - 1
_BMASK = ~(BUNDLE_BYTES - 1)
_SMASK = BUNDLE_BYTES - 1
_BTB_SIZE = 4

_LOOP_BRANCHES = (_BR_CTOP, _BR_CLOOP, _BR_WTOP)

#: ops writing a general register through r1
_GR_DEST_OPS = frozenset((
    _ADD, _ADDI, _SUB, _MOV, _MOVI, _AND, _OR, _XOR, _SHL, _SHR,
    _SHLADD, _GETF, _LD8, _FETCHADD8,
))
#: ops writing a float register through r1
_FR_DEST_OPS = frozenset((_LDFD, _FMA, _FADD, _FSUB, _FMUL, _SETF, _FABS, _FMAX))
#: ops writing two predicate registers through r1/r2
_PR_DEST_OPS = frozenset(range(_CMP_LT, _CMPI_NE + 1))
#: memory ops whose nonzero imm post-increments the gr addressed by r2
_POSTINC_OPS = frozenset((_LD8, _ST8, _LDFD, _STFD, _LFETCH))

_SUPPORTED = (
    _GR_DEST_OPS
    | _FR_DEST_OPS
    | _PR_DEST_OPS
    | frozenset((
        _MOV_LC_IMM, _MOV_LC_REG, _MOV_EC_IMM, _ST8, _STFD, _LFETCH,
        _BR, _BR_COND, _BR_CTOP, _BR_CLOOP, _BR_WTOP,
    ))
)


_CODE_CACHE: dict = {}
_CODE_CACHE_CAP = 1024  # generated sources are small; cap is a leak guard


def _compile_source(source: str, filename: str):
    """Parse-once cache for generated trace source.

    Cores simulating the same program emit byte-identical source for the
    same trace head, and ``compile()`` dominates short-run wall clock.
    The parsed code object is immutable and shared process-wide; each
    ``exec`` still builds its own closure, so per-core state never leaks.
    """
    key = (filename, source)
    code = _CODE_CACHE.get(key)
    if code is None:
        if len(_CODE_CACHE) >= _CODE_CACHE_CAP:
            del _CODE_CACHE[next(iter(_CODE_CACHE))]
        code = compile(source, filename, "exec")
        _CODE_CACHE[key] = code
    return code


class CompiledTrace:
    """One compiled trace node: closures plus validity/tree metadata."""

    __slots__ = (
        "fn", "head", "sor", "addrs", "keys", "n_bundles", "source",
        "kind", "root", "body", "bpc", "entry_fns", "children", "last_used",
    )

    def __init__(self, fn, head, sor, addrs, keys, n_bundles, source,
                 kind, body, bpc):
        self.fn = fn
        self.head = head
        self.sor = sor
        self.addrs = addrs      # covered bundle addresses, in trace order
        self.keys = keys        # decode-cache content keys at compile time
        self.n_bundles = n_bundles
        self.source = source    # generated Python (audits / debugging)
        self.kind = kind        # "loop" (steady-state) or "linear" (one pass)
        self.root = head        # tree root head (== head for root nodes)
        self.body = body        # decoded bundles (OSR suffix compilation)
        self.bpc = bpc          # bundles_per_cycle baked into the codegen
        self.entry_fns: dict[int, object] = {}   # bundle idx -> OSR closure
        self.children: list[int] = []            # promoted side-exit heads
        self.last_used = 0      # entry stamp for cold-first eviction

    def entry(self, idx: int):
        """The OSR entry closure starting at covered bundle ``idx``.

        Lazily generated and cached: a loop trace's suffix executes
        ``body[idx:]`` once and hands off to the steady-state closure at
        the back-edge (``EXIT_LINK``); a linear trace's suffix is just
        the region tail.  Index 0 is the trace's own ``fn``.
        """
        if idx == 0:
            return self.fn
        fn = self.entry_fns.get(idx)
        if fn is None:
            mode = "entry" if self.kind == "loop" else "linear"
            source = _generate(
                self.head, self.body, self.sor, self.bpc, mode=mode, start=idx
            )
            namespace: dict = {}
            exec(  # noqa: S102
                _compile_source(source, f"<trace {self.head:#x}+{idx}>"),
                namespace,
            )
            fn = namespace["__trace__"]
            self.entry_fns[idx] = fn
        return fn


class _EntryPoint:
    """One dispatch-map slot: a trace and the covered-bundle index."""

    __slots__ = ("trace", "idx", "fn")

    def __init__(self, trace: CompiledTrace, idx: int, fn=None) -> None:
        self.trace = trace
        self.idx = idx
        self.fn = fn            # None until materialized (lazy OSR suffix)


# -- code generation ----------------------------------------------------------


class _Emit:
    """Tiny indented-source builder."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def __call__(self, line: str) -> None:
        self.lines.append("    " * self.depth + line)

    def indent(self) -> None:
        self.depth += 1

    def dedent(self) -> None:
        self.depth -= 1


def _wrap64(expr: str) -> str:
    return f"((({expr}) + {_B63}) & {_M64}) - {_B63}"


class _TraceAbort(Exception):
    """Raised by the emitter when the trace cannot be specialized."""


def _walk(head: int, dmap: dict, relax: bool = False) -> list[tuple[int, tuple]]:
    """Collect the straight-line loop body ``head..back-edge`` bundles.

    With ``relax`` (trace trees enabled) a loop branch targeting a
    *different* head — an inner loop's back-edge inside the walked body
    — is allowed and becomes a plain side exit instead of aborting the
    walk, so outer loops of a nest compile too.

    Returns ``[(addr, decoded), ...]`` or raises :class:`_TraceAbort`.
    """
    if head & _SMASK:
        raise _TraceAbort("mid-bundle loop head")
    body: list[tuple[int, tuple]] = []
    addr = head
    for _ in range(MAX_TRACE_BUNDLES):
        decoded = dmap.get(addr)
        if decoded is None:
            raise _TraceAbort("trace runs off the decoded image")
        body.append((addr, decoded))
        closed = False
        for entry in decoded[1]:
            op = entry[1]
            if op not in _SUPPORTED:
                raise _TraceAbort(f"unsupported opcode {op}")
            if op in _LOOP_BRANCHES:
                if entry[7] == head:
                    closed = True
                elif not relax:
                    raise _TraceAbort("loop branch to a different head")
                # relaxed: the inner back-edge is a side exit when taken
            elif op == _BR:
                if entry[2] == 0 and entry[7] != head:
                    # unconditional goto elsewhere: not a loop body
                    raise _TraceAbort("unconditional branch out of trace")
                if entry[7] == head:
                    closed = True
            elif op == _BR_COND and entry[7] == head:
                closed = True
        if closed:
            return body
        addr += BUNDLE_BYTES
    raise _TraceAbort("loop body longer than MAX_TRACE_BUNDLES")


def _walk_linear(start: int, dmap: dict) -> list[tuple[int, tuple]]:
    """Collect a straight-line region ``start..`` for a linear trace.

    The region extends until an unconditional transfer (which closes
    it), an unsupported bundle, the edge of the decoded image, or
    ``MAX_TRACE_BUNDLES`` — whichever comes first; execution past a
    truncated end simply links back to the interpreter.
    """
    if start & _SMASK:
        raise _TraceAbort("mid-bundle region start")
    body: list[tuple[int, tuple]] = []
    addr = start
    for _ in range(MAX_TRACE_BUNDLES):
        decoded = dmap.get(addr)
        if decoded is None:
            break
        if any(entry[1] not in _SUPPORTED for entry in decoded[1]):
            break
        body.append((addr, decoded))
        if any(
            entry[1] == _BR and entry[2] == 0 for entry in decoded[1]
        ):
            break   # unconditional transfer closes the region
        addr += BUNDLE_BYTES
    if len(body) < MIN_LINEAR_BUNDLES:
        raise _TraceAbort("straight-line region too short to pay for a call")
    return body


def _make_trace(head, body, sor, bpc, keys, kind, mode):
    source = _generate(head, body, sor, bpc, mode=mode)
    namespace: dict = {}
    exec(_compile_source(source, f"<trace {head:#x}>"), namespace)  # noqa: S102
    addrs = tuple(addr for addr, _ in body)
    return CompiledTrace(
        fn=namespace["__trace__"],
        head=head,
        sor=sor,
        addrs=addrs,
        keys=tuple(keys.get(a) for a in addrs),
        n_bundles=len(body),
        source=source,
        kind=kind,
        body=body,
        bpc=bpc,
    )


def compile_trace(
    head: int,
    dmap: dict,
    keys: dict,
    sor: int,
    bundles_per_cycle: int,
    relax: bool = False,
) -> CompiledTrace | None:
    """Compile the loop at ``head`` into a step closure, or ``None``.

    ``dmap``/``keys`` are the core's synced :class:`DecodeCache` views;
    ``sor`` and ``bundles_per_cycle`` are baked into the generated code
    (the interpreter guards ``sor`` equality at every trace entry).
    ``relax`` admits inner-loop back-edges as side exits (trace trees).
    """
    try:
        body = _walk(head, dmap, relax=relax)
        return _make_trace(head, body, sor, bundles_per_cycle, keys,
                           "loop", "loop")
    except _TraceAbort:
        return None


def compile_linear_trace(
    start: int,
    dmap: dict,
    keys: dict,
    sor: int,
    bundles_per_cycle: int,
) -> CompiledTrace | None:
    """Compile the straight-line region at ``start``, or ``None``.

    Linear traces cover what loop traces cannot: epilogue drains after
    ``cloop``/``wtop``, early-exit tails, and the prefixes of loop
    bodies longer than ``MAX_TRACE_BUNDLES``.  The closure executes the
    region once and returns ``EXIT_LINK`` at its end (or ``EXIT_SIDE``
    at a taken conditional branch), chaining into the next trace via
    the dispatch map.
    """
    try:
        body = _walk_linear(start, dmap)
        return _make_trace(start, body, sor, bundles_per_cycle, keys,
                           "linear", "linear")
    except _TraceAbort:
        return None


def _generate(
    head: int,
    body: list[tuple[int, tuple]],
    sor: int,
    bpc: int,
    mode: str = "loop",
    start: int = 0,
) -> str:
    """Emit the closure source for one trace.

    ``mode`` selects the control skeleton around the shared slot
    emitters:

    * ``"loop"`` — the steady-state closure: ``while True`` over the
      whole body, back-edge to ``head`` continues in place;
    * ``"entry"`` — an OSR suffix of a loop trace: one pass over
      ``body[start:]``; a taken back-edge returns ``EXIT_LINK`` at
      ``head`` (the dispatch map then enters the steady-state closure);
    * ``"linear"`` — a straight-line region (``start`` slices for OSR
      entry): one pass; the region end or its closing unconditional
      branch returns ``EXIT_LINK``, conditional exits ``EXIT_SIDE``.
    """
    sor32 = 32 + sor
    e = _Emit()

    # -- operand expressions, resolved at compile time ---------------------

    def gr_r(r: int) -> str:
        if r == 0:
            return "0"
        if sor and 32 <= r < sor32:
            return f"grl[32 + ({r - 32} + rrb_gr) % {sor}]"
        return f"grl[{r}]"

    def gr_w(r: int) -> str:
        if r == 0:
            raise _TraceAbort("write to r0")
        if sor and 32 <= r < sor32:
            return f"grl[32 + ({r - 32} + rrb_gr) % {sor}]"
        return f"grl[{r}]"

    def fr_r(r: int) -> str:
        if r >= 32:
            return f"frl[32 + ({r - 32} + rrb_fr) % 96]"
        return f"frl[{r}]"

    def fr_w(r: int) -> str:
        if r in (0, 1):
            raise _TraceAbort(f"write to f{r}")
        return fr_r(r)

    def pr_r(p: int) -> str:
        if p >= 16:
            return f"prl[16 + ({p - 16} + rrb_pr) % 48]"
        return f"prl[{p}]"

    def pr_w(p: int) -> str:
        if p == 0:
            raise _TraceAbort("write to p0")
        return pr_r(p)

    def ret(pc_expr: str, flag: int) -> str:
        return (
            f"return ({pc_expr}, lc, ec, rrb_gr, rrb_fr, rrb_pr, cycles, "
            f"retired, bundles_executed, taken_branches, issue_tick, "
            f"countdown, executed, iters, {flag})"
        )

    def emit_retire(n_slots: int, next_pc: int) -> None:
        """The generic loop's end-of-bundle bookkeeping, constants folded."""
        e(f"retired += {n_slots}")
        e("issue_tick += 1")
        e(f"if issue_tick >= {bpc}:")
        e.indent()
        e("issue_tick = 0")
        e("cycles += 1 + stall")
        e.dedent()
        e("else:")
        e.indent()
        e("cycles += stall")
        e.dedent()
        e("bundles_executed += 1")
        e("executed += 1")
        e("if sampling:")
        e.indent()
        e(f"countdown -= {n_slots}")
        e("if countdown <= 0:")
        e.indent()
        e(ret(str(next_pc), EXIT_SAMPLE))
        e.dedent()
        e.dedent()

    def emit_taken(base: int, idx: int, target: int, link: bool = False) -> None:
        """Taken-branch exit: bookkeeping + retire, then leave or loop."""
        e("taken_branches += 1")
        e(f"btb_append(({base + idx}, {target}))")
        e(f"if len(btb) > {_BTB_SIZE}:")
        e.indent()
        e("del btb[0]")
        e.dedent()
        emit_retire(idx + 1, target)
        if target == head and mode == "loop":
            e("iters += 1")
            e("continue")
        elif target == head and mode == "entry":
            # OSR suffix reached the back-edge: hand off to the
            # steady-state closure through the dispatch map
            e(ret(str(target), EXIT_LINK))
        else:
            e(ret(str(target), EXIT_LINK if link else EXIT_SIDE))

    def emit_rotate() -> None:
        """One register rotation (shared by ctop/wtop arms)."""
        if sor:
            e(f"rrb_gr = (rrb_gr - 1) % {sor}")
        e("rrb_fr = (rrb_fr - 1) % 96")
        e("rrb_pr = (rrb_pr - 1) % 48")

    def emit_post_inc(r2: int, imm: int) -> None:
        e(f"na = {_wrap64(f'a + {imm}')}")
        e(f"{gr_w(r2)} = na")

    def emit_mem_addr(r2: int) -> None:
        e(f"a = {gr_r(r2)}")

    def emit_l2_probe() -> None:
        e(f"line = a >> {LINE_SHIFT}")
        e("lru = l2_sets[line % l2_nsets]")

    def emit_slow_access(kind: int, base: int, idx: int, charge: bool) -> None:
        if charge:
            e(f"stall += cache_access(cycles, a, {kind})")
        else:
            e(f"cache_access(cycles, a, {kind})")
        if kind in (LOAD, STORE, LOAD_BIAS):
            e("dp = cache.dear_pending")
            e("if dp is not None:")
            e.indent()
            e(f"core.dear = ({base + idx}, a, dp)")
            e("cache.dear_pending = None")
            e.dedent()

    # -- slot emitters -----------------------------------------------------

    def emit_slot(base: int, entry: tuple) -> None:
        idx, op, qp, r1, r2, r3, r4, imm, excl = entry

        guarded = bool(qp) and op != _BR_WTOP
        if guarded:
            e(f"if {pr_r(qp)}:")
            e.indent()

        if op == _LDFD or op == _LD8:
            reader_fast = "mem_f64_item" if op == _LDFD else "mem_i64_item"
            reader_slow = "mem_read_f64" if op == _LDFD else "mem_read_i64"
            emit_mem_addr(r2)
            biased = op == _LD8 and excl
            if biased:
                emit_slow_access(LOAD_BIAS, base, idx, charge=True)
            else:
                emit_l2_probe()
                e("if line in lru:")
                e.indent()
                e("mem_events.loads += 1")
                e("del lru[line]")
                e("lru[line] = None")
                e("stall += l2_hit_lat")
                e.dedent()
                e("else:")
                e.indent()
                emit_slow_access(LOAD, base, idx, charge=True)
                e.dedent()
            e(f"off = a - {DATA_BASE}")
            e("if 0 <= off < mem_cap and not off & 7:")
            e.indent()
            e(f"v = {reader_fast}(off >> 3)")
            e.dedent()
            e("else:")
            e.indent()
            e(f"v = {reader_slow}(a)")
            e.dedent()
            e(f"{(fr_w if op == _LDFD else gr_w)(r1)} = v")
            if imm:
                emit_post_inc(r2, imm)
        elif op == _STFD or op == _ST8:
            emit_mem_addr(r2)
            emit_l2_probe()
            e("hit = False")
            e("if line in lru:")
            e.indent()
            e("st = line_state[line]")
            e(f"if st != {SHARED}:")
            e.indent()
            e("mem_events.stores += 1")
            e(f"if st != {MODIFIED}:")
            e.indent()
            e(f"line_state[line] = {MODIFIED}")
            e.dedent()
            e("l2_dirty.add(line)")
            e("del lru[line]")
            e("lru[line] = None")
            e("stall += l2_hit_lat")
            e("hit = True")
            e.dedent()
            e.dedent()
            e("if not hit:")
            e.indent()
            emit_slow_access(STORE, base, idx, charge=True)
            e.dedent()
            if op == _STFD:
                e(f"v = {fr_r(r3)}")
            else:
                e(f"v = {gr_r(r3)}")
            e(f"off = a - {DATA_BASE}")
            e("if 0 <= off < mem_cap and not off & 7:")
            e.indent()
            if op == _STFD:
                e("mem_f64_set(off >> 3, v)")
            else:
                e(f"mem_i64_set(off >> 3, {_wrap64('v')})")
            e.dedent()
            e("else:")
            e.indent()
            e(f"{'mem_write_f64' if op == _STFD else 'mem_write_i64'}(a, v)")
            e.dedent()
            if imm:
                emit_post_inc(r2, imm)
        elif op == _LFETCH:
            emit_mem_addr(r2)
            emit_l2_probe()
            cond = "line in lru"
            if excl:
                cond += f" and line_state[line] == {MODIFIED}"
            e(f"if {cond}:")
            e.indent()
            e("mem_events.prefetches += 1")
            e("del lru[line]")
            e("lru[line] = None")
            e.dedent()
            e("else:")
            e.indent()
            emit_slow_access(
                PREFETCH_EXCL if excl else PREFETCH, base, idx, charge=False
            )
            e.dedent()
            if imm:
                emit_post_inc(r2, imm)
        elif op == _FMA:
            e(f"{fr_w(r1)} = {fr_r(r2)} * {fr_r(r3)} + {fr_r(r4)}")
        elif op == _ADD:
            e(f"{gr_w(r1)} = {_wrap64(f'{gr_r(r2)} + {gr_r(r3)}')}")
        elif op == _ADDI:
            e(f"{gr_w(r1)} = {_wrap64(f'{gr_r(r2)} + {imm}')}")
        elif op == _SUB:
            e(f"{gr_w(r1)} = {_wrap64(f'{gr_r(r2)} - {gr_r(r3)}')}")
        elif op == _AND:
            e(f"{gr_w(r1)} = {_wrap64(f'{gr_r(r2)} & {gr_r(r3)}')}")
        elif op == _OR:
            e(f"{gr_w(r1)} = {_wrap64(f'{gr_r(r2)} | {gr_r(r3)}')}")
        elif op == _XOR:
            e(f"{gr_w(r1)} = {_wrap64(f'{gr_r(r2)} ^ {gr_r(r3)}')}")
        elif op == _SHL:
            e(f"{gr_w(r1)} = {_wrap64(f'{gr_r(r2)} << {imm}')}")
        elif op == _SHR:
            e(f"{gr_w(r1)} = {_wrap64(f'{gr_r(r2)} >> {imm}')}")
        elif op == _SHLADD:
            e(f"{gr_w(r1)} = {_wrap64(f'({gr_r(r2)} << {imm}) + {gr_r(r3)}')}")
        elif op == _MOV:
            e(f"{gr_w(r1)} = {gr_r(r2)}")
        elif op == _MOVI:
            e(f"{gr_w(r1)} = {((imm + _B63) & _M64) - _B63}")
        elif op in _PR_DEST_OPS:
            a_expr = gr_r(r3)
            if op >= _CMPI_LT:
                b_expr = str(imm)
                base_op = op - 4
            else:
                b_expr = gr_r(r4)
                base_op = op
            rel = {
                _CMP_LT: "<", _CMP_LE: "<=", _CMP_EQ: "==", _CMP_NE: "!=",
            }[base_op]
            e(f"c = {a_expr} {rel} {b_expr}")
            e(f"{pr_w(r1)} = c")
            e(f"{pr_w(r2)} = not c")
        elif op == _FADD:
            e(f"{fr_w(r1)} = {fr_r(r2)} + {fr_r(r3)}")
        elif op == _FSUB:
            e(f"{fr_w(r1)} = {fr_r(r2)} - {fr_r(r3)}")
        elif op == _FMUL:
            e(f"{fr_w(r1)} = {fr_r(r2)} * {fr_r(r3)}")
        elif op == _FMAX:
            e(f"fa = {fr_r(r2)}")
            e(f"fb = {fr_r(r3)}")
            e(f"{fr_w(r1)} = fa if fa >= fb else fb")
        elif op == _FABS:
            e(f"{fr_w(r1)} = abs({fr_r(r2)})")
        elif op == _SETF:
            e(f"{fr_w(r1)} = float({gr_r(r2)})")
        elif op == _GETF:
            e(f"{gr_w(r1)} = {_wrap64(f'int({fr_r(r2)})')}")
        elif op == _FETCHADD8:
            emit_mem_addr(r2)
            e(f"stall += cache_access(cycles, a, {ATOMIC})")
            e("old = mem_read_i64(a)")
            e(f"mem_write_i64(a, old + {imm})")
            e(f"{gr_w(r1)} = old")
        elif op == _MOV_LC_IMM:
            e(f"lc = {imm}")
        elif op == _MOV_LC_REG:
            e(f"lc = {gr_r(r2)}")
        elif op == _MOV_EC_IMM:
            e(f"ec = {imm}")
        elif op == _BR_CTOP:
            e("if lc > 0:")
            e.indent()
            e("lc -= 1")
            emit_rotate()
            e("prl[16 + rrb_pr] = True")
            emit_taken(base, idx, imm)
            e.dedent()
            e("elif ec > 1:")
            e.indent()
            e("ec -= 1")
            emit_rotate()
            e("prl[16 + rrb_pr] = False")
            emit_taken(base, idx, imm)
            e.dedent()
            e("else:")
            e.indent()
            e("if ec > 0:")
            e.indent()
            e("ec -= 1")
            e.dedent()
            emit_rotate()
            e("prl[16 + rrb_pr] = False")
            e.dedent()
        elif op == _BR_CLOOP:
            e("if lc > 0:")
            e.indent()
            e("lc -= 1")
            emit_taken(base, idx, imm)
            e.dedent()
        elif op == _BR_WTOP:
            # qp is the *branch* predicate here, evaluated even when false
            e(f"if {pr_r(qp)}:")
            e.indent()
            emit_rotate()
            e("prl[16 + rrb_pr] = False")
            emit_taken(base, idx, imm)
            e.dedent()
            e("elif ec > 1:")
            e.indent()
            e("ec -= 1")
            emit_rotate()
            e("prl[16 + rrb_pr] = False")
            emit_taken(base, idx, imm)
            e.dedent()
            e("else:")
            e.indent()
            e("if ec > 0:")
            e.indent()
            e("ec -= 1")
            e.dedent()
            emit_rotate()
            e("prl[16 + rrb_pr] = False")
            e.dedent()
        elif op == _BR or op == _BR_COND:
            # guard already evaluated (qp wrapper above) -> taken; an
            # unconditional br closing a linear region is its normal
            # exit (link), not a deviation from the trace
            emit_taken(
                base, idx, imm,
                link=(mode == "linear" and op == _BR and qp == 0),
            )
        else:  # pragma: no cover — the walkers filter unsupported ops
            raise _TraceAbort(f"unsupported opcode {op}")

        if guarded:
            e.dedent()

    # -- function body -----------------------------------------------------

    e("def __trace__(core, cache, mem, grl, frl, prl, btb, lc, ec, rrb_gr, "
      "rrb_fr, rrb_pr, cycles, retired, bundles_executed, taken_branches, "
      "issue_tick, countdown, sampling, executed, max_bundles, cycle_limit):")
    e.indent()
    e("cache_access = cache.access_fn")
    e("l2_sets = cache._l2_sets")
    e("l2_nsets = cache._l2_nsets")
    e("l2_hit_lat = cache._l2_hit")
    e("line_state = cache.state")
    e("l2_dirty = cache.l2_dirty")
    e("mem_events = cache.events")
    e("mem_cap = mem.capacity")
    e("mem_f64_item = mem._f64.item")
    e("mem_f64_set = mem._f64.__setitem__")
    e("mem_i64_item = mem._i64.item")
    e("mem_i64_set = mem._i64.__setitem__")
    e("mem_read_f64 = mem.read_f64")
    e("mem_write_f64 = mem.write_f64")
    e("mem_read_i64 = mem.read_i64")
    e("mem_write_i64 = mem.write_i64")
    e("btb_append = btb.append")
    e("iters = 0")
    if mode == "loop":
        e("while True:")
        e.indent()
    emitted = body if mode == "loop" else body[start:]
    for n, (addr, decoded) in enumerate(emitted):
        n_total = decoded[0]
        entries = decoded[1]
        e(f"# -- bundle {addr:#x}")
        e("if executed >= max_bundles or cycles > cycle_limit:")
        e.indent()
        e(ret(str(addr), EXIT_BUDGET))
        e.dedent()
        e("stall = 0")
        for entry in entries:
            emit_slot(addr, entry)
        # fall-through retirement (no branch taken in this bundle)
        emit_retire(n_total, addr + BUNDLE_BYTES)
        if n == len(emitted) - 1:
            if mode == "linear":
                # region end: chain to whatever follows it
                e(ret(str(addr + BUNDLE_BYTES), EXIT_LINK))
            else:
                # fell past the back-edge bundle: the loop is done
                e(ret(str(addr + BUNDLE_BYTES), EXIT_LOOP))
    if mode == "loop":
        e.dedent()
    e.dedent()
    return "\n".join(e.lines) + "\n"


# -- per-core management ------------------------------------------------------


class TraceJit:
    """Per-core trace registry: hotness, compilation, trees, eviction."""

    __slots__ = (
        "traces",
        "hot",
        "blacklist",
        "threshold",
        "epoch_seen",
        "compiles",
        "invalidations",
        "entries",
        "iters",
        "compiled_bundles",
        "deopts",
        "dispatch",
        "sites",
        "osr",
        "generation",
        "osr_entries",
        "tree_links",
        "resume_hits",
        "promotions",
        "entry_compiles",
        "evicted",
    )

    def __init__(self, threshold: int = HOT_THRESHOLD) -> None:
        #: trace head -> CompiledTrace (every resident tree node)
        self.traces: dict[int, CompiledTrace] = {}
        #: loop head -> taken back-edge count since (re)reset
        self.hot: dict[int, int] = {}
        #: heads/targets that failed to compile (retried after a patch)
        self.blacklist: set[int] = set()
        self.threshold = threshold
        self.epoch_seen = -1
        self.compiles = 0
        self.invalidations = 0
        self.entries = 0            # compiled-trace dispatches
        self.iters = 0              # steady-state iterations run compiled
        self.compiled_bundles = 0   # bundles executed inside traces
        self.deopts = [0, 0, 0, 0, 0]  # indexed by EXIT_* flag
        #: covered bundle address -> _EntryPoint (the interpreter
        #: dispatches on this; index 0 slots win over mid-body slots)
        self.dispatch: dict[int, _EntryPoint] = {}
        #: (parent head, exit target) -> architectural exit count;
        #: crossing the threshold promotes the target into the tree
        self.sites: dict[tuple[int, int], int] = {}
        #: OSR + trace trees enabled (``REPRO_TRACE_JIT=osr-off`` pins
        #: the PR-5 loop-head-only behavior for CI bisection)
        self.osr = True
        #: bumped on every invalidation/eviction — stale-entry fence
        #: for the core's cached budget-resume hint
        self.generation = 0
        self.osr_entries = 0        # dispatches entering at a nonzero index
        self.tree_links = 0         # trace exits chaining into another trace
        self.resume_hits = 0        # budget exits resumed without a re-probe
        self.promotions = 0         # side-exit targets compiled into the tree
        self.entry_compiles = 0     # lazily generated OSR suffix closures
        self.evicted = 0            # nodes evicted by the resource governor

    def sync(self, dcache) -> dict[int, _EntryPoint]:
        """Revalidate compiled traces against the decode journal.

        Called once per ``run()`` slice, right after ``DecodeCache.sync``
        — the same cadence the generic interpreter refreshes its decoded
        view, so a patched bundle can never execute through a stale
        trace.  Staleness is tree-wide: a key mismatch under *any* node
        invalidates every node sharing that root (the tree's covered-
        bundle union is its validity domain), while a patch + byte-
        identical rollback leaves the whole tree resident.  Returns the
        entry-point dispatch map.
        """
        epoch = dcache.epoch
        if epoch != self.epoch_seen:
            self.epoch_seen = epoch
            if self.traces:
                keys = dcache.keys
                stale_roots = {
                    tr.root
                    for tr in self.traces.values()
                    if any(keys.get(a) != k for a, k in zip(tr.addrs, tr.keys))
                }
                if stale_roots:
                    dead = [
                        h for h, tr in self.traces.items()
                        if tr.root in stale_roots
                    ]
                    for h in dead:
                        del self.traces[h]
                        self.invalidations += 1
                        self.hot[h] = 0
                    self.generation += 1
                    self._rebuild_dispatch()
            if self.blacklist:
                # patched code may have become compilable — retry after
                # the head re-proves itself hot
                for h in self.blacklist:
                    self.hot[h] = 0
                self.blacklist.clear()
            # exit-site hotness restarts after any patch: dead trees'
            # sites must not promote against stale parents, and patched
            # code re-proves its exits like a blacklisted head does
            self.sites.clear()
        return self.dispatch

    def _register(self, trace: CompiledTrace) -> None:
        """Publish a trace's entry points into the dispatch map.

        Every covered bundle is an OSR entry; on address conflicts a
        trace's *own* head (index 0: the steady-state/region closure)
        wins over another trace's mid-body suffix.  With OSR off only
        the head is published (loop-boundary dispatch, PR-5 behavior).
        """
        d = self.dispatch
        if not self.osr:
            d[trace.head] = _EntryPoint(trace, 0, trace.fn)
            return
        for i, addr in enumerate(trace.addrs):
            cur = d.get(addr)
            if cur is None or (i == 0 and cur.idx != 0):
                d[addr] = _EntryPoint(
                    trace, i, trace.fn if i == 0 else trace.entry_fns.get(i)
                )

    def _rebuild_dispatch(self) -> None:
        # deterministic: traces iterate in compile order, and the
        # conflict rule is order-independent for index-0 slots
        self.dispatch.clear()
        for trace in self.traces.values():
            self._register(trace)

    def _adopt(self, trace: CompiledTrace, root: int) -> None:
        trace.root = root
        self.traces[trace.head] = trace
        self.compiles += 1
        self._register(trace)

    def materialize(self, ep: _EntryPoint):
        """Generate (or fetch) the OSR suffix closure for one entry."""
        trace = ep.trace
        fn = trace.entry_fns.get(ep.idx)
        if fn is None:
            fn = trace.entry(ep.idx)
            self.entry_compiles += 1
        ep.fn = fn
        return fn

    def compile(
        self, head: int, dmap: dict, keys: dict, sor: int, bpc: int
    ) -> CompiledTrace | None:
        existing = self.traces.get(head)
        if existing is not None:
            return existing
        if head in self.blacklist:
            return None
        trace = compile_trace(head, dmap, keys, sor, bpc, relax=self.osr)
        if trace is None and self.osr:
            # not a compilable loop (too long, irregular) — cover its
            # straight-line prefix and chain from there
            trace = compile_linear_trace(head, dmap, keys, sor, bpc)
        if trace is None:
            self.blacklist.add(head)
            return None
        self._adopt(trace, root=head)
        return trace

    def promote(
        self,
        parent: CompiledTrace,
        target: int,
        dmap: dict,
        keys: dict,
        sor: int,
        bpc: int,
    ) -> CompiledTrace | None:
        """Grow the tree: compile a hot exit target off ``parent``.

        Loop-shaped targets (nested-loop heads) become loop nodes even
        when a parent's OSR entry already covers the address — a
        dedicated steady-state closure beats one-iteration suffix calls
        and takes over the dispatch slot.  Straight-line targets get a
        linear node the same way (head slots win over mid-body slots).
        """
        if (
            not self.osr
            or target & _SMASK
            or target in self.blacklist
            or target in self.traces
        ):
            return None
        covered = self.dispatch.get(target)
        if covered is not None and covered.idx == 0:
            return None
        trace = compile_trace(target, dmap, keys, sor, bpc, relax=True)
        if trace is None:
            # straight-line fallback: a dedicated region node beats a
            # per-call OSR suffix (idx-0 registration takes the slot)
            trace = compile_linear_trace(target, dmap, keys, sor, bpc)
        if trace is None:
            self.blacklist.add(target)
            return None
        self._adopt(trace, root=parent.root)
        parent.children.append(target)
        self.promotions += 1
        return trace

    def compiled_footprint(self) -> int:
        """Resident compiled bundles (tree nodes count like any trace)."""
        return sum(tr.n_bundles for tr in self.traces.values())

    def evict_cold(self, budget: int) -> list[tuple[int, str, int]]:
        """Evict coldest-entered nodes until the footprint fits ``budget``.

        Returns ``[(head, kind, n_bundles), ...]`` victims for the
        governor's ledger.  Coldness is the last-entry stamp (ties break
        on head) — a pure function of the simulated run, so replicas
        evict identically.  Evicted heads re-prove hotness from zero.
        """
        victims: list[tuple[int, str, int]] = []
        total = self.compiled_footprint()
        if total <= budget:
            return victims
        order = sorted(
            self.traces.items(), key=lambda kv: (kv[1].last_used, kv[0])
        )
        for head, trace in order:
            if total <= budget:
                break
            del self.traces[head]
            self.hot[head] = 0
            total -= trace.n_bundles
            victims.append((head, trace.kind, trace.n_bundles))
            self.evicted += 1
        self.generation += 1
        self._rebuild_dispatch()
        return victims

    def warm_seed(self, shapes, dcache, bpc: int) -> int:
        """Recompile persisted tree shapes before the first instruction.

        ``shapes`` is the profile DB's ``jit_trees`` list —
        ``[root, start, kind, sor]`` per node, recorded at a prior run's
        end.  Compilation is strictly validated and best-effort: a torn
        or stale shape is skipped (the run stays correct, the node just
        re-proves hotness the cold way).  The stored ``sor`` matters
        because at retired 0 the registers are pre-``alloc`` (sor 0);
        the interpreter's per-entry ``sor`` guard keeps a wrong-rotation
        node inert rather than wrong.
        """
        if not self.osr or not shapes:
            return 0
        dmap = dcache.sync()
        keys = dcache.keys
        count = 0
        for shape in shapes:
            if not isinstance(shape, (list, tuple)) or len(shape) != 4:
                continue
            root, start, kind, tsor = shape
            if (
                not isinstance(root, int)
                or not isinstance(start, int)
                or not isinstance(tsor, int)
                or kind not in ("loop", "linear")
                or start & _SMASK
                or start in self.traces
                or not 0 <= tsor <= 96
            ):
                continue
            if kind == "loop":
                trace = compile_trace(start, dmap, keys, tsor, bpc, relax=True)
            else:
                trace = compile_linear_trace(start, dmap, keys, tsor, bpc)
            if trace is None:
                continue
            self._adopt(trace, root=root)
            # already proven hot by a prior run; pin the counter past
            # the exact-threshold trigger so back-edges skip recompiles
            self.hot[start] = self.threshold
            count += 1
        return count

    def tree_shapes(self) -> list[list]:
        """Canonical resident tree shapes for profile-DB persistence."""
        return sorted(
            [tr.root, tr.head, tr.kind, tr.sor] for tr in self.traces.values()
        )

    def stats(self) -> dict:
        """Observability snapshot (bench / CobraReport fast-path lines)."""
        return {
            "compiles": self.compiles,
            "invalidations": self.invalidations,
            "entries": self.entries,
            "iterations": self.iters,
            "compiled_bundles": self.compiled_bundles,
            "osr_entries": self.osr_entries,
            "tree_links": self.tree_links,
            "resume_hits": self.resume_hits,
            "promotions": self.promotions,
            "evicted": self.evicted,
            "exit_sites": {
                f"{head:#x}->{target:#x}": count
                for (head, target), count in sorted(self.sites.items())
            },
            "deopts": {
                reason: count
                for reason, count in zip(DEOPT_REASONS, self.deopts)
            },
        }
