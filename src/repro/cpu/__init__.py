"""Simulated CPUs: interpreter cores, machine builders, scheduling."""

from .core import Core
from .machine import Machine
from .scheduler import DEFAULT_MARGIN, Scheduler

__all__ = ["Core", "Machine", "Scheduler", "DEFAULT_MARGIN"]
