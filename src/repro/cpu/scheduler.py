"""Time-ordered interleaved execution of multiple cores.

The simulator is sequential, so concurrency is modeled conservatively:
the core with the *smallest cycle count* executes until its clock
passes the second-smallest clock (plus a small margin).  All cores'
clocks therefore stay within roughly one memory stall of each other,
which is what makes shared-resource effects — bus queueing, coherence
ping-pong, barrier spinning — physically meaningful.  (A fixed
bundle-count quantum is *wrong* here: it lets the leader ratchet the
bus ``busy_until`` to its own miss-inflated clock and charges laggards
the gap as phantom queueing delay.)

``on_tick`` callbacks run between scheduling slices — COBRA's
optimization thread lives there: it is not a simulated core (the paper
runs it on spare capacity; DESIGN.md §6), but it observes and patches
the machine while the worker threads execute.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..errors import MachineError
from .core import Core

__all__ = ["Scheduler", "DEFAULT_MARGIN"]

#: Extra cycles the running core may advance past the runner-up clock.
#: One bus occupancy keeps interleaving tight without thrashing.
DEFAULT_MARGIN = 16

#: Upper bound on bundles per slice (guards spin loops from starving
#: the tick hooks).
_SLICE_BUNDLES = 512


class Scheduler:
    """Min-clock time-ordered scheduler."""

    def __init__(self, cores: Iterable[Core], margin: int = DEFAULT_MARGIN) -> None:
        self.cores = list(cores)
        if not self.cores:
            raise MachineError("scheduler needs at least one core")
        self.margin = margin
        self.on_tick: list[Callable[[], None]] = []

    def add_tick_hook(self, hook: Callable[[], None]) -> None:
        self.on_tick.append(hook)

    def _slice(self) -> int:
        """Run one scheduling slice; return bundles executed (0 = done)."""
        lowest: Core | None = None
        second = None
        for core in self.cores:
            if core.halted:
                continue
            if lowest is None or core.cycles < lowest.cycles:
                second = lowest.cycles if lowest is not None else None
                lowest = core
            elif second is None or core.cycles < second:
                second = core.cycles
        if lowest is None:
            return 0
        limit = (second if second is not None else lowest.cycles + 100_000) + self.margin
        ran = lowest.run(_SLICE_BUNDLES, cycle_limit=limit)
        if ran == 0 and not lowest.halted:
            # guarantee forward progress even if already past the limit
            ran = lowest.run(1)
        return ran

    def run_until_halt(self, max_bundles: int | None = None) -> int:
        """Run all cores to completion; return total bundles executed.

        ``max_bundles`` bounds total work (guards against livelock in
        tests); exceeding it raises :class:`MachineError`.
        """
        budget = max_bundles if max_bundles is not None else 1 << 62
        total = 0
        while True:
            ran = self._slice()
            if ran == 0:
                return total
            total += ran
            if total > budget:
                raise MachineError(
                    f"execution exceeded {budget} bundles (livelock or runaway loop?)"
                )
            for hook in self.on_tick:
                hook()

    def step(self) -> bool:
        """Advance one slice; return False when all cores have halted."""
        ran = self._slice()
        if ran == 0:
            return False
        for hook in self.on_tick:
            hook()
        return True
