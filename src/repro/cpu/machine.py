"""Machine assembly: cores + cache hierarchies + fabric + memory.

``Machine.from_config`` builds either platform from a
:class:`~repro.config.MachineConfig`:

* single-node configs get a :class:`~repro.memory.bus.SnoopBus` (the
  4-way Itanium 2 SMP server);
* multi-node configs get a :class:`~repro.memory.directory.DirectoryFabric`
  (the SGI Altix cc-NUMA system) with first-touch page placement.
"""

from __future__ import annotations

from ..config import MachineConfig
from ..errors import MachineError
from ..isa.binary import BinaryImage
from ..memory.bus import SnoopBus
from ..memory.directory import DirectoryFabric
from ..memory.dram import MemorySystem
from ..memory.events import MemEvents
from ..memory.hierarchy import CpuCacheSystem
from .core import Core

__all__ = ["Machine"]


class Machine:
    """One simulated multiprocessor."""

    def __init__(self, config: MachineConfig, memory_bytes: int = 8 << 20) -> None:
        self.config = config
        self.mem = MemorySystem(memory_bytes)
        if config.is_numa:
            self.fabric = DirectoryFabric(
                config.n_nodes, config.bus, config.latency, self.mem
            )
        else:
            self.fabric = SnoopBus(config.bus, config.latency)
        self.caches = [
            CpuCacheSystem(cpu, cpu // config.cpus_per_node, config, self.fabric)
            for cpu in range(config.n_cpus)
        ]
        self.cores = [Core(cpu, self.caches[cpu], self.mem) for cpu in range(config.n_cpus)]
        self._next_text = 0x4000_0000

    @classmethod
    def from_config(cls, config: MachineConfig, memory_bytes: int = 8 << 20) -> "Machine":
        return cls(config, memory_bytes)

    @property
    def n_cpus(self) -> int:
        return self.config.n_cpus

    def node_of(self, cpu: int) -> int:
        return cpu // self.config.cpus_per_node

    # -- code ------------------------------------------------------------------

    def next_text_base(self, reserve: int = 1 << 20) -> int:
        """Hand out a disjoint text segment (programs must not overlap)."""
        base = self._next_text
        self._next_text += reserve
        return base

    def load_image(self, image: BinaryImage) -> None:
        """Make ``image`` fetchable by every core (shared address space)."""
        for core in self.cores:
            core.add_image(image)

    # -- validation -------------------------------------------------------------

    def attach_validator(self, validator) -> None:
        """Hook an invariant checker into every cache hierarchy.

        Only one validator may be attached at a time (each cache has a
        single observer slot on its access path).
        """
        for cache in self.caches:
            if cache.validator is not None and cache.validator is not validator:
                raise MachineError("another validator is already attached")
        for cache in self.caches:
            cache.set_validator(validator)

    def detach_validator(self) -> None:
        for cache in self.caches:
            cache.set_validator(None)

    # -- aggregate observables ----------------------------------------------------

    def total_cycles(self) -> int:
        """Wall-clock proxy: the cycle count of the slowest core."""
        return max(core.cycles for core in self.cores)

    def total_retired(self) -> int:
        return sum(core.retired for core in self.cores)

    def aggregate_events(self) -> MemEvents:
        """System-wide memory-event totals (COBRA's profiler input)."""
        total = MemEvents()
        for cache in self.caches:
            total.add(cache.events)
        return total

    def events_of(self, cpu: int) -> MemEvents:
        if not 0 <= cpu < self.n_cpus:
            raise MachineError(f"no cpu {cpu}")
        return self.caches[cpu].events
