"""Chaos harness: fault schedules must never change program outputs.

Mirrors :class:`repro.validate.differential.DifferentialHarness`, but
instead of sweeping optimization strategies against a baseline, it
sweeps *fault schedules* against the fault-free run.  The robustness
invariant it enforces:

* under any fault schedule, the program's committed outputs are
  bit-identical to the fault-free run (faults may cost performance,
  never correctness);
* no injected fault escapes as an unhandled exception;
* the run ends with a fully accounted fault ledger — every injected
  fault is either detected (actively recovered) or tolerated (harmless
  by construction).

Each cell of the (machine × strategy × seed) matrix runs on a fresh
machine with a fresh program build, so fault schedules cannot
contaminate each other and every failure replays from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from ..config import FaultConfig
from ..cpu.machine import Machine
from ..validate.differential import (
    WorkloadSpec,
    _digest,
    _snapshot_arrays,
    default_machines,
)
from .injector import FaultLedger

__all__ = ["ChaosHarness", "ChaosRecord", "ChaosReport", "CHAOS_STRATEGIES"]

#: Strategies worth faulting: every COBRA mode that actually monitors
#: and patches ("none" has no runtime to attack — it is the reference).
CHAOS_STRATEGIES = ("noprefetch", "excl", "adaptive")


@dataclass(frozen=True)
class ChaosRecord:
    """One faulted (machine, strategy, seed) cell."""

    machine: str
    strategy: str
    seed: int
    cycles: int
    digest: str
    mode: str
    quarantined: int
    recoveries: int
    ledger: FaultLedger

    @property
    def label(self) -> str:
        return f"{self.machine}/{self.strategy}/seed={self.seed}"


@dataclass
class ChaosReport:
    """Outcome of one chaos sweep."""

    workload: str
    baseline_digests: dict[str, str] = field(default_factory=dict)
    records: list[ChaosRecord] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def total_injected(self) -> int:
        return sum(r.ledger.injected for r in self.records)

    def summary(self) -> str:
        injected = self.total_injected()
        detected = sum(r.ledger.detected for r in self.records)
        tolerated = sum(r.ledger.tolerated for r in self.records)
        lines = [
            f"chaos[{self.workload}]: {len(self.records)} faulted run(s), "
            f"{injected} fault(s) injected = {detected} detected + "
            f"{tolerated} tolerated, {'OK' if self.ok else 'FAIL'}"
        ]
        for rec in self.records:
            lines.append(
                f"  {rec.label:34s} cycles={rec.cycles:<10d} "
                f"digest={rec.digest[:12]} mode={rec.mode} "
                f"injected={rec.ledger.injected} quarantined={rec.quarantined}"
            )
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        return "\n".join(lines)


class ChaosHarness:
    """Runs one workload across the machine × strategy × seed matrix."""

    def __init__(
        self,
        workload: WorkloadSpec,
        machines: Mapping[str, Callable[[], Machine]] | None = None,
        strategies: tuple[str, ...] = CHAOS_STRATEGIES,
        seeds: tuple[int, ...] = (0,),
        fault_config: FaultConfig | None = None,
        max_bundles: int | None = None,
    ) -> None:
        self.workload = workload
        self.machines = dict(machines) if machines is not None else default_machines()
        self.strategies = strategies
        self.seeds = seeds
        #: per-cell plans are this template re-seeded per run
        self.fault_config = fault_config if fault_config is not None else FaultConfig()
        self.max_bundles = max_bundles

    def _baseline(self, mname: str, factory: Callable[[], Machine]) -> str:
        """Fault-free reference digest (plain run, no COBRA, no faults)."""
        machine = factory()
        prog = self.workload.build(machine)
        prog.run(max_bundles=self.max_bundles)
        return _digest(_snapshot_arrays(prog))

    def _faulted(
        self, mname: str, factory: Callable[[], Machine], strategy: str, seed: int
    ) -> tuple[ChaosRecord | None, str | None]:
        # deferred: repro.core imports repro.faults at module scope
        from ..core.framework import run_with_cobra

        machine = factory()
        prog = self.workload.build(machine)
        config = replace(
            machine.config.cobra, faults=replace(self.fault_config, seed=seed)
        )
        label = f"{mname}/{strategy}/seed={seed}"
        try:
            result, report = run_with_cobra(
                prog, strategy, config=config, max_bundles=self.max_bundles
            )
        except Exception as exc:  # the invariant is *zero* escapes
            return None, f"{label}: unhandled {type(exc).__name__}: {exc}"
        record = ChaosRecord(
            machine=mname,
            strategy=strategy,
            seed=seed,
            cycles=result.cycles,
            digest=_digest(_snapshot_arrays(prog)),
            mode=report.mode,
            quarantined=sum(report.quarantined.values()),
            recoveries=len(report.recovery_log),
            ledger=report.faults,
        )
        return record, None

    def run(self, jobs: int = 1) -> ChaosReport:
        from ..parallel import run_tasks

        machines = sorted(self.machines.items())
        # fault-free references and faulted cells are all independent
        # (fresh machine, fresh build, per-cell seed), so they fan out
        # together; the merge below walks the same ordered matrix the
        # sequential sweep would, keeping the report byte-identical at
        # any job count
        baseline_tasks = [
            (self._baseline, (mname, factory)) for mname, factory in machines
        ]
        cells = [
            (mname, factory, strategy, seed)
            for mname, factory in machines
            for strategy in self.strategies
            for seed in self.seeds
        ]
        outcomes = run_tasks(
            baseline_tasks + [(self._faulted, cell) for cell in cells],
            jobs=jobs,
        )
        report = ChaosReport(self.workload.name)
        for (mname, _factory), digest in zip(machines, outcomes):
            report.baseline_digests[mname] = digest
        for (mname, _factory, strategy, seed), (record, error) in zip(
            cells, outcomes[len(machines):]
        ):
            if error is not None:
                report.failures.append(error)
                continue
            report.records.append(record)
            base = report.baseline_digests[mname]
            if record.digest != base:
                report.failures.append(
                    f"{record.label}: output digest {record.digest[:12]} "
                    f"differs from fault-free {base[:12]} — a fault "
                    "reached program correctness"
                )
            if not record.ledger.accounted:
                report.failures.append(
                    f"{record.label}: {record.ledger.outstanding} injected "
                    "fault(s) unaccounted (neither detected nor tolerated)"
                )
            if record.mode not in ("normal", "monitor-only"):
                report.failures.append(
                    f"{record.label}: unknown end mode {record.mode!r}"
                )
        if report.records and report.total_injected() == 0:
            report.failures.append(
                "fault schedule injected nothing across the whole matrix — "
                "raise the rates or the run length; this sweep proved nothing"
            )
        return report
