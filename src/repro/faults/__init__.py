"""Deterministic fault injection for the COBRA runtime.

COBRA's central risk is that it rewrites a *running* binary: the paper
relies on atomic bundle redirection and re-adaptation rollback to stay
transparent, and multi-version rewriters keep an unmodified fallback
precisely because live patches can go wrong.  This package exists to
*provoke* the unhappy paths and prove the runtime degrades gracefully:

* :mod:`~repro.faults.injector` — a seeded :class:`FaultInjector` with
  injection points at the three surfaces COBRA depends on (HPM
  sampling, trace-cache patching, the monitor/optimizer loop) and a
  structured ledger in which every injected fault must end up
  *detected* (actively recovered) or *tolerated* (harmless by
  construction);
* :mod:`~repro.faults.chaos` — a :class:`ChaosHarness` mirroring
  :mod:`repro.validate.differential`: under any fault schedule, the
  program's outputs must stay bit-identical to the fault-free run —
  faults may cost performance, never correctness.

Enable injection with :attr:`repro.config.CobraConfig.faults`, the
``REPRO_FAULTS`` environment variable (an integer seed), or run the
sweep from the CLI: ``python -m repro chaos --seed N``.
"""

from .chaos import CHAOS_STRATEGIES, ChaosHarness, ChaosRecord, ChaosReport
from .injector import (
    ALL_FAULTS,
    FLEET_FAULTS,
    FLEET_FRAME_FAULTS,
    FLEET_TOLERATED_AT_INJECTION,
    LOOP_FAULTS,
    OVERLOAD_FAULTS,
    PATCH_FAULTS,
    PERSIST_FAULTS,
    SAMPLE_FAULTS,
    TOLERATED_AT_INJECTION,
    FaultEvent,
    FaultInjector,
    FaultLedger,
)

__all__ = [
    "ALL_FAULTS",
    "CHAOS_STRATEGIES",
    "FLEET_FAULTS",
    "FLEET_FRAME_FAULTS",
    "FLEET_TOLERATED_AT_INJECTION",
    "LOOP_FAULTS",
    "OVERLOAD_FAULTS",
    "PATCH_FAULTS",
    "PERSIST_FAULTS",
    "SAMPLE_FAULTS",
    "TOLERATED_AT_INJECTION",
    "FaultEvent",
    "FaultInjector",
    "FaultLedger",
    "ChaosHarness",
    "ChaosRecord",
    "ChaosReport",
]
