"""Seeded fault injector and fault/recovery ledger.

One :class:`FaultInjector` is shared by every COBRA component of a run.
All randomness comes from a single ``random.Random(seed)``, and the
simulator queries it at deterministic points, so a given (workload,
machine, strategy, seed) tuple replays the exact same fault schedule —
a failing chaos run is a reproducible test case, not an anecdote.

Three injection surfaces (the three things COBRA trusts):

``sample``
    The HPM delivery path (:class:`~repro.core.monitor.MonitoringThread`).
    Samples can be dropped, duplicated, corrupted (out-of-range fields),
    delayed past later samples, or lost wholesale to a USB overflow.

``patch``
    The trace-cache deployment path (:class:`~repro.core.tracecache.TraceCache`).
    A redirect write can be torn, the trace can be built against a
    stale image version, or the cache can transiently refuse for
    capacity.

``loop``
    The monitor/optimizer control loop.  A wake-up can be missed, or a
    monitoring thread can die mid-run.

Every injected fault becomes a :class:`FaultEvent` in the ledger and
must end the run in one of two states:

* **tolerated** — harmless by construction (a dropped sample is just a
  smaller profile); classified at injection time;
* **detected** — requires an active runtime response (quarantine,
  verify-and-revert, watchdog restart); the recovery site *claims* the
  event when it fires.

A fault that is neither is *unaccounted*: the runtime failed to notice
something it should have.  :class:`~repro.faults.chaos.ChaosHarness`
fails the run in that case.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace as dc_replace

from ..config import FaultConfig
from ..errors import FaultError
from ..hpm.counters import COUNTER_MASK
from ..hpm.sample import Sample

__all__ = [
    "SAMPLE_FAULTS",
    "PATCH_FAULTS",
    "LOOP_FAULTS",
    "PERSIST_FAULTS",
    "FLEET_FRAME_FAULTS",
    "FLEET_FAULTS",
    "OVERLOAD_FAULTS",
    "ALL_FAULTS",
    "TOLERATED_AT_INJECTION",
    "FLEET_TOLERATED_AT_INJECTION",
    "FaultEvent",
    "FaultLedger",
    "FaultInjector",
]

SAMPLE_FAULTS = (
    "drop_sample",
    "dup_sample",
    "corrupt_sample",
    "late_sample",
    "usb_overflow",
)
PATCH_FAULTS = ("torn_patch", "stale_image", "cache_exhaustion")
LOOP_FAULTS = ("missed_wakeup", "monitor_death")
#: Persistence-surface faults.  Never drawn from the random schedule:
#: the crash gate is a deterministic kill point
#: (``FaultConfig.crash_write``), and the damage kinds are *observed*
#: by recovery when it meets the wreckage on disk (torn journal tail,
#: corrupt snapshot, stray temp) — see :meth:`FaultInjector.observe`.
PERSIST_FAULTS = (
    "crash_point",
    "torn_journal_record",
    "corrupt_journal_record",
    "corrupt_snapshot",
    "stray_snapshot_tmp",
)
#: Fleet transport faults drawn per frame an agent sends to the daemon
#: (:mod:`repro.fleet`; rates in
#: :class:`~repro.config.FleetFaultConfig`).  ``poison_batch`` is the
#: compromised-stream case: a CRC-valid frame whose *payload* lies
#: (negative counts, divergent image digest) — the daemon's sanitizer
#: and digest-consensus checks must quarantine the stream.
FLEET_FRAME_FAULTS = (
    "drop_frame",
    "dup_frame",
    "reorder_frame",
    "delay_frame",
    "corrupt_frame",
    "poison_batch",
)
#: Schedule-level fleet faults: a full network partition (per instance
#: and round) and a daemon kill after the Nth accepted batch.  Like
#: ``PERSIST_FAULTS`` these are never drawn per opportunity.
FLEET_FAULTS = FLEET_FRAME_FAULTS + ("partition", "daemon_crash")
#: Overload faults injected by :mod:`repro.governor` (rates in
#: :class:`~repro.config.OverloadConfig`).  Drawn from the governor's
#: *own* PRNG, never this injector's — arming overload must not perturb
#: an armed fault schedule — and entered into the ledger via
#: :meth:`FaultInjector.inject` (no draw).  ``slow_disk`` is latency
#: only, tolerated at injection; the other three require a recorded
#: governor response (budget clamp, shed accounting, rung change) to
#: become accounted.
OVERLOAD_FAULTS = ("budget_shrink", "sample_flood", "slow_disk", "ingest_storm")
ALL_FAULTS = SAMPLE_FAULTS + PATCH_FAULTS + LOOP_FAULTS + PERSIST_FAULTS

#: Faults that cannot hurt correctness no matter what the runtime does:
#: a dropped/duplicated/late sample or an overflowed USB only shrinks,
#: repeats, or reorders the profile (the profiler's ordering check
#: quarantines duplicates and out-of-order stragglers), and a missed
#: wake-up only delays adaptation.  Classified at injection time;
#: ``corrupt_sample``, the patch faults, and ``monitor_death`` instead
#: *require* an active detection to become accounted.
TOLERATED_AT_INJECTION = frozenset(
    {"drop_sample", "dup_sample", "late_sample", "usb_overflow", "missed_wakeup"}
)

#: Fleet transport faults the protocol absorbs by construction: a
#: dropped frame is retransmitted after backoff, duplicates and
#: reorders are no-ops under sequence-number dedup, and a delay only
#: postpones ingestion.  ``corrupt_frame`` (CRC reject at the daemon),
#: ``poison_batch`` (stream quarantine), ``partition`` (degraded mode +
#: rejoin merge) and ``daemon_crash`` (journal recovery) all *require*
#: an active detection to become accounted.
FLEET_TOLERATED_AT_INJECTION = frozenset(
    {"drop_frame", "dup_frame", "reorder_frame", "delay_frame"}
)

_INJECTED = "injected"
_DETECTED = "detected"
_TOLERATED = "tolerated"


@dataclass
class FaultEvent:
    """One injected fault and what became of it."""

    seq: int
    kind: str
    surface: str            # "sample" | "patch" | "loop" | "persist" | "fleet"
    status: str             # "injected" -> "detected" | "tolerated"
    note: str = ""

    def __str__(self) -> str:
        text = f"#{self.seq} {self.kind} [{self.surface}] {self.status}"
        return f"{text}: {self.note}" if self.note else text


@dataclass(frozen=True)
class FaultLedger:
    """End-of-run accounting snapshot (attached to ``CobraReport``)."""

    seed: int
    injected: int
    detected: int
    tolerated: int
    by_kind: dict[str, int]
    events: tuple[FaultEvent, ...]

    @property
    def outstanding(self) -> int:
        """Injected faults the runtime never classified — must be 0."""
        return self.injected - self.detected - self.tolerated

    @property
    def accounted(self) -> bool:
        return self.outstanding == 0

    def summary(self) -> str:
        head = (
            f"faults[seed={self.seed}]: {self.injected} injected = "
            f"{self.detected} detected + {self.tolerated} tolerated"
        )
        if not self.accounted:
            head += f" ({self.outstanding} UNACCOUNTED)"
        if self.by_kind:
            kinds = ", ".join(
                f"{kind}={count}" for kind, count in sorted(self.by_kind.items())
            )
            head += f" ({kinds})"
        return head


class FaultInjector:
    """Draws the fault schedule and keeps the ledger."""

    def __init__(self, config: FaultConfig) -> None:
        if config.kinds is not None:
            unknown = set(config.kinds) - set(ALL_FAULTS)
            if unknown:
                raise FaultError(
                    f"unknown fault kind(s) {sorted(unknown)} "
                    f"(choose from {ALL_FAULTS})"
                )
        self.config = config
        self.rng = random.Random(config.seed)
        self.events: list[FaultEvent] = []
        # corrupted samples in flight, by object identity: id -> (event,
        # sample).  The sample ref keeps the id stable until classified.
        self._sample_watch: dict[int, tuple[FaultEvent, object]] = {}
        #: durable persistence writes gated so far (journal appends +
        #: snapshot renames); the crash sweep indexes kill points by it
        self.durable_writes = 0

    # -- schedule draws (one per opportunity, in simulation order) ---------

    def _draw(self, surface: str, rate: float, kinds: tuple[str, ...]) -> FaultEvent | None:
        if rate <= 0.0 or self.rng.random() >= rate:
            return None
        if self.config.kinds is not None:
            kinds = tuple(k for k in kinds if k in self.config.kinds)
            if not kinds:
                return None
        kind = kinds[self.rng.randrange(len(kinds))]
        status = _TOLERATED if kind in TOLERATED_AT_INJECTION else _INJECTED
        event = FaultEvent(len(self.events), kind, surface, status)
        self.events.append(event)
        return event

    def sample_fault(self) -> FaultEvent | None:
        """One draw per HPM sample delivered to a monitoring thread."""
        return self._draw("sample", self.config.sample_rate, SAMPLE_FAULTS)

    def patch_fault(self) -> FaultEvent | None:
        """One draw per trace deployment attempt."""
        return self._draw("patch", self.config.patch_rate, PATCH_FAULTS)

    def loop_fault(self) -> FaultEvent | None:
        """One draw per optimizer wake point."""
        return self._draw("loop", self.config.loop_rate, LOOP_FAULTS)

    # -- deterministic fault payloads --------------------------------------

    def corrupt_sample(self, event: FaultEvent, sample: Sample) -> Sample:
        """Damage one field so the record is detectably out of range.

        In-range corruption is indistinguishable from measurement noise
        and, by the output-invariance property, can only mis-steer
        *performance* decisions; the injector therefore always produces
        range violations, which the profiler's sanitizer must catch.
        The damaged record is watched by identity so whoever meets it —
        the sanitizer (detected) or a buffer-loss path (tolerated) —
        settles the ledger entry exactly.
        """
        mode = self.rng.randrange(4)
        if mode == 0:
            slot = self.rng.randrange(4)
            counters = list(sample.counters)
            counters[slot] = COUNTER_MASK + 1 + self.rng.randrange(1 << 16)
            damaged = dc_replace(sample, counters=tuple(counters))
        elif mode == 1:
            slot = self.rng.randrange(4)
            counters = list(sample.counters)
            counters[slot] = -1 - self.rng.randrange(1 << 16)
            damaged = dc_replace(sample, counters=tuple(counters))
        elif mode == 2 and sample.miss_latency is not None:
            damaged = dc_replace(sample, miss_latency=-sample.miss_latency - 1)
        else:
            damaged = dc_replace(sample, pc=-1 - self.rng.randrange(1 << 20))
        self._sample_watch[id(damaged)] = (event, damaged)
        return damaged

    def claim_sample(self, sample: Sample, note: str = "") -> FaultEvent | None:
        """The sanitizer quarantined ``sample``: settle its ledger entry.

        Returns ``None`` for anomalies that are side effects of an
        already-classified fault (a duplicate or out-of-order straggler)
        rather than a watched corruption.
        """
        entry = self._sample_watch.pop(id(sample), None)
        if entry is not None and entry[0].status == _INJECTED:
            self.detected(entry[0], note)
            return entry[0]
        return None

    def samples_lost(self, samples: list[Sample] | tuple[Sample, ...]) -> None:
        """Buffered samples were destroyed before ingestion (overflow,
        capacity trim, monitor death).  A watched corruption among them
        never reached a consumer, so it is tolerated by destruction."""
        for sample in samples:
            entry = self._sample_watch.pop(id(sample), None)
            if entry is not None and entry[0].status == _INJECTED:
                self.tolerated(entry[0], "sample destroyed before ingestion")

    def crash_gate(self) -> tuple[bool, int | None]:
        """One call per durable persistence write: die here?

        Returns ``(crash_now, torn_bytes)``.  Deliberately consumes no
        randomness — the kill point is an exact write index
        (``FaultConfig.crash_write``), so a crashed run's journal bytes
        are a byte-prefix of the same seed's uninterrupted run (the
        recovery-equivalence harness asserts exactly that).
        """
        if self.config.crash_write is None:
            return False, None
        self.durable_writes += 1
        if self.durable_writes != self.config.crash_write:
            return False, None
        return True, self.config.crash_torn_bytes

    def observe(self, kind: str, surface: str, note: str = "") -> FaultEvent:
        """Record damage met on disk as an already-detected event.

        Recovery uses this for wreckage whose injection happened in a
        *previous* (crashed) process — a torn journal tail, a corrupt
        snapshot, a stray temp.  The originating event died with that
        process, so the finding and the detection are the same moment.
        """
        event = FaultEvent(len(self.events), kind, surface, _DETECTED, note)
        self.events.append(event)
        return event

    def inject(
        self, kind: str, surface: str, note: str = "", tolerated: bool = False
    ) -> FaultEvent:
        """Enter an externally-drawn fault into the ledger (no draw).

        The overload injector draws its schedule from its own PRNG and
        only *records* here, so the event sequence stays deterministic
        without coupling the two schedules.  ``tolerated=True``
        classifies at injection (latency-only faults); otherwise the
        event must be settled via :meth:`detected`/:meth:`tolerated`.
        """
        status = _TOLERATED if tolerated else _INJECTED
        event = FaultEvent(len(self.events), kind, surface, status, note)
        self.events.append(event)
        return event

    def choice(self, n: int) -> int:
        """Deterministic victim selection (e.g. which monitor dies)."""
        return self.rng.randrange(n)

    def delay_count(self) -> int:
        """How many later samples a delayed sample is held behind."""
        return 1 + self.rng.randrange(4)

    # -- ledger ------------------------------------------------------------

    def detected(self, event: FaultEvent, note: str = "") -> None:
        """Classify ``event`` as actively detected/recovered."""
        if event.status != _INJECTED:
            raise FaultError(f"fault event already classified: {event}")
        event.status = _DETECTED
        event.note = note

    def tolerated(self, event: FaultEvent, note: str = "") -> None:
        """Reclassify an injected event as harmless after the fact."""
        if event.status != _INJECTED:
            raise FaultError(f"fault event already classified: {event}")
        event.status = _TOLERATED
        event.note = note

    def claim(self, surface: str, note: str = "") -> FaultEvent | None:
        """Mark the oldest outstanding event on ``surface`` detected.

        For recovery sites that observe an anomaly without holding the
        originating event (the optimizer watchdog finding a dead
        monitor).  FIFO per surface; exact because each surface has at
        most one detection-required kind routed through here.  Returns
        ``None`` when nothing is outstanding.
        """
        for event in self.events:
            if event.surface == surface and event.status == _INJECTED:
                self.detected(event, note)
                return event
        return None

    def injected_count(self) -> int:
        return len(self.events)

    def ledger(self) -> FaultLedger:
        by_kind: dict[str, int] = {}
        detected = tolerated = 0
        for event in self.events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
            if event.status == _DETECTED:
                detected += 1
            elif event.status == _TOLERATED:
                tolerated += 1
        return FaultLedger(
            seed=self.config.seed,
            injected=len(self.events),
            detected=detected,
            tolerated=tolerated,
            by_kind=by_kind,
            events=tuple(self.events),
        )
