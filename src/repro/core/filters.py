"""Two-level DEAR latency filtering (paper §4).

Level one happens in hardware: the DEAR is programmed to drop events at
or below the L3-hit band (12 cycles), so "memory loads that cause L2
cache misses but are satisfied by L3 cache hits" never reach COBRA.

Level two is this module: among the captured events, latencies above
``coherent_latency_threshold`` (the paper observes coherent misses at
180-200+ cycles vs 120-150 for plain memory loads) are classified as
*coherent* misses; the rest are plain memory misses.  The optimizer
only rewrites prefetches in loops whose filtered profile is dominated
by coherent misses — this selectivity is what keeps noprefetch from
removing *useful* prefetches (§5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import CobraConfig
from ..hpm.sample import Sample

__all__ = ["MissStats", "MissProfile"]


@dataclass
class MissStats:
    """Filtered DEAR statistics for one instruction address."""

    pc: int
    samples: int = 0
    coherent: int = 0
    total_latency: int = 0
    lines: set[int] = field(default_factory=set)
    threads: set[int] = field(default_factory=set)

    @property
    def coherent_share(self) -> float:
        return self.coherent / self.samples if self.samples else 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.samples if self.samples else 0.0


class MissProfile:
    """Accumulates level-two-filtered miss events across all threads."""

    def __init__(self, config: CobraConfig) -> None:
        self.config = config
        self.by_pc: dict[int, MissStats] = {}
        self.total_events = 0
        self.total_coherent = 0

    def add_sample(self, sample: Sample) -> None:
        """Fold one HPM sample's DEAR capture into the profile."""
        if sample.miss_pc is None:
            return
        latency = sample.miss_latency or 0
        # level one (defensive re-check; the DEAR already filtered)
        if latency <= self.config.dear_latency_floor:
            return
        stats = self.by_pc.get(sample.miss_pc)
        if stats is None:
            stats = self.by_pc[sample.miss_pc] = MissStats(sample.miss_pc)
        stats.samples += 1
        stats.total_latency += latency
        if sample.miss_line is not None:
            stats.lines.add(sample.miss_line)
        stats.threads.add(sample.thread_id)
        self.total_events += 1
        if latency > self.config.coherent_latency_threshold:
            stats.coherent += 1
            self.total_coherent += 1

    def hot_pcs(self, min_samples: int = 1) -> list[MissStats]:
        """Miss sites ordered by total stall contribution."""
        out = [s for s in self.by_pc.values() if s.samples >= min_samples]
        out.sort(key=lambda s: s.total_latency, reverse=True)
        return out

    def decay(self, factor: float = 0.5) -> None:
        """Age the profile so re-adaptation tracks phase changes."""
        for stats in list(self.by_pc.values()):
            stats.samples = int(stats.samples * factor)
            stats.coherent = int(stats.coherent * factor)
            stats.total_latency = int(stats.total_latency * factor)
            if stats.samples == 0:
                del self.by_pc[stats.pc]
        self.total_events = sum(s.samples for s in self.by_pc.values())
        self.total_coherent = sum(s.coherent for s in self.by_pc.values())
