"""COBRA — Continuous Binary Re-Adaptation (the paper's contribution).

A trace-based user-mode dynamic binary optimization framework for
multithreaded applications: HPM-driven monitoring threads, cross-thread
profile aggregation with two-level latency filtering, BTB-based hot-loop
trace selection, a patch-and-redirect trace cache, and a centralized
optimization thread applying the *noprefetch* and *prefetch.excl*
rewrites adaptively.
"""

from .filters import MissProfile, MissStats
from .framework import Cobra, CobraReport, run_with_cobra
from .monitor import MONITOR_EVENTS, MonitoringThread
from .optimizer import OptEvent, OptimizationThread
from .opts import make_excl_rewrite, make_noprefetch_rewrite
from .policy import STRATEGIES, Decision, decide
from .profiler import SystemProfiler
from .tracecache import Deployment, TraceCache
from .tracesel import LoopTrace, select_loop_traces

__all__ = [
    "Cobra",
    "CobraReport",
    "run_with_cobra",
    "MonitoringThread",
    "MONITOR_EVENTS",
    "SystemProfiler",
    "MissProfile",
    "MissStats",
    "LoopTrace",
    "select_loop_traces",
    "TraceCache",
    "Deployment",
    "OptimizationThread",
    "OptEvent",
    "Decision",
    "decide",
    "STRATEGIES",
    "make_noprefetch_rewrite",
    "make_excl_rewrite",
]
