"""Optimization policy: which rewrite to apply to a hot loop.

The paper evaluates two strategies separately (noprefetch and
prefetch.excl, §5.2) and describes COBRA as choosing "appropriate
optimizations according to observed changing runtime program behavior"
(§1).  The policy layer supports all three:

* ``"noprefetch"`` / ``"excl"`` — fixed strategy, as in Figures 5-7;
* ``"adaptive"`` — per-loop choice: loops whose filtered misses are
  dominated by coherent-latency events lose their prefetches entirely
  (they drag shared lines around), loops with a more mixed profile keep
  prefetching but acquire exclusivity up front.

Every decision requires (a) the system-wide coherent ratio to clear the
threshold — "We could use this ratio to decide whether to perform the
optimization" (§4) — and (b) enough filtered samples attributed to the
loop, which is the selectivity that protects useful prefetches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CobraConfig
from .tracesel import LoopTrace

__all__ = ["Decision", "decide", "proven_decisions", "STRATEGIES"]

STRATEGIES = ("noprefetch", "excl", "adaptive")


@dataclass(frozen=True)
class Decision:
    """Outcome of evaluating one loop."""

    loop: LoopTrace
    optimization: str | None
    reason: str


def decide(
    loop: LoopTrace,
    strategy: str,
    config: CobraConfig,
    coherent_ratio: float,
) -> Decision:
    """Pick the rewrite for ``loop`` (or None with the reason)."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}")
    if not loop.lfetch_sites:
        return Decision(loop, None, "no lfetch instructions in loop")
    if coherent_ratio < config.coherent_ratio_threshold:
        return Decision(
            loop,
            None,
            f"coherent ratio {coherent_ratio:.2f} below threshold "
            f"{config.coherent_ratio_threshold:.2f}",
        )
    if loop.sample_count() < config.min_loop_samples:
        return Decision(
            loop,
            None,
            f"only {loop.sample_count()} filtered samples "
            f"(need {config.min_loop_samples})",
        )
    if loop.coherent_count() == 0:
        return Decision(loop, None, "no coherent-latency misses in loop")

    if strategy == "noprefetch":
        return Decision(loop, "noprefetch", "fixed strategy")
    if strategy == "excl":
        return Decision(loop, "excl", "fixed strategy")

    share = loop.coherent_share()
    if share >= config.noprefetch_coherent_share:
        return Decision(
            loop,
            "noprefetch",
            f"coherent share {share:.2f} >= "
            f"{config.noprefetch_coherent_share:.2f}: prefetches drag shared lines",
        )
    return Decision(
        loop,
        "excl",
        f"coherent share {share:.2f} below "
        f"{config.noprefetch_coherent_share:.2f}: keep prefetching, take ownership",
    )


def proven_decisions(entry: dict, strategy: str) -> list[tuple[int, str, dict]]:
    """Best proven optimization per loop from a profile-DB entry.

    ``entry["decisions"]`` maps loop head -> optimization -> evidence
    (``proven``/``rolled_back`` counts plus loop geometry).  Only
    optimizations with positive net evidence qualify, filtered to what
    ``strategy`` is allowed to deploy; ties break deterministically on
    (net evidence, hotness, optimization name) so the same entry always
    seeds the same deployments.  Returns ``(head, optimization,
    record)`` tuples in ascending head order.
    """
    out: list[tuple[int, str, dict]] = []
    for head_str, opts in sorted(
        entry.get("decisions", {}).items(), key=lambda kv: int(kv[0])
    ):
        if not isinstance(opts, dict):
            continue
        best: tuple[tuple[int, int, str], str, dict] | None = None
        for optimization, rec in sorted(opts.items()):
            if strategy not in ("adaptive", optimization):
                continue
            if not isinstance(rec, dict):
                continue
            net = int(rec.get("proven", 0)) - int(rec.get("rolled_back", 0))
            if net <= 0:
                continue
            score = (net, int(rec.get("hotness", 0)), optimization)
            if best is None or score > best[0]:
                best = (score, optimization, rec)
        if best is not None:
            out.append((int(head_str), best[1], best[2]))
    return out
