"""Trace selection: hot-loop discovery from BTB profiles (paper §3.2, §4).

"Using BTB to capture the last 4 taken branches and their target
addresses, we could easily discover the loop boundaries to determine
the PC addresses having lfetch instruction within the identified
boundaries."

A backward taken branch ``(branch_pc, target)`` with ``target <=
branch_pc`` delimits a candidate loop body ``[target, branch_pc]``.
COBRA then scans the *binary text* of that range for ``lfetch`` slots —
it never consults compiler metadata, exactly like the real system
working on opaque binaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.binary import BinaryImage, pc_bundle
from ..isa.instructions import Op
from .filters import MissStats
from .profiler import SystemProfiler

__all__ = ["LoopTrace", "select_loop_traces"]


@dataclass
class LoopTrace:
    """One discovered hot loop and its rewrite targets."""

    head: int                  # bundle address of the loop entry (branch target)
    back_branch: int           # pc of the loop-closing taken branch
    hotness: int               # BTB occurrence count
    lfetch_sites: list[tuple[int, int]] = field(default_factory=list)
    misses: list[MissStats] = field(default_factory=list)

    @property
    def end_bundle(self) -> int:
        return pc_bundle(self.back_branch)

    @property
    def n_bundles(self) -> int:
        return (self.end_bundle - self.head) // 16 + 1

    def sample_count(self) -> int:
        return sum(m.samples for m in self.misses)

    def coherent_count(self) -> int:
        return sum(m.coherent for m in self.misses)

    def coherent_share(self) -> float:
        total = self.sample_count()
        return self.coherent_count() / total if total else 0.0

    def contains(self, pc: int) -> bool:
        return self.head <= pc <= self.back_branch


def _scan_lfetch(image: BinaryImage, head: int, end_bundle: int) -> list[tuple[int, int]]:
    """All (bundle, slot) lfetch sites in the loop's address range."""
    sites = []
    addr = head
    while addr <= end_bundle:
        bundle = image.bundles.get(addr)
        if bundle is not None:
            for slot, instr in enumerate(bundle.slots):
                if instr.op is Op.LFETCH:
                    sites.append((addr, slot))
        addr += 16
    return sites


def select_loop_traces(
    profiler: SystemProfiler,
    image: BinaryImage,
    max_loops: int = 16,
    max_bundles: int = 256,
) -> list[LoopTrace]:
    """Build hot-loop candidates from the BTB profile.

    Nested loops appear as multiple backward branches; each candidate
    keeps its own range, and miss sites are attributed to the innermost
    (smallest) enclosing candidate.
    """
    traces: list[LoopTrace] = []
    for (branch, target), count in profiler.backward_branches()[: max_loops * 2]:
        head = pc_bundle(target)
        end = pc_bundle(branch)
        if head not in image.bundles or end not in image.bundles:
            continue  # stale BTB entry from another image (e.g. trace cache)
        if (end - head) // 16 + 1 > max_bundles:
            continue
        # calls and returns also appear as "backward taken branches" in
        # the BTB; COBRA inspects the binary to keep only loop-closing
        # branch types (paper §3.2: traces are built around loops)
        closer = image.bundles[end].slots[branch & 0xF]
        if closer.op in (Op.BR_CALL, Op.BR_RET):
            continue
        trace = LoopTrace(head=head, back_branch=branch, hotness=count)
        trace.lfetch_sites = _scan_lfetch(image, head, trace.end_bundle)
        traces.append(trace)
        if len(traces) >= max_loops:
            break

    # attribute filtered miss sites to their innermost enclosing loop —
    # but only misses of *streaming* accesses (post-increment loads and
    # stores).  An indexed gather load misses for algorithmic reasons;
    # no prefetch rewrite can help it, so it must not qualify a loop
    # (this is the selectivity that protects useful prefetches, §5.2.1).
    for stats in profiler.misses.hot_pcs():
        bundle = image.bundles.get(pc_bundle(stats.pc))
        if bundle is None:
            continue
        instr = bundle.slots[stats.pc & 0xF]
        if instr.op in (Op.LD8, Op.LDFD) and not instr.imm:
            continue  # non-streaming load: not prefetch-induced
        enclosing = [t for t in traces if t.contains(stats.pc)]
        if not enclosing:
            continue
        innermost = min(enclosing, key=lambda t: t.n_bundles)
        innermost.misses.append(stats)

    # expand to the outermost enclosing candidate that still has lfetch
    # sites: redirecting at the outer loop head amortizes the trace
    # entry/exit branches over the whole nest ("hot loops and leading
    # execution paths to the loops", §3.2).  Inner candidates swallowed
    # by an expansion are dropped so deployments never overlap.
    selected: list[LoopTrace] = []
    consumed: set[int] = set()
    for trace in sorted(traces, key=lambda t: t.n_bundles, reverse=True):
        if id(trace) in consumed or not trace.lfetch_sites:
            continue
        for inner in traces:
            if inner is trace or id(inner) in consumed:
                continue
            if trace.head <= inner.head and inner.back_branch <= trace.back_branch:
                trace.misses.extend(inner.misses)
                trace.hotness += inner.hotness
                consumed.add(id(inner))
        selected.append(trace)

    selected.sort(key=lambda t: t.sample_count(), reverse=True)
    return selected
