"""System-wide profile aggregation (paper §3.2, §4).

The profiler merges the User Sampling Buffers of all monitoring threads
into

* a system-wide *coherent-access ratio* — the sum of coherent bus
  events divided by all bus transactions, computed from the sampled
  counter deltas ("If we divide the sum of coherent bus events by the
  total number of bus transactions, we could estimate the ratio of
  coherent memory accesses", §4);
* a latency-filtered miss profile per instruction (``MissProfile``);
* a branch-trace history per thread for loop discovery.

Decisions are taken on profiles "collected from multiple threads to
determine if a system-wide optimization is warranted" (§1) — a single
thread's noisy view never triggers a rewrite by itself.

Samples are *untrusted input*: a real perfmon path can deliver torn,
overwritten, or reordered records (USB overflow, signal races), and the
fault injector (:mod:`repro.faults`) provokes exactly that.  Every
sample is sanitized before it touches a profile; garbage is quarantined
(counted per reason, never folded in), so one corrupted record can
perturb at most the sampling density, never the decision inputs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import CobraConfig
from ..errors import ProfileStateError
from ..hpm.counters import COUNTER_MASK
from ..hpm.sample import Sample
from .filters import MissProfile, MissStats
from .monitor import MonitoringThread

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector

__all__ = ["SystemProfiler"]


class SystemProfiler:
    """Aggregates profiles across all monitoring threads."""

    def __init__(self, config: CobraConfig, faults: "FaultInjector | None" = None) -> None:
        self.config = config
        self.faults = faults
        self.misses = MissProfile(config)
        self.btb_pairs: dict[tuple[int, int], int] = {}
        self.samples_seen = 0
        #: quarantine counters: sanitizer reason -> rejected sample count
        self.quarantined: dict[str, int] = {}
        self.quarantined_total = 0
        # last counter snapshot per thread: (bus_memory, hit, hitm, inval)
        self._last_counters: dict[int, tuple[int, int, int, int]] = {}
        # last accepted (index, cycles) per thread, for ordering checks
        self._last_meta: dict[int, tuple[int, int]] = {}
        self._bus_delta = 0
        self._coherent_delta = 0

    # -- ingestion ------------------------------------------------------------

    def ingest(self, monitors: list[MonitoringThread]) -> int:
        """Drain all USBs; return the number of samples folded in."""
        n = 0
        for monitor in monitors:
            for sample in monitor.drain():
                self._ingest_sample(sample)
                n += 1
        return n

    def _sanitize(self, sample: Sample) -> str | None:
        """Reason to quarantine ``sample``, or ``None`` to accept it."""
        reason = sample.anomaly(COUNTER_MASK)
        if reason is not None:
            return reason
        meta = self._last_meta.get(sample.thread_id)
        if meta is not None:
            last_index, last_cycles = meta
            if sample.index <= last_index:
                # a duplicate or a straggler delivered out of order; the
                # counter-delta and BTB state already moved past it
                return "stale-index"
            if sample.cycles < last_cycles:
                return "time-travel"
        return None

    def _quarantine(self, sample: Sample, reason: str) -> None:
        self.quarantined[reason] = self.quarantined.get(reason, 0) + 1
        self.quarantined_total += 1
        if self.faults is not None:
            self.faults.claim_sample(sample, f"quarantined ({reason})")

    def _ingest_sample(self, sample: Sample) -> None:
        reason = self._sanitize(sample)
        if reason is not None:
            self._quarantine(sample, reason)
            return
        self._last_meta[sample.thread_id] = (sample.index, sample.cycles)
        self.samples_seen += 1
        self.misses.add_sample(sample)
        for pair in sample.btb:
            self.btb_pairs[pair] = self.btb_pairs.get(pair, 0) + 1
        prev = self._last_counters.get(sample.thread_id)
        cur = sample.counters
        if prev is not None:
            # PMD registers are COUNTER_WIDTH bits and wrap; a snapshot
            # that reads below its predecessor is a wraparound, not a
            # decrease, so each delta is taken modulo the counter width.
            # Each counter wraps independently — one wrapped counter must
            # not discard the others' deltas.
            self._bus_delta += (cur[0] - prev[0]) & COUNTER_MASK
            self._coherent_delta += (
                ((cur[1] - prev[1]) & COUNTER_MASK)
                + ((cur[2] - prev[2]) & COUNTER_MASK)
                + ((cur[3] - prev[3]) & COUNTER_MASK)
            )
        self._last_counters[sample.thread_id] = cur

    # -- queries ---------------------------------------------------------------

    def coherent_ratio(self) -> float:
        """System-wide coherent bus events / bus transactions."""
        if self._bus_delta == 0:
            return 0.0
        return self._coherent_delta / self._bus_delta

    def backward_branches(self) -> list[tuple[tuple[int, int], int]]:
        """(branch, target) pairs with target <= branch, by frequency.

        Ties break on the ``(branch, target)`` pair itself, never on
        dict-insertion order: loop selection (and therefore everything
        downstream of it — deployments, the profile database) must be a
        pure function of the aggregate counts, not of the order samples
        happened to arrive in.
        """
        loops = [
            (pair, count)
            for pair, count in self.btb_pairs.items()
            if pair[1] <= pair[0]
        ]
        loops.sort(key=lambda item: (-item[1], item[0]))
        return loops

    # -- persistence (repro.persist) -------------------------------------------

    def export_state(self) -> dict:
        """JSON-serializable snapshot of the aggregate profile.

        Only aggregates are exported.  The per-perfmon-session ordering
        state (``_last_meta``/``_last_counters``) is deliberately left
        out: sample indices and PMD snapshots restart with each process,
        so that state is meaningless across a restart.
        """
        return {
            "misses": {
                "by_pc": {
                    str(pc): {
                        "samples": s.samples,
                        "coherent": s.coherent,
                        "total_latency": s.total_latency,
                        "lines": sorted(s.lines),
                        "threads": sorted(s.threads),
                    }
                    for pc, s in sorted(self.misses.by_pc.items())
                },
                "total_events": self.misses.total_events,
                "total_coherent": self.misses.total_coherent,
            },
            "btb": [[b, t, c] for (b, t), c in sorted(self.btb_pairs.items())],
            "samples_seen": self.samples_seen,
            "quarantined": dict(sorted(self.quarantined.items())),
            "quarantined_total": self.quarantined_total,
            "bus_delta": self._bus_delta,
            "coherent_delta": self._coherent_delta,
        }

    def restore_state(self, state: dict) -> None:
        """Warm-restart the aggregates from :meth:`export_state` output.

        Validate-then-commit: the whole state is checked and rebuilt
        into fresh structures before any live field is assigned, and a
        structural problem anywhere raises
        :class:`~repro.errors.ProfileStateError` — a torn or
        schema-drifted profile can never half-warm-start the optimizer
        (an earlier version ``.get()``-defaulted missing keys and would
        happily restore half a profile).

        The ordering/delta state stays reset: restoring last-seen sample
        indices would quarantine every fresh sample of the new session
        as ``stale-index``, and a stale counter snapshot would turn the
        first delta into wraparound garbage.
        """

        def fail(path: str, message: str) -> "ProfileStateError":
            return ProfileStateError(message, path=path)

        def need(mapping: object, key: str, path: str) -> object:
            if not isinstance(mapping, dict):
                raise fail(path, f"expected an object, got {type(mapping).__name__}")
            if key not in mapping:
                raise fail(f"{path}.{key}", "missing key")
            return mapping[key]

        def as_int(value: object, path: str) -> int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise fail(path, f"expected an integer, got {value!r}")
            return value

        def as_num(value: object, path: str) -> "int | float":
            # bus/coherent deltas decay by a float factor each window,
            # so an exported snapshot legitimately holds either type
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise fail(path, f"expected a number, got {value!r}")
            return value

        def as_int_list(value: object, path: str) -> list[int]:
            if not isinstance(value, list):
                raise fail(path, f"expected a list, got {type(value).__name__}")
            return [as_int(v, f"{path}[{i}]") for i, v in enumerate(value)]

        if not isinstance(state, dict):
            raise fail("state", f"expected an object, got {type(state).__name__}")

        misses = need(state, "misses", "state")
        by_pc_raw = need(misses, "by_pc", "misses")
        if not isinstance(by_pc_raw, dict):
            raise fail("misses.by_pc", "expected an object")
        by_pc: dict[int, MissStats] = {}
        for pc_str, s in by_pc_raw.items():
            path = f"misses.by_pc[{pc_str}]"
            try:
                pc = int(pc_str)
            except (TypeError, ValueError):
                raise fail(path, f"non-integer pc key {pc_str!r}") from None
            by_pc[pc] = MissStats(
                pc=pc,
                samples=as_int(need(s, "samples", path), f"{path}.samples"),
                coherent=as_int(need(s, "coherent", path), f"{path}.coherent"),
                total_latency=as_int(
                    need(s, "total_latency", path), f"{path}.total_latency"
                ),
                lines=set(as_int_list(need(s, "lines", path), f"{path}.lines")),
                threads=set(as_int_list(need(s, "threads", path), f"{path}.threads")),
            )
        total_events = as_int(need(misses, "total_events", "misses"), "misses.total_events")
        total_coherent = as_int(
            need(misses, "total_coherent", "misses"), "misses.total_coherent"
        )

        btb_raw = need(state, "btb", "state")
        if not isinstance(btb_raw, list):
            raise fail("btb", "expected a list")
        btb_pairs: dict[tuple[int, int], int] = {}
        for i, row in enumerate(btb_raw):
            if not isinstance(row, list) or len(row) != 3:
                raise fail(f"btb[{i}]", f"expected [branch, target, count], got {row!r}")
            b, t, c = (as_int(v, f"btb[{i}][{j}]") for j, v in enumerate(row))
            btb_pairs[(b, t)] = c

        samples_seen = as_int(need(state, "samples_seen", "state"), "samples_seen")
        quarantined_raw = need(state, "quarantined", "state")
        if not isinstance(quarantined_raw, dict):
            raise fail("quarantined", "expected an object")
        quarantined = {
            str(k): as_int(v, f"quarantined[{k}]") for k, v in quarantined_raw.items()
        }
        quarantined_total = as_int(
            need(state, "quarantined_total", "state"), "quarantined_total"
        )
        bus_delta = as_num(need(state, "bus_delta", "state"), "bus_delta")
        coherent_delta = as_num(need(state, "coherent_delta", "state"), "coherent_delta")

        # every field validated: commit atomically
        self.misses.by_pc = by_pc
        self.misses.total_events = total_events
        self.misses.total_coherent = total_coherent
        self.btb_pairs = btb_pairs
        self.samples_seen = samples_seen
        self.quarantined = quarantined
        self.quarantined_total = quarantined_total
        self._bus_delta = bus_delta
        self._coherent_delta = coherent_delta
        self._last_counters = {}
        self._last_meta = {}

    def new_window(self, decay: float = 0.5) -> None:
        """Age profiles between optimizer wake-ups (re-adaptation)."""
        self.misses.decay(decay)
        for pair in list(self.btb_pairs):
            self.btb_pairs[pair] = int(self.btb_pairs[pair] * decay)
            if self.btb_pairs[pair] == 0:
                del self.btb_pairs[pair]
        # keep floats: int() truncation rounded the numerator and the
        # denominator differently, so every window turnover perturbed
        # coherent_ratio(); scaling both by the same factor ages the
        # totals without moving the ratio they encode
        self._bus_delta *= decay
        self._coherent_delta *= decay
