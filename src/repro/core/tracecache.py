"""Trace cache and code deployment (paper §1, §3).

"Optimized binary traces are stored in a trace cache in the same
address space as the binary program being optimized.  The binary
program is then patched and redirected to the optimized traces during
the execution."

Deployment protocol (safe under concurrent execution):

1. the loop body is copied into the trace cache and the rewrites are
   applied to the *copy*; loop-internal branch targets are remapped;
2. an exit branch back to the instruction after the original loop is
   appended;
3. the original loop-head bundle is atomically replaced by a single
   branch to the trace.  A thread still running inside the original
   body finishes its iteration, takes the back branch to the head, and
   lands in the trace; since the trace's first bundle is a copy of the
   original head, no instruction is lost.  Register state (rotation,
   LC/EC, predicates) is position-compatible because the trace is a
   structural copy.

Rollback restores the original head bundle from the patch journal
(re-adaptation, §1 "Continuous Binary Re-Adaptation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import TraceCacheError
from ..isa.binary import BinaryImage, Patch
from ..isa.bundle import BUNDLE_BYTES, Bundle
from ..isa.instructions import Instruction, Op, nop
from .tracesel import LoopTrace

__all__ = ["TraceCache", "Deployment"]

#: Base address of the trace cache segment.
TRACE_BASE = 0x5000_0000


@dataclass
class Deployment:
    """One deployed optimized trace."""

    loop: LoopTrace
    entry: int                  # trace-cache address of the optimized body
    optimization: str
    head_patch: Patch           # journal entry for the redirection patch
    n_rewrites: int
    active: bool = True


class TraceCache:
    """Holds optimized traces; performs deployment and rollback."""

    def __init__(self, capacity_bundles: int = 4096) -> None:
        self.image = BinaryImage(TRACE_BASE)
        self.capacity = capacity_bundles
        self.deployments: list[Deployment] = []

    @property
    def used_bundles(self) -> int:
        return len(self.image)

    def is_deployed(self, head: int) -> bool:
        return any(d.active and d.loop.head == head for d in self.deployments)

    def overlaps_active(self, head: int, end: int) -> bool:
        """Would a [head, end] deployment overlap an active one?"""
        return any(
            d.active and head <= d.loop.end_bundle and d.loop.head <= end
            for d in self.deployments
        )

    def deploy(
        self,
        program: BinaryImage,
        loop: LoopTrace,
        rewrite: Callable[[Instruction], Instruction | None],
        optimization: str,
    ) -> Deployment:
        """Copy, rewrite, and redirect one loop; return the deployment.

        ``rewrite`` maps each instruction to a replacement (or ``None``
        to keep it).  The rewrite count is recorded for reporting.
        """
        if self.overlaps_active(loop.head, loop.end_bundle):
            raise TraceCacheError(
                f"loop [{loop.head:#x}, {loop.end_bundle:#x}] overlaps an active trace"
            )
        n_bundles = loop.n_bundles + 1  # + exit branch bundle
        if self.used_bundles + n_bundles > self.capacity:
            raise TraceCacheError(
                f"trace cache full ({self.used_bundles}/{self.capacity} bundles)"
            )

        entry = self.image.here()
        offset = entry - loop.head
        lo, hi = loop.head, loop.end_bundle
        n_rewrites = 0

        addr = lo
        while addr <= hi:
            bundle = program.fetch_bundle(addr)
            new_slots = []
            for instr in bundle.slots:
                replacement = rewrite(instr)
                if replacement is not None and replacement != instr:
                    n_rewrites += 1
                    instr = replacement
                if instr.is_branch and isinstance(instr.imm, int) and lo <= instr.imm <= hi:
                    # loop-internal target: remap into the trace cache
                    instr = instr.clone(imm=instr.imm + offset)
                new_slots.append(instr)
            self.image.append(Bundle(new_slots, bundle.template))
            addr += BUNDLE_BYTES

        # exit branch: fall-through out of the loop returns to the program
        exit_target = hi + BUNDLE_BYTES
        self.image.append(
            Bundle([nop("M"), nop("I"), Instruction(Op.BR, imm=exit_target, unit="B")])
        )

        # atomic redirection: one bundle replaced by a branch to the trace
        redirect = Bundle(
            [nop("M"), nop("I"), Instruction(Op.BR, imm=entry, unit="B")]
        )
        program.patch_bundle(loop.head, redirect, reason=f"cobra:{optimization}")
        head_patch = program.patches[-1]

        deployment = Deployment(loop, entry, optimization, head_patch, n_rewrites)
        self.deployments.append(deployment)
        return deployment

    def rollback(self, program: BinaryImage, deployment: Deployment) -> None:
        """Undo a deployment (the trace becomes unreachable)."""
        if not deployment.active:
            raise TraceCacheError("deployment already rolled back")
        program.revert_patch(deployment.head_patch)
        deployment.active = False
