"""Trace cache and code deployment (paper §1, §3).

"Optimized binary traces are stored in a trace cache in the same
address space as the binary program being optimized.  The binary
program is then patched and redirected to the optimized traces during
the execution."

Deployment protocol (safe under concurrent execution):

1. the loop body is copied into the trace cache and the rewrites are
   applied to the *copy*; loop-internal branch targets are remapped;
2. an exit branch back to the instruction after the original loop is
   appended;
3. the original loop-head bundle is atomically replaced by a single
   branch to the trace.  A thread still running inside the original
   body finishes its iteration, takes the back branch to the head, and
   lands in the trace; since the trace's first bundle is a copy of the
   original head, no instruction is lost.  Register state (rotation,
   LC/EC, predicates) is position-compatible because the trace is a
   structural copy.

Deployment is **transactional**: the image version is snapshotted
before the trace is built and re-checked before redirection (a trace
built against a stale image must never go live), and the redirect is
verified after the write against both the intended bundle and the
patch journal.  Any failure reverts the head bundle from the journal,
reclaims the appended trace bundles, and surfaces a
:class:`~repro.errors.TraceCacheError` — the program keeps running the
unmodified original, which is always correct.

Rollback restores the original head bundle from the patch journal
(re-adaptation, §1 "Continuous Binary Re-Adaptation") and is
**idempotent**: rolling back an already-inactive deployment is a
recorded no-op, so the pending-evaluation and phase-change paths can
never race each other into an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..errors import TraceCacheError
from ..isa.binary import BinaryImage, Patch
from ..isa.bundle import BUNDLE_BYTES, Bundle
from ..isa.instructions import Instruction, Op, nop
from .tracesel import LoopTrace

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector

__all__ = ["TraceCache", "Deployment", "TraceVersion", "VersionSet", "UNTOUCHED"]

#: Base address of the trace cache segment.
TRACE_BASE = 0x5000_0000

#: The pseudo-version meaning "the original, unmodified loop is live".
UNTOUCHED = "untouched"


@dataclass
class Deployment:
    """One deployed optimized trace."""

    loop: LoopTrace
    entry: int                  # trace-cache address of the optimized body
    optimization: str
    head_patch: Patch           # journal entry for the redirection patch
    n_rewrites: int
    active: bool = True


@dataclass
class TraceVersion:
    """One resident optimized copy of a loop body.

    ``source`` holds the original program bundles the copy was built
    from; a redeploy may reuse the resident copy only while the program
    range still equals it bundle-for-bundle (otherwise the trace would
    encode stale code).
    """

    optimization: str
    entry: int                  # trace-cache address of this copy
    n_rewrites: int
    n_bundles: int              # body + exit-branch bundle
    source: tuple               # Bundle objects of [head, end_bundle]
    last_used: int = 0          # activation clock tick (cold-first eviction)


@dataclass
class VersionSet:
    """All resident versions of one loop and which one is live.

    ``flips`` counts live-version transitions after the initial
    deployment — each phase-driven redirect (to another optimization or
    back to the untouched original) is one flip.  ``reuses`` counts
    redeploys served from a resident copy instead of a fresh build.
    """

    loop: LoopTrace
    versions: dict = None       # optimization -> TraceVersion
    active: str = UNTOUCHED
    ever_active: bool = False
    flips: int = 0
    reuses: int = 0

    def __post_init__(self) -> None:
        if self.versions is None:
            self.versions = {}


class TraceCache:
    """Holds optimized traces; performs deployment and rollback."""

    def __init__(
        self,
        capacity_bundles: int = 4096,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.image = BinaryImage(TRACE_BASE)
        self.capacity = capacity_bundles
        self.faults = faults
        self.deployments: list[Deployment] = []
        #: loop head -> resident optimized versions (multi-version
        #: dispatch: untouched / noprefetch / excl stay resident and a
        #: phase flip re-redirects instead of rebuilding the trace)
        self.version_sets: dict[int, VersionSet] = {}
        #: recorded transactional recoveries and idempotent no-ops, in
        #: order; surfaced on the COBRA report
        self.recovery_log: list[str] = []
        #: bundles reclaimed by transactional aborts (image.truncate);
        #: surfaced on the COBRA report
        self.reclaimed_bundles = 0
        #: persistence manager (:mod:`repro.persist`); wired by the
        #: framework after construction, ``None`` = no journaling
        self.persist = None
        #: resource governor (:mod:`repro.governor`); wired by the
        #: framework after construction, ``None`` = hard-refuse at
        #: capacity exactly as before
        self.governor = None
        #: activation clock for cold-first eviction ordering
        self._use_clock = 0

    @property
    def used_bundles(self) -> int:
        return len(self.image)

    @property
    def active_bundles(self) -> int:
        """Bundles held by *live* versions — the irreducible footprint.

        Cold resident copies are reclaimable by eviction at any time;
        only the live versions pin capacity (a thread may be executing
        them), so this is what the governor's trace pressure measures.
        """
        return sum(
            vs.versions[vs.active].n_bundles
            for vs in self.version_sets.values()
            if vs.active != UNTOUCHED and vs.active in vs.versions
        )

    def is_deployed(self, head: int) -> bool:
        return any(d.active and d.loop.head == head for d in self.deployments)

    def active_deployment(self, head: int) -> Deployment | None:
        """The live deployment for ``head``, or ``None``."""
        for d in self.deployments:
            if d.active and d.loop.head == head:
                return d
        return None

    def active_optimization(self, head: int) -> str | None:
        """Which optimization is live for ``head`` (``None`` = untouched)."""
        d = self.active_deployment(head)
        return d.optimization if d is not None else None

    def version_report(self) -> list[dict]:
        """Per-loop resident versions, active one, and flip counts."""
        out = []
        for head in sorted(self.version_sets):
            vs = self.version_sets[head]
            out.append(
                {
                    "head": head,
                    "versions": sorted(vs.versions),
                    "active": vs.active,
                    "flips": vs.flips,
                    "reuses": vs.reuses,
                }
            )
        return out

    def evict_cold(self, target_used: int) -> list[tuple[int, str, int]]:
        """Free inactive resident copies, coldest first, until
        ``used_bundles <= target_used`` (or nothing evictable remains).

        Returns ``(head, optimization, n_bundles)`` per victim.  Victim
        order is a pure function of cache state — ``(last_used, head,
        optimization)`` ascending — so the same pressure schedule evicts
        the same victims in the same order at any worker count.  Only
        *inactive* versions are candidates: the live copy of a loop is
        irreducible (a thread may be executing it), and the image never
        reuses freed holes, so no stale redirect can alias an evicted
        address.
        """
        victims: list[tuple[int, str, int]] = []
        if self.used_bundles <= target_used:
            return victims
        candidates = sorted(
            (version.last_used, head, opt)
            for head, vs in self.version_sets.items()
            for opt, version in vs.versions.items()
            if opt != vs.active
        )
        for _, head, opt in candidates:
            if self.used_bundles <= target_used:
                break
            vs = self.version_sets[head]
            version = vs.versions.pop(opt)
            self.image.free(version.entry, version.n_bundles)
            self.recovery_log.append(
                f"evict: cold {opt} trace for loop {head:#x} freed "
                f"({version.n_bundles} bundle(s))"
            )
            victims.append((head, opt, version.n_bundles))
        return victims

    def overlaps_active(self, head: int, end: int) -> bool:
        """Would a [head, end] deployment overlap an active one?"""
        return any(
            d.active and head <= d.loop.end_bundle and d.loop.head <= end
            for d in self.deployments
        )

    def deploy(
        self,
        program: BinaryImage,
        loop: LoopTrace,
        rewrite: Callable[[Instruction], Instruction | None],
        optimization: str,
    ) -> Deployment:
        """Copy, rewrite, and redirect one loop; return the deployment.

        ``rewrite`` maps each instruction to a replacement (or ``None``
        to keep it).  The rewrite count is recorded for reporting.
        All-or-nothing: on any verification failure the program image
        and the trace cache are byte-identical to their pre-call state.
        """
        if self.overlaps_active(loop.head, loop.end_bundle):
            raise TraceCacheError(
                f"loop [{loop.head:#x}, {loop.end_bundle:#x}] overlaps an active trace"
            )
        fault = self.faults.patch_fault() if self.faults is not None else None
        if fault is not None and fault.kind == "cache_exhaustion":
            # transient exhaustion: this attempt sees a full cache
            self.faults.detected(
                fault, f"deploy of loop {loop.head:#x} refused: cache exhausted"
            )
            self.recovery_log.append(
                f"exhaustion: deploy of loop {loop.head:#x} refused"
            )
            raise TraceCacheError(
                f"trace cache full ({self.used_bundles}/{self.capacity} bundles; "
                "injected exhaustion)"
            )
        if self.governor is not None:
            needed = loop.n_bundles + 1  # + exit branch bundle
            if not self.governor.admit_deploy(self.active_bundles, needed):
                self.governor.note_refused(loop.head, needed)
                raise TraceCacheError(
                    f"deploy of loop {loop.head:#x} refused: live trace usage "
                    f"{self.active_bundles}+{needed} exceeds governed headroom "
                    f"(budget {self.governor.trace_budget})"
                )
        resident = self._fresh_resident(program, loop, optimization, fault)
        built_fresh = resident is None
        if resident is not None:
            # multi-version dispatch: a structurally fresh copy of this
            # loop under this optimization is still resident — only the
            # head redirect needs to be (re)written
            entry = resident.entry
            n_rewrites = resident.n_rewrites
        else:
            n_bundles = loop.n_bundles + 1  # + exit branch bundle
            budget = self.capacity
            if self.governor is not None:
                budget = min(budget, self.governor.trace_budget)
                if self.used_bundles + n_bundles > budget:
                    # cold-first eviction instead of permanent refusal:
                    # free inactive resident copies until the trace fits
                    evicted = self.evict_cold(budget - n_bundles)
                    if evicted:
                        self.governor.note_evicted(evicted)
            if self.used_bundles + n_bundles > budget:
                if self.governor is not None:
                    self.governor.note_refused(loop.head, n_bundles)
                raise TraceCacheError(
                    f"trace cache full ({self.used_bundles}/{budget} bundles)"
                )

            snapshot_version = program.version
            entry = self.image.here()
            offset = entry - loop.head
            lo, hi = loop.head, loop.end_bundle
            n_rewrites = 0
            source: list[Bundle] = []

            addr = lo
            while addr <= hi:
                bundle = program.fetch_bundle(addr)
                source.append(bundle)
                new_slots = []
                for instr in bundle.slots:
                    replacement = rewrite(instr)
                    if replacement is not None and replacement != instr:
                        n_rewrites += 1
                        instr = replacement
                    if instr.is_branch and isinstance(instr.imm, int) and lo <= instr.imm <= hi:
                        # loop-internal target: remap into the trace cache
                        instr = instr.clone(imm=instr.imm + offset)
                    new_slots.append(instr)
                self.image.append(Bundle(new_slots, bundle.template))
                addr += BUNDLE_BYTES

            # exit branch: fall-through out of the loop returns to the program
            exit_target = hi + BUNDLE_BYTES
            self.image.append(
                Bundle([nop("M"), nop("I"), Instruction(Op.BR, imm=exit_target, unit="B")])
            )

            if fault is not None and fault.kind == "stale_image":
                # the program image moved on while the trace was being
                # built; the snapshot the trace encodes is one version old
                snapshot_version -= 1
            if program.version != snapshot_version:
                # redirecting now would publish a trace copied from a stale
                # image: abort, reclaim the trace, keep the original live
                self.reclaimed_bundles += self.image.truncate(entry)
                if fault is not None:
                    self.faults.detected(
                        fault, f"stale trace for loop {loop.head:#x} discarded"
                    )
                self.recovery_log.append(
                    f"stale: trace for loop {loop.head:#x} discarded before redirect"
                )
                raise TraceCacheError(
                    f"image version changed during deployment of loop {loop.head:#x} "
                    "(stale trace discarded)"
                )
            resident = TraceVersion(
                optimization, entry, n_rewrites, n_bundles, tuple(source)
            )

        # atomic redirection: one bundle replaced by a branch to the trace
        redirect = Bundle(
            [nop("M"), nop("I"), Instruction(Op.BR, imm=entry, unit="B")]
        )
        written = redirect
        if fault is not None and fault.kind == "torn_patch":
            written = self._tear(program.fetch_bundle(loop.head), redirect, entry)
            if written is redirect:
                # the torn prefix happened to equal the full bundle
                self.faults.tolerated(fault, "torn write landed byte-identical")
        program.patch_bundle(loop.head, written, reason=f"cobra:{optimization}")
        head_patch = program.patches[-1]

        # verify-after-write against the journal: what the image now
        # holds must be both what we intended and what was journaled
        observed = program.fetch_bundle(loop.head)
        if observed != redirect or head_patch.new != observed:
            program.revert_patch(head_patch)
            if built_fresh:
                # a reused resident copy stays resident: only the
                # freshly appended one is reclaimed
                self.reclaimed_bundles += self.image.truncate(entry)
            if fault is not None and fault.kind == "torn_patch":
                self.faults.detected(
                    fault, f"torn redirect at {loop.head:#x} reverted"
                )
            self.recovery_log.append(
                f"torn: redirect at {loop.head:#x} reverted from journal"
            )
            raise TraceCacheError(
                f"torn redirect write at {loop.head:#x} detected and reverted"
            )

        deployment = Deployment(loop, entry, optimization, head_patch, n_rewrites)
        self.deployments.append(deployment)
        self._activate(loop, resident, built_fresh)
        if self.persist is not None:
            # journaled only after the verify-after-write passed: the
            # WAL records committed transactions, not attempts
            self.persist.log_txn(
                "deploy", loop.head, loop.back_branch, loop.hotness,
                optimization, n_rewrites,
            )
        return deployment

    def _fresh_resident(
        self,
        program: BinaryImage,
        loop: LoopTrace,
        optimization: str,
        fault,
    ) -> TraceVersion | None:
        """A resident version of this loop that is still safe to reuse.

        Safe means the program range ``[head, end_bundle]`` is
        bundle-for-bundle identical to the source the copy was built
        from.  A mismatched (stale) resident version is dropped from
        the set so the caller falls through to a fresh build.  An
        injected ``stale_image`` fault refuses the attempt outright —
        all-or-nothing, exactly like the fresh-build abort: nothing in
        the cache or the image changes, and the next attempt re-checks
        real freshness.
        """
        vs = self.version_sets.get(loop.head)
        if vs is None:
            return None
        version = vs.versions.get(optimization)
        if version is None:
            return None
        if fault is not None and fault.kind == "stale_image":
            self.faults.detected(
                fault, f"stale signal under resident trace of loop {loop.head:#x}"
            )
            self.recovery_log.append(
                f"stale: redeploy of loop {loop.head:#x} refused (resident trace kept)"
            )
            raise TraceCacheError(
                f"image version changed during redeployment of loop {loop.head:#x} "
                "(attempt refused, resident trace kept)"
            )
        addr, i = loop.head, 0
        while addr <= loop.end_bundle:
            if i >= len(version.source) or program.bundles.get(addr) != version.source[i]:
                del vs.versions[optimization]
                self.recovery_log.append(
                    f"stale: resident {optimization} trace for loop {loop.head:#x} rebuilt"
                )
                return None
            addr += BUNDLE_BYTES
            i += 1
        if i != len(version.source):
            del vs.versions[optimization]
            self.recovery_log.append(
                f"stale: resident {optimization} trace for loop {loop.head:#x} rebuilt"
            )
            return None
        return version

    def _activate(
        self, loop: LoopTrace, version: TraceVersion, built_fresh: bool
    ) -> None:
        """Record ``version`` as the live one for its loop."""
        vs = self.version_sets.get(loop.head)
        if vs is None:
            vs = VersionSet(loop=loop)
            self.version_sets[loop.head] = vs
        vs.versions[version.optimization] = version
        self._use_clock += 1
        version.last_used = self._use_clock
        if vs.ever_active and vs.active != version.optimization:
            vs.flips += 1
        vs.active = version.optimization
        vs.ever_active = True
        if not built_fresh:
            vs.reuses += 1

    @staticmethod
    def _tear(old: Bundle, redirect: Bundle, entry: int) -> Bundle:
        """A redirect write that stopped partway: old/new slots mixed."""
        candidates = (
            Bundle([old.slots[0], redirect.slots[1], redirect.slots[2]]),
            Bundle([redirect.slots[0], old.slots[1], redirect.slots[2]]),
            Bundle([redirect.slots[0], redirect.slots[1], old.slots[2]], old.template),
        )
        for torn in candidates:
            if torn != redirect:
                return torn
        return redirect

    def rollback(self, program: BinaryImage, deployment: Deployment) -> bool:
        """Undo a deployment (the trace becomes unreachable).

        Idempotent: rolling back an already-inactive deployment is a
        recorded no-op, never an error — the pending-evaluation and
        phase-change paths may both decide to revert the same trace.
        Returns ``True`` when this call performed the revert.
        """
        if not deployment.active:
            self.recovery_log.append(
                f"rollback-noop: loop {deployment.loop.head:#x} already inactive"
            )
            return False
        program.revert_patch(deployment.head_patch)
        deployment.active = False
        vs = self.version_sets.get(deployment.loop.head)
        if vs is not None and vs.active != UNTOUCHED:
            # the untouched original goes live again: that is a version
            # flip like any other (the optimized copy stays resident
            # for a cheap re-dispatch if the phase returns)
            vs.flips += 1
            vs.active = UNTOUCHED
        if self.persist is not None:
            self.persist.log_txn(
                "rollback", deployment.loop.head, deployment.loop.back_branch,
                deployment.loop.hotness, deployment.optimization,
                deployment.n_rewrites,
            )
        return True
