"""The *prefetch.excl* optimization (paper §4, §5.2).

"This optimization also selectively chooses prefetch instructions that
cause long latency coherent misses and applies the .excl hint on the
selected prefetches."

``lfetch.excl`` prefetches the line in the Exclusive state, so a store
that soon follows does not trigger an invalidation transaction — the
ownership acquisition happens in the prefetch shadow instead of
stalling the store buffer.

Selectivity matters: exclusive-prefetching a stream that is only *read*
steals lines other threads need ("it could still fetch unnecessary
cache lines from other processors", §5.2.1).  The paper frames this as
"we need to find the prefetch instructions that are associated with the
load [and store] instructions" (§4).  :func:`associate_stored_streams`
performs that association by binary dataflow: an lfetch's address
register is traced back through the ``add rPF = dist, rBASE`` prefetch
initialization to the stream base register; lfetches whose stream base
is also a store's address register are the ones rewritten.
"""

from __future__ import annotations

from typing import Callable

from ...isa.binary import BinaryImage
from ...isa.bundle import BUNDLE_BYTES
from ...isa.instructions import Instruction, Op
from ..tracesel import LoopTrace

__all__ = ["make_excl_rewrite", "associate_stored_streams"]

#: How many bundles of loop preamble to scan for prefetch-register
#: initialization (the compiler emits it just before the loop).
_PREAMBLE_BUNDLES = 48

#: Rotating-register region start: an lfetch addressed by a rotating
#: register is the Figure-2 alternating queue covering *all* streams.
_ROT_BASE = 32


def associate_stored_streams(image: BinaryImage, loop: LoopTrace) -> set[int] | None:
    """Address registers of lfetches associated with stored streams.

    Returns the set of lfetch address registers to rewrite, or ``None``
    when the loop uses a rotating prefetch queue that includes a stored
    stream (the queue is a single instruction covering every stream, so
    it is rewritten whole — exactly what the paper does to DAXPY).
    An empty set means no store-associated prefetch was found.
    """
    store_regs: set[int] = set()
    lfetch_regs: set[int] = set()
    addr = loop.head
    while addr <= loop.end_bundle:
        bundle = image.bundles.get(addr)
        if bundle is not None:
            for instr in bundle.slots:
                if instr.op in (Op.STFD, Op.ST8):
                    store_regs.add(instr.r2)
                elif instr.op is Op.LFETCH:
                    lfetch_regs.add(instr.r2)
        addr += BUNDLE_BYTES

    # scan the preamble for prefetch-register derivations rPF = dist + rBASE
    derived: dict[int, set[int]] = {}
    addr = max(image.base, loop.head - _PREAMBLE_BUNDLES * BUNDLE_BYTES)
    while addr < loop.head:
        bundle = image.bundles.get(addr)
        if bundle is not None:
            for instr in bundle.slots:
                if instr.op is Op.ADDI and instr.imm > 0:
                    derived.setdefault(instr.r1, set()).add(instr.r2)
        addr += BUNDLE_BYTES

    rotating_queue = any(reg >= _ROT_BASE for reg in lfetch_regs)
    if rotating_queue:
        # a rotating queue alternates over *every* stream of the loop,
        # so it covers the stored stream exactly when the loop stores —
        # rewrite it whole (this is the paper's DAXPY case)
        return None if store_regs else set()

    selected = set()
    for reg in lfetch_regs:
        if derived.get(reg, set()) & store_regs:
            selected.add(reg)
    return selected


def make_excl_rewrite(
    address_regs: set[int] | None = None,
) -> Callable[[Instruction], Instruction | None]:
    """Build a rewrite adding ``.excl`` to selected lfetches.

    ``address_regs`` restricts the rewrite to lfetches whose address
    register is in the set (``None`` rewrites every lfetch).
    """

    def rewrite(instr: Instruction) -> Instruction | None:
        if instr.op is Op.LFETCH and not instr.excl:
            if address_regs is None or instr.r2 in address_regs:
                return instr.clone(excl=True)
        return None

    return rewrite
