"""The *ld.bias* optimization (paper §4).

"Itanium 2 supports .bias hint for integer load instructions.  When a
load operation with .bias hint misses the cache, it requests the cache
line in the exclusive state ... If a store operation soon follows the
load operation, and it writes to the same cache line, it will not
trigger a coherent bus transaction."

The rewrite targets the read-modify-write idiom (``ld8 r=[a]``; modify;
``st8 [a]=r``) that indexed counters produce: the biased load performs
one read-for-ownership instead of a shared read followed by an
ownership upgrade.  As the paper notes, applicability "is very
limited" — the association requires a plain (non-speculative,
non-post-increment) integer load whose address register is also a store
address in the same loop.
"""

from __future__ import annotations

from typing import Callable

from ...isa.binary import BinaryImage
from ...isa.bundle import BUNDLE_BYTES
from ...isa.instructions import Instruction, Op
from ..tracesel import LoopTrace

__all__ = ["make_bias_rewrite", "find_rmw_load_regs"]


def find_rmw_load_regs(image: BinaryImage, loop: LoopTrace) -> set[int]:
    """Address registers of read-modify-write ``ld8``/``st8`` pairs."""
    load_regs: set[int] = set()
    store_regs: set[int] = set()
    addr = loop.head
    while addr <= loop.end_bundle:
        bundle = image.bundles.get(addr)
        if bundle is not None:
            for instr in bundle.slots:
                if instr.op is Op.LD8 and not instr.imm and not instr.excl:
                    load_regs.add(instr.r2)
                elif instr.op is Op.ST8 and not instr.imm:
                    store_regs.add(instr.r2)
        addr += BUNDLE_BYTES
    return load_regs & store_regs


def make_bias_rewrite(
    address_regs: set[int],
) -> Callable[[Instruction], Instruction | None]:
    """Build a rewrite adding ``.bias`` to the selected RMW loads."""

    def rewrite(instr: Instruction) -> Instruction | None:
        if (
            instr.op is Op.LD8
            and not instr.excl
            and not instr.imm
            and instr.r2 in address_regs
        ):
            return instr.clone(excl=True)  # excl flag renders as ld8.bias
        return None

    return rewrite
