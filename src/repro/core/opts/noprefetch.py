"""The *noprefetch* optimization (paper §5.2).

"This optimization selectively reduces the aggressiveness of
prefetching to remove unnecessary coherent cache misses.  Our runtime
profiler guides the optimizer to select prefetches in a few loops and
turn them into NOP instructions."

The rewrite replaces ``lfetch`` slots with unit-compatible ``nop``
instructions, preserving the bundle shape exactly — the optimized loop
has identical issue geometry to the original, as the paper's hand-made
comparison binaries do.
"""

from __future__ import annotations

from typing import Callable

from ...isa.instructions import Instruction, Op, nop

__all__ = ["make_noprefetch_rewrite"]


def make_noprefetch_rewrite(
    sites: set[tuple[int, int]] | None = None,
) -> Callable[[Instruction], Instruction | None]:
    """Build a rewrite turning lfetch into nop.

    ``sites`` optionally restricts the rewrite to specific
    (bundle address, slot) locations; ``None`` rewrites every lfetch in
    the trace (the loop was already selected by the profile, so all of
    its prefetches are implicated).
    """
    del sites  # site-level selection happens at loop granularity (paper §4)

    def rewrite(instr: Instruction) -> Instruction | None:
        if instr.op is Op.LFETCH:
            return nop("M")
        return None

    return rewrite
