"""COBRA's dynamic optimizations: prefetch rewrites (paper §4, §5.2)."""

from .bias import find_rmw_load_regs, make_bias_rewrite
from .excl import associate_stored_streams, make_excl_rewrite
from .noprefetch import make_noprefetch_rewrite

__all__ = [
    "make_noprefetch_rewrite",
    "make_excl_rewrite",
    "associate_stored_streams",
    "make_bias_rewrite",
    "find_rmw_load_regs",
]
