"""The optimization thread (paper §3.2).

"The optimization thread orchestrates the overall initialization, trace
selection, optimization, and trace cache management.  Notably, there is
only one optimization thread ... this design choice simplifies its
implementation, and enables centralized control over multiple
monitoring threads."

The thread wakes every ``optimize_interval`` aggregate retired
instructions, drains all User Sampling Buffers into the system
profiler, and — when the system-wide coherent ratio warrants it —
selects one hot loop, decides an optimization, and deploys a rewritten
trace.  One deployment per wake-up keeps before/after attribution clean
for the rollback check (re-adaptation): if the windowed system CPI
degrades after a deployment, the deployment is reverted and the loop
blacklisted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import CobraConfig
from ..cpu.machine import Machine
from ..errors import TraceCacheError
from ..isa.binary import BinaryImage
from .monitor import MonitoringThread
from .opts import make_noprefetch_rewrite
from .opts.excl import associate_stored_streams, make_excl_rewrite
from .policy import Decision, decide
from .profiler import SystemProfiler
from .tracecache import Deployment, TraceCache
from .tracesel import select_loop_traces

__all__ = ["OptimizationThread", "OptEvent"]


@dataclass(frozen=True)
class OptEvent:
    """One logged optimizer action."""

    retired: int
    kind: str          # "deploy" | "rollback" | "skip"
    loop_head: int | None
    optimization: str | None
    reason: str


@dataclass
class _Window:
    cycles: int
    retired: int

    def cpi(self, machine: Machine) -> float:
        dc = machine.total_cycles() - self.cycles
        dr = machine.total_retired() - self.retired
        return dc / dr if dr > 0 else 0.0


class OptimizationThread:
    """Centralized optimizer over all monitoring threads."""

    def __init__(
        self,
        machine: Machine,
        program: BinaryImage,
        monitors: list[MonitoringThread],
        trace_cache: TraceCache,
        config: CobraConfig,
        strategy: str = "adaptive",
    ) -> None:
        self.machine = machine
        self.program = program
        self.monitors = monitors
        self.trace_cache = trace_cache
        self.config = config
        self.strategy = strategy
        self.profiler = SystemProfiler(config)
        self.events: list[OptEvent] = []
        self.blacklist: set[int] = set()
        self._last_wake = 0
        # (deployment, CPI before, wakes left before judging)
        self._pending_eval: tuple[Deployment, float, int] | None = None
        self._window = _Window(machine.total_cycles(), machine.total_retired())
        # recent per-window CPIs; deployment needs a warm, phase-averaged
        # baseline (the first windows are cold-miss-inflated)
        self._cpi_history: list[float] = []

    # -- scheduler hook ---------------------------------------------------------

    def tick(self) -> None:
        """Called between scheduling slices; cheap until the wake point."""
        retired = self.machine.total_retired()
        if retired - self._last_wake < self.config.optimize_interval:
            return
        self._last_wake = retired
        self.wake()

    # -- one optimizer wake-up -----------------------------------------------------

    def wake(self) -> None:
        self.profiler.ingest(self.monitors)
        retired = self.machine.total_retired()

        # evaluate the previous deployment's effect (re-adaptation):
        # the after-CPI is phase-averaged over several windows, because
        # one window may cover different program regions than another
        if self._pending_eval is not None and self.config.enable_rollback:
            deployment, before_cpi, wakes_left = self._pending_eval
            if wakes_left > 0:
                self._pending_eval = (deployment, before_cpi, wakes_left - 1)
                return
            after_cpi = self._window.cpi(self.machine)
            self._pending_eval = None
            if before_cpi > 0 and after_cpi > before_cpi * 1.03:
                self.trace_cache.rollback(self.program, deployment)
                self.blacklist.add(deployment.loop.head)
                self.events.append(
                    OptEvent(
                        retired,
                        "rollback",
                        deployment.loop.head,
                        deployment.optimization,
                        f"CPI {before_cpi:.2f} -> {after_cpi:.2f} after deployment",
                    )
                )
            else:
                self._cpi_history.append(after_cpi)

        window_cpi = self._window.cpi(self.machine)
        self._cpi_history.append(window_cpi)
        del self._cpi_history[:-4]

        ratio = self.profiler.coherent_ratio()

        # continuous re-adaptation: a deployment is only justified while
        # coherent traffic dominates; when the program enters a phase
        # where it no longer does (e.g. the working set outgrew the
        # caches), revert — without blacklisting, so the optimization
        # can come back if the earlier behaviour returns.
        if ratio < self.config.coherent_ratio_threshold:
            for deployment in list(self.trace_cache.deployments):
                if not deployment.active:
                    continue
                self.trace_cache.rollback(self.program, deployment)
                self.events.append(
                    OptEvent(
                        retired,
                        "rollback",
                        deployment.loop.head,
                        deployment.optimization,
                        f"coherent ratio fell to {ratio:.2f}: phase change",
                    )
                )

        traces = select_loop_traces(self.profiler, self.program)
        deployed = False
        warm = len(self._cpi_history) >= 3
        for trace in traces:
            if trace.head in self.blacklist or self.trace_cache.is_deployed(trace.head):
                continue
            decision: Decision = decide(trace, self.strategy, self.config, ratio)
            if decision.optimization is None:
                self.events.append(
                    OptEvent(retired, "skip", trace.head, None, decision.reason)
                )
                continue
            if not warm:
                self.events.append(
                    OptEvent(retired, "skip", trace.head, decision.optimization,
                             "profile not warm yet")
                )
                continue
            if decision.optimization == "noprefetch":
                rewrite = make_noprefetch_rewrite()
            else:
                # .excl only on prefetches feeding stored streams (§4)
                selection = associate_stored_streams(self.program, trace)
                if selection is not None and not selection:
                    self.events.append(
                        OptEvent(retired, "skip", trace.head, "excl",
                                 "no store-associated prefetch in loop")
                    )
                    continue
                rewrite = make_excl_rewrite(selection)
            history = self._cpi_history[-3:]
            before_cpi = sum(history) / len(history)
            try:
                deployment = self.trace_cache.deploy(
                    self.program, trace, rewrite, decision.optimization
                )
            except TraceCacheError as exc:
                self.events.append(
                    OptEvent(retired, "skip", trace.head, decision.optimization, str(exc))
                )
                continue
            self.events.append(
                OptEvent(
                    retired, "deploy", trace.head, decision.optimization, decision.reason
                )
            )
            self._pending_eval = (deployment, before_cpi, 2)
            deployed = True
            break  # one deployment per wake-up

        del deployed
        self._window = _Window(self.machine.total_cycles(), self.machine.total_retired())
        self.profiler.new_window()

    # -- reporting ----------------------------------------------------------------

    def deployments(self) -> list[Deployment]:
        return [d for d in self.trace_cache.deployments if d.active]
