"""The optimization thread (paper §3.2).

"The optimization thread orchestrates the overall initialization, trace
selection, optimization, and trace cache management.  Notably, there is
only one optimization thread ... this design choice simplifies its
implementation, and enables centralized control over multiple
monitoring threads."

The thread wakes every ``optimize_interval`` aggregate retired
instructions, drains all User Sampling Buffers into the system
profiler, and — when the system-wide coherent ratio warrants it —
selects one hot loop, decides an optimization, and deploys a rewritten
trace.  One deployment per wake-up keeps before/after attribution clean
for the rollback check (re-adaptation): if the windowed system CPI
degrades after a deployment, the deployment is reverted and the loop
blacklisted.

While a deployment is under evaluation the optimizer *defers judgement*
but does not go blind: every wake still ingests samples, maintains the
CPI history, and runs the phase-change rollback scan (an earlier
version early-returned here, starving both for the whole evaluation
period).  Empty windows — no retired instructions, ``cpi() == 0.0`` —
carry no signal and are never recorded into the history or allowed to
"pass" a regression check.

The optimizer is also the runtime's **watchdog**: it restarts
monitoring threads that died mid-run, and escalates repeated faults or
recorded invariant violations into a ``monitor-only`` degraded mode —
every active deployment is reverted to the unmodified (always-correct)
original code and no new traces are deployed, while profiling and
reporting continue.  Degrading costs performance, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..config import CobraConfig
from ..cpu.machine import Machine
from ..errors import TraceCacheError
from ..isa.binary import BinaryImage
from .monitor import MonitoringThread
from .opts import make_noprefetch_rewrite
from .opts.excl import associate_stored_streams, make_excl_rewrite
from .policy import Decision, decide, proven_decisions
from .profiler import SystemProfiler
from .tracecache import Deployment, TraceCache
from .tracesel import LoopTrace, _scan_lfetch, select_loop_traces

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector

__all__ = ["OptimizationThread", "OptEvent", "MODES"]

#: Operating modes: ``monitor-only`` is the degraded state — profile,
#: report, but never patch.
MODES = ("normal", "monitor-only")

#: A single wake with at least this many freshly quarantined samples is
#: a fault strike (a trickle is business as usual under injection; a
#: surge means the sampling path itself is sick).
_QUARANTINE_SURGE = 4


@dataclass(frozen=True)
class OptEvent:
    """One logged optimizer action."""

    retired: int
    kind: str          # "deploy" | "rollback" | "skip" | "recover" | "degrade"
    loop_head: int | None
    optimization: str | None
    reason: str


@dataclass
class _Window:
    cycles: int
    retired: int

    def cpi(self, machine: Machine) -> float:
        dc = machine.total_cycles() - self.cycles
        dr = machine.total_retired() - self.retired
        return dc / dr if dr > 0 else 0.0


class OptimizationThread:
    """Centralized optimizer over all monitoring threads."""

    def __init__(
        self,
        machine: Machine,
        program: BinaryImage,
        monitors: list[MonitoringThread],
        trace_cache: TraceCache,
        config: CobraConfig,
        strategy: str = "adaptive",
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.machine = machine
        self.program = program
        self.monitors = monitors
        self.trace_cache = trace_cache
        self.config = config
        self.strategy = strategy
        self.faults = faults
        self.profiler = SystemProfiler(config, faults)
        self.events: list[OptEvent] = []
        self.blacklist: set[int] = set()
        self.mode = "normal"
        self.fault_strikes = 0
        self._quarantine_seen = 0
        self._violations_seen = 0
        self._violation_source: Callable[[], int] | None = None
        self._last_wake = 0
        # (deployment, CPI before, wakes left before judging)
        self._pending_eval: tuple[Deployment, float, int] | None = None
        self._window = _Window(machine.total_cycles(), machine.total_retired())
        # recent per-window CPIs; deployment needs a warm, phase-averaged
        # baseline (the first windows are cold-miss-inflated)
        self._cpi_history: list[float] = []
        # whole-run CPI accumulator (the history window keeps only the
        # last 4); feeds the cross-run profile database
        self._cpi_sum = 0.0
        self._cpi_n = 0
        #: retired-instruction count at which the profile first became
        #: warm (3 recorded CPI windows); ``0`` when seeded from a
        #: checkpoint or profile-DB entry, ``None`` if never reached.
        #: This is the profiling-ramp metric the warm-start gate checks.
        self.warm_at_retired: int | None = None
        #: retired count of the first successful deployment (``None`` =
        #: nothing deployed)
        self.first_deploy_retired: int | None = None
        #: persistence manager (:mod:`repro.persist`); wired by the
        #: framework after construction, ``None`` = no journaling
        self.persist = None
        #: fleet telemetry outbox (:mod:`repro.fleet`); wired by the
        #: framework after construction, ``None`` = solo run.  Purely
        #: observational — it reads the profiler and window CPI at each
        #: wake and never feeds anything back into this run.
        self.outbox = None
        #: resource governor (:mod:`repro.governor`); wired by the
        #: framework after construction, ``None`` = ungoverned
        self.governor = None

    def watch_violations(self, source: Callable[[], int]) -> None:
        """Register a recorded-violation counter for the watchdog."""
        self._violation_source = source

    def _log(self, event: OptEvent) -> None:
        """Record one optimizer event (and journal it when persisting)."""
        self.events.append(event)
        if self.persist is not None:
            self.persist.log_decision(
                [event.retired, event.kind, event.loop_head,
                 event.optimization, event.reason]
            )

    def _note_cpi(self, value: float) -> None:
        """Record one windowed CPI observation."""
        self._cpi_history.append(value)
        self._cpi_sum += value
        self._cpi_n += 1

    # -- scheduler hook ---------------------------------------------------------

    def tick(self) -> None:
        """Called between scheduling slices; cheap until the wake point."""
        retired = self.machine.total_retired()
        if retired - self._last_wake < self.config.optimize_interval:
            return
        self._last_wake = retired
        if self.faults is not None:
            event = self.faults.loop_fault()
            if event is not None:
                if event.kind == "missed_wakeup":
                    # the wake signal is lost; adaptation waits a period
                    return
                if event.kind == "monitor_death":
                    victim = self.monitors[self.faults.choice(len(self.monitors))]
                    if victim.running:
                        victim.kill()
                    else:
                        self.faults.tolerated(event, "victim already down")
        self.wake()

    # -- watchdog ---------------------------------------------------------------

    def _strike(self, retired: int, reason: str) -> None:
        """Count a fault strike; escalate to monitor-only past the cap."""
        self.fault_strikes += 1
        if (
            self.mode == "normal"
            and self.fault_strikes >= self.config.fault_escalation_threshold
        ):
            self.mode = "monitor-only"
            for deployment in self.trace_cache.deployments:
                if deployment.active:
                    self.trace_cache.rollback(self.program, deployment)
            self._pending_eval = None
            self._log(
                OptEvent(
                    retired,
                    "degrade",
                    None,
                    None,
                    f"monitor-only after {self.fault_strikes} fault strike(s): {reason}",
                )
            )

    def _watchdog(self, retired: int) -> None:
        for monitor in self.monitors:
            if monitor.dead:
                monitor.restart()
                if self.faults is not None:
                    self.faults.claim(
                        "loop", f"monitor {monitor.core.cpu_id} restarted by watchdog"
                    )
                    self._strike(
                        retired, f"monitor {monitor.core.cpu_id} died"
                    )
                self._log(
                    OptEvent(
                        retired,
                        "recover",
                        None,
                        None,
                        f"monitor {monitor.core.cpu_id} restarted by watchdog",
                    )
                )
        if self.faults is not None:
            quarantined = self.profiler.quarantined_total
            surge = quarantined - self._quarantine_seen
            self._quarantine_seen = quarantined
            if surge >= _QUARANTINE_SURGE:
                self._strike(retired, f"{surge} samples quarantined in one window")
            if self._violation_source is not None:
                violations = self._violation_source()
                if violations > self._violations_seen:
                    self._strike(
                        retired,
                        f"{violations - self._violations_seen} invariant "
                        "violation(s) recorded",
                    )
                    self._violations_seen = violations

    # -- one optimizer wake-up -----------------------------------------------------

    def _governor_wake(self, retired: int) -> bool:
        """Governor step at the top of each wake; ``True`` = rung off.

        Rung effects are applied *idempotently* every wake, not only on
        transitions — the watchdog may have restarted a dead monitor
        during ``frozen``, or a warm path may have deployed before the
        governor first observed pressure; re-asserting the rung each
        wake keeps the runtime consistent with it regardless.
        """
        gov = self.governor
        before = gov.rung
        rung = gov.on_wake(
            retired, self.trace_cache, self.outbox,
            cores=self.machine.cores,
        )
        if rung != before:
            from ..governor.ladder import RUNGS

            kind = "degrade" if RUNGS.index(rung) > RUNGS.index(before) else "recover"
            self._log(
                OptEvent(
                    retired, kind, None, None,
                    f"governor: {before} -> {rung} "
                    f"(pressure {gov.last_pressure:.2f})",
                )
            )
        if rung in ("monitor-only", "frozen", "off"):
            for deployment in self.trace_cache.deployments:
                if deployment.active:
                    self.trace_cache.rollback(self.program, deployment)
                    self._log(
                        OptEvent(
                            retired, "rollback", deployment.loop.head,
                            deployment.optimization,
                            f"governor rung {rung}: deployment reverted",
                        )
                    )
            self._pending_eval = None
        if rung in ("frozen", "off"):
            for monitor in self.monitors:
                if monitor.running:
                    monitor.stop()
        else:
            for monitor in self.monitors:
                if not monitor.running and not monitor.dead:
                    monitor.start()
        if rung == "off":
            # governed blackout: no ingest, no deploys, no telemetry;
            # the window resets so the next governed wake starts clean
            self._window = _Window(
                self.machine.total_cycles(), self.machine.total_retired()
            )
            self.profiler.new_window()
            return True
        return False

    def wake(self) -> None:
        retired = self.machine.total_retired()
        self._watchdog(retired)
        if self.governor is not None and self._governor_wake(retired):
            return
        self.profiler.ingest(self.monitors)

        # evaluate the previous deployment's effect (re-adaptation):
        # the after-CPI is phase-averaged over several windows, because
        # one window may cover different program regions than another
        deferring = False
        if self._pending_eval is not None and self.config.enable_rollback:
            deployment, before_cpi, wakes_left = self._pending_eval
            if not deployment.active:
                # reverted underneath the evaluation (phase change or
                # degraded-mode sweep): nothing left to judge
                self._pending_eval = None
            elif wakes_left > 0:
                self._pending_eval = (deployment, before_cpi, wakes_left - 1)
                deferring = True
            else:
                after_cpi = self._window.cpi(self.machine)
                self._pending_eval = None
                if after_cpi == 0.0:
                    # empty window: no retired instructions, no signal —
                    # neither a pass nor a regression
                    self._log(
                        OptEvent(
                            retired,
                            "skip",
                            deployment.loop.head,
                            deployment.optimization,
                            "empty evaluation window: no signal",
                        )
                    )
                elif before_cpi > 0 and after_cpi > before_cpi * 1.03:
                    self.trace_cache.rollback(self.program, deployment)
                    self.blacklist.add(deployment.loop.head)
                    self._log(
                        OptEvent(
                            retired,
                            "rollback",
                            deployment.loop.head,
                            deployment.optimization,
                            f"CPI {before_cpi:.2f} -> {after_cpi:.2f} after deployment",
                        )
                    )
                else:
                    self._note_cpi(after_cpi)

        window_cpi = self._window.cpi(self.machine)
        if window_cpi > 0.0:
            self._note_cpi(window_cpi)
        del self._cpi_history[:-4]
        if self.warm_at_retired is None and len(self._cpi_history) >= 3:
            # the profiling ramp ends here: from this wake on, the
            # deploy baseline is warm
            self.warm_at_retired = retired

        ratio = self.profiler.coherent_ratio()

        # continuous re-adaptation: a deployment is only justified while
        # coherent traffic dominates; when the program enters a phase
        # where it no longer does (e.g. the working set outgrew the
        # caches), revert — without blacklisting, so the optimization
        # can come back if the earlier behaviour returns.  This scan
        # also runs while an evaluation is deferring (rollback is
        # idempotent, so the eval path finding its deployment already
        # inactive is safe).
        if ratio < self.config.coherent_ratio_threshold:
            for deployment in list(self.trace_cache.deployments):
                if not deployment.active:
                    continue
                self.trace_cache.rollback(self.program, deployment)
                self._log(
                    OptEvent(
                        retired,
                        "rollback",
                        deployment.loop.head,
                        deployment.optimization,
                        f"coherent ratio fell to {ratio:.2f}: phase change",
                    )
                )

        if deferring:
            # keep the evaluation window open (no reset, no decay) so
            # the after-CPI stays phase-averaged; no new deployment
            # while one is under evaluation (attribution)
            self._outbox_flush(retired, window_cpi)
            self._persist_wake()
            return

        if self.mode == "normal" and (
            self.governor is None or self.governor.rung == "full"
        ):
            self._deploy_one(retired, ratio)

        self._outbox_flush(retired, window_cpi)
        self._window = _Window(self.machine.total_cycles(), self.machine.total_retired())
        self.profiler.new_window()
        self._persist_wake()

    def _build_rewrite(self, trace: LoopTrace, optimization: str, retired: int):
        """The rewrite callable for ``optimization``, or ``None`` + skip log."""
        if optimization == "noprefetch":
            return make_noprefetch_rewrite()
        # .excl only on prefetches feeding stored streams (§4)
        selection = associate_stored_streams(self.program, trace)
        if selection is not None and not selection:
            self._log(
                OptEvent(retired, "skip", trace.head, "excl",
                         "no store-associated prefetch in loop")
            )
            return None
        return make_excl_rewrite(selection)

    def _deploy_one(self, retired: int, ratio: float) -> None:
        """Select one hot loop and deploy (or re-dispatch) a trace for it.

        A loop already running one optimized version is not frozen
        there: when the observed phase now prefers a *different*
        optimization, the live version is rolled back and the preferred
        one deployed — usually a cheap head-redirect re-dispatch, since
        the trace cache keeps every built version resident.
        """
        traces = select_loop_traces(self.profiler, self.program)
        warm = len(self._cpi_history) >= 3
        for trace in traces:
            if trace.head in self.blacklist:
                continue
            active = self.trace_cache.active_optimization(trace.head)
            decision: Decision = decide(trace, self.strategy, self.config, ratio)
            if active is not None:
                # multi-version dispatch: flip only on a clear, warm
                # preference for another version; everything else keeps
                # the live one (the phase-change scan in wake() already
                # handles "no optimization warranted at all")
                if (
                    decision.optimization is None
                    or decision.optimization == active
                    or not warm
                ):
                    continue
                rewrite = self._build_rewrite(trace, decision.optimization, retired)
                if rewrite is None:
                    continue
                current = self.trace_cache.active_deployment(trace.head)
                self.trace_cache.rollback(self.program, current)
                self._log(
                    OptEvent(
                        retired, "rollback", trace.head, active,
                        f"phase now prefers {decision.optimization}: version flip",
                    )
                )
            else:
                if decision.optimization is None:
                    self._log(
                        OptEvent(retired, "skip", trace.head, None, decision.reason)
                    )
                    continue
                if not warm:
                    self._log(
                        OptEvent(retired, "skip", trace.head, decision.optimization,
                                 "profile not warm yet")
                    )
                    continue
                rewrite = self._build_rewrite(trace, decision.optimization, retired)
                if rewrite is None:
                    continue
            history = self._cpi_history[-3:]
            before_cpi = sum(history) / len(history)
            try:
                deployment = self.trace_cache.deploy(
                    self.program, trace, rewrite, decision.optimization
                )
            except TraceCacheError as exc:
                self._log(
                    OptEvent(retired, "skip", trace.head, decision.optimization, str(exc))
                )
                if self.faults is not None:
                    self._strike(retired, f"deployment failed: {exc}")
                continue
            if self.first_deploy_retired is None:
                self.first_deploy_retired = retired
            self._log(
                OptEvent(
                    retired, "deploy", trace.head, decision.optimization, decision.reason
                )
            )
            self._pending_eval = (deployment, before_cpi, 2)
            break  # one deployment per wake-up

    # -- persistence (repro.persist) -----------------------------------------------

    def _persist_wake(self) -> None:
        """Journal the full control-plane state at the end of a wake."""
        if self.persist is not None:
            self.persist.log_window(self.export_state())

    def _outbox_flush(self, retired: int, window_cpi: float) -> None:
        """Hand the closing window's telemetry to the fleet outbox."""
        if self.outbox is not None:
            self.outbox.on_wake(retired, window_cpi, self.profiler)

    def export_state(self) -> dict:
        """JSON-serializable control-plane state (one 'window' record)."""
        return {
            "profiler": self.profiler.export_state(),
            "cpi_history": list(self._cpi_history),
            "blacklist": sorted(self.blacklist),
            "mode": self.mode,
            "fault_strikes": self.fault_strikes,
            "events": [
                [e.retired, e.kind, e.loop_head, e.optimization, e.reason]
                for e in self.events
            ],
            "deployments": [
                {
                    "head": d.loop.head,
                    "back_branch": d.loop.back_branch,
                    "hotness": d.loop.hotness,
                    "optimization": d.optimization,
                    "n_rewrites": d.n_rewrites,
                }
                for d in self.trace_cache.deployments
                if d.active
            ],
            "samples_per_cpu": {
                str(m.core.cpu_id): m.prior_samples + m.samples_taken
                for m in self.monitors
            },
        }

    def warm_start(self, state: dict) -> None:
        """Resume from a recovered control-plane state (re-adaptation).

        Restores the profile aggregates' companions (CPI history,
        blacklist, mode, event history) and immediately re-deploys the
        previously proven optimizations — no cold profiling ramp.  The
        redeployments stay subject to the normal policy: no pending
        evaluation is armed (the restart transient would compare a warm
        before-CPI against cold-start windows and revert a good trace),
        but the phase-change coherent-ratio scan and the regression
        check on *future* deployments apply unchanged.
        """
        self._cpi_history = [float(x) for x in state.get("cpi_history", [])][-4:]
        if len(self._cpi_history) >= 3:
            # the checkpointed profile is already warm: no cold ramp
            self.warm_at_retired = 0
        self.blacklist = {int(h) for h in state.get("blacklist", [])}
        self.mode = str(state.get("mode", "normal"))
        self.fault_strikes = int(state.get("fault_strikes", 0))
        self.events = [
            OptEvent(int(e[0]), str(e[1]), e[2], e[3], str(e[4]))
            for e in state.get("events", [])
        ]
        # the restored quarantine total predates this session: without
        # re-basing, the first watchdog pass would read the whole prior
        # history as one surge and strike immediately
        self._quarantine_seen = self.profiler.quarantined_total
        if self.mode != "normal":
            return  # a degraded session resumes degraded: never re-patch
        for dep in state.get("deployments", []):
            head = int(dep["head"])
            if head in self.blacklist or head not in self.program.bundles:
                continue
            trace = LoopTrace(
                head=head,
                back_branch=int(dep["back_branch"]),
                hotness=int(dep["hotness"]),
            )
            trace.lfetch_sites = _scan_lfetch(self.program, head, trace.end_bundle)
            optimization = str(dep["optimization"])
            if optimization == "noprefetch":
                rewrite = make_noprefetch_rewrite()
            else:
                selection = associate_stored_streams(self.program, trace)
                if selection is not None and not selection:
                    continue
                rewrite = make_excl_rewrite(selection)
            try:
                self.trace_cache.deploy(self.program, trace, rewrite, optimization)
            except TraceCacheError as exc:
                self._log(
                    OptEvent(0, "skip", head, optimization,
                             f"warm redeploy failed: {exc}")
                )
                continue
            self._log(
                OptEvent(0, "deploy", head, optimization,
                         "warm restart: re-deployed from checkpoint")
            )

    # -- cross-run profile database (repro.persist.profiledb) -----------------------

    def seed_from_profile(self, entry: dict, source: str = "profile-db") -> int:
        """Warm-start from a cross-run profile-DB entry; return loops deployed.

        ``source`` labels the event log: ``"profile-db"`` for a local
        database hit, ``"fleet"`` for a daemon-pushed, quorum-gated
        entry — same deployment path, different provenance.

        Restores the profiler aggregates (strictly validated — a torn
        entry raises :class:`~repro.errors.ProfileStateError` and the
        caller stays cold), seeds the CPI baseline from the entry's
        steady-state mean, and immediately deploys the best proven
        optimization per loop.  Like :meth:`warm_start`, no pending
        evaluation is armed: seeded deployments stay subject to the
        phase-change scan and future regression checks, but the cold
        windows of this run must not revert an optimization proven over
        whole prior runs.
        """
        prof = entry.get("profiler")
        if prof is not None:
            self.profiler.restore_state(prof)
            # prior-run quarantine noise is not this run's signal
            self.profiler.quarantined = {}
            self.profiler.quarantined_total = 0
            self._quarantine_seen = 0
        cpi_count = int(entry.get("cpi_count", 0))
        if cpi_count > 0:
            mean = float(entry.get("cpi_total", 0.0)) / cpi_count
            if mean > 0.0:
                self._cpi_history = [mean, mean, mean]
                self.warm_at_retired = 0
        deployed = 0
        for head, optimization, rec in proven_decisions(entry, self.strategy):
            if head in self.blacklist or head not in self.program.bundles:
                continue
            if self.trace_cache.is_deployed(head):
                continue
            trace = LoopTrace(
                head=head,
                back_branch=int(rec.get("back_branch", head)),
                hotness=int(rec.get("hotness", 0)),
            )
            trace.lfetch_sites = _scan_lfetch(self.program, head, trace.end_bundle)
            if not trace.lfetch_sites:
                continue
            if optimization == "noprefetch":
                rewrite = make_noprefetch_rewrite()
            else:
                selection = associate_stored_streams(self.program, trace)
                if selection is not None and not selection:
                    continue
                rewrite = make_excl_rewrite(selection)
            try:
                self.trace_cache.deploy(self.program, trace, rewrite, optimization)
            except TraceCacheError as exc:
                self._log(
                    OptEvent(0, "skip", head, optimization,
                             f"{source} redeploy failed: {exc}")
                )
                continue
            if self.first_deploy_retired is None:
                self.first_deploy_retired = 0
            self._log(
                OptEvent(0, "deploy", head, optimization,
                         f"{source}: re-deployed proven optimization")
            )
            deployed += 1
        # warm-start the trace JIT too: recompile persisted tree shapes
        # so compiled dispatch is live from retired 0 instead of after
        # every head re-proves hot.  Best-effort and timing-neutral —
        # a stale or torn shape is skipped, never wrong.
        shapes = entry.get("jit_trees") or []
        if shapes:
            seeded = 0
            for core in self.machine.cores:
                if core.jit_enabled and core.osr_enabled:
                    tjit = core.trace_jit
                    tjit.osr = True
                    seeded += tjit.warm_seed(
                        shapes, core.decode_cache, core.bundles_per_cycle
                    )
            if seeded:
                self._log(
                    OptEvent(0, "deploy", None, None,
                             f"{source}: {seeded} trace-tree node(s) "
                             "recompiled for warm dispatch")
                )
        return deployed

    def export_profile_entry(self) -> dict:
        """This run's contribution to the cross-run profile database.

        ``proven`` evidence comes from deployments still active at run
        end (they survived the regression check and every phase scan);
        ``rolled_back`` only from CPI-regression rollbacks — a
        phase-change revert is not evidence against the optimization,
        just against the moment.
        """
        prof = self.profiler.export_state()
        prof["quarantined"] = {}
        prof["quarantined_total"] = 0
        decisions: dict[str, dict] = {}

        def record(head: int, optimization: str) -> dict:
            return decisions.setdefault(str(head), {}).setdefault(
                optimization,
                {"proven": 0, "rolled_back": 0, "back_branch": 0, "hotness": 0},
            )

        for d in self.trace_cache.deployments:
            if not d.active:
                continue
            rec = record(d.loop.head, d.optimization)
            rec["proven"] += 1
            rec["back_branch"] = max(rec["back_branch"], d.loop.back_branch)
            rec["hotness"] = max(rec["hotness"], d.loop.hotness)
        for e in self.events:
            if (
                e.kind == "rollback"
                and e.loop_head is not None
                and e.optimization
                and e.reason.startswith("CPI ")
            ):
                record(int(e.loop_head), str(e.optimization))["rolled_back"] += 1
        return {
            "runs": 1,
            "profiler": prof,
            "cpi_total": self._cpi_sum,
            "cpi_count": self._cpi_n,
            "decisions": decisions,
            "flips": sum(
                vs.flips for vs in self.trace_cache.version_sets.values()
            ),
            # resident trace-tree shapes, deduped across cores: a warm
            # run recompiles these before the first instruction retires
            "jit_trees": sorted(
                [root, head, kind, sor]
                for root, head, kind, sor in {
                    (tr.root, tr.head, tr.kind, tr.sor)
                    for core in self.machine.cores
                    for tr in core.trace_jit.traces.values()
                }
            ),
        }

    # -- reporting ----------------------------------------------------------------

    def deployments(self) -> list[Deployment]:
        return [d for d in self.trace_cache.deployments if d.active]
