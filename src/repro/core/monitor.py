"""COBRA monitoring threads (paper §3.1).

One monitoring thread is created per working thread.  It owns that
thread's perfmon session: it programs the PMU events and the DEAR
latency filter, catches the sampling signal, and copies each sample
from the Kernel Sampling Buffer into its User Sampling Buffer (USB),
where the optimization thread's profiler reads it.

The four programmed counters are the coherent-traffic set from §4:
``BUS_MEMORY`` (all bus transactions) plus the three snoop-response
events whose sum over ``BUS_MEMORY`` estimates the coherent-access
ratio.

The KSB→USB copy is the first surface the fault injector
(:mod:`repro.faults`) attacks: samples can be dropped, duplicated,
corrupted, delayed behind later samples, or lost to a USB overflow —
and the thread itself can die mid-run (the optimizer's watchdog
restarts it).  None of that may ever reach program correctness; at
worst the profile gets thinner.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import CobraConfig
from ..cpu.core import Core
from ..hpm.events import PmuEvent
from ..hpm.perfmon import PerfmonSession
from ..hpm.sample import Sample

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultEvent, FaultInjector

__all__ = ["MonitoringThread", "MONITOR_EVENTS"]

#: Counter programming used by every monitoring thread (paper §4).
MONITOR_EVENTS = [
    PmuEvent.BUS_MEMORY,
    PmuEvent.BUS_RD_HIT,
    PmuEvent.BUS_RD_HITM,
    PmuEvent.BUS_RD_INVAL,
]

#: USB capacity; oldest samples are dropped first (ring buffer).
USB_CAPACITY = 4096


class MonitoringThread:
    """Monitors one working thread via its perfmon session."""

    def __init__(
        self,
        core: Core,
        config: CobraConfig,
        pid: int = 0,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.core = core
        self.config = config
        self.faults = faults
        self.session = PerfmonSession(core, pid)
        self.usb: list[Sample] = []
        self.samples_taken = 0
        #: samples taken by this core's monitor in *previous* sessions,
        #: restored on warm restart (:mod:`repro.persist`) so lifetime
        #: accounting on the COBRA report survives a process death
        self.prior_samples = 0
        #: set when the thread died mid-run (fault injection); the
        #: optimizer's watchdog restarts dead monitors on its next wake
        self.dead = False
        # [countdown, sample] pairs held back by a late_sample fault
        self._delayed: list[list] = []
        self._running = False
        #: resource governor (:mod:`repro.governor`); wired by the
        #: framework after construction, ``None`` = the plain
        #: ``USB_CAPACITY`` ring with no shed accounting
        self.governor = None

    def start(self) -> None:
        """Program the PMU and arm sampling (the thread 'attaches')."""
        if self._running:
            return
        self.session.configure(
            MONITOR_EVENTS,
            interval=self.config.sampling_interval,
            dear_min_latency=self.config.dear_latency_floor,
            overhead_cycles=self.config.sample_overhead_cycles,
        )
        self.session.set_listener(self._on_signal)
        self._running = True

    def stop(self) -> None:
        if self._running:
            self.session.stop()
            self._running = False
        self._flush_delayed()

    def kill(self) -> None:
        """The monitoring thread dies mid-run (fault injection).

        Its buffered samples go with it; the perfmon session is torn
        down as the kernel would on thread exit.
        """
        if self._running:
            self.session.stop()
            self._running = False
        if self.faults is not None and (self.usb or self._delayed):
            self.faults.samples_lost(self.usb + [entry[1] for entry in self._delayed])
        self.usb.clear()
        self._delayed.clear()
        self.dead = True

    def restart(self) -> None:
        """Watchdog recovery: re-attach a dead monitoring thread."""
        self.dead = False
        self.start()

    @property
    def running(self) -> bool:
        return self._running

    def _on_signal(self, sample: Sample) -> None:
        """perfmon signal handler: kernel buffer -> USB."""
        faults = self.faults
        if faults is not None:
            event = faults.sample_fault()
            if event is not None:
                sample = self._apply_fault(event, sample)
                if sample is None:
                    return
        self._deliver(sample)
        if self.governor is not None:
            # overload flood: the sample lands extra times; the
            # profiler's ordering check quarantines the duplicates and
            # the governed cap sheds whatever the queue cannot hold
            for _ in range(self.governor.flood_extra()):
                self._deliver(sample)

    def _apply_fault(self, event: "FaultEvent", sample: Sample) -> Sample | None:
        kind = event.kind
        if kind == "drop_sample":
            return None
        if kind == "dup_sample":
            self._deliver(sample)         # the copy lands twice
            return sample
        if kind == "corrupt_sample":
            return self.faults.corrupt_sample(event, sample)
        if kind == "late_sample":
            self._delayed.append([self.faults.delay_count(), sample])
            return None
        if kind == "usb_overflow":
            # kernel buffer overran before the copy: the USB's oldest
            # three quarters are lost wholesale
            keep = len(self.usb) // 4
            lost = len(self.usb) - keep
            if lost:
                self.faults.samples_lost(self.usb[:lost])
                del self.usb[:lost]
            return sample
        return sample

    def _deliver(self, sample: Sample) -> None:
        self.usb.append(sample)
        self.samples_taken += 1
        capacity = USB_CAPACITY
        if self.governor is not None:
            capacity = min(capacity, self.governor.sample_budget)
        if len(self.usb) > capacity:
            lost = len(self.usb) - capacity
            if self.faults is not None:
                self.faults.samples_lost(self.usb[:lost])
            if self.governor is not None:
                self.governor.note_shed_samples(lost, self.core.cpu_id)
            del self.usb[:lost]
        if self._delayed:
            due = []
            for entry in self._delayed:
                entry[0] -= 1
                if entry[0] <= 0:
                    due.append(entry)
            for entry in due:
                self._delayed.remove(entry)
                # straggler lands out of order; the profiler's ordering
                # check quarantines it if the stream moved past it
                self.usb.append(entry[1])
                self.samples_taken += 1

    def _flush_delayed(self) -> None:
        for entry in self._delayed:
            self.usb.append(entry[1])
            self.samples_taken += 1
        self._delayed.clear()

    def drain(self) -> list[Sample]:
        """Hand all buffered samples to the profiler."""
        out = self.usb
        self.usb = []
        return out
