"""COBRA monitoring threads (paper §3.1).

One monitoring thread is created per working thread.  It owns that
thread's perfmon session: it programs the PMU events and the DEAR
latency filter, catches the sampling signal, and copies each sample
from the Kernel Sampling Buffer into its User Sampling Buffer (USB),
where the optimization thread's profiler reads it.

The four programmed counters are the coherent-traffic set from §4:
``BUS_MEMORY`` (all bus transactions) plus the three snoop-response
events whose sum over ``BUS_MEMORY`` estimates the coherent-access
ratio.
"""

from __future__ import annotations

from ..config import CobraConfig
from ..cpu.core import Core
from ..hpm.events import PmuEvent
from ..hpm.perfmon import PerfmonSession
from ..hpm.sample import Sample

__all__ = ["MonitoringThread", "MONITOR_EVENTS"]

#: Counter programming used by every monitoring thread (paper §4).
MONITOR_EVENTS = [
    PmuEvent.BUS_MEMORY,
    PmuEvent.BUS_RD_HIT,
    PmuEvent.BUS_RD_HITM,
    PmuEvent.BUS_RD_INVAL,
]

#: USB capacity; oldest samples are dropped first (ring buffer).
USB_CAPACITY = 4096


class MonitoringThread:
    """Monitors one working thread via its perfmon session."""

    def __init__(self, core: Core, config: CobraConfig, pid: int = 0) -> None:
        self.core = core
        self.config = config
        self.session = PerfmonSession(core, pid)
        self.usb: list[Sample] = []
        self.samples_taken = 0
        self._running = False

    def start(self) -> None:
        """Program the PMU and arm sampling (the thread 'attaches')."""
        if self._running:
            return
        self.session.configure(
            MONITOR_EVENTS,
            interval=self.config.sampling_interval,
            dear_min_latency=self.config.dear_latency_floor,
            overhead_cycles=self.config.sample_overhead_cycles,
        )
        self.session.set_listener(self._on_signal)
        self._running = True

    def stop(self) -> None:
        if self._running:
            self.session.stop()
            self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def _on_signal(self, sample: Sample) -> None:
        """perfmon signal handler: kernel buffer -> USB."""
        self.usb.append(sample)
        self.samples_taken += 1
        if len(self.usb) > USB_CAPACITY:
            del self.usb[: len(self.usb) - USB_CAPACITY]

    def drain(self) -> list[Sample]:
        """Hand all buffered samples to the profiler."""
        out = self.usb
        self.usb = []
        return out
