"""The COBRA framework facade (paper §3, Figure 4).

Wires together all components: per-thread monitoring threads over the
perfmon driver, the system profiler, the trace cache, and the single
optimization thread — then hooks the optimizer into the machine's
scheduler (COBRA runs as a preloaded shared library in the monitored
process's address space; here it runs beside the simulated cores).

Typical use::

    machine = Machine(itanium2_smp(4))
    prog = build_daxpy(machine, ...)          # any ParallelProgram
    result, report = run_with_cobra(prog, strategy="adaptive")
    print(report.summary())

Two hardening subsystems attach here: the coherence checker
(:mod:`repro.validate`, via ``CobraConfig.validate``/``REPRO_VALIDATE``)
and the fault injector (:mod:`repro.faults`, via ``CobraConfig.faults``
/``REPRO_FAULTS``).  When faults are enabled the report carries a
structured fault/recovery ledger in which every injected fault must be
accounted as detected or tolerated.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..config import (
    CobraConfig,
    FaultConfig,
    GovernorConfig,
    PersistConfig,
    ProfileDBConfig,
)
from ..cpu.machine import Machine
from ..cpu.scheduler import Scheduler
from ..errors import CobraError, InvariantViolation, ProfileStateError
from ..faults.injector import FaultInjector, FaultLedger
from ..isa.binary import BinaryImage
from ..persist.manager import PersistenceManager, PersistStats
from ..persist.profiledb import ProfileDB, image_digest, profile_key
from ..runtime.team import ParallelProgram, RunResult
from ..validate.checker import VALIDATE_MODES, CoherenceChecker
from .monitor import MonitoringThread
from .optimizer import OptEvent, OptimizationThread
from .policy import STRATEGIES
from .tracecache import Deployment, TraceCache

__all__ = ["Cobra", "CobraReport", "run_with_cobra"]


@dataclass
class CobraReport:
    """What COBRA did during a run."""

    strategy: str
    samples: int
    deployments: list[Deployment]
    events: list[OptEvent]
    #: invariant checks performed / violations recorded when
    #: ``CobraConfig.validate`` enabled the coherence checker
    validate_checks: int = 0
    violations: list[InvariantViolation] = field(default_factory=list)
    #: operating mode at run end ("normal" or "monitor-only")
    mode: str = "normal"
    #: sanitizer quarantine counters (reason -> rejected sample count)
    quarantined: dict[str, int] = field(default_factory=dict)
    #: transactional recoveries and idempotent no-ops, in order
    recovery_log: list[str] = field(default_factory=list)
    #: fault/recovery ledger when ``CobraConfig.faults`` armed injection
    faults: FaultLedger | None = None
    #: trace-cache bundles reclaimed by transactional aborts
    reclaimed_bundles: int = 0
    #: journal/snapshot counters when ``CobraConfig.persist`` attached
    #: a checkpoint store
    persist: PersistStats | None = None
    #: this run warm-started from a recovered checkpoint
    resumed: bool = False
    #: interpreter fast-path observability (trace compiles, compiled
    #: coverage %, deopt reasons, decode-cache hit rate), aggregated
    #: over the machine's cores at report time
    fastpath: dict | None = None
    #: per-loop resident trace versions, the active one, and flip
    #: counts (multi-version dispatch); empty = nothing ever deployed
    versions: list[dict] = field(default_factory=list)
    #: cross-run profile database block (key, hit/miss source, seeded
    #: loop count, ramp) when ``CobraConfig.profile_db`` attached one
    profile_db: dict | None = None
    #: retired instructions when the profile first became warm
    #: (0 = seeded warm start, ``None`` = never reached)
    ramp_retired: int | None = None
    #: fleet-mode block (instance id, fleet size, quorum, daemon echo,
    #: seeded decisions, queued batches, transport fault counts) when
    #: ``CobraConfig.fleet`` attached this run to a fleet
    fleet: dict | None = None
    #: resource-governor block (rung, budgets, shed/evicted/refused
    #: counts, ladder transitions) when ``CobraConfig.governor``
    #: attached a governor (:mod:`repro.governor`)
    governor: dict | None = None

    def summary(self) -> str:
        lines = [
            f"COBRA strategy={self.strategy}: {self.samples} samples, "
            f"{len(self.deployments)} active deployment(s)"
        ]
        for d in self.deployments:
            lines.append(
                f"  loop {d.loop.head:#x} -> trace {d.entry:#x} "
                f"[{d.optimization}] {d.n_rewrites} rewrite(s)"
            )
        n_rollbacks = sum(1 for e in self.events if e.kind == "rollback")
        if n_rollbacks:
            lines.append(f"  {n_rollbacks} rollback(s)")
        for v in self.versions:
            resident = ", ".join(v["versions"]) if v["versions"] else "-"
            lines.append(
                f"  loop {v['head']:#x} versions [{resident}] "
                f"active={v['active']} {v['flips']} flip(s)"
            )
        if self.validate_checks:
            lines.append(
                f"  validated {self.validate_checks} accesses, "
                f"{len(self.violations)} invariant violation(s)"
            )
        if self.mode != "normal":
            lines.append(f"  degraded mode: {self.mode}")
        if self.quarantined:
            total = sum(self.quarantined.values())
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.quarantined.items())
            )
            lines.append(f"  quarantined {total} sample(s): {reasons}")
        if self.recovery_log:
            lines.append(f"  {len(self.recovery_log)} transactional recovery event(s)")
        if self.reclaimed_bundles:
            lines.append(
                f"  reclaimed {self.reclaimed_bundles} trace-cache bundle(s)"
            )
        if self.persist is not None:
            p = self.persist
            if self.resumed:
                lines.append(
                    "  warm restart: resumed from checkpoint "
                    f"({p.records_replayed} record(s) replayed)"
                )
            lines.append(
                f"  persistence: {p.records_written} record(s) written, "
                f"{p.snapshots_written} snapshot(s), "
                f"{p.records_discarded + p.snapshots_discarded} discarded-corrupt"
            )
        if self.profile_db is not None:
            pd = self.profile_db
            ramp = "n/a" if self.ramp_retired is None else f"{self.ramp_retired} retired"
            lines.append(
                f"  profile-db: {pd['source']}, {pd['entries']} entries, "
                f"seeded {pd['seeded_loops']} loop(s), warm at {ramp}"
            )
        if self.fleet is not None:
            fl = self.fleet
            lines.append(
                f"  fleet[{fl['instance']}]: {fl['instances']} instance(s), "
                f"quorum={fl['quorum']}, {fl['published']} published decision(s), "
                f"seeded {fl['seeded']} decision(s), {fl['batches']} batch(es) "
                f"queued, {fl['quarantined']} quarantined stream(s)"
            )
            if fl.get("degraded"):
                a, b = fl.get("degraded_interval") or (0, 0)
                lines.append(
                    f"  fleet[{fl['instance']}]: degraded local-only "
                    f"[{a}, {b}] retired (daemon unreachable; reconciled at rejoin)"
                )
            if fl.get("faults"):
                counts = ", ".join(
                    f"{kind}={count}" for kind, count in sorted(fl["faults"].items())
                )
                lines.append(
                    f"  fleet[{fl['instance']}]: transport faults: {counts}"
                )
        if self.governor is not None:
            g = self.governor
            lines.append(
                f"  governor[{g['rung']}]: {g['deploys_refused']} deploy(s) "
                f"refused, {g['evictions']} eviction(s), "
                f"{g['shed_samples']} shed sample(s), "
                f"{len(g['transitions'])} transition(s)"
            )
        if self.faults is not None:
            lines.append(f"  {self.faults.summary()}")
        if self.fastpath is not None and self.fastpath.get("compiles"):
            fp = self.fastpath
            deopts = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(fp.get("deopts", {}).items())
                if count
            )
            lines.append(
                f"  trace fastpath: {fp['compiles']} compile(s), "
                f"{fp.get('coverage_pct', 0.0)}% bundles compiled, "
                f"decode-cache {fp.get('decode_cache_hit_pct', 0.0)}% hit"
                + (f", deopts: {deopts}" if deopts else "")
            )
            osr_entries = fp.get("osr_entries", 0)
            tree_links = fp.get("tree_links", 0)
            resume_hits = fp.get("resume_hits", 0)
            if osr_entries or tree_links or resume_hits:
                lines.append(
                    f"  osr: {osr_entries} mid-trace entr(y/ies), "
                    f"{tree_links} tree link(s), "
                    f"{fp.get('promotions', 0)} promotion(s), "
                    f"{resume_hits} budget resume(s)"
                )
        return "\n".join(lines)


def _fault_injector(config: CobraConfig) -> FaultInjector | None:
    """Build the injector from config, with the env-var override."""
    fault_config = config.faults
    env = os.environ.get("REPRO_FAULTS", "").strip()
    if env:
        try:
            seed = int(env)
        except ValueError:
            seed = -1  # non-integer: rejected below with the same message
        if seed < 0:
            # FaultConfig would reject a negative seed anyway; catching
            # it here keeps one diagnostic for both bad shapes instead
            # of leaking a ValueError traceback for "-1"
            raise CobraError(
                f"REPRO_FAULTS must be a non-negative integer seed, got {env!r}"
            )
        fault_config = FaultConfig(seed=seed)
    return FaultInjector(fault_config) if fault_config is not None else None


def _persistence(
    config: CobraConfig, faults: FaultInjector | None
) -> PersistenceManager | None:
    """Build the checkpoint manager from config, with the env override."""
    persist_config = config.persist
    env = os.environ.get("REPRO_CHECKPOINT", "").strip()
    if env:
        if os.path.exists(env) and not os.path.isdir(env):
            raise CobraError(
                f"REPRO_CHECKPOINT must name a checkpoint directory, got {env!r}"
            )
        persist_config = PersistConfig(directory=env)
    if persist_config is None:
        return None
    return PersistenceManager(persist_config, faults)


def _governor_config(config: CobraConfig) -> GovernorConfig | None:
    """The governor plan from config, with the env-var override."""
    gov_config = config.governor
    env = os.environ.get("REPRO_GOVERNOR", "").strip()
    if env:
        if env not in ("0", "1"):
            raise CobraError(f"REPRO_GOVERNOR must be '0' or '1', got {env!r}")
        gov_config = GovernorConfig() if env == "1" else None
    return gov_config


def _profile_db(config: CobraConfig) -> ProfileDB | None:
    """Build the cross-run profile DB from config, with the env override."""
    db_config = config.profile_db
    env = os.environ.get("REPRO_PROFILE_DB", "").strip()
    if env:
        if os.path.isdir(env):
            raise CobraError(
                f"REPRO_PROFILE_DB must name a profile-database file, "
                f"got directory {env!r}"
            )
        db_config = ProfileDBConfig(path=env)
    if db_config is None:
        return None
    return ProfileDB.from_config(db_config)


class Cobra:
    """COBRA attached to one machine + program."""

    def __init__(
        self,
        machine: Machine,
        program: BinaryImage,
        strategy: str = "adaptive",
        config: CobraConfig | None = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise CobraError(f"unknown strategy {strategy!r} (use one of {STRATEGIES})")
        self.machine = machine
        self.program = program
        self.config = config or machine.config.cobra
        self.strategy = strategy
        self.faults = _fault_injector(self.config)
        self.trace_cache = TraceCache(self.config.trace_cache_bundles, faults=self.faults)
        machine.load_image(self.trace_cache.image)
        self.monitors = [
            MonitoringThread(core, self.config, faults=self.faults)
            for core in machine.cores
        ]
        self.optimizer = OptimizationThread(
            machine, program, self.monitors, self.trace_cache, self.config,
            strategy, faults=self.faults,
        )
        # resource governor (repro.governor): wired like the persistence
        # manager — every governed structure holds a reference, None
        # anywhere means ungoverned, bit-identical behaviour
        gov_config = _governor_config(self.config)
        self.governor = None
        if gov_config is not None:
            from ..governor.core import ResourceGovernor

            self.governor = ResourceGovernor(
                gov_config, self.config.trace_cache_bundles, faults=self.faults
            )
            self.trace_cache.governor = self.governor
            for monitor in self.monitors:
                monitor.governor = self.governor
            self.optimizer.governor = self.governor
        # invariant checking (repro.validate): the config knob, overridable
        # per-process so CI can run any example/benchmark under strict mode
        mode = os.environ.get("REPRO_VALIDATE", "").strip() or self.config.validate
        if mode not in VALIDATE_MODES:
            raise CobraError(
                f"unknown validate mode {mode!r} (use one of {VALIDATE_MODES})"
            )
        self.checker = CoherenceChecker(machine, mode) if mode != "off" else None
        if self.checker is not None:
            # recorded violations feed the optimizer watchdog's
            # escalation (strict mode raises before it matters)
            checker = self.checker
            self.optimizer.watch_violations(lambda: len(checker.violations))
        # crash-consistent checkpointing (repro.persist): recover any
        # existing state, then warm-start — previously proven
        # deployments go live before the first instruction runs
        self.persist = _persistence(self.config, self.faults)
        self.resumed = False
        if self.persist is not None:
            recovered = self.persist.open()
            self.trace_cache.persist = self.persist
            self.optimizer.persist = self.persist
            if recovered.state is not None:
                self.resumed = True
                profiler_state = recovered.state.get("profiler")
                if profiler_state:
                    self.optimizer.profiler.restore_state(profiler_state)
                per_cpu = recovered.state.get("samples_per_cpu", {})
                for monitor in self.monitors:
                    monitor.prior_samples = int(
                        per_cpu.get(str(monitor.core.cpu_id), 0)
                    )
                self.optimizer.warm_start(recovered.state)
        # cross-run profile database (repro.persist.profiledb): a hit
        # seeds the profiler + proven deployments before the first
        # instruction; absence/corruption just means a cold ramp
        self.profile_db = _profile_db(self.config)
        self._profile_key: str | None = None
        self._profile_source = "off"
        self._profile_seeded = 0
        if self.profile_db is not None:
            self.profile_db.load()
            self._profile_key = profile_key(program, machine.config, strategy)
            if self.profile_db.stats.future_format:
                self._profile_source = "future-format"
            elif self.profile_db.stats.corrupt:
                self._profile_source = "corrupt"
            else:
                self._profile_source = "miss"
            entry = self.profile_db.entry(self._profile_key)
            if entry is not None:
                if self.resumed:
                    # the checkpoint warm start already ran and is
                    # strictly fresher than any cross-run aggregate
                    self._profile_source = "checkpoint"
                elif not self.profile_db.seed:
                    self._profile_source = "seed-off"
                else:
                    try:
                        self._profile_seeded = self.optimizer.seed_from_profile(entry)
                        self._profile_source = "hit"
                    except ProfileStateError:
                        # validate-then-commit left the optimizer cold;
                        # drop the damaged entry so this run's record
                        # replaces it
                        self.profile_db.discard(self._profile_key)
                        self._profile_source = "entry-invalid"
        # fleet mode (repro.fleet): the outbox passively observes every
        # optimizer wake; a daemon-pushed quorum-gated entry warm-starts
        # through the same seed_from_profile path as a profile-DB hit
        self.fleet_outbox = None
        self._fleet_seeded = 0
        if self.config.fleet is not None:
            from ..fleet.outbox import FleetOutbox

            fl = self.config.fleet
            self.fleet_outbox = FleetOutbox(
                fl.instance,
                profile_key(program, machine.config, strategy),
                image_digest(program),
                flush_interval=fl.flush_interval,
            )
            self.optimizer.outbox = self.fleet_outbox
            if fl.entry is not None and not fl.degraded and not self.resumed:
                try:
                    self._fleet_seeded = self.optimizer.seed_from_profile(
                        fl.entry, source="fleet"
                    )
                except ProfileStateError:
                    # the daemon validates entries before pushing; a
                    # damaged one still only costs the cold ramp
                    self._fleet_seeded = 0
        self._installed = False

    def install(self, scheduler: Scheduler) -> None:
        """Start monitoring and hook the optimization thread in."""
        if self._installed:
            raise CobraError("COBRA already installed on a scheduler")
        for monitor in self.monitors:
            monitor.start()
        if self.checker is not None:
            self.checker.attach()
        scheduler.add_tick_hook(self.optimizer.tick)
        self._installed = True

    def stop(self) -> None:
        for monitor in self.monitors:
            monitor.stop()
        if self.faults is not None:
            # final drain through the sanitizer so every delivered
            # sample — including stragglers flushed by stop() — is
            # accounted before the ledger is read
            self.optimizer.profiler.ingest(self.monitors)
        if self.checker is not None:
            self.checker.detach()
        if self.persist is not None:
            # final window + snapshot make a *completed* run's store the
            # warm-start seed for the next one (no-ops after a crash:
            # the dead disk swallows the writes)
            self.persist.close(self.optimizer.export_state())
        if self.profile_db is not None and self.profile_db.record:
            # a simulated crash killed the process: it cannot have
            # written its profile out either
            crashed = self.persist is not None and getattr(
                self.persist.disk, "dead", False
            )
            if not crashed:
                self.profile_db.record_run(
                    self._profile_key, self.optimizer.export_profile_entry()
                )
                if self.governor is not None:
                    # cold-key compaction at snapshot time: the entry
                    # budget is enforced on what actually hits disk
                    self.governor.note_compacted(
                        self.profile_db.compact(
                            self.governor.config.profile_db_entries
                        )
                    )
                self.profile_db.save()

    def report(self) -> CobraReport:
        from ..bench import fastpath_stats

        profiler = self.optimizer.profiler
        ledger = self.faults.ledger() if self.faults is not None else None
        if (
            ledger is None
            and self.governor is not None
            and self.governor.private_ledger
            and self.governor.faults.events
        ):
            # no chaos injector was armed, but the governor recorded
            # overload events and shed/evicted accounting in its private
            # ledger — surface it so the full-accounting contract holds
            ledger = self.governor.faults.ledger()
        return CobraReport(
            fastpath=fastpath_stats(self.machine),
            strategy=self.strategy,
            samples=sum(m.prior_samples + m.samples_taken for m in self.monitors),
            deployments=self.optimizer.deployments(),
            events=list(self.optimizer.events),
            validate_checks=self.checker.checks if self.checker else 0,
            violations=list(self.checker.violations) if self.checker else [],
            mode=self.optimizer.mode,
            quarantined=dict(profiler.quarantined),
            recovery_log=list(self.trace_cache.recovery_log),
            faults=ledger,
            reclaimed_bundles=self.trace_cache.reclaimed_bundles,
            persist=self.persist.stats if self.persist is not None else None,
            resumed=self.resumed,
            versions=self.trace_cache.version_report(),
            profile_db=self._profile_db_report(),
            ramp_retired=self.optimizer.warm_at_retired,
            fleet=self._fleet_report(),
            governor=self.governor.report() if self.governor is not None else None,
        )

    def _fleet_report(self) -> dict | None:
        if self.config.fleet is None:
            return None
        fl = self.config.fleet
        return {
            "instance": fl.instance,
            "instances": fl.instances,
            "quorum": fl.quorum,
            "published": fl.published,
            "seeded": self._fleet_seeded,
            "batches": len(self.fleet_outbox.windows),
            "quarantined": fl.quarantined,
            "degraded": fl.degraded,
        }

    def _profile_db_report(self) -> dict | None:
        if self.profile_db is None:
            return None
        stats = self.profile_db.stats
        return {
            "key": self._profile_key,
            "source": self._profile_source,
            "entries": stats.entries,
            "seeded_loops": self._profile_seeded,
            "runs_recorded": stats.runs_recorded,
            "saved": stats.saved,
        }


def run_with_cobra(
    program: ParallelProgram,
    strategy: str = "adaptive",
    config: CobraConfig | None = None,
    max_bundles: int | None = None,
) -> tuple[RunResult, CobraReport]:
    """Run a built :class:`ParallelProgram` under COBRA."""
    machine = program.machine
    cobra = Cobra(machine, program.image, strategy, config)
    scheduler = Scheduler([th.core for th in program.threads])
    cobra.install(scheduler)
    try:
        result = program.run(max_bundles=max_bundles, scheduler=scheduler)
    finally:
        cobra.stop()
    return result, cobra.report()
