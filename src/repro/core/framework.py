"""The COBRA framework facade (paper §3, Figure 4).

Wires together all components: per-thread monitoring threads over the
perfmon driver, the system profiler, the trace cache, and the single
optimization thread — then hooks the optimizer into the machine's
scheduler (COBRA runs as a preloaded shared library in the monitored
process's address space; here it runs beside the simulated cores).

Typical use::

    machine = Machine(itanium2_smp(4))
    prog = build_daxpy(machine, ...)          # any ParallelProgram
    result, report = run_with_cobra(prog, strategy="adaptive")
    print(report.summary())
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..config import CobraConfig
from ..cpu.machine import Machine
from ..cpu.scheduler import Scheduler
from ..errors import CobraError, InvariantViolation
from ..isa.binary import BinaryImage
from ..runtime.team import ParallelProgram, RunResult
from ..validate.checker import VALIDATE_MODES, CoherenceChecker
from .monitor import MonitoringThread
from .optimizer import OptEvent, OptimizationThread
from .policy import STRATEGIES
from .tracecache import Deployment, TraceCache

__all__ = ["Cobra", "CobraReport", "run_with_cobra"]


@dataclass
class CobraReport:
    """What COBRA did during a run."""

    strategy: str
    samples: int
    deployments: list[Deployment]
    events: list[OptEvent]
    #: invariant checks performed / violations recorded when
    #: ``CobraConfig.validate`` enabled the coherence checker
    validate_checks: int = 0
    violations: list[InvariantViolation] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"COBRA strategy={self.strategy}: {self.samples} samples, "
            f"{len(self.deployments)} active deployment(s)"
        ]
        for d in self.deployments:
            lines.append(
                f"  loop {d.loop.head:#x} -> trace {d.entry:#x} "
                f"[{d.optimization}] {d.n_rewrites} rewrite(s)"
            )
        n_rollbacks = sum(1 for e in self.events if e.kind == "rollback")
        if n_rollbacks:
            lines.append(f"  {n_rollbacks} rollback(s)")
        if self.validate_checks:
            lines.append(
                f"  validated {self.validate_checks} accesses, "
                f"{len(self.violations)} invariant violation(s)"
            )
        return "\n".join(lines)


class Cobra:
    """COBRA attached to one machine + program."""

    def __init__(
        self,
        machine: Machine,
        program: BinaryImage,
        strategy: str = "adaptive",
        config: CobraConfig | None = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise CobraError(f"unknown strategy {strategy!r} (use one of {STRATEGIES})")
        self.machine = machine
        self.program = program
        self.config = config or machine.config.cobra
        self.strategy = strategy
        self.trace_cache = TraceCache(self.config.trace_cache_bundles)
        machine.load_image(self.trace_cache.image)
        self.monitors = [
            MonitoringThread(core, self.config) for core in machine.cores
        ]
        self.optimizer = OptimizationThread(
            machine, program, self.monitors, self.trace_cache, self.config, strategy
        )
        # invariant checking (repro.validate): the config knob, overridable
        # per-process so CI can run any example/benchmark under strict mode
        mode = os.environ.get("REPRO_VALIDATE", "").strip() or self.config.validate
        if mode not in VALIDATE_MODES:
            raise CobraError(
                f"unknown validate mode {mode!r} (use one of {VALIDATE_MODES})"
            )
        self.checker = CoherenceChecker(machine, mode) if mode != "off" else None
        self._installed = False

    def install(self, scheduler: Scheduler) -> None:
        """Start monitoring and hook the optimization thread in."""
        if self._installed:
            raise CobraError("COBRA already installed on a scheduler")
        for monitor in self.monitors:
            monitor.start()
        if self.checker is not None:
            self.checker.attach()
        scheduler.add_tick_hook(self.optimizer.tick)
        self._installed = True

    def stop(self) -> None:
        for monitor in self.monitors:
            monitor.stop()
        if self.checker is not None:
            self.checker.detach()

    def report(self) -> CobraReport:
        return CobraReport(
            strategy=self.strategy,
            samples=sum(m.samples_taken for m in self.monitors),
            deployments=self.optimizer.deployments(),
            events=list(self.optimizer.events),
            validate_checks=self.checker.checks if self.checker else 0,
            violations=list(self.checker.violations) if self.checker else [],
        )


def run_with_cobra(
    program: ParallelProgram,
    strategy: str = "adaptive",
    config: CobraConfig | None = None,
    max_bundles: int | None = None,
) -> tuple[RunResult, CobraReport]:
    """Run a built :class:`ParallelProgram` under COBRA."""
    machine = program.machine
    cobra = Cobra(machine, program.image, strategy, config)
    scheduler = Scheduler([th.core for th in program.threads])
    cobra.install(scheduler)
    try:
        result = program.run(max_bundles=max_bundles, scheduler=scheduler)
    finally:
        cobra.stop()
    return result, cobra.report()
