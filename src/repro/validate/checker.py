"""Runtime MESI/directory invariant checking.

The :class:`CoherenceChecker` subscribes to the memory hierarchies of
one :class:`~repro.cpu.machine.Machine` (via
:meth:`~repro.cpu.machine.Machine.attach_validator`) and re-checks, on
every completed access, the protocol invariants documented in
:mod:`repro.memory.coherence`:

* **exclusive-owner** — at most one cache holds a line in M or E;
* **owner-alone** — if any cache holds M or E, no other cache holds the
  line at all;
* **requester-state** — the requesting CPU ends every access in a state
  the access kind permits (a store must leave the line in M, an
  exclusive prefetch in E or M, ...);
* **protocol-model** — the observed global state of the accessed line
  matches a shadow directory the checker advances by the documented
  transition rules (for the directory fabric this *is* the "directory
  state mirrors cache states" check: the shadow plays the directory,
  the cache state maps are ground truth);
* **writeback-on-dirty-evict** — evicting an M line (or an
  exclusively-prefetched E line) performs a bus writeback;
* **structure** — L2 ⊆ L3 inclusion, the state map mirrors the L3 tags,
  and dirty/excl-alloc bookkeeping stays cache-resident (checked every
  ``structure_interval`` accesses and on detach; the per-access checks
  above stay O(n_cpus)).

Two modes: ``"strict"`` raises a structured
:class:`~repro.errors.InvariantViolation` at the first broken
invariant; ``"record"`` accumulates violations in
:attr:`CoherenceChecker.violations` for reporting (the shadow model is
resynchronized after each recorded violation so one defect does not
cascade into thousands of reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import InvariantViolation, ValidationError
from ..memory.coherence import EXCLUSIVE, MODIFIED, SHARED, state_name
from ..memory.hierarchy import (
    ATOMIC,
    LOAD,
    LOAD_BIAS,
    PREFETCH,
    PREFETCH_EXCL,
    STORE,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..cpu.machine import Machine
    from ..memory.hierarchy import CpuCacheSystem

__all__ = ["AccessEvent", "EvictEvent", "CoherenceChecker", "VALIDATE_MODES"]

#: Legal values of ``CobraConfig.validate`` / the checker ``mode``.
VALIDATE_MODES = ("off", "record", "strict")

_KIND_NAMES = {
    LOAD: "load",
    STORE: "store",
    PREFETCH: "lfetch",
    PREFETCH_EXCL: "lfetch.excl",
    LOAD_BIAS: "ld8.bias",
    ATOMIC: "fetchadd8",
}

#: States the requester may legally end each access kind in.
_POST_STATES = {
    LOAD: (SHARED, EXCLUSIVE, MODIFIED),
    PREFETCH: (SHARED, EXCLUSIVE, MODIFIED),
    STORE: (MODIFIED,),
    ATOMIC: (MODIFIED,),
    LOAD_BIAS: (EXCLUSIVE, MODIFIED),
    PREFETCH_EXCL: (EXCLUSIVE, MODIFIED),
}


@dataclass(frozen=True)
class AccessEvent:
    """One completed data access, as seen by the checker."""

    cpu: int
    line: int
    kind: int

    def __str__(self) -> str:
        return f"cpu{self.cpu} {_KIND_NAMES.get(self.kind, self.kind)} line {self.line:#x}"


@dataclass(frozen=True)
class EvictEvent:
    """One L3 eviction, as seen by the checker."""

    cpu: int
    line: int
    state: int | None
    wrote_back: bool

    def __str__(self) -> str:
        return (
            f"cpu{self.cpu} evict line {self.line:#x} "
            f"state {state_name(self.state)} wb={self.wrote_back}"
        )


class CoherenceChecker:
    """Checks coherence invariants on every memory-hierarchy event."""

    def __init__(
        self,
        machine: "Machine",
        mode: str = "strict",
        structure_interval: int = 4096,
    ) -> None:
        if mode not in ("record", "strict"):
            raise ValidationError(
                f"checker mode must be 'record' or 'strict', got {mode!r}"
            )
        self.machine = machine
        self.mode = mode
        self.structure_interval = structure_interval
        self.violations: list[InvariantViolation] = []
        self.checks = 0
        #: shadow directory: line -> {cpu: expected MESI state}
        self.shadow: dict[int, dict[int, int]] = {}
        self._attached = False

    # -- lifecycle -----------------------------------------------------------

    def attach(self) -> "CoherenceChecker":
        """Subscribe to every cache; seed the shadow from current state."""
        if self._attached:
            return self
        self.machine.attach_validator(self)
        self.shadow.clear()
        for cache in self.machine.caches:
            for line, st in cache.state.items():
                self.shadow.setdefault(line, {})[cache.cpu_id] = st
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        for cache in self.machine.caches:
            self.check_structure(cache)
        self.machine.detach_validator()
        self._attached = False

    def __enter__(self) -> "CoherenceChecker":
        return self.attach()

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    # -- violation plumbing ----------------------------------------------------

    def _line_states(self, line: int) -> dict[int, str]:
        return {
            cache.cpu_id: state_name(cache.state[line])
            for cache in self.machine.caches
            if line in cache.state
        }

    def _violate(
        self, invariant: str, message: str, line: int | None, event: object
    ) -> None:
        violation = InvariantViolation(
            message,
            invariant=invariant,
            line=line,
            states=self._line_states(line) if line is not None else {},
            event=event,
        )
        if self.mode == "strict":
            raise violation
        self.violations.append(violation)

    # -- per-event checks ----------------------------------------------------------

    def check_line(self, line: int, event: object = None) -> None:
        """Assert the static MESI invariants for one line, as-is."""
        holders = {
            cache.cpu_id: cache.state[line]
            for cache in self.machine.caches
            if line in cache.state
        }
        owners = [cpu for cpu, st in holders.items() if st in (EXCLUSIVE, MODIFIED)]
        if len(owners) > 1:
            self._violate(
                "exclusive-owner",
                f"{len(owners)} caches own the line in M/E",
                line,
                event,
            )
        elif owners and len(holders) > 1:
            self._violate(
                "owner-alone",
                f"cpu{owners[0]} owns the line in "
                f"{state_name(holders[owners[0]])} alongside other holders",
                line,
                event,
            )

    def _expected(self, requester: int, prior: dict[int, int], kind: int) -> dict[int, int]:
        """Advance the shadow directory for one access by the documented
        transition rules (repro.memory.coherence, hierarchy docstring)."""
        held = prior.get(requester)
        if kind in (STORE, ATOMIC):
            return {requester: MODIFIED}
        if kind == LOAD_BIAS:
            if held in (EXCLUSIVE, MODIFIED):
                return dict(prior)  # silent hit, no transition
            return {requester: MODIFIED}
        if kind == PREFETCH_EXCL:
            if held in (EXCLUSIVE, MODIFIED):
                return dict(prior)
            return {requester: EXCLUSIVE}
        # LOAD / PREFETCH
        if held is not None:
            return dict(prior)  # hit: no coherence action
        expected = {cpu: SHARED for cpu in prior}  # remote M/E demoted to S
        if prior:
            expected[requester] = SHARED
        else:
            # plain lfetch installs "the usual shared state" even when the
            # bus would grant E (hierarchy policy); a demand load takes E
            expected[requester] = EXCLUSIVE if kind == LOAD else SHARED
        return expected

    def after_access(self, cache: "CpuCacheSystem", line: int, kind: int) -> None:
        """Validate the global state of ``line`` after one access."""
        self.checks += 1
        event = AccessEvent(cache.cpu_id, line, kind)

        actual = {
            c.cpu_id: c.state[line]
            for c in self.machine.caches
            if line in c.state
        }
        self.check_line(line, event)

        held = actual.get(cache.cpu_id)
        allowed = _POST_STATES.get(kind, ())
        if held not in allowed:
            self._violate(
                "requester-state",
                f"requester holds {state_name(held)} after "
                f"{_KIND_NAMES.get(kind, kind)} "
                f"(allowed: {'/'.join(state_name(s) for s in allowed)})",
                line,
                event,
            )

        expected = self._expected(cache.cpu_id, self.shadow.get(line, {}), kind)
        if actual != expected:
            want = ",".join(
                f"cpu{c}={state_name(s)}" for c, s in sorted(expected.items())
            ) or "no holder"
            self._violate(
                "protocol-model",
                f"cache states diverge from the shadow directory "
                f"(expected {{{want}}})",
                line,
                event,
            )
        # resync so a recorded divergence does not cascade
        if actual:
            self.shadow[line] = actual
        else:
            self.shadow.pop(line, None)

        if self.structure_interval and self.checks % self.structure_interval == 0:
            self.check_structure(cache)

    def on_evict(
        self,
        cache: "CpuCacheSystem",
        line: int,
        state: int | None,
        wrote_back: bool,
    ) -> None:
        """Validate one L3 eviction performed during a fill."""
        event = EvictEvent(cache.cpu_id, line, state, wrote_back)
        if state is None:
            self._violate(
                "structure",
                "evicted an L3-resident line with no coherence state",
                line,
                event,
            )
        if state == MODIFIED and not wrote_back:
            self._violate(
                "writeback-on-dirty-evict",
                "dirty (M) line evicted without a bus writeback",
                line,
                event,
            )
        holders = self.shadow.get(line)
        if holders is not None:
            holders.pop(cache.cpu_id, None)
            if not holders:
                del self.shadow[line]

    # -- structural sweep --------------------------------------------------------

    def check_structure(self, cache: "CpuCacheSystem") -> None:
        """L2 ⊆ L3 inclusion and bookkeeping-set residency for one CPU."""
        l2_lines = cache.l2.lines()
        l3_lines = cache.l3.lines()
        problems = []
        if not l2_lines <= l3_lines:
            problems.append("L2 holds lines absent from L3 (inclusion)")
        if set(cache.state) != l3_lines:
            problems.append("state map does not mirror the L3 tags")
        if not cache.l2_dirty <= l2_lines:
            problems.append("dirty set holds non-L2-resident lines")
        if not cache.excl_alloc <= l3_lines:
            problems.append("excl-alloc set holds uncached lines")
        for problem in problems:
            self._violate("structure", f"cpu{cache.cpu_id}: {problem}", None, None)

    # -- reporting ---------------------------------------------------------------

    def summary(self) -> str:
        state = "strict" if self.mode == "strict" else "record"
        text = f"coherence checker ({state}): {self.checks} accesses checked"
        if self.violations:
            text += f", {len(self.violations)} violation(s)"
            for v in self.violations[:8]:
                text += f"\n  {v}"
            if len(self.violations) > 8:
                text += f"\n  ... and {len(self.violations) - 8} more"
        else:
            text += ", 0 violations"
        return text
