"""Differential execution harness.

Runs the *same* workload under every COBRA optimization strategy and on
both machine models, then checks that the committed architectural
results — the raw bytes of every program array — are bit-identical to
the unoptimized baseline.  This is the correctness gate for runtime
binary rewriting: lfetch→nop, lfetch→lfetch.excl, and trace deployment
may shift coherence traffic and timing, but must never change what the
program computes (cf. multi-version rewriters and BOLT, which treat
output equivalence as the ship criterion).

Each run executes on a **fresh machine** (programs are bound to their
machine's memory), with a :class:`~repro.validate.checker.CoherenceChecker`
attached, so every differential sweep is also a full invariant-checked
run of both coherence backends.  Metric sanity is checked per run:
counters must be internally consistent (coherent events cannot exceed
bus transactions, an L3 miss implies an L2 miss, work was actually
retired).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..config import itanium2_smp, sgi_altix
from ..cpu.machine import Machine
from ..errors import InvariantViolation, ValidationError
from ..runtime.team import ParallelProgram, RunResult
from .checker import CoherenceChecker

__all__ = [
    "WorkloadSpec",
    "RunRecord",
    "DifferentialReport",
    "DifferentialHarness",
    "daxpy_spec",
    "npb_spec",
    "default_machines",
]

#: The full strategy matrix: unoptimized baseline + every COBRA mode.
ALL_STRATEGIES = ("none", "noprefetch", "excl", "adaptive")


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload the harness can rebuild on any machine."""

    name: str
    build: Callable[[Machine], ParallelProgram]
    verify: Callable[[ParallelProgram], bool] | None = None


@dataclass(frozen=True)
class RunRecord:
    """Observables of one (machine, strategy) cell of the matrix."""

    machine: str
    strategy: str
    cycles: int
    retired: int
    digest: str
    arrays: Mapping[str, bytes]
    verified: bool | None
    checks: int

    @property
    def label(self) -> str:
        return f"{self.machine}/{self.strategy}"


@dataclass
class DifferentialReport:
    """Outcome of one differential sweep."""

    workload: str
    records: list[RunRecord] = field(default_factory=list)
    mismatches: list[str] = field(default_factory=list)
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.violations

    def summary(self) -> str:
        checks = sum(r.checks for r in self.records)
        lines = [
            f"differential[{self.workload}]: {len(self.records)} run(s), "
            f"{checks} coherence checks, "
            f"{'OK' if self.ok else 'FAIL'}"
        ]
        for rec in self.records:
            lines.append(
                f"  {rec.label:24s} cycles={rec.cycles:<10d} "
                f"digest={rec.digest[:12]} verified={rec.verified}"
            )
        for mismatch in self.mismatches:
            lines.append(f"  MISMATCH: {mismatch}")
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


def _snapshot_arrays(prog: ParallelProgram) -> dict[str, bytes]:
    """Raw bytes of every program array (bit-exact, dtype-agnostic)."""
    mem = prog.machine.mem
    return {
        name: mem.view_i64(alloc).tobytes()
        for name, alloc in sorted(prog.arrays.items())
    }


def _digest(arrays: Mapping[str, bytes]) -> str:
    h = hashlib.sha256()
    for name in sorted(arrays):
        h.update(name.encode())
        h.update(arrays[name])
    return h.hexdigest()


class DifferentialHarness:
    """Runs one workload across the strategy × machine matrix."""

    def __init__(
        self,
        workload: WorkloadSpec,
        machines: Mapping[str, Callable[[], Machine]] | None = None,
        strategies: tuple[str, ...] = ALL_STRATEGIES,
        mode: str = "strict",
        max_bundles: int | None = None,
    ) -> None:
        if "none" not in strategies:
            raise ValidationError("strategy matrix needs the 'none' baseline")
        if mode not in ("record", "strict"):
            raise ValidationError(
                f"harness mode must be 'record' or 'strict', got {mode!r}"
            )
        self.workload = workload
        self.machines = dict(machines) if machines is not None else default_machines()
        self.strategies = strategies
        self.mode = mode
        self.max_bundles = max_bundles

    def _execute(
        self, mname: str, factory: Callable[[], Machine], strategy: str
    ) -> tuple[RunRecord, RunResult, list[InvariantViolation]]:
        # imported here: core.framework imports repro.validate at module
        # scope, so the reverse import must be deferred
        from ..core.framework import run_with_cobra

        machine = factory()
        prog = self.workload.build(machine)
        checker = CoherenceChecker(machine, mode=self.mode)
        with checker:
            if strategy == "none":
                result: RunResult = prog.run(max_bundles=self.max_bundles)
            else:
                result, _report = run_with_cobra(
                    prog, strategy, max_bundles=self.max_bundles
                )
        arrays = _snapshot_arrays(prog)
        verified = self.workload.verify(prog) if self.workload.verify else None
        record = RunRecord(
            machine=mname,
            strategy=strategy,
            cycles=result.cycles,
            retired=result.retired,
            digest=_digest(arrays),
            arrays=arrays,
            verified=verified,
            checks=checker.checks,
        )
        return record, result, checker.violations

    def _sanity(self, record: RunRecord, result: RunResult, out: list[str]) -> None:
        ev = result.events
        label = record.label
        if record.cycles <= 0 or record.retired <= 0:
            out.append(f"{label}: no work executed (cycles={record.cycles})")
        if ev.coherent_bus_events() > ev.bus_memory:
            out.append(f"{label}: coherent events exceed bus transactions")
        if ev.l3_misses > ev.l2_misses:
            out.append(f"{label}: more L3 misses than L2 misses")
        if ev.l3_misses > ev.bus_memory:
            out.append(f"{label}: L3 misses without bus transactions")
        if record.verified is False:
            out.append(f"{label}: workload numerical verification failed")

    def run(self, jobs: int = 1) -> DifferentialReport:
        from ..parallel import run_tasks

        # the cell list is built in sweep order and results are merged
        # in that same order, so the report is byte-identical for any
        # jobs value (repro.parallel's determinism contract)
        cells = [
            (mname, factory, strategy)
            for mname, factory in sorted(self.machines.items())
            for strategy in self.strategies
        ]
        outcomes = run_tasks(
            [(self._execute, cell) for cell in cells], jobs=jobs
        )
        report = DifferentialReport(self.workload.name)
        baselines: dict[str, RunRecord] = {}
        for (mname, _factory, strategy), outcome in zip(cells, outcomes):
            record, result, violations = outcome
            report.records.append(record)
            report.violations.extend(violations)
            self._sanity(record, result, report.mismatches)
            if strategy == "none":
                baselines[mname] = record
                continue
            base = baselines[mname]
            if record.digest != base.digest:
                for name, data in base.arrays.items():
                    if record.arrays.get(name) != data:
                        report.mismatches.append(
                            f"{record.label}: array {name!r} differs "
                            f"from the {base.label} baseline"
                        )
        # cross-machine: same program, same thread count -> same bits
        first: RunRecord | None = None
        for mname, base in baselines.items():
            if first is None:
                first = base
            elif base.digest != first.digest:
                report.mismatches.append(
                    f"{base.label}: baseline output differs from {first.label} "
                    "(SMP vs cc-NUMA divergence)"
                )
        return report


# -- canned specs -------------------------------------------------------------
#
# The builders/verifiers/factories below are frozen-dataclass callables
# rather than lambdas so WorkloadSpec and the machine maps pickle —
# that is what lets the harnesses ship cells to worker processes
# (`--jobs N`, see repro.parallel).


@dataclass(frozen=True)
class DaxpyBuild:
    n_elems: int
    n_threads: int
    reps: int

    def __call__(self, machine: Machine) -> ParallelProgram:
        from ..workloads.daxpy import build_daxpy

        return build_daxpy(machine, self.n_elems, self.n_threads, self.reps)


@dataclass(frozen=True)
class DaxpyVerify:
    reps: int

    def __call__(self, prog: ParallelProgram) -> bool:
        from ..workloads.daxpy import verify_daxpy

        return verify_daxpy(prog, self.reps)


@dataclass(frozen=True)
class NpbBuild:
    name: str
    n_threads: int
    reps: int

    def __call__(self, machine: Machine) -> ParallelProgram:
        from ..workloads import BENCHMARKS

        return BENCHMARKS[self.name].build(machine, self.n_threads, reps=self.reps)


@dataclass(frozen=True)
class NpbVerify:
    name: str
    reps: int

    def __call__(self, prog: ParallelProgram) -> bool:
        from ..workloads import BENCHMARKS

        return BENCHMARKS[self.name].verify(prog, self.reps)


@dataclass(frozen=True)
class MachineRecipe:
    """Picklable machine factory (``kind`` selects the config builder)."""

    kind: str  # "smp" (bus) or "altix" (directory cc-NUMA)
    n_cpus: int
    scale: int

    def __call__(self) -> Machine:
        if self.kind == "smp":
            return Machine(itanium2_smp(self.n_cpus, scale=self.scale))
        if self.kind == "altix":
            return Machine(sgi_altix(self.n_cpus, scale=self.scale))
        raise ValidationError(f"unknown machine kind {self.kind!r}")


def daxpy_spec(n_elems: int = 512, n_threads: int = 4, reps: int = 5) -> WorkloadSpec:
    """The paper's DAXPY kernel as a differential workload."""
    return WorkloadSpec(
        name=f"daxpy-n{n_elems}-t{n_threads}-r{reps}",
        build=DaxpyBuild(n_elems, n_threads, reps),
        verify=DaxpyVerify(reps),
    )


def npb_spec(name: str, n_threads: int = 4, reps: int | None = None) -> WorkloadSpec:
    """One NPB-like benchmark as a differential workload."""
    from ..workloads import BENCHMARKS

    bench = BENCHMARKS[name]
    reps = reps or bench.default_reps
    return WorkloadSpec(
        name=f"{name}-t{n_threads}-r{reps}",
        build=NpbBuild(name, n_threads, reps),
        verify=NpbVerify(name, reps),
    )


def default_machines(n_threads: int = 4, scale: int = 16) -> dict[str, Callable[[], Machine]]:
    """SMP-bus vs directory cc-NUMA, sized so both can host ``n_threads``.

    Both machines run the workload with the *same* thread count so the
    floating-point reduction order is identical and bit-equality holds
    across coherence backends.
    """
    n_smp = max(4, n_threads)
    n_numa = max(8, 2 * ((n_threads + 1) // 2))
    return {
        f"smp{n_smp}": MachineRecipe("smp", n_smp, scale),
        f"altix{n_numa}": MachineRecipe("altix", n_numa, scale),
    }
