"""ISA-level validation: round-trip fixpoints and patch/rollback identity.

COBRA's whole mechanism is rewriting live code, so the tooling that
reads and writes bundles must be lossless:

* **roundtrip** — ``assemble(disassemble(image))`` reproduces the image
  exactly (canonical byte encoding), and a second disassembly emits
  byte-identical text (the fixpoint);
* **patch-rollback** — applying journaled patches and reverting them
  restores the original bundle bytes exactly.

There is no hardware encoding in the simulator, so "bytes" here is a
canonical serialization (:func:`encode_instruction`): operands, hints,
and flags packed into a fixed record, with default branch hints
normalized the same way the disassembler prints them.  Byte-identical
encodings mean the images are operationally indistinguishable to the
cores and to COBRA's patcher.
"""

from __future__ import annotations

import struct

from ..errors import InvariantViolation, ValidationError
from ..isa.assembler import assemble
from ..isa.binary import BinaryImage
from ..isa.bundle import Bundle
from ..isa.disassembler import disassemble
from ..isa.instructions import Instruction, Op, nop

__all__ = [
    "encode_instruction",
    "encode_bundle",
    "encode_image",
    "check_roundtrip",
    "check_patch_rollback",
    "check_image",
]

#: Branch ops whose omitted hint prints (and reparses) as ``sptk``.
_HINTED_BRANCHES = frozenset({Op.BR_COND, Op.BR_CTOP, Op.BR_CLOOP, Op.BR_WTOP})

_UNIT_CODE = {"M": 0, "I": 1, "F": 2, "B": 3, "A": 4}
_HINT_CODE = {None: 0, "sptk": 1, "spnt": 2, "dptk": 3, "nt1": 4, "nt2": 5, "nta": 6}


def encode_instruction(instr: Instruction) -> bytes:
    """Canonical 24-byte encoding of one linked instruction."""
    if instr.label is not None:
        raise ValidationError(
            f"cannot encode unlinked instruction (label {instr.label!r})"
        )
    hint = instr.hint
    if hint is None and instr.op in _HINTED_BRANCHES:
        hint = "sptk"  # the disassembler's (and reassembler's) default
    try:
        hint_code = _HINT_CODE[hint]
    except KeyError:
        raise ValidationError(f"unknown hint {hint!r}") from None
    return struct.pack(
        "<BBBBBBqBBBx",
        int(instr.op),
        instr.qp,
        instr.r1,
        instr.r2,
        instr.r3,
        instr.r4,
        int(instr.imm),
        hint_code,
        1 if instr.excl else 0,
        _UNIT_CODE[instr.unit],
    )


def encode_bundle(bundle: Bundle) -> bytes:
    return bundle.template.encode() + b"".join(
        encode_instruction(instr) for instr in bundle.slots
    )


def encode_image(image: BinaryImage) -> bytes:
    """Canonical serialization of every bundle, in address order."""
    chunks = []
    for addr, bundle in image.iter_bundles():
        chunks.append(struct.pack("<q", addr))
        chunks.append(encode_bundle(bundle))
    return b"".join(chunks)


def _report(
    violations: list[InvariantViolation],
    mode: str,
    invariant: str,
    message: str,
) -> None:
    violation = InvariantViolation(message, invariant=invariant)
    if mode == "strict":
        raise violation
    violations.append(violation)


def check_roundtrip(image: BinaryImage, mode: str = "strict") -> list[InvariantViolation]:
    """assemble→disassemble→reassemble must be a fixpoint for ``image``."""
    violations: list[InvariantViolation] = []
    text = disassemble(image)
    try:
        rebuilt = assemble(text, base=image.base)
    except Exception as exc:  # noqa: BLE001 - any parse failure is the finding
        _report(
            violations, mode, "isa-roundtrip",
            f"disassembly does not reassemble: {exc}",
        )
        return violations
    if len(rebuilt) != len(image):
        _report(
            violations, mode, "isa-roundtrip",
            f"bundle count changed: {len(image)} -> {len(rebuilt)}",
        )
        return violations
    for (addr_a, bundle_a), (addr_b, bundle_b) in zip(
        image.iter_bundles(), rebuilt.iter_bundles()
    ):
        if addr_a != addr_b:
            _report(
                violations, mode, "isa-roundtrip",
                f"bundle address drifted: {addr_a:#x} -> {addr_b:#x}",
            )
            return violations
        if encode_bundle(bundle_a) != encode_bundle(bundle_b):
            _report(
                violations, mode, "isa-roundtrip",
                f"bundle at {addr_a:#x} not byte-identical after round-trip "
                f"({bundle_a!r} -> {bundle_b!r})",
            )
            return violations
    if disassemble(rebuilt) != text:
        _report(
            violations, mode, "isa-roundtrip",
            "second disassembly is not a textual fixpoint",
        )
    return violations


def check_patch_rollback(
    image: BinaryImage,
    mode: str = "strict",
    max_sites: int = 8,
) -> list[InvariantViolation]:
    """Patch + revert must restore the original image byte-identically.

    Uses the image's real lfetch sites when present (COBRA's in-place
    rewrite target), falling back to the first bundle's slots, and the
    same journal path COBRA's rollback uses.
    """
    violations: list[InvariantViolation] = []
    before = encode_image(image)
    sites = image.find_ops(Op.LFETCH)[:max_sites]
    if not sites:
        try:
            addr = next(iter(image.iter_bundles()))[0]
        except StopIteration:
            return violations  # empty image: nothing to patch
        sites = [(addr, slot) for slot in range(3)]
    applied = []
    for addr, slot in sites:
        unit = image.fetch_bundle(addr).template[slot].upper()
        if unit == "L":  # movl's long slot issues like an I slot
            unit = "I"
        image.patch_slot(addr, slot, nop(unit), reason="validate: patch/rollback probe")
        applied.append(image.patches[-1])
    if encode_image(image) == before and any(
        p.old != p.new for p in applied
    ):
        _report(
            violations, mode, "isa-patch",
            "patching changed bundles but not the canonical encoding",
        )
    for patch in reversed(applied):
        image.revert_patch(patch)
    after = encode_image(image)
    if after != before:
        _report(
            violations, mode, "isa-patch",
            f"image not byte-identical after rollback of {len(applied)} patch(es)",
        )
    return violations


def check_image(image: BinaryImage, mode: str = "strict") -> list[InvariantViolation]:
    """Run every ISA-level check on one image."""
    violations = check_roundtrip(image, mode)
    violations += check_patch_rollback(image, mode)
    return violations
