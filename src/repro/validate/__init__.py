"""Correctness validation subsystem.

Three layers of mechanical checking back COBRA's claim that its binary
rewrites are semantics-preserving:

* :mod:`~repro.validate.checker` — a :class:`CoherenceChecker` that
  observes every memory-hierarchy event and asserts the MESI/directory
  invariants documented in :mod:`repro.memory.coherence`;
* :mod:`~repro.validate.differential` — a :class:`DifferentialHarness`
  that runs the same program under every optimization strategy and on
  both machine models, requiring bit-identical outputs;
* :mod:`~repro.validate.isa_check` — assemble/disassemble round-trip
  fixpoints and patch/rollback byte-identity on binary images.

Enable runtime checking with ``CobraConfig.validate`` (``"strict"`` or
``"record"``), the ``REPRO_VALIDATE`` environment variable, or run the
whole suite from the CLI: ``python -m repro validate``.

A fourth, adversarial layer lives in :mod:`repro.faults`: a seeded
fault injector plus a :class:`~repro.faults.chaos.ChaosHarness` that
reuses this package's workload specs and digests to prove outputs stay
bit-identical under injected sampling, patching, and control-loop
faults (``python -m repro chaos``).

A fifth layer, :mod:`~repro.validate.recovery`, closes the loop with
:mod:`repro.persist`: a :class:`RecoveryHarness` that kills the run at
every durable checkpoint write (including mid-write tears), restarts it
from the surviving store, and requires outputs bit-identical to an
uninterrupted run with every discarded artifact accounted on the fault
ledger (``python -m repro recovery``).
"""

from .checker import VALIDATE_MODES, AccessEvent, CoherenceChecker, EvictEvent
from .differential import (
    ALL_STRATEGIES,
    DifferentialHarness,
    DifferentialReport,
    MachineRecipe,
    RunRecord,
    WorkloadSpec,
    daxpy_spec,
    default_machines,
    npb_spec,
)
from .isa_check import (
    check_image,
    check_patch_rollback,
    check_roundtrip,
    encode_image,
    encode_instruction,
)
from .recovery import (
    RecoveryHarness,
    RecoveryRecord,
    RecoveryReport,
    zero_rate_faults,
)

__all__ = [
    "VALIDATE_MODES",
    "AccessEvent",
    "CoherenceChecker",
    "EvictEvent",
    "ALL_STRATEGIES",
    "DifferentialHarness",
    "DifferentialReport",
    "MachineRecipe",
    "RunRecord",
    "WorkloadSpec",
    "daxpy_spec",
    "default_machines",
    "npb_spec",
    "check_image",
    "check_patch_rollback",
    "check_roundtrip",
    "encode_image",
    "encode_instruction",
    "RecoveryHarness",
    "RecoveryRecord",
    "RecoveryReport",
    "zero_rate_faults",
]
