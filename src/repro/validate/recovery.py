"""Recovery-equivalence harness: crash anywhere, recover everywhere.

Mirrors :class:`repro.faults.chaos.ChaosHarness`, but instead of
sweeping random fault schedules it sweeps *crash points*: the process
is killed at every Nth durable persistence write (journal append or
snapshot rename), optionally leaving a torn byte-prefix behind, and
then restarted against the surviving checkpoint store.  The
crash-consistency invariant it enforces, for every cell of the
(machine x crash-point x tear-mode) matrix:

* **(A) output equivalence** — the resumed run's committed program
  outputs are bit-identical to an uninterrupted reference run of the
  same workload;
* **(B) prefix durability** — the crashed store's journal is a valid
  byte-prefix of the reference run's journal, and every snapshot file
  both stores share is byte-identical (a crash may lose a suffix,
  never rewrite history);
* **(C) ledger accounting** — every torn record, corrupt snapshot and
  stray temp file discarded during recovery appears in the resumed
  run's fault ledger, and the ledger is fully accounted;
* **(D) resume determinism** — resuming twice from a byte-identical
  copy of the crashed store reproduces the same outputs and the same
  persistence counters (recovery is a pure function of the store).

Each cell runs on a fresh machine with a fresh program build over a
:class:`~repro.persist.journal.MemoryDisk`, so crash debris cannot leak
between cells and every failure replays from its (crash_write,
torn_bytes) coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from ..config import FaultConfig, PersistConfig
from ..cpu.machine import Machine
from ..errors import SimulatedCrash
from ..persist.journal import JOURNAL_NAME, MemoryDisk, scan_journal
from .differential import WorkloadSpec, _digest, _snapshot_arrays, default_machines

__all__ = [
    "RecoveryHarness",
    "RecoveryRecord",
    "RecoveryReport",
    "zero_rate_faults",
]

#: Default torn-write modes: ``None`` kills *before* the write lands
#: (clean boundary), an integer k leaves a durable k-byte prefix of the
#: record (torn write) for recovery to detect and discard.
DEFAULT_TORN_MODES: tuple[int | None, ...] = (None, 7)


def zero_rate_faults(seed: int = 0) -> FaultConfig:
    """An armed injector that never injects.

    Resumed runs need a live :class:`~repro.faults.injector.FaultInjector`
    so recovery can *account* discarded records on the ledger, but must
    not draw any random faults of their own — at rate 0.0 the injector
    consumes no RNG, so the resumed run stays deterministic.
    """
    return FaultConfig(seed=seed, sample_rate=0.0, patch_rate=0.0, loop_rate=0.0)


@dataclass(frozen=True)
class RecoveryRecord:
    """One crash-and-recover cell of the matrix."""

    machine: str
    crash_write: int
    torn_bytes: int | None
    digest: str
    replayed: int
    discarded: int
    warm_deploys: int
    accounted: bool

    @property
    def label(self) -> str:
        tear = "boundary" if self.torn_bytes is None else f"torn[{self.torn_bytes}B]"
        return f"{self.machine}/write={self.crash_write}/{tear}"

    def to_json(self) -> dict:
        return {
            "machine": self.machine,
            "crash_write": self.crash_write,
            "torn_bytes": self.torn_bytes,
            "digest": self.digest,
            "replayed": self.replayed,
            "discarded": self.discarded,
            "warm_deploys": self.warm_deploys,
            "accounted": self.accounted,
        }


@dataclass
class RecoveryReport:
    """Outcome of one crash-recovery sweep."""

    workload: str
    reference_digests: dict[str, str] = field(default_factory=dict)
    durable_writes: dict[str, int] = field(default_factory=dict)
    records: list[RecoveryRecord] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def total_discarded(self) -> int:
        return sum(r.discarded for r in self.records)

    def total_warm_deploys(self) -> int:
        return sum(r.warm_deploys for r in self.records)

    def summary(self) -> str:
        lines = [
            f"recovery[{self.workload}]: {len(self.records)} crash cell(s), "
            f"{self.total_discarded()} torn/corrupt artifact(s) discarded, "
            f"{self.total_warm_deploys()} warm redeploy(s), "
            f"{'OK' if self.ok else 'FAIL'}"
        ]
        for rec in self.records:
            lines.append(
                f"  {rec.label:34s} digest={rec.digest[:12]} "
                f"replayed={rec.replayed} discarded={rec.discarded} "
                f"warm_deploys={rec.warm_deploys}"
            )
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "workload": self.workload,
            "ok": self.ok,
            "reference_digests": dict(self.reference_digests),
            "durable_writes": dict(self.durable_writes),
            "cells": [r.to_json() for r in self.records],
            "failures": list(self.failures),
        }


class RecoveryHarness:
    """Sweeps crash points across the machine matrix for one workload."""

    def __init__(
        self,
        workload: WorkloadSpec,
        machines: Mapping[str, Callable[[], Machine]] | None = None,
        strategy: str = "noprefetch",
        stride: int = 1,
        torn_modes: tuple[int | None, ...] = DEFAULT_TORN_MODES,
        optimize_interval: int | None = 30_000,
        resume_twice: bool = True,
        max_bundles: int | None = None,
    ) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.workload = workload
        self.machines = (
            dict(machines)
            if machines is not None
            else default_machines(scale=4)
        )
        self.strategy = strategy
        self.stride = stride
        self.torn_modes = torn_modes
        #: shortened wake interval so small sweep workloads actually
        #: deploy (the default interval outlives them)
        self.optimize_interval = optimize_interval
        self.resume_twice = resume_twice
        self.max_bundles = max_bundles

    # -- single runs ----------------------------------------------------------

    def _run(self, factory: Callable[[], Machine], disk: MemoryDisk,
             faults: FaultConfig):
        """One COBRA run persisting to ``disk``; returns (prog, report)."""
        # deferred: repro.core imports repro.validate at module scope
        from ..core.framework import run_with_cobra

        machine = factory()
        prog = self.workload.build(machine)
        config = machine.config.cobra
        if self.optimize_interval is not None:
            config = replace(config, optimize_interval=self.optimize_interval)
        config = replace(config, persist=PersistConfig(disk=disk), faults=faults)
        _result, report = run_with_cobra(
            prog, self.strategy, config=config, max_bundles=self.max_bundles
        )
        return prog, report

    def _reference(self, mname: str, factory: Callable[[], Machine]):
        """Uninterrupted run: digest + journal bytes + snapshots + op count."""
        disk = MemoryDisk()
        prog, report = self._run(factory, disk, zero_rate_faults())
        journal = bytes(disk.files.get(JOURNAL_NAME, b""))
        snapshots = {
            name: bytes(data)
            for name, data in disk.files.items()
            if name != JOURNAL_NAME
        }
        return _digest(_snapshot_arrays(prog)), journal, snapshots, disk.durable_ops, report

    # -- per-cell checks ------------------------------------------------------

    def _check_prefix(
        self, label: str, disk: MemoryDisk, ref_journal: bytes,
        ref_snapshots: dict[str, bytes], out: list[str],
    ) -> None:
        """(B): the crashed store never disagrees with durable history."""
        data = bytes(disk.files.get(JOURNAL_NAME, b""))
        _records, valid_len, _notes = scan_journal(data)
        if data[:valid_len] != ref_journal[:valid_len]:
            out.append(
                f"{label}: crashed journal's valid prefix diverges from the "
                "uninterrupted run's journal — durable history was rewritten"
            )
        for name, payload in disk.files.items():
            if name == JOURNAL_NAME or name.endswith(".tmp"):
                continue
            ref = ref_snapshots.get(name)
            if ref is not None and bytes(payload) != ref:
                out.append(
                    f"{label}: snapshot {name} differs from the "
                    "uninterrupted run's copy"
                )

    def _cell(
        self, mname: str, factory: Callable[[], Machine], crash_write: int,
        torn: int | None, ref_digest: str, ref_journal: bytes,
        ref_snapshots: dict[str, bytes],
    ) -> tuple[RecoveryRecord | None, list[str]]:
        failures: list[str] = []
        tear = "boundary" if torn is None else f"torn[{torn}B]"
        label = f"{mname}/write={crash_write}/{tear}"
        disk = MemoryDisk()
        crash_faults = replace(
            zero_rate_faults(), crash_write=crash_write, crash_torn_bytes=torn
        )
        try:
            self._run(factory, disk, crash_faults)
            failures.append(
                f"{label}: crash point was never reached (run completed)"
            )
            return None, failures
        except SimulatedCrash:
            pass
        except Exception as exc:  # noqa: BLE001 — the invariant is *zero* escapes
            failures.append(f"{label}: unhandled {type(exc).__name__}: {exc}")
            return None, failures

        self._check_prefix(label, disk, ref_journal, ref_snapshots, failures)

        # (D): an identical copy of the crashed store must recover to an
        # identical run before the original store gets mutated by repair
        twin = disk.clone() if self.resume_twice else None

        try:
            prog, report = self._run(factory, disk, zero_rate_faults())
        except Exception as exc:  # noqa: BLE001
            failures.append(f"{label}: resume raised {type(exc).__name__}: {exc}")
            return None, failures

        digest = _digest(_snapshot_arrays(prog))
        stats = report.persist
        if digest != ref_digest:  # (A)
            failures.append(
                f"{label}: resumed output digest {digest[:12]} differs from "
                f"uninterrupted reference {ref_digest[:12]}"
            )
        discarded = (
            stats.records_discarded + stats.snapshots_discarded + stats.tmp_cleaned
        )
        ledger = report.faults
        if ledger is None or not ledger.accounted:  # (C)
            failures.append(f"{label}: resumed run's fault ledger unaccounted")
        else:
            observed = sum(1 for e in ledger.events if e.surface == "persist")
            if observed != discarded:
                failures.append(
                    f"{label}: {discarded} discarded artifact(s) but {observed} "
                    "persist event(s) on the ledger"
                )

        if twin is not None:
            try:
                prog2, report2 = self._run(factory, twin, zero_rate_faults())
            except Exception as exc:  # noqa: BLE001
                failures.append(
                    f"{label}: second resume raised {type(exc).__name__}: {exc}"
                )
                return None, failures
            digest2 = _digest(_snapshot_arrays(prog2))
            stats2 = report2.persist
            if digest2 != digest:
                failures.append(
                    f"{label}: resuming twice from the same store produced "
                    "different outputs — recovery is nondeterministic"
                )
            if (stats2.records_replayed, stats2.records_discarded) != (
                stats.records_replayed, stats.records_discarded
            ):
                failures.append(
                    f"{label}: resuming twice replayed/discarded different "
                    "record counts — recovery is nondeterministic"
                )

        warm_deploys = sum(
            1
            for e in report.events
            if e.kind == "deploy" and e.reason.startswith("warm restart")
        )
        record = RecoveryRecord(
            machine=mname,
            crash_write=crash_write,
            torn_bytes=torn,
            digest=digest,
            replayed=stats.records_replayed,
            discarded=discarded,
            warm_deploys=warm_deploys,
            accounted=ledger.accounted if ledger is not None else False,
        )
        return record, failures

    # -- the sweep ------------------------------------------------------------

    def run(self, jobs: int = 1) -> RecoveryReport:
        from ..parallel import run_tasks

        report = RecoveryReport(self.workload.name)
        any_txn = False
        machines = sorted(self.machines.items())
        # phase 1: uninterrupted references (the crash-point count of
        # each machine's sweep is only known after its reference run)
        references = run_tasks(
            [(self._reference, (mname, factory)) for mname, factory in machines],
            jobs=jobs,
        )
        # phase 2: every crash cell, enumerated in sweep order; cells
        # receive the reference bytes as arguments so they are pure
        # functions of the task tuple and fan out freely
        cells = []
        for (mname, factory), ref in zip(machines, references):
            ref_digest, ref_journal, ref_snapshots, n_ops, ref_report = ref
            report.reference_digests[mname] = ref_digest
            report.durable_writes[mname] = n_ops
            if any(d.active for d in ref_report.deployments):
                any_txn = True
            for crash_write in range(1, n_ops + 1, self.stride):
                for torn in self.torn_modes:
                    cells.append(
                        (mname, factory, crash_write, torn,
                         ref_digest, ref_journal, ref_snapshots)
                    )
        outcomes = run_tasks([(self._cell, cell) for cell in cells], jobs=jobs)
        for record, failures in outcomes:
            report.failures.extend(failures)
            if record is not None:
                report.records.append(record)
        if report.records and not any_txn:
            report.failures.append(
                "no reference run deployed anything — the sweep never "
                "exercised deploy-transaction replay; grow the workload or "
                "shorten optimize_interval"
            )
        return report
