"""Repeatable performance harness for the simulator hot path.

Times the simulate-execute loop on fixed workload/strategy/machine
matrices and emits a machine-readable ``BENCH_perf.json``.  Two things
matter and the harness reports both:

* **speed** — wall seconds per case, simulated cycles per wall second,
  retired instructions per wall second, PMU samples per wall second;
* **fidelity** — the sha256 digest of the workload's output arrays and
  the full memory-event counter snapshot per case.  The simulator is
  deterministic, so these must be byte-identical between two builds of
  the simulator; a hot-path "optimization" that changes them is a
  semantics change, not a speedup.

Cross-PR comparison: run ``repro bench --quick --out before.json`` on
the old tree and the same command on the new tree, then compare
``wall_s`` (speed) and ``digest``/``events`` (fidelity) per case id.

Scale note: wall time is host-dependent; cycles/sec and digests are the
portable parts of the report.
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Iterable

from .config import itanium2_smp, sgi_altix
from .cpu import Machine
from .core import run_with_cobra
from .validate.differential import _digest, _snapshot_arrays
from .workloads import BENCHMARKS, build_daxpy

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_MACHINES",
    "BENCH_STRATEGIES",
    "QUICK_BENCHMARKS",
    "FULL_BENCHMARKS",
    "run_case",
    "run_bench",
    "format_report",
]

#: Schema tag written into BENCH_perf.json (bump on layout changes).
BENCH_SCHEMA = "repro-bench-perf/1"

#: machine name -> (config factory, thread count)
BENCH_MACHINES = {
    "smp4": (lambda scale: itanium2_smp(4, scale=scale), 4),
    "altix8": (lambda scale: sgi_altix(8, scale=scale), 8),
}

#: "none" is the raw simulator; the rest run under COBRA.
BENCH_STRATEGIES = ("none", "noprefetch", "excl", "adaptive")

#: benchmark name -> builder(machine, threads) for the timed workloads.
#: Sizes are fixed here so reports stay comparable across PRs.
_BUILDERS = {
    "daxpy": lambda machine, threads: build_daxpy(
        machine, 4096, threads, outer_reps=4
    ),
    "cg": lambda machine, threads: BENCHMARKS["cg"].build(machine, threads, reps=1),
    "mg": lambda machine, threads: BENCHMARKS["mg"].build(machine, threads, reps=1),
}

QUICK_BENCHMARKS = ("daxpy", "cg")
FULL_BENCHMARKS = ("daxpy", "cg", "mg")

#: Fixed cache scale for all bench runs (matches the validate default).
BENCH_SCALE = 16


def run_case(
    benchmark: str,
    machine_name: str,
    strategy: str,
    samples: int = 3,
) -> dict:
    """Time one (benchmark, machine, strategy) case.

    Each sample is a fresh machine and a fresh program build (builds are
    not timed); the median wall time is the headline number.  Returns the
    case dict of the BENCH_perf.json schema.
    """
    factory, threads = BENCH_MACHINES[machine_name]
    build = _BUILDERS[benchmark]
    sample_rows = []
    digest = None
    events = None
    cycles = retired = pmu_samples = 0
    for _ in range(max(1, samples)):
        machine = Machine(factory(BENCH_SCALE))
        prog = build(machine, threads)
        t0 = time.perf_counter()
        if strategy == "none":
            result, report = prog.run(), None
        else:
            result, report = run_with_cobra(prog, strategy)
        wall = time.perf_counter() - t0
        cycles = result.cycles
        retired = result.retired
        pmu_samples = report.samples if report is not None else 0
        sample_digest = _digest(_snapshot_arrays(prog))
        sample_events = result.events.snapshot()
        if digest is None:
            digest, events = sample_digest, sample_events
        elif (digest, events) != (sample_digest, sample_events):
            raise AssertionError(
                f"non-deterministic run: {benchmark}/{machine_name}/{strategy}"
            )
        sample_rows.append(round(wall, 6))
    wall_median = sorted(sample_rows)[len(sample_rows) // 2]
    return {
        "id": f"{machine_name}/{benchmark}/{strategy}",
        "benchmark": benchmark,
        "machine": machine_name,
        "strategy": strategy,
        "threads": threads,
        "scale": BENCH_SCALE,
        "wall_s": sample_rows,
        "wall_s_median": wall_median,
        "sim_cycles": cycles,
        "retired": retired,
        "pmu_samples": pmu_samples,
        "cycles_per_sec": round(cycles / wall_median) if wall_median else 0,
        "retired_per_sec": round(retired / wall_median) if wall_median else 0,
        "samples_per_sec": round(pmu_samples / wall_median, 2) if wall_median else 0,
        "digest": digest,
        "events": events,
    }


def run_bench(
    benchmarks: Iterable[str] | None = None,
    machines: Iterable[str] | None = None,
    strategies: Iterable[str] | None = None,
    samples: int = 3,
    quick: bool = False,
) -> dict:
    """Run the full matrix; return the BENCH_perf.json document."""
    if quick:
        benchmarks = benchmarks or QUICK_BENCHMARKS
        machines = machines or ("smp4",)
        samples = min(samples, 2)
    else:
        benchmarks = benchmarks or FULL_BENCHMARKS
        machines = machines or tuple(BENCH_MACHINES)
    strategies = strategies or BENCH_STRATEGIES
    t0 = time.perf_counter()
    cases = [
        run_case(b, m, s, samples=samples)
        for m in machines
        for b in benchmarks
        for s in strategies
    ]
    return {
        "schema": BENCH_SCHEMA,
        "created_unix": int(time.time()),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "quick": quick,
        "samples_per_case": samples,
        "cases": cases,
        "totals": {
            "wall_s": round(time.perf_counter() - t0, 3),
            "sim_cycles": sum(c["sim_cycles"] for c in cases),
            "retired": sum(c["retired"] for c in cases),
        },
    }


def format_report(report: dict) -> str:
    """Human-readable table of a bench report."""
    header = f"{'case':<28} {'wall(s)':>9} {'Mcyc/s':>8} {'Minstr/s':>9} {'digest':>10}"
    lines = [header, "-" * len(header)]
    for case in report["cases"]:
        lines.append(
            f"{case['id']:<28} {case['wall_s_median']:>9.3f} "
            f"{case['cycles_per_sec'] / 1e6:>8.2f} "
            f"{case['retired_per_sec'] / 1e6:>9.2f} "
            f"{case['digest'][:10]:>10}"
        )
    totals = report["totals"]
    lines.append(
        f"total wall {totals['wall_s']:.3f}s over "
        f"{len(report['cases'])} case(s), {report['samples_per_case']} sample(s) each"
    )
    return "\n".join(lines)
